// Priority-arbitrated admission under BPP traffic (the `priority` fabric).
//
// The paper's crossbar admits any request that finds a_r free inputs and
// a_r free outputs.  NoC-style switches instead put a fixed-priority
// arbiter in front of the fabric (Mandal et al., "Analytical Performance
// Modeling of NoCs under Priority Arbitration and Bursty Traffic"): lower
// priorities must leave headroom for higher ones.  We model that as
// reservation-based admission — class r (declaration order, 0 highest)
// additionally requires
//
//     u + a_r <= cap - t_r,        t_r = r * reservation_step,
//
// where u is the number of busy port pairs and cap = min(N1, N2).  The
// reservation breaks the product form, so no G-ratio shortcut exists;
// instead we solve the exact CTMC on the feasible state space Γ(N)
// numerically (uniformization + power iteration on plain doubles — the
// kDense backend).  Transition rates are exactly the simulator's process:
// class-r births at per-tuple intensity lambda_r(k_r) times the number of
// free ordered port tuples P(N1-u, a_r) P(N2-u, a_r), gated by the
// reservation; deaths at k_r mu_r.
//
// With reservation_step == 0 the chain *is* the paper's crossbar process,
// so every measure must match Algorithm 1/2 and brute force exactly —
// that equivalence is the solver's correctness oracle in tests.
//
// Exponential in R like the brute-force reference, so intended for the
// same small-system regime.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

/// Options for the priority CTMC solve.
struct PriorityOptions {
  /// Headroom (in port pairs) class r reserves for classes 0..r-1 is
  /// r * reservation_step.  0 reproduces the plain crossbar exactly.
  unsigned reservation_step = 1;

  /// Stationary-solve convergence: stop when the L1 change of pi across one
  /// uniformized power step drops below this.
  double tolerance = 1e-13;

  /// Hard iteration cap for the power iteration.
  unsigned max_iterations = 500000;

  /// Refuse state spaces larger than this (the chain is exponential in R).
  std::uint64_t max_states = 2000000;
};

/// Exact CTMC solver for the priority-arbitrated crossbar.
class PriorityCtmcSolver {
 public:
  explicit PriorityCtmcSolver(CrossbarModel model, PriorityOptions options = {});

  /// All measures from the stationary distribution.  `blocking` is time
  /// congestion (1 minus the stationary acceptance probability of a test
  /// request), matching the paper's B_r convention.
  [[nodiscard]] Measures solve() const;

  /// Fraction of class-r *arrivals* blocked (call congestion) — the
  /// quantity the simulator counts; differs from 1 - B_r for bursty
  /// classes.
  [[nodiscard]] double call_congestion(std::size_t r) const;

  /// Stationary probability that class r's reservation gate (not port
  /// scarcity) is what forbids admission.
  [[nodiscard]] double reservation_blocking(std::size_t r) const;

  [[nodiscard]] std::size_t num_states() const noexcept {
    return usage_.size();
  }

  /// Power-iteration steps the stationary solve took.
  [[nodiscard]] unsigned iterations() const noexcept { return iterations_; }

  [[nodiscard]] const CrossbarModel& model() const noexcept { return model_; }

 private:
  [[nodiscard]] unsigned reservation(std::size_t r) const noexcept;
  [[nodiscard]] double acceptance(std::size_t state, std::size_t r) const;
  void solve_stationary();

  CrossbarModel model_;
  PriorityOptions options_;
  std::vector<unsigned> bandwidths_;
  std::vector<unsigned> states_;  ///< flattened |Γ| x R state vectors
  std::vector<unsigned> usage_;   ///< k·A per state
  std::vector<double> pi_;        ///< stationary distribution
  unsigned iterations_ = 0;
};

}  // namespace xbar::core
