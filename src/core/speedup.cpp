#include "core/speedup.hpp"

#include <limits>
#include <vector>

#include "core/error.hpp"

namespace xbar::core {

CrossbarModel speedup_scaled_model(const CrossbarModel& model, unsigned s) {
  if (s < 2) {
    raise(ErrorKind::kConfig,
          "speedup factor must be at least 2 (1 is the plain crossbar)");
  }
  const Dims d = model.dims();
  const std::uint64_t scaled_side = static_cast<std::uint64_t>(d.max_side()) * s;
  if (scaled_side > 65536) {
    raise(ErrorKind::kConfig,
          "speedup-" + std::to_string(s) + " scales the " +
              std::to_string(d.n1) + "x" + std::to_string(d.n2) +
              " crossbar past the 65536-port ceiling");
  }
  // Same aggregate (tilde) classes: the CrossbarModel constructor
  // re-normalizes per-tuple intensities for the scaled output count.
  return CrossbarModel(Dims{d.n1 * s, d.n2 * s},
                       {model.classes().begin(), model.classes().end()});
}

SpeedupBound cogill_lall_bound(const CrossbarModel& model, unsigned s) {
  if (s < 1) {
    raise(ErrorKind::kConfig, "speedup factor must be positive");
  }
  SpeedupBound bound;
  const double cap = static_cast<double>(model.dims().cap());
  double port_load = 0.0;  // offered busy-port-pairs, sum_r a_r rho~_r
  double weighted_z = 0.0;
  double arrival_rate = 0.0;  // offered port demand per unit time
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const TrafficClass& cls = model.classes()[r];
    const double a = static_cast<double>(cls.bandwidth);
    const double rho = cls.rho_tilde();
    // BPP peakedness z = 1 / (1 - beta/mu): > 1 Pascal, < 1 Bernoulli.
    const double z = 1.0 / (1.0 - model.normalized(r).x());
    port_load += a * rho;
    weighted_z += a * rho * z;
    arrival_rate += a * cls.alpha_tilde;
  }
  bound.load = port_load / cap;
  bound.peakedness = port_load > 0.0 ? weighted_z / port_load : 1.0;

  // Cogill–Lall: maximal matching with speedup s is stable for normalized
  // load below s/2, with a drift (Kingman-style) bound on the mean backlog.
  const double margin = static_cast<double>(s) / 2.0 - bound.load;
  bound.stable = margin > 0.0;
  if (!bound.stable) {
    bound.mean_backlog = std::numeric_limits<double>::infinity();
    bound.mean_delay = std::numeric_limits<double>::infinity();
    return bound;
  }
  bound.mean_backlog =
      bound.load * (1.0 + bound.peakedness) / (2.0 * margin);
  bound.mean_delay =
      arrival_rate > 0.0 ? bound.mean_backlog * cap / arrival_rate : 0.0;
  return bound;
}

}  // namespace xbar::core
