#include "core/measures.hpp"

#include <ostream>

namespace xbar::core {

std::ostream& operator<<(std::ostream& os, const Measures& m) {
  os << "Measures{revenue=" << m.revenue
     << ", throughput=" << m.total_throughput
     << ", utilization=" << m.utilization;
  for (std::size_t r = 0; r < m.per_class.size(); ++r) {
    const auto& c = m.per_class[r];
    os << ", class" << r << "{B=" << c.blocking << ", E=" << c.concurrency
       << "}";
  }
  return os << "}";
}

}  // namespace xbar::core
