#include "core/measures.hpp"

#include <cmath>
#include <ostream>

namespace xbar::core {

std::ostream& operator<<(std::ostream& os, const Measures& m) {
  os << "Measures{revenue=" << m.revenue
     << ", throughput=" << m.total_throughput
     << ", utilization=" << m.utilization;
  for (std::size_t r = 0; r < m.per_class.size(); ++r) {
    const auto& c = m.per_class[r];
    os << ", class" << r << "{B=" << c.blocking << ", E=" << c.concurrency
       << "}";
  }
  return os << "}";
}

namespace {

// Roundoff slack: non_blocking = exp(log difference) can land a few ulps
// past 1, making blocking a few ulps negative.  Anything beyond this is a
// genuine arithmetic breakdown, not noise.
constexpr double kProbabilityTol = 1e-9;

bool bad_probability(double p) {
  return !std::isfinite(p) || p < -kProbabilityTol ||
         p > 1.0 + kProbabilityTol;
}

bool bad_quantity(double v) {
  return !std::isfinite(v) || v < -kProbabilityTol;
}

}  // namespace

std::optional<std::string> validate_measures(const Measures& m) {
  const auto describe = [](const char* field, std::size_t r, double v) {
    return std::string(field) + " of class " + std::to_string(r) +
           " is " + std::to_string(v);
  };
  for (std::size_t r = 0; r < m.per_class.size(); ++r) {
    const ClassMeasures& c = m.per_class[r];
    if (bad_probability(c.blocking)) {
      return describe("blocking probability", r, c.blocking);
    }
    if (bad_probability(c.non_blocking)) {
      return describe("non-blocking probability", r, c.non_blocking);
    }
    if (bad_quantity(c.concurrency)) {
      return describe("concurrency", r, c.concurrency);
    }
    if (bad_quantity(c.throughput)) {
      return describe("throughput", r, c.throughput);
    }
    if (bad_quantity(c.port_usage)) {
      return describe("port usage", r, c.port_usage);
    }
  }
  if (bad_quantity(m.revenue)) {
    return "revenue is " + std::to_string(m.revenue);
  }
  if (bad_quantity(m.total_throughput)) {
    return "total throughput is " + std::to_string(m.total_throughput);
  }
  if (bad_quantity(m.utilization)) {
    return "utilization is " + std::to_string(m.utilization);
  }
  return std::nullopt;
}

}  // namespace xbar::core
