// Batched Algorithm 1: advance B scenarios that share one `Dims` through a
// single grid traversal.
//
// The phase-B chain Q(n1) = (Q(n1-1) + acc) / n1 is loop-carried, so a
// single solve cannot vectorize it — but the chains of different scenarios
// are independent.  The batch kernel stores the grids scenario-major
// (lane-interleaved: element s of cell c lives at `c * L + s`), which turns
// every phase — including the chain — into stride-1 loops across lanes that
// vectorize and pipeline.  Per-lane arithmetic is the exact op sequence of
// the single-scenario kernel, so de-interleaving lane s reproduces the
// single solve of scenario s bit for bit (double backends).
//
// Scenarios are grouped by "class skeleton" (the sorted bandwidth sequences
// of the Poisson and bursty class sets): lanes in a group share loop bounds
// and activation prefixes and differ only in per-class constants.  Lanes
// whose skeleton is unique in the batch, and all lanes under backends with
// non-trivial cell types (ScaledFloat, long double, log-domain), fall back
// to ordinary single solves — results are identical either way, the batch
// is purely a throughput optimization for the double backends.
//
// After the fill, each lane is de-interleaved into a regular
// `Algorithm1Solver`, so every query (subsystem measures, log Q, degeneracy)
// behaves exactly like the single-scenario path, and `extract()` lets the
// sweep-tier `SolverCache` adopt the solvers for later warm hits.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/algorithm1.hpp"
#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

class Algorithm1BatchSolver {
 public:
  /// Solves every scenario up front (one traversal per skeleton group).
  /// All models must share the same `Dims`; raises ErrorKind::kConfig
  /// otherwise or for an empty batch.
  explicit Algorithm1BatchSolver(std::vector<CrossbarModel> models,
                                 Algorithm1Options options = {});
  ~Algorithm1BatchSolver();

  Algorithm1BatchSolver(Algorithm1BatchSolver&&) noexcept;
  Algorithm1BatchSolver& operator=(Algorithm1BatchSolver&&) noexcept;
  Algorithm1BatchSolver(const Algorithm1BatchSolver&) = delete;
  Algorithm1BatchSolver& operator=(const Algorithm1BatchSolver&) = delete;

  [[nodiscard]] std::size_t batch_size() const noexcept;

  /// The per-scenario solver (valid until extract()).
  [[nodiscard]] const Algorithm1Solver& solver(std::size_t s) const;

  /// Measures of scenario `s` at its full dimensions.
  [[nodiscard]] Measures solve(std::size_t s) const;

  /// Measures of scenario `s` at a subsystem.
  [[nodiscard]] Measures solve_at(std::size_t s, Dims at) const;

  [[nodiscard]] bool degenerate(std::size_t s) const;
  [[nodiscard]] unsigned scaling_events(std::size_t s) const;

  /// True iff the scenarios of lane `s` were advanced through the
  /// lane-interleaved kernel (as opposed to a single-solve fallback).
  [[nodiscard]] bool lane_batched(std::size_t s) const;

  /// Transfers ownership of scenario `s`'s solver (at most once per lane;
  /// the lane's other accessors become invalid afterwards).
  [[nodiscard]] std::unique_ptr<Algorithm1Solver> extract(std::size_t s);

  /// True iff `backend` has a lane-interleaved kernel (the double
  /// backends); other backends solve lane by lane.
  [[nodiscard]] static bool lane_backend(Algorithm1Backend backend) noexcept;

 private:
  std::vector<std::unique_ptr<Algorithm1Solver>> solvers_;
  std::vector<bool> batched_;
};

}  // namespace xbar::core
