// Solver facade: one entry point that picks the right algorithm.
//
// Paper §5: "Algorithm 1 is preferable for computing the performance
// measures of small dimension crossbars (N <= 32) whereas Algorithm 2 is
// advantageous for larger system sizes."  With the ScaledFloat backend both
// are robust at any size; SolverAlgorithm::kAuto follows the paper's
// guidance anyway (it is also the faster split in practice: Algorithm 1
// does less work per cell for small grids, Algorithm 2 avoids
// extended-precision arithmetic for big ones).
//
// Requests are expressed as a `SolverSpec` and the full answer is a
// `SolveResult` (measures + diagnostics); the bare-`Measures` overloads
// remain for callers that don't need the record.

#pragma once

#include "core/measures.hpp"
#include "core/model.hpp"
#include "core/solver_spec.hpp"

namespace xbar::core {

/// Solve the model and return measures plus diagnostics (which algorithm
/// and backend ran, fallback/rescale record, wall time).
[[nodiscard]] SolveResult solve_result(const CrossbarModel& model,
                                       const SolverSpec& spec = {});

/// Solve the model and return all measures.
[[nodiscard]] Measures solve(const CrossbarModel& model,
                             const SolverSpec& spec = {});

/// Blocking probability of class r — the quantity the paper's figures plot.
[[nodiscard]] double blocking_probability(const CrossbarModel& model,
                                          std::size_t r,
                                          const SolverSpec& spec = {});

}  // namespace xbar::core
