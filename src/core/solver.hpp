// Solver facade: one entry point that picks the right algorithm.
//
// Paper §5: "Algorithm 1 is preferable for computing the performance
// measures of small dimension crossbars (N <= 32) whereas Algorithm 2 is
// advantageous for larger system sizes."  With the ScaledFloat backend both
// are robust at any size; kAuto follows the paper's guidance anyway (it is
// also the faster split in practice: Algorithm 1 does less work per cell for
// small grids, Algorithm 2 avoids extended-precision arithmetic for big
// ones).

#pragma once

#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

/// Which algorithm solves the model.
enum class SolverKind {
  kAuto,        ///< paper's guidance: Algorithm 1 for N <= 32, else 2
  kAlgorithm1,  ///< Q-grid convolution (ScaledFloat backend)
  kAlgorithm2,  ///< mean-value ratio recursion
  kBruteForce,  ///< exhaustive enumeration (tests/small systems only)
};

/// Solve the model and return all measures.
[[nodiscard]] Measures solve(const CrossbarModel& model,
                             SolverKind kind = SolverKind::kAuto);

/// Blocking probability of class r — the quantity the paper's figures plot.
[[nodiscard]] double blocking_probability(const CrossbarModel& model,
                                          std::size_t r,
                                          SolverKind kind = SolverKind::kAuto);

}  // namespace xbar::core
