#include "core/erlang.hpp"

#include <cmath>
#include <string>

#include "core/error.hpp"

namespace xbar::core {

namespace {

// All three entry points take an offered load; the checks used to be bare
// asserts, which vanish in release builds and let NaN/negative loads walk
// straight into the recursions (the fuzzer and bursty sweeps both reach
// here with attacker/scenario-controlled numbers).
void require_load(double a, bool strictly_positive, const char* what) {
  const bool ok =
      std::isfinite(a) && (strictly_positive ? a > 0.0 : a >= 0.0);
  if (!ok) {
    raise(ErrorKind::kDomain, std::string(what) + " requires a finite load " +
                                  (strictly_positive ? "> 0" : ">= 0") +
                                  ", got " + std::to_string(a));
  }
}

}  // namespace

double erlang_b(double a, unsigned c) {
  require_load(a, false, "erlang_b");
  if (a == 0.0) {
    return 0.0;
  }
  double b = 1.0;
  for (unsigned k = 1; k <= c; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  return b;
}

double erlang_b_real(double a, double c) {
  require_load(a, true, "erlang_b_real");
  if (!(std::isfinite(c) && c >= 0.0)) {
    raise(ErrorKind::kDomain,
          "erlang_b_real requires a finite trunk count >= 0, got " +
              std::to_string(c));
  }
  // 1/B(a, c) = integral_0^inf exp(-a t) (1 + t)^c dt evaluated by the
  // classic continued recursion on the integer part plus a fractional
  // starting point from numerical integration of the remainder.
  const double frac = c - std::floor(c);
  double inv_b;
  if (frac == 0.0) {
    inv_b = 1.0;
  } else {
    // Simpson integration of the defining integral for the fractional
    // stage: 1/B(a, frac) = a^frac e^a Gamma(1 - ...) — easier numerically:
    // integrate exp(-a t)(1+t)^frac on [0, T] with T covering e^-aT decay.
    const double upper = 40.0 / a + 10.0;
    const int steps = 4000;  // even
    const double h = upper / steps;
    double sum = 0.0;
    for (int i = 0; i <= steps; ++i) {
      const double t = i * h;
      const double f = std::exp(-a * t) * std::pow(1.0 + t, frac);
      const double w = (i == 0 || i == steps) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
      sum += w * f;
    }
    inv_b = a * sum * h / 3.0;
  }
  // Integer continuation: 1/B(a, x) = 1 + (x / a) / B(a, x - 1) ... in
  // inverse form: inv_b(x) = 1 + (x/a) * inv_b(x-1).
  for (double x = frac + 1.0; x <= c + 1e-12; x += 1.0) {
    inv_b = 1.0 + (x / a) * inv_b;
  }
  return 1.0 / inv_b;
}

double erlang_c(double a, unsigned c) {
  if (a >= static_cast<double>(c)) {
    return 1.0;
  }
  const double b = erlang_b(a, c);
  const double rho = a / static_cast<double>(c);
  return b / (1.0 - rho * (1.0 - b));
}

double erlang_b_inverse_load(double target, unsigned c) {
  if (!(std::isfinite(target) && target > 0.0 && target < 1.0)) {
    raise(ErrorKind::kDomain,
          "erlang_b_inverse_load requires a target blocking in (0, 1), got " +
              std::to_string(target));
  }
  double lo = 0.0;
  double hi = 1.0;
  while (erlang_b(hi, c) < target) {
    hi *= 2.0;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (erlang_b(mid, c) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace xbar::core
