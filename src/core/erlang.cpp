#include "core/erlang.hpp"

#include <cassert>
#include <cmath>

namespace xbar::core {

double erlang_b(double a, unsigned c) {
  assert(a >= 0.0);
  if (a == 0.0) {
    return 0.0;
  }
  double b = 1.0;
  for (unsigned k = 1; k <= c; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  return b;
}

double erlang_b_real(double a, double c) {
  assert(a > 0.0 && c >= 0.0);
  // 1/B(a, c) = integral_0^inf exp(-a t) (1 + t)^c dt evaluated by the
  // classic continued recursion on the integer part plus a fractional
  // starting point from numerical integration of the remainder.
  const double frac = c - std::floor(c);
  double inv_b;
  if (frac == 0.0) {
    inv_b = 1.0;
  } else {
    // Simpson integration of the defining integral for the fractional
    // stage: 1/B(a, frac) = a^frac e^a Gamma(1 - ...) — easier numerically:
    // integrate exp(-a t)(1+t)^frac on [0, T] with T covering e^-aT decay.
    const double upper = 40.0 / a + 10.0;
    const int steps = 4000;  // even
    const double h = upper / steps;
    double sum = 0.0;
    for (int i = 0; i <= steps; ++i) {
      const double t = i * h;
      const double f = std::exp(-a * t) * std::pow(1.0 + t, frac);
      const double w = (i == 0 || i == steps) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
      sum += w * f;
    }
    inv_b = a * sum * h / 3.0;
  }
  // Integer continuation: 1/B(a, x) = 1 + (x / a) / B(a, x - 1) ... in
  // inverse form: inv_b(x) = 1 + (x/a) * inv_b(x-1).
  for (double x = frac + 1.0; x <= c + 1e-12; x += 1.0) {
    inv_b = 1.0 + (x / a) * inv_b;
  }
  return 1.0 / inv_b;
}

double erlang_c(double a, unsigned c) {
  if (a >= static_cast<double>(c)) {
    return 1.0;
  }
  const double b = erlang_b(a, c);
  const double rho = a / static_cast<double>(c);
  return b / (1.0 - rho * (1.0 - b));
}

double erlang_b_inverse_load(double target, unsigned c) {
  assert(target > 0.0 && target < 1.0);
  double lo = 0.0;
  double hi = 1.0;
  while (erlang_b(hi, c) < target) {
    hi *= 2.0;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (erlang_b(mid, c) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace xbar::core
