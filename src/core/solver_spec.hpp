// The unified solve request/result contract.
//
// Before this layer existed the solve path spoke two dialects — one solver
// enum in core and another in the sweep engine, hand-mapped into each
// other by the CLI — and solvers returned bare
// `Measures` with no record of *how* the answer was produced (which
// algorithm `kAuto` picked, whether the `kFast` double grid degenerated
// and fell back to ScaledFloat, how often the §6 dynamic rescale fired).
// `SolverSpec` is the one request type every caller uses, and
// `SolveResult` pairs the measures with `SolveDiagnostics` so those
// decisions are observable end-to-end: the CLI prints them with
// --verbose, emits them with --json, and the sweep engine aggregates them
// into a `SweepReport`.
//
// Specs round-trip through strings for config files and the command line:
//
//   auto | fast | algorithm1[/scaled|/double-dynamic|/long-double|/double-raw
//        |/log-domain] | algorithm2 | brute
//
// optionally qualified by the switch-fabric / arbitration model:
//
//   SPEC[@crossbar | @speedup-<s> | @priority]
//
// The fabric is a *dimension of the request*, exactly like the algorithm
// and the backend: it is part of `ResolvedSolver` (so every solver cache
// keys on it), of `SolveDiagnostics` (so reports show which fabric
// answered), and of the canonical string form (so the serving tier's
// result-cache fingerprints distinguish fabrics).  The plain crossbar is
// the default and renders *without* the `@crossbar` suffix — legacy spec
// strings, checkpoints, and warm cache keys are byte-identical to the
// pre-fabric era.
//
// Diagnostics are deterministic wherever the model is: the resolved
// algorithm, numeric backend, fallback flag, and rescale count depend only
// on the spec and the model — never on thread count or schedule.  Cache
// hits and wall time are honest observations and may vary run to run.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

/// Which algorithm solves the model (the one request vocabulary shared by
/// the facade, the sweep engine, config files, and the CLI).
enum class SolverAlgorithm : std::uint8_t {
  kAuto,        ///< paper §5 guidance: Algorithm 1 for min(N1,N2) <= 32, else 2
  kFast,        ///< Algorithm 1 on §6 dynamic-scaling doubles with a
                ///< deterministic ScaledFloat fallback on degeneracy
  kAlgorithm1,  ///< Q-grid convolution
  kAlgorithm2,  ///< mean-value ratio recursion
  kBruteForce,  ///< exhaustive enumeration (tests/small systems only)
  kPriorityCtmc,  ///< exact CTMC of the priority arbiter (resolved form of
                  ///< any spec with the `priority` fabric; not requestable
                  ///< directly — request `auto@priority`)
};

/// Arithmetic the resolved solver ran on.
enum class NumericBackend : std::uint8_t {
  kScaledFloat,           ///< per-cell binary exponent (Algorithm 1 default)
  kDoubleDynamicScaling,  ///< IEEE double with the paper's §6 rescaling
  kLongDouble,            ///< plain long double grid
  kDoubleRaw,             ///< plain double grid (ablation only)
  kRatio,                 ///< Algorithm 2 stores only tame Q ratios
  kLogDomain,             ///< signed log-domain grid (also brute force's
                          ///< native arithmetic) — escalation last resort
  kDense,                 ///< dense stationary-distribution solve on plain
                          ///< doubles (the priority CTMC's arithmetic)
};

[[nodiscard]] std::string_view to_string(SolverAlgorithm algorithm) noexcept;
[[nodiscard]] std::string_view to_string(NumericBackend backend) noexcept;

/// Which switch-fabric / arbitration model the solve describes.
enum class FabricKind : std::uint8_t {
  kCrossbar,  ///< the paper's internally non-blocking crossbar (default)
  kSpeedup,   ///< speedup-s replicated crosspoints: s planes, each port
              ///< replicated s times (grounded in Cogill–Lall's speedup
              ///< analysis; see core/speedup.hpp)
  kPriority,  ///< fixed-priority arbitrated admission with per-priority
              ///< headroom reservation under BPP classes (grounded in
              ///< Mandal et al.; see core/priority.hpp)
};

/// Bounds on the speedup factor accepted by `FabricModel::parse`.
inline constexpr unsigned kMinSpeedup = 2;
inline constexpr unsigned kMaxSpeedup = 16;

/// The fabric dimension of a solve request: a kind plus, for kSpeedup, the
/// replication factor s.  Round-trips through "crossbar", "speedup-<s>",
/// and "priority"; the crossbar is the default and is *omitted* from
/// `SolverSpec::to_string()` so legacy spec strings (and every fingerprint
/// derived from them) are unchanged.
struct FabricModel {
  FabricKind kind = FabricKind::kCrossbar;
  std::uint8_t speedup = 1;  ///< kSpeedup only; always 1 otherwise

  friend bool operator==(const FabricModel&, const FabricModel&) = default;

  [[nodiscard]] static FabricModel crossbar() noexcept { return {}; }
  [[nodiscard]] static FabricModel speedup_s(unsigned s) noexcept {
    return FabricModel{FabricKind::kSpeedup, static_cast<std::uint8_t>(s)};
  }
  [[nodiscard]] static FabricModel priority() noexcept {
    return FabricModel{FabricKind::kPriority, 1};
  }

  /// Parse one fabric token ("crossbar", "speedup-4", "priority"); raises
  /// ErrorKind::kConfig naming the bad token otherwise (speedup factors
  /// outside [kMinSpeedup, kMaxSpeedup] included).
  [[nodiscard]] static FabricModel parse(std::string_view text);

  /// Canonical token; `parse(f.to_string()) == f`.
  [[nodiscard]] std::string to_string() const;
};

/// One registry row per fabric: the canonical token (or token shape for
/// parameterized fabrics), a sample parseable token, and a one-line
/// description.  `xbar --list-solvers`, the parse error message, and the
/// round-trip property tests all derive from this table — adding a fabric
/// means one core model file plus one row here.
struct FabricInfo {
  std::string_view grammar;  ///< e.g. "speedup-<s>"
  std::string_view example;  ///< a concrete parseable token, e.g. "speedup-2"
  std::string_view summary;
};

/// All registered fabrics, crossbar first.
[[nodiscard]] std::span<const FabricInfo> fabric_registry() noexcept;

/// One solve request: the algorithm plus backend options.
struct SolverSpec {
  SolverAlgorithm algorithm = SolverAlgorithm::kAuto;

  /// Explicit grid arithmetic — only meaningful with kAlgorithm1 (the
  /// other algorithms own their backend).  Unset = the algorithm default.
  std::optional<NumericBackend> backend;

  /// Which fabric/arbitration model to solve (default: plain crossbar).
  FabricModel fabric;

  friend bool operator==(const SolverSpec&, const SolverSpec&) = default;

  /// Parse the canonical string form; raises ErrorKind::kConfig on an
  /// unknown name or an invalid algorithm/backend combination.
  [[nodiscard]] static SolverSpec parse(std::string_view text);

  /// Canonical string form; `parse(spec.to_string()) == spec`.
  [[nodiscard]] std::string to_string() const;

  /// Convenience constructors for the common requests.
  [[nodiscard]] static SolverSpec fast() noexcept {
    return SolverSpec{SolverAlgorithm::kFast, std::nullopt, FabricModel{}};
  }
  [[nodiscard]] static SolverSpec brute_force() noexcept {
    return SolverSpec{SolverAlgorithm::kBruteForce, std::nullopt,
                      FabricModel{}};
  }

  /// This spec with a different fabric (the common way callers qualify a
  /// base algorithm request).
  [[nodiscard]] SolverSpec with_fabric(FabricModel f) const noexcept {
    SolverSpec out = *this;
    out.fabric = f;
    return out;
  }
};

/// What actually happened during one solve.
struct SolveDiagnostics {
  SolverAlgorithm requested = SolverAlgorithm::kAuto;  ///< as specified
  SolverAlgorithm algorithm =
      SolverAlgorithm::kAuto;  ///< resolved: never kAuto/kFast
  NumericBackend backend = NumericBackend::kScaledFloat;  ///< arithmetic used
  FabricModel fabric;  ///< fabric/arbitration model that answered

  /// kFast only: the dynamic-scaling double grid degenerated and the
  /// solver was rebuilt on ScaledFloat.  Depends only on the model.
  bool fast_fallback = false;

  /// §6 dynamic rescale count (kDoubleDynamicScaling backend only).
  unsigned rescales = 0;

  Dims grid;          ///< dimensions of the grid that was built
  Dims evaluated_at;  ///< subsystem the measures were taken at

  bool cache_hit = false;   ///< answered from an already-built grid
  bool batched = false;     ///< grid came from a multi-scenario batch solve
  double wall_seconds = 0;  ///< end-to-end time of this call

  /// Numeric-escalation record (sweep fault tolerance): every backend
  /// attempted for this point, in order, ending with the backend that
  /// produced the final measures.  Empty when the first attempt passed the
  /// post-solve guards — the overwhelmingly common case.
  std::vector<NumericBackend> escalation;
};

/// Measures plus the record of how they were computed.
struct SolveResult {
  Measures measures;
  SolveDiagnostics diagnostics;
};

/// A spec resolved against a concrete model: the decisions kAuto/kFast
/// defer until the dimensions are known.  This is what the solver facade
/// executes and what the sweep cache keys on.
struct ResolvedSolver {
  SolverAlgorithm algorithm =
      SolverAlgorithm::kAlgorithm1;  ///< never kAuto/kFast
  NumericBackend backend = NumericBackend::kScaledFloat;
  bool fallback_on_degenerate = false;  ///< kFast's rescue path
  FabricModel fabric;                   ///< carried through from the spec

  friend bool operator==(const ResolvedSolver&,
                         const ResolvedSolver&) = default;
};

/// Resolve `spec` for `model`.  Raises ErrorKind::kConfig when the spec
/// combines a backend with an algorithm that does not take one.
[[nodiscard]] ResolvedSolver resolve(const SolverSpec& spec,
                                     const CrossbarModel& model);

}  // namespace xbar::core
