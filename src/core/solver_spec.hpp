// The unified solve request/result contract.
//
// Before this layer existed the solve path spoke two dialects — one solver
// enum in core and another in the sweep engine, hand-mapped into each
// other by the CLI — and solvers returned bare
// `Measures` with no record of *how* the answer was produced (which
// algorithm `kAuto` picked, whether the `kFast` double grid degenerated
// and fell back to ScaledFloat, how often the §6 dynamic rescale fired).
// `SolverSpec` is the one request type every caller uses, and
// `SolveResult` pairs the measures with `SolveDiagnostics` so those
// decisions are observable end-to-end: the CLI prints them with
// --verbose, emits them with --json, and the sweep engine aggregates them
// into a `SweepReport`.
//
// Specs round-trip through strings for config files and the command line:
//
//   auto | fast | algorithm1[/scaled|/double-dynamic|/long-double|/double-raw
//        |/log-domain] | algorithm2 | brute
//
// Diagnostics are deterministic wherever the model is: the resolved
// algorithm, numeric backend, fallback flag, and rescale count depend only
// on the spec and the model — never on thread count or schedule.  Cache
// hits and wall time are honest observations and may vary run to run.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

/// Which algorithm solves the model (the one request vocabulary shared by
/// the facade, the sweep engine, config files, and the CLI).
enum class SolverAlgorithm : std::uint8_t {
  kAuto,        ///< paper §5 guidance: Algorithm 1 for min(N1,N2) <= 32, else 2
  kFast,        ///< Algorithm 1 on §6 dynamic-scaling doubles with a
                ///< deterministic ScaledFloat fallback on degeneracy
  kAlgorithm1,  ///< Q-grid convolution
  kAlgorithm2,  ///< mean-value ratio recursion
  kBruteForce,  ///< exhaustive enumeration (tests/small systems only)
};

/// Arithmetic the resolved solver ran on.
enum class NumericBackend : std::uint8_t {
  kScaledFloat,           ///< per-cell binary exponent (Algorithm 1 default)
  kDoubleDynamicScaling,  ///< IEEE double with the paper's §6 rescaling
  kLongDouble,            ///< plain long double grid
  kDoubleRaw,             ///< plain double grid (ablation only)
  kRatio,                 ///< Algorithm 2 stores only tame Q ratios
  kLogDomain,             ///< signed log-domain grid (also brute force's
                          ///< native arithmetic) — escalation last resort
};

[[nodiscard]] std::string_view to_string(SolverAlgorithm algorithm) noexcept;
[[nodiscard]] std::string_view to_string(NumericBackend backend) noexcept;

/// One solve request: the algorithm plus backend options.
struct SolverSpec {
  SolverAlgorithm algorithm = SolverAlgorithm::kAuto;

  /// Explicit grid arithmetic — only meaningful with kAlgorithm1 (the
  /// other algorithms own their backend).  Unset = the algorithm default.
  std::optional<NumericBackend> backend;

  friend bool operator==(const SolverSpec&, const SolverSpec&) = default;

  /// Parse the canonical string form; raises ErrorKind::kConfig on an
  /// unknown name or an invalid algorithm/backend combination.
  [[nodiscard]] static SolverSpec parse(std::string_view text);

  /// Canonical string form; `parse(spec.to_string()) == spec`.
  [[nodiscard]] std::string to_string() const;

  /// Convenience constructors for the common requests.
  [[nodiscard]] static SolverSpec fast() noexcept {
    return SolverSpec{SolverAlgorithm::kFast, std::nullopt};
  }
  [[nodiscard]] static SolverSpec brute_force() noexcept {
    return SolverSpec{SolverAlgorithm::kBruteForce, std::nullopt};
  }
};

/// What actually happened during one solve.
struct SolveDiagnostics {
  SolverAlgorithm requested = SolverAlgorithm::kAuto;  ///< as specified
  SolverAlgorithm algorithm =
      SolverAlgorithm::kAuto;  ///< resolved: never kAuto/kFast
  NumericBackend backend = NumericBackend::kScaledFloat;  ///< arithmetic used

  /// kFast only: the dynamic-scaling double grid degenerated and the
  /// solver was rebuilt on ScaledFloat.  Depends only on the model.
  bool fast_fallback = false;

  /// §6 dynamic rescale count (kDoubleDynamicScaling backend only).
  unsigned rescales = 0;

  Dims grid;          ///< dimensions of the grid that was built
  Dims evaluated_at;  ///< subsystem the measures were taken at

  bool cache_hit = false;   ///< answered from an already-built grid
  bool batched = false;     ///< grid came from a multi-scenario batch solve
  double wall_seconds = 0;  ///< end-to-end time of this call

  /// Numeric-escalation record (sweep fault tolerance): every backend
  /// attempted for this point, in order, ending with the backend that
  /// produced the final measures.  Empty when the first attempt passed the
  /// post-solve guards — the overwhelmingly common case.
  std::vector<NumericBackend> escalation;
};

/// Measures plus the record of how they were computed.
struct SolveResult {
  Measures measures;
  SolveDiagnostics diagnostics;
};

/// A spec resolved against a concrete model: the decisions kAuto/kFast
/// defer until the dimensions are known.  This is what the solver facade
/// executes and what the sweep cache keys on.
struct ResolvedSolver {
  SolverAlgorithm algorithm =
      SolverAlgorithm::kAlgorithm1;  ///< never kAuto/kFast
  NumericBackend backend = NumericBackend::kScaledFloat;
  bool fallback_on_degenerate = false;  ///< kFast's rescue path

  friend bool operator==(const ResolvedSolver&,
                         const ResolvedSolver&) = default;
};

/// Resolve `spec` for `model`.  Raises ErrorKind::kConfig when the spec
/// combines a backend with an algorithm that does not take one.
[[nodiscard]] ResolvedSolver resolve(const SolverSpec& spec,
                                     const CrossbarModel& model);

}  // namespace xbar::core
