#include "core/error.hpp"

#include <utility>

namespace xbar {

namespace {

// Trim an absolute compiler path down to the repo-relative tail so that
// what() is identical no matter where the tree was built.
std::string trim_path(std::string_view path) {
  for (const std::string_view root : {"/src/", "/tools/", "/tests/",
                                      "/bench/", "/examples/"}) {
    if (const auto pos = path.rfind(root); pos != std::string_view::npos) {
      return std::string(path.substr(pos + 1));
    }
  }
  const auto slash = path.rfind('/');
  return std::string(slash == std::string_view::npos
                         ? path
                         : path.substr(slash + 1));
}

std::string format(ErrorKind kind, const std::string& message,
                   const std::string& file, unsigned line) {
  std::string out;
  out += to_string(kind);
  out += " error: ";
  out += message;
  out += " [at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ']';
  return out;
}

}  // namespace

std::string_view to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kParse:
      return "parse";
    case ErrorKind::kConfig:
      return "config";
    case ErrorKind::kModel:
      return "model";
    case ErrorKind::kDomain:
      return "domain";
    case ErrorKind::kUsage:
      return "usage";
    case ErrorKind::kIo:
      return "io";
    case ErrorKind::kInternal:
      return "internal";
  }
  return "unknown";
}

Error::Error(ErrorKind kind, std::string message, std::source_location where)
    : std::runtime_error(format(kind, message, trim_path(where.file_name()),
                                where.line())),
      kind_(kind),
      message_(std::move(message)),
      file_(trim_path(where.file_name())),
      line_(where.line()) {}

void raise(ErrorKind kind, std::string message, std::source_location where) {
  throw Error(kind, std::move(message), where);
}

}  // namespace xbar
