#include "core/solver.hpp"

#include <chrono>

#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"
#include "core/brute_force.hpp"
#include "core/error.hpp"
#include "core/priority.hpp"
#include "core/speedup.hpp"

namespace xbar::core {

namespace {

Algorithm1Backend to_algorithm1_backend(NumericBackend backend) {
  switch (backend) {
    case NumericBackend::kScaledFloat:
      return Algorithm1Backend::kScaledFloat;
    case NumericBackend::kDoubleDynamicScaling:
      return Algorithm1Backend::kDoubleDynamicScaling;
    case NumericBackend::kLongDouble:
      return Algorithm1Backend::kLongDouble;
    case NumericBackend::kDoubleRaw:
      return Algorithm1Backend::kDoubleRaw;
    case NumericBackend::kLogDomain:
      return Algorithm1Backend::kLogDomain;
    case NumericBackend::kRatio:
    case NumericBackend::kDense:
      break;
  }
  raise(ErrorKind::kInternal,
        "backend '" + std::string(to_string(backend)) +
            "' is not an Algorithm 1 grid backend");
}

}  // namespace

SolveResult solve_result(const CrossbarModel& model, const SolverSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  const ResolvedSolver resolved = resolve(spec, model);

  SolveResult result;
  result.diagnostics.requested = spec.algorithm;
  result.diagnostics.algorithm = resolved.algorithm;
  result.diagnostics.backend = resolved.backend;
  result.diagnostics.fabric = resolved.fabric;
  result.diagnostics.grid = model.dims();
  result.diagnostics.evaluated_at = model.dims();

  // Speedup-s is solved as the paper's crossbar at the virtual dimensions
  // (s N1, s N2) — the product form survives replication unchanged.
  const CrossbarModel* target = &model;
  std::optional<CrossbarModel> scaled;
  if (resolved.fabric.kind == FabricKind::kSpeedup) {
    scaled = speedup_scaled_model(model, resolved.fabric.speedup);
    target = &*scaled;
    result.diagnostics.grid = target->dims();
    result.diagnostics.evaluated_at = target->dims();
  }

  switch (resolved.algorithm) {
    case SolverAlgorithm::kAlgorithm1: {
      Algorithm1Options options;
      options.backend = to_algorithm1_backend(resolved.backend);
      Algorithm1Solver solver(*target, options);
      if (resolved.fallback_on_degenerate && solver.degenerate()) {
        // Deterministic robustness fallback: the extended-range backend.
        // Depends only on the model, never on the schedule.
        solver = Algorithm1Solver(*target);
        result.diagnostics.backend = NumericBackend::kScaledFloat;
        result.diagnostics.fast_fallback = true;
      }
      result.diagnostics.rescales = solver.scaling_events();
      result.measures = solver.solve();
      break;
    }
    case SolverAlgorithm::kAlgorithm2:
      result.measures = Algorithm2Solver(*target).solve();
      break;
    case SolverAlgorithm::kBruteForce:
      result.measures = BruteForceSolver(*target).solve();
      break;
    case SolverAlgorithm::kPriorityCtmc:
      result.measures = PriorityCtmcSolver(*target).solve();
      break;
    case SolverAlgorithm::kAuto:
    case SolverAlgorithm::kFast:
      raise(ErrorKind::kInternal, "resolve() returned an unresolved solver");
  }

  result.diagnostics.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

Measures solve(const CrossbarModel& model, const SolverSpec& spec) {
  return solve_result(model, spec).measures;
}

double blocking_probability(const CrossbarModel& model, std::size_t r,
                            const SolverSpec& spec) {
  return solve(model, spec).per_class.at(r).blocking;
}

}  // namespace xbar::core
