#include "core/solver.hpp"

#include <stdexcept>

#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"
#include "core/brute_force.hpp"

namespace xbar::core {

Measures solve(const CrossbarModel& model, SolverKind kind) {
  if (kind == SolverKind::kAuto) {
    kind = model.dims().cap() <= 32 ? SolverKind::kAlgorithm1
                                    : SolverKind::kAlgorithm2;
  }
  switch (kind) {
    case SolverKind::kAlgorithm1:
      return Algorithm1Solver(model).solve();
    case SolverKind::kAlgorithm2:
      return Algorithm2Solver(model).solve();
    case SolverKind::kBruteForce:
      return BruteForceSolver(model).solve();
    case SolverKind::kAuto:
      break;
  }
  throw std::logic_error("unreachable solver kind");
}

double blocking_probability(const CrossbarModel& model, std::size_t r,
                            SolverKind kind) {
  return solve(model, kind).per_class.at(r).blocking;
}

}  // namespace xbar::core
