// Classical Erlang loss formulas — the baselines any teletraffic engineer
// reaches for before building the full crossbar model.
//
// Used by bench/baseline_compare to show what the paper's two-sided
// product form buys over (a) a single Erlang-B group and (b) the
// "independence" approximation that treats the input and output sides as
// separate Erlang groups.
//
// All entry points validate their numeric domain and raise
// xbar::Error(kDomain) on non-finite or out-of-range arguments — these
// functions sit on the scenario/fuzzer input path, so the checks must
// survive release builds (they used to be asserts).

#pragma once

namespace xbar::core {

/// Erlang-B blocking probability: offered load `a` (erlangs) on `c`
/// circuits, Poisson arrivals, blocked-calls-cleared.  Computed by the
/// standard numerically stable recursion B(0) = 1,
/// B(c) = a B(c-1) / (c + a B(c-1)); O(c), exact.
[[nodiscard]] double erlang_b(double a, unsigned c);

/// Extended Erlang-B: real (non-integral) number of circuits via the
/// continued product on the incomplete-gamma representation; agrees with
/// `erlang_b` at integer c.  Used by calibration-style interpolation.
[[nodiscard]] double erlang_b_real(double a, double c);

/// Erlang-C probability of waiting (M/M/c queue), derived from Erlang-B.
/// Requires a < c for stability; returns 1 otherwise.
[[nodiscard]] double erlang_c(double a, unsigned c);

/// Inverse problem: the largest offered load such that Erlang-B blocking
/// does not exceed `target` on `c` circuits (bisection; monotone).
[[nodiscard]] double erlang_b_inverse_load(double target, unsigned c);

}  // namespace xbar::core
