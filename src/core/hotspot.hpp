// Exact analytic model of HOT-SPOT traffic on an N x N crossbar — the
// subject of the authors' companion paper (reference [28]), reconstructed.
//
// Setting: a single a = 1 Poisson stream of total rate Lambda; each request
// picks a uniformly random input, and its output is the designated hot port
// with probability p_hot = h + (1-h)/N (matching sim::make_hotspot_selector
// with hot fraction h) or a uniformly random cold port otherwise.  Blocked
// requests are cleared; holding times are exponential(mu).
//
// By symmetry among inputs and among cold outputs, the full chain lumps
// EXACTLY onto (b, k) where b in {0,1} flags the hot output busy and k
// counts cold-output circuits (0 <= k <= N-1, b + k <= N inputs busy):
//
//   (b,k) -> (1,k)   : Lambda p_hot  (N-b-k)/N          (b = 0)
//   (b,k) -> (b,k+1) : Lambda (1-p_hot) (N-1-k)/(N-1) * (N-b-k)/N
//   (1,k) -> (0,k)   : mu
//   (b,k) -> (b,k-1) : k mu
//
// so the model is exact, not an approximation — the two-dimensional
// analogue of the paper's uniform product form, which this chain reduces to
// at h = 0.  Stationary probabilities come from the (2N)-state generator;
// per-stream blocking follows by PASTA.

#pragma once

#include <vector>

namespace xbar::core {

/// Parameters of the hot-spot model.
struct HotspotParams {
  unsigned ports = 8;        ///< N (square switch)
  double arrival_rate = 1.0; ///< Lambda: total request rate
  double mu = 1.0;           ///< holding rate
  double hot_fraction = 0.0; ///< h: probability the hot port is forced
};

/// Solution of the hot-spot chain.
struct HotspotResult {
  double blocking_overall = 0.0;  ///< arrival-weighted blocking
  double blocking_hot = 0.0;      ///< blocking of hot-port requests
  double blocking_cold = 0.0;     ///< blocking of cold-port requests
  double hot_utilization = 0.0;   ///< P(hot output busy)
  double cold_utilization = 0.0;  ///< mean busy cold outputs / (N-1)
  double utilization = 0.0;       ///< mean busy outputs / N
  double mean_circuits = 0.0;     ///< E[b + k]
};

/// Solve the (b, k) chain exactly.  Throws std::invalid_argument for
/// degenerate parameters (ports < 2, rates <= 0, h outside [0,1]).
[[nodiscard]] HotspotResult solve_hotspot(const HotspotParams& params);

/// Convenience: the same traffic the uniform model sees at tilde load
/// rho~ on an n x n switch (Lambda = rho~ n mu), with hot fraction h.
[[nodiscard]] HotspotResult hotspot_crossbar(unsigned n, double rho_tilde,
                                             double hot_fraction,
                                             double mu = 1.0);

}  // namespace xbar::core
