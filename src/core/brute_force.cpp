#include "core/brute_force.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "core/state_space.hpp"
#include "numeric/combinatorics.hpp"
#include "numeric/log_domain.hpp"

namespace xbar::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

BruteForceSolver::BruteForceSolver(CrossbarModel model)
    : model_(std::move(model)) {
  bandwidths_.reserve(model_.num_classes());
  for (const auto& c : model_.normalized_classes()) {
    bandwidths_.push_back(c.bandwidth);
  }
}

double BruteForceSolver::log_weight(std::span<const unsigned> k,
                                    unsigned usage, Dims dims) const {
  // Psi(k) = P(N1, k·A) * P(N2, k·A)
  double lw = num::log_falling_factorial(dims.n1, usage) +
              num::log_falling_factorial(dims.n2, usage);
  // Phi_r(k_r) = prod_{l=1..k_r} lambda_r(l-1) / (l mu_r)
  for (std::size_t r = 0; r < k.size(); ++r) {
    const NormalizedClass& c = model_.normalized(r);
    for (unsigned l = 1; l <= k[r]; ++l) {
      const double lam = c.alpha + c.beta * static_cast<double>(l - 1);
      if (!(lam > 0.0)) {
        return kNegInf;  // Bernoulli population exhausted: zero weight
      }
      lw += std::log(lam) - std::log(static_cast<double>(l) * c.mu);
    }
  }
  return lw;
}

double BruteForceSolver::log_g() const { return log_q() +
    num::log_factorial(model_.dims().n1) + num::log_factorial(model_.dims().n2); }

double BruteForceSolver::log_q() const { return log_q(model_.dims()); }

double BruteForceSolver::log_q(Dims dims) const {
  num::LogSum sum;
  for_each_state(bandwidths_, dims.cap(),
                 [&](std::span<const unsigned> k, unsigned usage) {
                   sum.add_log(log_weight(k, usage, dims));
                 });
  // Q = G / (N1! N2!)
  return sum.log_value() - num::log_factorial(dims.n1) -
         num::log_factorial(dims.n2);
}

double BruteForceSolver::log_pi(std::span<const unsigned> k) const {
  unsigned usage = 0;
  for (std::size_t r = 0; r < k.size(); ++r) {
    usage += k[r] * bandwidths_[r];
  }
  if (usage > model_.dims().cap()) {
    return kNegInf;
  }
  const double lg = log_q() + num::log_factorial(model_.dims().n1) +
                    num::log_factorial(model_.dims().n2);
  return log_weight(k, usage, model_.dims()) - lg;
}

Measures BruteForceSolver::solve() const {
  const Dims dims = model_.dims();
  const std::size_t R = model_.num_classes();

  // One pass for G(N) and the k_r-weighted sums.
  num::LogSum log_gsum;
  std::vector<num::LogSum> log_er_num(R);
  for_each_state(bandwidths_, dims.cap(),
                 [&](std::span<const unsigned> k, unsigned usage) {
                   const double lw = log_weight(k, usage, dims);
                   log_gsum.add_log(lw);
                   for (std::size_t r = 0; r < R; ++r) {
                     if (k[r] > 0) {
                       log_er_num[r].add_log(
                           lw + std::log(static_cast<double>(k[r])));
                     }
                   }
                 });
  const double lg = log_gsum.log_value();

  Measures m;
  m.per_class.resize(R);
  for (std::size_t r = 0; r < R; ++r) {
    const NormalizedClass& c = model_.normalized(r);
    ClassMeasures& cm = m.per_class[r];

    // B_r(N) = G(N - a_r I)/G(N): enumerate the shrunken system with the
    // same per-tuple rates.
    const Dims sub = dims.shrunk_by(c.bandwidth);
    num::LogSum log_gsub;
    for_each_state(bandwidths_, sub.cap(),
                   [&](std::span<const unsigned> k, unsigned usage) {
                     log_gsub.add_log(log_weight(k, usage, sub));
                   });
    cm.non_blocking = std::exp(log_gsub.log_value() - lg);
    cm.blocking = 1.0 - cm.non_blocking;

    cm.concurrency = std::exp(log_er_num[r].log_value() - lg);
    cm.throughput = cm.concurrency * c.mu;
    cm.port_usage = cm.concurrency * static_cast<double>(c.bandwidth);

    m.revenue += c.weight * cm.concurrency;
    m.total_throughput += cm.throughput;
    m.utilization += cm.port_usage;
  }
  m.utilization /= static_cast<double>(dims.cap());
  return m;
}

double BruteForceSolver::call_congestion(std::size_t r) const {
  const Dims dims = model_.dims();
  const NormalizedClass& c = model_.normalized(r);
  const unsigned a = c.bandwidth;

  // offered(k)  = P(N1,a) P(N2,a) lambda_r(k_r)
  // accepted(k) = P(N1-kA,a) P(N2-kA,a) lambda_r(k_r)
  num::LogSum log_offered;
  num::LogSum log_accepted;
  const double log_total_tuples = num::log_falling_factorial(dims.n1, a) +
                                  num::log_falling_factorial(dims.n2, a);
  for_each_state(
      bandwidths_, dims.cap(),
      [&](std::span<const unsigned> k, unsigned usage) {
        const double lw = log_weight(k, usage, dims);
        if (lw == kNegInf) {
          return;
        }
        const double lam = c.intensity(k[r]);
        if (!(lam > 0.0)) {
          return;
        }
        const double base = lw + std::log(lam);
        log_offered.add_log(base + log_total_tuples);
        if (usage + a <= dims.cap()) {
          log_accepted.add_log(base +
                               num::log_falling_factorial(dims.n1 - usage, a) +
                               num::log_falling_factorial(dims.n2 - usage, a));
        }
      });
  if (log_offered.log_value() == kNegInf) {
    return 0.0;
  }
  return 1.0 - std::exp(log_accepted.log_value() - log_offered.log_value());
}

}  // namespace xbar::core
