#include "core/model.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "core/error.hpp"
#include "numeric/combinatorics.hpp"

namespace xbar::core {

TrafficClass TrafficClass::poisson(std::string name, double rho_tilde,
                                   unsigned bandwidth, double mu,
                                   double weight) {
  TrafficClass c;
  c.name = std::move(name);
  c.bandwidth = bandwidth;
  c.alpha_tilde = rho_tilde * mu;
  c.beta_tilde = 0.0;
  c.mu = mu;
  c.weight = weight;
  return c;
}

TrafficClass TrafficClass::bursty(std::string name, double alpha_tilde,
                                  double beta_tilde, unsigned bandwidth,
                                  double mu, double weight) {
  TrafficClass c;
  c.name = std::move(name);
  c.bandwidth = bandwidth;
  c.alpha_tilde = alpha_tilde;
  c.beta_tilde = beta_tilde;
  c.mu = mu;
  c.weight = weight;
  return c;
}

namespace {

[[noreturn]] void fail(
    const std::string& what,
    std::source_location where = std::source_location::current()) {
  raise(ErrorKind::kModel, "CrossbarModel: " + what, where);
}

NormalizedClass normalize(const TrafficClass& c, const Dims& dims) {
  const double sets = num::binomial(dims.n2, c.bandwidth);
  NormalizedClass n;
  n.bandwidth = c.bandwidth;
  n.alpha = c.alpha_tilde / sets;
  n.beta = c.beta_tilde / sets;
  n.mu = c.mu;
  n.weight = c.weight;
  return n;
}

void validate_class(const TrafficClass& c, const NormalizedClass& n,
                    const Dims& dims) {
  if (c.bandwidth == 0) {
    fail("class '" + c.name + "': bandwidth a_r must be >= 1");
  }
  if (c.bandwidth > dims.cap()) {
    std::ostringstream os;
    os << "class '" << c.name << "': bandwidth " << c.bandwidth
       << " exceeds min(N1,N2) = " << dims.cap();
    fail(os.str());
  }
  if (!(c.alpha_tilde > 0.0)) {
    fail("class '" + c.name + "': alpha~ must be > 0");
  }
  if (!(c.mu > 0.0)) {
    fail("class '" + c.name + "': mu must be > 0");
  }
  if (!n.bpp().is_admissible(dims.max_side())) {
    std::ostringstream os;
    os << "class '" << c.name << "': inadmissible BPP parameters (alpha="
       << n.alpha << ", beta=" << n.beta << ", mu=" << n.mu
       << "); Pascal requires beta/mu < 1, smooth traffic requires "
          "alpha + beta*max(N1,N2) >= 0";
    fail(os.str());
  }
}

}  // namespace

CrossbarModel::CrossbarModel(Dims dims, std::vector<TrafficClass> classes)
    : dims_(dims), classes_(std::move(classes)) {
  if (dims_.n1 == 0 || dims_.n2 == 0) {
    fail("dimensions must be positive");
  }
  if (classes_.empty()) {
    fail("at least one traffic class is required");
  }
  normalized_.reserve(classes_.size());
  for (const auto& c : classes_) {
    NormalizedClass n = normalize(c, dims_);
    validate_class(c, n, dims_);
    normalized_.push_back(n);
  }
}

CrossbarModel CrossbarModel::with_dims_same_tuple_rates(Dims dims) const {
  std::vector<TrafficClass> scaled;
  scaled.reserve(classes_.size());
  for (std::size_t r = 0; r < classes_.size(); ++r) {
    const NormalizedClass& n = normalized_[r];
    TrafficClass c = classes_[r];
    const double sets = num::binomial(dims.n2, n.bandwidth);
    c.alpha_tilde = n.alpha * sets;
    c.beta_tilde = n.beta * sets;
    scaled.push_back(std::move(c));
  }
  return CrossbarModel(dims, std::move(scaled));
}

}  // namespace xbar::core
