// Model configuration for the N1 x N2 asynchronous multi-rate crossbar
// (paper §2).
//
// A `CrossbarModel` bundles the switch dimensions with the offered traffic
// classes.  Class parameters are specified in the paper's "tilde" units —
// aggregate intensity over all output sets, the units every figure and table
// in the paper uses — and converted internally to per-tuple intensities via
//
//     lambda_r = lambda~_r / C(N2, a_r)        (paper §2)
//
// so rho_r = rho~_r / C(N2, a_r) and beta_r = beta~_r / C(N2, a_r).

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "dist/bpp.hpp"

namespace xbar::core {

/// Switch dimensions: N1 input ports, N2 output ports.
struct Dims {
  unsigned n1 = 0;
  unsigned n2 = 0;

  /// The feasibility cap min(N1, N2): at most this many port-pairs can be in
  /// use simultaneously.
  [[nodiscard]] unsigned cap() const noexcept { return n1 < n2 ? n1 : n2; }

  /// max(N1, N2) — the bound used in the Bernoulli validity rule.
  [[nodiscard]] unsigned max_side() const noexcept {
    return n1 > n2 ? n1 : n2;
  }

  /// Square switch helper.
  static Dims square(unsigned n) noexcept { return Dims{n, n}; }

  /// The subsystem reached by removing `a` inputs and `a` outputs
  /// (clamped at zero).
  [[nodiscard]] Dims shrunk_by(unsigned a) const noexcept {
    return Dims{n1 >= a ? n1 - a : 0, n2 >= a ? n2 - a : 0};
  }

  friend bool operator==(const Dims&, const Dims&) = default;
};

/// One offered traffic class, in the paper's tilde (aggregate) units.
struct TrafficClass {
  std::string name;          ///< label for reports
  unsigned bandwidth = 1;    ///< a_r: inputs (= outputs) per connection
  double alpha_tilde = 0.0;  ///< aggregate state-independent intensity
  double beta_tilde = 0.0;   ///< aggregate state-dependent slope
  double mu = 1.0;           ///< holding-time completion rate
  double weight = 1.0;       ///< revenue w_r per active connection

  /// Aggregate offered load rho~_r = alpha~_r / mu_r.
  [[nodiscard]] double rho_tilde() const noexcept { return alpha_tilde / mu; }

  /// Convenience factory for a Poisson class.
  static TrafficClass poisson(std::string name, double rho_tilde,
                              unsigned bandwidth = 1, double mu = 1.0,
                              double weight = 1.0);

  /// Convenience factory for a bursty (Bernoulli or Pascal) class.
  static TrafficClass bursty(std::string name, double alpha_tilde,
                             double beta_tilde, unsigned bandwidth = 1,
                             double mu = 1.0, double weight = 1.0);
};

/// A traffic class with parameters normalized to per-tuple units for a
/// specific switch size.  This is the form the algorithms consume.
struct NormalizedClass {
  unsigned bandwidth = 1;  ///< a_r
  double alpha = 0.0;      ///< per-tuple state-independent intensity
  double beta = 0.0;       ///< per-tuple state-dependent slope
  double mu = 1.0;         ///< completion rate
  double weight = 1.0;     ///< revenue weight

  /// rho_r = alpha_r / mu_r (per-tuple offered load).
  [[nodiscard]] double rho() const noexcept { return alpha / mu; }

  /// x_r = beta_r / mu_r — the geometric ratio in the V/D recursions.
  [[nodiscard]] double x() const noexcept { return beta / mu; }

  /// True for Poisson classes (beta == 0, the paper's set R1).
  [[nodiscard]] bool is_poisson() const noexcept { return beta == 0.0; }

  /// Arrival intensity lambda_r(k) = alpha_r + beta_r k, clamped at 0.
  [[nodiscard]] double intensity(unsigned k) const noexcept {
    const double v = alpha + beta * static_cast<double>(k);
    return v > 0.0 ? v : 0.0;
  }

  /// The BPP parameter view of this class.
  [[nodiscard]] dist::BppParams bpp() const noexcept {
    return dist::BppParams{alpha, beta, mu};
  }
};

/// Validated model: dimensions + classes, with normalized parameters.
///
/// Throws std::invalid_argument from the constructor when the configuration
/// violates the paper's well-posedness rules (§2): positive dimensions,
/// 1 <= a_r <= min(N1,N2), alpha~_r > 0, mu_r > 0, Pascal ratio
/// beta_r/mu_r < 1, and Bernoulli streams with integral -alpha/beta staying
/// non-negative across feasible states.
class CrossbarModel {
 public:
  CrossbarModel(Dims dims, std::vector<TrafficClass> classes);

  [[nodiscard]] const Dims& dims() const noexcept { return dims_; }

  /// Number of traffic classes R.
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classes_.size();
  }

  /// The classes in tilde units, as configured.
  [[nodiscard]] std::span<const TrafficClass> classes() const noexcept {
    return classes_;
  }

  /// Per-tuple normalized parameters of class r.
  [[nodiscard]] const NormalizedClass& normalized(std::size_t r) const {
    return normalized_.at(r);
  }

  /// All normalized classes.
  [[nodiscard]] std::span<const NormalizedClass> normalized_classes()
      const noexcept {
    return normalized_;
  }

  /// A copy of this model re-normalized for a *subsystem* of size `dims`
  /// keeping the same per-tuple parameters (used by the W(N - a_r I) shadow
  /// cost, where the paper evaluates the same traffic on the shrunken
  /// switch).
  [[nodiscard]] CrossbarModel with_dims_same_tuple_rates(Dims dims) const;

  /// Largest total number of busy input (or output) ports, min(N1,N2).
  [[nodiscard]] unsigned state_cap() const noexcept { return dims_.cap(); }

 private:
  CrossbarModel() = default;

  Dims dims_;
  std::vector<TrafficClass> classes_;
  std::vector<NormalizedClass> normalized_;
};

}  // namespace xbar::core
