#include "core/hotspot.hpp"

#include <cmath>
#include <stdexcept>

namespace xbar::core {

namespace {

struct Rates {
  double to_hot = 0.0;     // (0,k) -> (1,k)
  double to_cold = 0.0;    // (b,k) -> (b,k+1)
  double hot_done = 0.0;   // (1,k) -> (0,k)
  double cold_done = 0.0;  // (b,k) -> (b,k-1)
};

}  // namespace

HotspotResult solve_hotspot(const HotspotParams& params) {
  const unsigned n = params.ports;
  if (n < 2 || !(params.arrival_rate > 0.0) || !(params.mu > 0.0) ||
      params.hot_fraction < 0.0 || params.hot_fraction > 1.0) {
    throw std::invalid_argument("solve_hotspot: invalid parameters");
  }
  const double nd = n;
  const double p_hot = params.hot_fraction + (1.0 - params.hot_fraction) / nd;

  // State index: s = b * n + k, b in {0,1}, k in [0, n-1].
  const std::size_t states = 2 * n;
  const auto idx = [n](unsigned b, unsigned k) {
    return static_cast<std::size_t>(b) * n + k;
  };
  const auto rates = [&](unsigned b, unsigned k) {
    Rates r;
    const double free_inputs = (nd - b - k) / nd;
    if (b == 0) {
      r.to_hot = params.arrival_rate * p_hot * free_inputs;
    }
    if (k < n - 1) {
      r.to_cold = params.arrival_rate * (1.0 - p_hot) *
                  ((nd - 1.0 - k) / (nd - 1.0)) * free_inputs;
    }
    r.hot_done = b == 1 ? params.mu : 0.0;
    r.cold_done = k * params.mu;
    return r;
  };

  // Uniformization rate.
  double lambda_max = 1e-12;
  for (unsigned b = 0; b <= 1; ++b) {
    for (unsigned k = 0; k < n; ++k) {
      const Rates r = rates(b, k);
      lambda_max =
          std::max(lambda_max, r.to_hot + r.to_cold + r.hot_done + r.cold_done);
    }
  }
  lambda_max *= 1.02;

  // Power iteration on P = I + Q/Lambda.
  std::vector<double> p(states, 1.0 / static_cast<double>(states));
  std::vector<double> next(states);
  for (int iter = 0; iter < 200000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (unsigned b = 0; b <= 1; ++b) {
      for (unsigned k = 0; k < n; ++k) {
        const std::size_t s = idx(b, k);
        const Rates r = rates(b, k);
        const double exit = r.to_hot + r.to_cold + r.hot_done + r.cold_done;
        next[s] += p[s] * (1.0 - exit / lambda_max);
        if (r.to_hot > 0.0) {
          next[idx(1, k)] += p[s] * r.to_hot / lambda_max;
        }
        if (r.to_cold > 0.0) {
          next[idx(b, k + 1)] += p[s] * r.to_cold / lambda_max;
        }
        if (r.hot_done > 0.0) {
          next[idx(0, k)] += p[s] * r.hot_done / lambda_max;
        }
        if (r.cold_done > 0.0) {
          next[idx(b, k - 1)] += p[s] * r.cold_done / lambda_max;
        }
      }
    }
    double delta = 0.0;
    for (std::size_t s = 0; s < states; ++s) {
      delta = std::max(delta, std::fabs(next[s] - p[s]));
    }
    p.swap(next);
    if (delta < 1e-14) {
      break;
    }
  }
  double total = 0.0;
  for (const double v : p) {
    total += v;
  }
  for (double& v : p) {
    v /= total;
  }

  // PASTA: per-stream acceptance probabilities.
  HotspotResult result;
  double accept_hot = 0.0;
  double accept_cold = 0.0;
  for (unsigned b = 0; b <= 1; ++b) {
    for (unsigned k = 0; k < n; ++k) {
      const double pi = p[idx(b, k)];
      const double free_inputs = (nd - b - k) / nd;
      if (b == 0) {
        accept_hot += pi * free_inputs;
      }
      accept_cold += pi * ((nd - 1.0 - k) / (nd - 1.0)) * free_inputs;
      result.hot_utilization += pi * b;
      result.cold_utilization += pi * k;
      result.mean_circuits += pi * (b + k);
    }
  }
  result.utilization = result.mean_circuits / nd;
  result.cold_utilization /= (nd - 1.0);
  result.blocking_hot = 1.0 - accept_hot;
  result.blocking_cold = 1.0 - accept_cold;
  result.blocking_overall =
      p_hot * result.blocking_hot + (1.0 - p_hot) * result.blocking_cold;
  return result;
}

HotspotResult hotspot_crossbar(unsigned n, double rho_tilde,
                               double hot_fraction, double mu) {
  HotspotParams params;
  params.ports = n;
  params.arrival_rate = rho_tilde * static_cast<double>(n) * mu;
  params.mu = mu;
  params.hot_fraction = hot_fraction;
  return solve_hotspot(params);
}

}  // namespace xbar::core
