// Typed errors for the whole toolkit.
//
// Every layer (config parsing, model validation, solver dispatch, CLI)
// used to throw ad-hoc std::runtime_error / std::invalid_argument with
// free-form text, which made it impossible for callers — the CLI, the
// sweep engine, a future service frontend — to react to *classes* of
// failure or to point at the code that raised them.  `xbar::Error` fixes
// both: every error carries an `ErrorKind` and the C++ source location of
// the `raise()` call, and `what()` renders all of it in one line:
//
//     config error: [solve] unknown algorithm 'magic' [at config/scenario_file.cpp:27]
//
// Raise errors through the `raise()` helper so the location is captured
// automatically; never throw `Error` directly.

#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace xbar {

/// Coarse failure classes — what a caller can sensibly branch on.
enum class ErrorKind {
  kParse,     ///< malformed input text (INI syntax, bad number)
  kConfig,    ///< well-formed input with invalid semantics (unknown solver)
  kModel,     ///< model violates the paper's well-posedness rules (§2)
  kDomain,    ///< argument outside a function's mathematical domain
  kUsage,     ///< bad command-line usage (unparseable flag value)
  kIo,        ///< file system failure (missing scenario file)
  kInternal,  ///< broken invariant — always a bug
};

/// Short lowercase name of a kind ("parse", "config", ...).
[[nodiscard]] std::string_view to_string(ErrorKind kind) noexcept;

/// The toolkit-wide exception: kind + message + raising source location.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, std::string message, std::source_location where);

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

  /// The message without the kind/location decoration.
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// Where `raise()` was called ("config/scenario_file.cpp").  The path is
  /// trimmed to be stable across build directories.  Named `source_*` so
  /// subclasses can expose their own notion of file/line (e.g. IniError's
  /// input line) without a clash.
  [[nodiscard]] const std::string& source_file() const noexcept {
    return file_;
  }
  [[nodiscard]] unsigned source_line() const noexcept { return line_; }

 private:
  ErrorKind kind_;
  std::string message_;
  std::string file_;
  unsigned line_;
};

/// Throw an `Error` of `kind`, capturing the caller's source location.
[[noreturn]] void raise(
    ErrorKind kind, std::string message,
    std::source_location where = std::source_location::current());

}  // namespace xbar
