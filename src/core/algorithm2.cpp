#include "core/algorithm2.hpp"

#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "numeric/combinatorics.hpp"

namespace xbar::core {

struct Algorithm2Solver::Impl {
  CrossbarModel model;
  unsigned w = 0;  // N1 + 1
  unsigned h = 0;  // N2 + 1
  std::vector<double> f1;                 // F_1(n), valid for n1 >= 1
  std::vector<double> f2;                 // F_2(n), valid for n2 >= 1
  std::vector<std::vector<double>> hr;    // H_r(n) per class
  std::vector<std::vector<double>> dr;    // D_r(n) per bursty class

  explicit Impl(CrossbarModel m) : model(std::move(m)) {
    w = model.dims().n1 + 1;
    h = model.dims().n2 + 1;
    const std::size_t cells = static_cast<std::size_t>(w) * h;
    const std::size_t R = model.num_classes();
    f1.assign(cells, 0.0);
    f2.assign(cells, 0.0);
    hr.assign(R, std::vector<double>(cells, 0.0));
    dr.resize(R);
    for (std::size_t r = 0; r < R; ++r) {
      if (!model.normalized(r).is_poisson()) {
        dr[r].assign(cells, 1.0);
      }
    }
    build();
  }

  [[nodiscard]] std::size_t idx(unsigned n1, unsigned n2) const {
    return static_cast<std::size_t>(n2) * w + n1;
  }

  // U_r(n, 1) = Q(n - a_r I)/Q(n - 1_1) as a product of F factors along the
  // lattice path (n1-1, n2) -> (n1-a, n2) -> (n1-a, n2-a).
  [[nodiscard]] double u1(unsigned a, unsigned n1, unsigned n2) const {
    if (n1 < a || n2 < a) {
      return 0.0;
    }
    double u = 1.0;
    for (unsigned s = 0; s + 1 < a; ++s) {
      u *= f1[idx(n1 - 1 - s, n2)];
    }
    for (unsigned s = 0; s < a; ++s) {
      u *= f2[idx(n1 - a, n2 - s)];
    }
    return u;
  }

  // U_r(n, 2) = Q(n - a_r I)/Q(n - 1_2) along (n1, n2-1) -> (n1, n2-a)
  // -> (n1-a, n2-a).
  [[nodiscard]] double u2(unsigned a, unsigned n1, unsigned n2) const {
    if (n1 < a || n2 < a) {
      return 0.0;
    }
    double u = 1.0;
    for (unsigned s = 0; s + 1 < a; ++s) {
      u *= f2[idx(n1, n2 - 1 - s)];
    }
    for (unsigned s = 0; s < a; ++s) {
      u *= f1[idx(n1 - s, n2 - a)];
    }
    return u;
  }

  void build() {
    const auto classes = model.normalized_classes();
    const std::size_t R = classes.size();

    // Boundaries: Q(n1, 0) = 1/n1!, Q(0, n2) = 1/n2!.
    for (unsigned n1 = 1; n1 < w; ++n1) {
      f1[idx(n1, 0)] = n1;
    }
    for (unsigned n2 = 1; n2 < h; ++n2) {
      f2[idx(0, n2)] = n2;
    }
    // H_r and D_r on the boundary rows/columns stay at their initialized
    // values (0 and 1): no class fits when one side has no ports.

    for (unsigned n2 = 1; n2 < h; ++n2) {
      for (unsigned n1 = 1; n1 < w; ++n1) {
        // F_1 via the i = 1 recurrence.
        double denom1 = 1.0;
        double denom2 = 1.0;
        for (std::size_t r = 0; r < R; ++r) {
          const auto& c = classes[r];
          const unsigned a = c.bandwidth;
          const double load = static_cast<double>(a) * c.rho();
          const double d_prev =
              c.is_poisson()
                  ? 1.0
                  : ((n1 >= a && n2 >= a) ? dr[r][idx(n1 - a, n2 - a)] : 1.0);
          denom1 += load * u1(a, n1, n2) * d_prev;
          denom2 += load * u2(a, n1, n2) * d_prev;
        }
        const double f1v = static_cast<double>(n1) / denom1;
        const double f2v = static_cast<double>(n2) / denom2;
        f1[idx(n1, n2)] = f1v;
        f2[idx(n1, n2)] = f2v;

        // H_r and D_r at this cell.
        for (std::size_t r = 0; r < R; ++r) {
          const auto& c = classes[r];
          const unsigned a = c.bandwidth;
          if (n1 < a || n2 < a) {
            continue;  // H stays 0, D stays 1
          }
          const double h_val = f1v * u1(a, n1, n2);
          hr[r][idx(n1, n2)] = h_val;
          if (!c.is_poisson()) {
            dr[r][idx(n1, n2)] =
                1.0 + c.x() * h_val * dr[r][idx(n1 - a, n2 - a)];
          }
        }
      }
    }
  }

  [[nodiscard]] double non_blocking_at(std::size_t r, Dims at) const {
    const unsigned a = model.normalized(r).bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return 0.0;
    }
    return hr[r][idx(at.n1, at.n2)] /
           (num::falling_factorial(at.n1, a) *
            num::falling_factorial(at.n2, a));
  }

  [[nodiscard]] double concurrency_at(std::size_t r, Dims at) const {
    const NormalizedClass& c = model.normalized(r);
    const unsigned a = c.bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return 0.0;
    }
    const double h_val = hr[r][idx(at.n1, at.n2)];
    if (c.is_poisson()) {
      return c.rho() * h_val;  // E_r = rho_r Q(N - a I)/Q(N)
    }
    // E_r = rho_r H_r(N) D_r(N - a_r I)
    return c.rho() * h_val * dr[r][idx(at.n1 - a, at.n2 - a)];
  }

  [[nodiscard]] Measures measures_at(Dims at) const {
    Measures m;
    const std::size_t R = model.num_classes();
    m.per_class.resize(R);
    for (std::size_t r = 0; r < R; ++r) {
      const NormalizedClass& c = model.normalized(r);
      ClassMeasures& cm = m.per_class[r];
      cm.non_blocking = non_blocking_at(r, at);
      cm.blocking = 1.0 - cm.non_blocking;
      cm.concurrency = concurrency_at(r, at);
      cm.throughput = cm.concurrency * c.mu;
      cm.port_usage = cm.concurrency * static_cast<double>(c.bandwidth);
      m.revenue += c.weight * cm.concurrency;
      m.total_throughput += cm.throughput;
      m.utilization += cm.port_usage;
    }
    const unsigned cap = at.cap();
    m.utilization = cap > 0 ? m.utilization / cap : 0.0;
    return m;
  }
};

Algorithm2Solver::Algorithm2Solver(CrossbarModel model)
    : impl_(std::make_unique<Impl>(std::move(model))) {}

Algorithm2Solver::~Algorithm2Solver() = default;
Algorithm2Solver::Algorithm2Solver(Algorithm2Solver&&) noexcept = default;
Algorithm2Solver& Algorithm2Solver::operator=(Algorithm2Solver&&) noexcept =
    default;

Measures Algorithm2Solver::solve() const {
  return impl_->measures_at(impl_->model.dims());
}

Measures Algorithm2Solver::solve_at(Dims at) const {
  assert(at.n1 <= impl_->model.dims().n1 && at.n2 <= impl_->model.dims().n2);
  return impl_->measures_at(at);
}

double Algorithm2Solver::non_blocking(std::size_t r, Dims at) const {
  return impl_->non_blocking_at(r, at);
}

double Algorithm2Solver::f1(Dims at) const {
  assert(at.n1 >= 1);
  return impl_->f1[impl_->idx(at.n1, at.n2)];
}

double Algorithm2Solver::f2(Dims at) const {
  assert(at.n2 >= 1);
  return impl_->f2[impl_->idx(at.n1, at.n2)];
}

double Algorithm2Solver::h(std::size_t r, Dims at) const {
  return impl_->hr[r][impl_->idx(at.n1, at.n2)];
}

double Algorithm2Solver::log_q(Dims at) const {
  // Q(at) = Q(0,0) / prod of F factors along (0,0) -> (at.n1,0) -> at;
  // Q(0,0) = 1.  F_1(n1,0) = n1 reproduces 1/n1! along the bottom row.
  double log_q_val = 0.0;
  for (unsigned n1 = 1; n1 <= at.n1; ++n1) {
    log_q_val -= std::log(impl_->f1[impl_->idx(n1, 0)]);
  }
  for (unsigned n2 = 1; n2 <= at.n2; ++n2) {
    log_q_val -= std::log(impl_->f2[impl_->idx(at.n1, n2)]);
  }
  return log_q_val;
}

const CrossbarModel& Algorithm2Solver::model() const noexcept {
  return impl_->model;
}

}  // namespace xbar::core
