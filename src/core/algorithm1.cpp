#include "core/algorithm1.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "numeric/combinatorics.hpp"
#include "numeric/scaled_float.hpp"

namespace xbar::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Small adapter so one kernel serves ScaledFloat, long double and double.
template <typename Real>
struct RealOps {
  static Real from_double(double v) { return static_cast<Real>(v); }
  static double log_of(Real v) {
    return std::log(static_cast<double>(v));
  }
};

template <>
struct RealOps<num::ScaledFloat> {
  static num::ScaledFloat from_double(double v) {
    return num::ScaledFloat{v};
  }
  static double log_of(const num::ScaledFloat& v) {
    if (v.is_zero()) {
      return kNegInf;
    }
    if (v.sign() < 0) {
      // Only reachable through catastrophic cancellation in the Bernoulli
      // V-recursion; surfaces as NaN so degeneracy detection catches it.
      return std::numeric_limits<double>::quiet_NaN();
    }
    return v.log();
  }
};

template <>
struct RealOps<long double> {
  static long double from_double(double v) { return v; }
  static double log_of(long double v) {
    if (v == 0.0L) {
      return kNegInf;
    }
    if (v < 0.0L) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return static_cast<double>(std::log(v));
  }
};

// Per-class constants hoisted out of the grid loops.
struct ClassConst {
  unsigned a = 1;
  double rho = 0.0;
  double x = 0.0;  // beta/mu
  bool poisson = true;
};

std::vector<ClassConst> class_constants(const CrossbarModel& model) {
  std::vector<ClassConst> cs;
  cs.reserve(model.num_classes());
  for (const auto& c : model.normalized_classes()) {
    cs.push_back(ClassConst{c.bandwidth, c.rho(), c.x(), c.is_poisson()});
  }
  return cs;
}

// Straightforward kernel: computes Q (and V for bursty classes) over the
// whole grid in the chosen Real arithmetic, then snapshots natural logs.
template <typename Real>
void build_grid(const CrossbarModel& model, std::vector<double>& log_q,
                std::vector<std::vector<double>>& log_v) {
  using Ops = RealOps<Real>;
  const unsigned w = model.dims().n1 + 1;
  const unsigned h = model.dims().n2 + 1;
  const auto classes = class_constants(model);
  const std::size_t R = classes.size();

  std::vector<Real> q(static_cast<std::size_t>(w) * h, Ops::from_double(0.0));
  std::vector<std::vector<Real>> v(R);
  for (std::size_t r = 0; r < R; ++r) {
    if (!classes[r].poisson) {
      v[r].assign(static_cast<std::size_t>(w) * h, Ops::from_double(0.0));
    }
  }
  const auto idx = [w](unsigned n1, unsigned n2) {
    return static_cast<std::size_t>(n2) * w + n1;
  };

  q[idx(0, 0)] = Ops::from_double(1.0);
  for (unsigned n2 = 0; n2 < h; ++n2) {
    for (unsigned n1 = 0; n1 < w; ++n1) {
      // V(n, r) = Q(n - a I) + x_r V(n - a I, r); zero if n - a I is
      // off-grid.  Needed before Q(n) because Q(n)'s bursty term uses V(n).
      for (std::size_t r = 0; r < R; ++r) {
        if (classes[r].poisson) {
          continue;
        }
        const unsigned a = classes[r].a;
        if (n1 >= a && n2 >= a) {
          const std::size_t back = idx(n1 - a, n2 - a);
          v[r][idx(n1, n2)] =
              q[back] + Ops::from_double(classes[r].x) * v[r][back];
        }
      }
      if (n1 == 0 && n2 == 0) {
        continue;  // Q(0,0) already set
      }
      // Advance along i = 1 when possible, else along i = 2; the recurrence
      // is consistent in both directions.
      Real sum = (n1 > 0) ? q[idx(n1 - 1, n2)] : q[idx(n1, n2 - 1)];
      const double divisor = (n1 > 0) ? n1 : n2;
      for (std::size_t r = 0; r < R; ++r) {
        const unsigned a = classes[r].a;
        if (n1 < a || n2 < a) {
          continue;
        }
        const Real coeff = Ops::from_double(a * classes[r].rho);
        if (classes[r].poisson) {
          sum += coeff * q[idx(n1 - a, n2 - a)];
        } else {
          sum += coeff * v[r][idx(n1, n2)];
        }
      }
      q[idx(n1, n2)] = sum / Ops::from_double(divisor);
    }
  }

  // Snapshot logs for measure queries.
  log_q.resize(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    log_q[i] = Ops::log_of(q[i]);
  }
  log_v.assign(R, {});
  for (std::size_t r = 0; r < R; ++r) {
    if (classes[r].poisson) {
      continue;
    }
    log_v[r].resize(v[r].size());
    for (std::size_t i = 0; i < v[r].size(); ++i) {
      log_v[r][i] = Ops::log_of(v[r][i]);
    }
  }
}

// The paper's §6 backend: IEEE double with explicit dynamic scaling.  Each
// row carries a cumulative log scale; rows are renormalized whenever their
// largest entry leaves [scale_low, scale_high].  References to earlier rows
// are adjusted by the scale difference, and the log snapshot subtracts the
// row scale so measures are unaffected — the paper's observation that
// "the scaling factor does not affect the performance measure results".
void build_grid_dynamic_scaling(const CrossbarModel& model,
                                const Algorithm1Options& opts,
                                std::vector<double>& log_q,
                                std::vector<std::vector<double>>& log_v,
                                unsigned& scaling_events) {
  const unsigned w = model.dims().n1 + 1;
  const unsigned h = model.dims().n2 + 1;
  const auto classes = class_constants(model);
  const std::size_t R = classes.size();

  std::vector<double> q(static_cast<std::size_t>(w) * h, 0.0);
  std::vector<std::vector<double>> v(R);
  for (std::size_t r = 0; r < R; ++r) {
    if (!classes[r].poisson) {
      v[r].assign(static_cast<std::size_t>(w) * h, 0.0);
    }
  }
  std::vector<double> row_log_scale(h, 0.0);  // stored = true * exp(scale)
  const auto idx = [w](unsigned n1, unsigned n2) {
    return static_cast<std::size_t>(n2) * w + n1;
  };

  q[idx(0, 0)] = 1.0;
  for (unsigned n2 = 0; n2 < h; ++n2) {
    if (n2 > 0) {
      row_log_scale[n2] = row_log_scale[n2 - 1];
    }
    for (unsigned n1 = 0; n1 < w; ++n1) {
      for (std::size_t r = 0; r < R; ++r) {
        if (classes[r].poisson) {
          continue;
        }
        const unsigned a = classes[r].a;
        if (n1 >= a && n2 >= a) {
          // Bring row (n2 - a) values into this row's scale.
          const double adjust =
              std::exp(row_log_scale[n2] - row_log_scale[n2 - a]);
          const std::size_t back = idx(n1 - a, n2 - a);
          v[r][idx(n1, n2)] =
              adjust * (q[back] + classes[r].x * v[r][back]);
        }
      }
      if (n1 == 0 && n2 == 0) {
        continue;
      }
      double sum;
      if (n1 > 0) {
        sum = q[idx(n1 - 1, n2)];
      } else {
        sum = q[idx(0, n2 - 1)] *
              std::exp(row_log_scale[n2] - row_log_scale[n2 - 1]);
      }
      const double divisor = (n1 > 0) ? n1 : n2;
      for (std::size_t r = 0; r < R; ++r) {
        const unsigned a = classes[r].a;
        if (n1 < a || n2 < a) {
          continue;
        }
        const double coeff = static_cast<double>(a) * classes[r].rho;
        if (classes[r].poisson) {
          const double adjust =
              std::exp(row_log_scale[n2] - row_log_scale[n2 - a]);
          sum += coeff * adjust * q[idx(n1 - a, n2 - a)];
        } else {
          sum += coeff * v[r][idx(n1, n2)];  // already in this row's scale
        }
      }
      const double qval = sum / divisor;
      q[idx(n1, n2)] = qval;

      // Dynamic scaling (paper §6): Q spans hundreds of decades even within
      // a single row (Q ~ 1/(n1! n2!)), so the check runs per cell.  When
      // the newest value leaves [scale_low, scale_high], multiply the
      // already-filled prefix of this row by omega and fold omega into the
      // row's scale; references to earlier rows adjust through the
      // row_log_scale difference.
      if (qval > 0.0 &&
          (qval > opts.scale_high || qval < opts.scale_low)) {
        const double omega = 1.0 / qval;
        for (unsigned m1 = 0; m1 <= n1; ++m1) {
          q[idx(m1, n2)] *= omega;
          for (std::size_t r = 0; r < R; ++r) {
            if (!classes[r].poisson) {
              v[r][idx(m1, n2)] *= omega;
            }
          }
        }
        row_log_scale[n2] += std::log(omega);
        ++scaling_events;
      }
    }
  }

  log_q.resize(q.size());
  log_v.assign(R, {});
  for (std::size_t r = 0; r < R; ++r) {
    if (!classes[r].poisson) {
      log_v[r].resize(v[r].size());
    }
  }
  for (unsigned n2 = 0; n2 < h; ++n2) {
    for (unsigned n1 = 0; n1 < w; ++n1) {
      const std::size_t i = idx(n1, n2);
      log_q[i] = std::log(q[i]) - row_log_scale[n2];
      for (std::size_t r = 0; r < R; ++r) {
        if (!classes[r].poisson) {
          log_v[r][i] =
              v[r][i] > 0.0 ? std::log(v[r][i]) - row_log_scale[n2] : kNegInf;
        }
      }
    }
  }
}

}  // namespace

struct Algorithm1Solver::Impl {
  CrossbarModel model;
  Algorithm1Options options;
  std::vector<double> log_q;                 // (N1+1) x (N2+1), row-major n2
  std::vector<std::vector<double>> log_v;    // per class; empty for Poisson
  unsigned scaling_events = 0;
  bool degenerate = false;

  Impl(CrossbarModel m, Algorithm1Options o)
      : model(std::move(m)), options(o) {
    switch (options.backend) {
      case Algorithm1Backend::kScaledFloat:
        build_grid<num::ScaledFloat>(model, log_q, log_v);
        break;
      case Algorithm1Backend::kLongDouble:
        build_grid<long double>(model, log_q, log_v);
        break;
      case Algorithm1Backend::kDoubleRaw:
        build_grid<double>(model, log_q, log_v);
        break;
      case Algorithm1Backend::kDoubleDynamicScaling:
        build_grid_dynamic_scaling(model, options, log_q, log_v,
                                   scaling_events);
        break;
    }
    // Q(n) > 0 for every grid cell (the empty state always contributes
    // 1/(n1! n2!)), so any non-finite log flags arithmetic breakdown.
    for (const double lq : log_q) {
      if (!std::isfinite(lq)) {
        degenerate = true;
        break;
      }
    }
  }

  [[nodiscard]] std::size_t index(unsigned n1, unsigned n2) const {
    return static_cast<std::size_t>(n2) * (model.dims().n1 + 1) + n1;
  }

  [[nodiscard]] double lq(Dims at) const {
    assert(at.n1 <= model.dims().n1 && at.n2 <= model.dims().n2);
    return log_q[index(at.n1, at.n2)];
  }

  // ln V(at, r); -inf when V == 0 (subsystem too small).
  [[nodiscard]] double lv(std::size_t r, Dims at) const {
    const unsigned a = model.normalized(r).bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return kNegInf;
    }
    return log_v[r][index(at.n1, at.n2)];
  }

  [[nodiscard]] double non_blocking_at(std::size_t r, Dims at) const {
    const unsigned a = model.normalized(r).bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return 0.0;  // the class can never fit in this subsystem
    }
    const double log_b = lq(Dims{at.n1 - a, at.n2 - a}) - lq(at) -
                         num::log_falling_factorial(at.n1, a) -
                         num::log_falling_factorial(at.n2, a);
    return std::exp(log_b);
  }

  [[nodiscard]] double concurrency_at(std::size_t r, Dims at) const {
    const NormalizedClass& c = model.normalized(r);
    const unsigned a = c.bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return 0.0;
    }
    if (c.is_poisson()) {
      // E_r = rho_r Q(N - a I)/Q(N)
      return c.rho() * std::exp(lq(Dims{at.n1 - a, at.n2 - a}) - lq(at));
    }
    // E_r = rho_r V(N, r)/Q(N)
    const double logv = lv(r, at);
    if (logv == kNegInf) {
      return 0.0;
    }
    return c.rho() * std::exp(logv - lq(at));
  }

  [[nodiscard]] Measures measures_at(Dims at) const {
    Measures m;
    const std::size_t R = model.num_classes();
    m.per_class.resize(R);
    for (std::size_t r = 0; r < R; ++r) {
      const NormalizedClass& c = model.normalized(r);
      ClassMeasures& cm = m.per_class[r];
      cm.non_blocking = non_blocking_at(r, at);
      cm.blocking = 1.0 - cm.non_blocking;
      cm.concurrency = concurrency_at(r, at);
      cm.throughput = cm.concurrency * c.mu;
      cm.port_usage = cm.concurrency * static_cast<double>(c.bandwidth);
      m.revenue += c.weight * cm.concurrency;
      m.total_throughput += cm.throughput;
      m.utilization += cm.port_usage;
    }
    const unsigned cap = at.cap();
    m.utilization = cap > 0 ? m.utilization / cap : 0.0;
    return m;
  }
};

Algorithm1Solver::Algorithm1Solver(CrossbarModel model,
                                   Algorithm1Options options)
    : impl_(std::make_unique<Impl>(std::move(model), options)) {}

Algorithm1Solver::~Algorithm1Solver() = default;
Algorithm1Solver::Algorithm1Solver(Algorithm1Solver&&) noexcept = default;
Algorithm1Solver& Algorithm1Solver::operator=(Algorithm1Solver&&) noexcept =
    default;

Measures Algorithm1Solver::solve() const {
  return impl_->measures_at(impl_->model.dims());
}

Measures Algorithm1Solver::solve_at(Dims at) const {
  return impl_->measures_at(at);
}

double Algorithm1Solver::log_q(Dims at) const { return impl_->lq(at); }

double Algorithm1Solver::non_blocking(std::size_t r, Dims at) const {
  return impl_->non_blocking_at(r, at);
}

unsigned Algorithm1Solver::scaling_events() const noexcept {
  return impl_->scaling_events;
}

bool Algorithm1Solver::degenerate() const noexcept {
  return impl_->degenerate;
}

const CrossbarModel& Algorithm1Solver::model() const noexcept {
  return impl_->model;
}

}  // namespace xbar::core
