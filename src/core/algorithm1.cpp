#include "core/algorithm1.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>
#include <variant>
#include <vector>

#include "numeric/combinatorics.hpp"
#include "numeric/log_domain.hpp"
#include "numeric/scaled_float.hpp"

namespace xbar::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

// Small adapter so one kernel serves ScaledFloat, long double and double.
template <typename Real>
struct RealOps {
  static Real from_double(double v) { return static_cast<Real>(v); }
  static double log_of(Real v) {
    if (v == Real(0)) {
      return kNegInf;
    }
    if (v < Real(0)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return static_cast<double>(std::log(v));
  }
  static bool positive_finite(Real v) {
    return std::isfinite(v) && v > Real(0);
  }
};

template <>
struct RealOps<num::SignedLog> {
  static num::SignedLog from_double(double v) { return num::SignedLog{v}; }
  static double log_of(const num::SignedLog& v) {
    if (v.is_zero()) {
      return kNegInf;
    }
    // Negative values (catastrophic cancellation in the Bernoulli
    // V-recursion) surface as NaN so degeneracy detection catches them.
    return v.log();
  }
  static bool positive_finite(const num::SignedLog& v) {
    return v.sign() > 0 && !std::isnan(v.log_magnitude()) &&
           v.log_magnitude() < std::numeric_limits<double>::infinity();
  }
};

template <>
struct RealOps<num::ScaledFloat> {
  static num::ScaledFloat from_double(double v) {
    return num::ScaledFloat{v};
  }
  static double log_of(const num::ScaledFloat& v) {
    if (v.is_zero()) {
      return kNegInf;
    }
    if (v.sign() < 0) {
      // Only reachable through catastrophic cancellation in the Bernoulli
      // V-recursion; surfaces as NaN so degeneracy detection catches it.
      return std::numeric_limits<double>::quiet_NaN();
    }
    return v.log();
  }
  static bool positive_finite(const num::ScaledFloat& v) {
    return v.sign() > 0 && std::isfinite(v.mantissa());
  }
};

// The classes, split once into the paper's R1 (Poisson) and R2 (bursty)
// sets and sorted by bandwidth, with everything the inner loops need
// hoisted out of the grid sweep.  The split removes the per-cell
// `is_poisson` branch; the sort lets each row activate classes as a
// monotone prefix (a class contributes only where min(n1, n2) >= a_r),
// so the steady part of every row runs with no per-class guards at all.
// `slot_of` maps an original class index to its V plane in the SoA block
// (kNoSlot for Poisson classes).
struct PoissonConst {
  unsigned a = 1;
  double coeff = 0.0;  // a * rho
};

struct BurstyConst {
  unsigned a = 1;
  double coeff = 0.0;   // a * rho
  double x = 0.0;       // beta/mu
  std::size_t cls = 0;  // original class index
};

struct ClassPartition {
  std::vector<PoissonConst> poisson;  // sorted by a
  std::vector<BurstyConst> bursty;    // sorted by a
  std::vector<std::size_t> slot_of;   // per original class index
  unsigned max_a = 1;
};

ClassPartition partition_classes(const CrossbarModel& model) {
  ClassPartition p;
  p.slot_of.assign(model.num_classes(), kNoSlot);
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const NormalizedClass& c = model.normalized(r);
    const double coeff = static_cast<double>(c.bandwidth) * c.rho();
    if (c.is_poisson()) {
      p.poisson.push_back(PoissonConst{c.bandwidth, coeff});
    } else {
      p.bursty.push_back(BurstyConst{c.bandwidth, coeff, c.x(), r});
    }
    p.max_a = std::max(p.max_a, c.bandwidth);
  }
  const auto by_a = [](const auto& l, const auto& r) { return l.a < r.a; };
  std::stable_sort(p.poisson.begin(), p.poisson.end(), by_a);
  std::stable_sort(p.bursty.begin(), p.bursty.end(), by_a);
  for (std::size_t b = 0; b < p.bursty.size(); ++b) {
    p.slot_of[p.bursty[b].cls] = b;
  }
  return p;
}

// Raw recurrence output.  Logs are NOT materialized here: a full-plane log
// snapshot costs one log() per cell — comparable to the recurrence itself
// for the double backends — while measure queries only ever touch a handful
// of cells.  The solver keeps the raw grids and takes logs on demand.
template <typename Real>
struct Grids {
  using real_type = Real;
  std::vector<Real> q;  // (N1+1) x (N2+1), row-major in n2
  std::vector<Real> v;  // bursty V planes, slot-major SoA
};

struct DynGrids {
  std::vector<double> q;
  std::vector<double> v;
  std::vector<double> row_log_scale;  // stored = true * exp(scale)
};

using GridStore = std::variant<Grids<num::ScaledFloat>, Grids<long double>,
                               Grids<double>, Grids<num::SignedLog>, DynGrids>;

// Straightforward kernel: computes Q (and V for bursty classes) over the
// whole grid in the chosen Real arithmetic.  The bursty V grids live in one
// contiguous slot-major SoA block so the per-cell work walks dense memory,
// and each row is split into a guarded prologue (n1 < largest active
// bandwidth) and a guard-free steady loop.
template <typename Real>
Grids<Real> build_grid(const CrossbarModel& model,
                       const ClassPartition& part) {
  using Ops = RealOps<Real>;
  const unsigned w = model.dims().n1 + 1;
  const unsigned h = model.dims().n2 + 1;
  const std::size_t plane = static_cast<std::size_t>(w) * h;
  const std::size_t B = part.bursty.size();
  const std::size_t P = part.poisson.size();

  Grids<Real> g;
  g.q.assign(plane, Ops::from_double(0.0));
  g.v.assign(B * plane, Ops::from_double(0.0));
  std::vector<Real>& q = g.q;
  std::vector<Real>& v = g.v;

  // Per-class constants and small-integer divisors converted to Real
  // exactly once (ScaledFloat construction normalizes via frexp — far too
  // expensive per cell).
  std::vector<Real> pcoeff(P, Ops::from_double(0.0));
  for (std::size_t p = 0; p < P; ++p) {
    pcoeff[p] = Ops::from_double(part.poisson[p].coeff);
  }
  std::vector<Real> bcoeff(B, Ops::from_double(0.0));
  std::vector<Real> bx(B, Ops::from_double(0.0));
  for (std::size_t b = 0; b < B; ++b) {
    bcoeff[b] = Ops::from_double(part.bursty[b].coeff);
    bx[b] = Ops::from_double(part.bursty[b].x);
  }
  std::vector<Real> rint(std::max(w, h), Ops::from_double(0.0));
  for (unsigned k = 0; k < rint.size(); ++k) {
    rint[k] = Ops::from_double(k);
  }

  // One interior cell (n1 >= 1, n2 >= 1): V recursions for the active
  // bursty prefix, then the Q recurrence over the active class prefixes.
  // `guarded` keeps the n1 >= a checks; the steady-state calls drop them.
  const auto cell = [&](std::size_t i, unsigned n1, std::size_t np,
                        std::size_t nb, bool guarded) {
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = part.bursty[b].a;
      if (guarded && n1 < a) {
        continue;
      }
      // idx(n1-a, n2-a) == i - a*(w+1): the diagonal back-reference.
      const std::size_t back = i - static_cast<std::size_t>(a) * (w + 1);
      Real* vb = v.data() + b * plane;
      vb[i] = q[back] + bx[b] * vb[back];
    }
    Real sum = q[i - 1];
    for (std::size_t p = 0; p < np; ++p) {
      const unsigned a = part.poisson[p].a;
      if (guarded && n1 < a) {
        continue;
      }
      sum += pcoeff[p] * q[i - static_cast<std::size_t>(a) * (w + 1)];
    }
    for (std::size_t b = 0; b < nb; ++b) {
      if (guarded && n1 < part.bursty[b].a) {
        continue;
      }
      sum += bcoeff[b] * v[b * plane + i];
    }
    q[i] = sum / rint[n1];
  };

  q[0] = Ops::from_double(1.0);
  // Row 0 is the pure factorial row: Q(n1, 0) = 1/n1! (no class fits).
  for (unsigned n1 = 1; n1 < w; ++n1) {
    q[n1] = q[n1 - 1] / rint[n1];
  }
  std::size_t np = 0;  // active prefix of part.poisson (a <= n2)
  std::size_t nb = 0;  // active prefix of part.bursty
  for (unsigned n2 = 1; n2 < h; ++n2) {
    while (np < P && part.poisson[np].a <= n2) {
      ++np;
    }
    while (nb < B && part.bursty[nb].a <= n2) {
      ++nb;
    }
    const std::size_t row = static_cast<std::size_t>(n2) * w;
    // Column 0: no class fits (a >= 1 > n1), so Q(0, n2) = Q(0, n2-1)/n2.
    q[row] = q[row - w] / rint[n2];
    // Largest active bandwidth decides where the guards become dead.
    unsigned steady = 1;
    if (np > 0) {
      steady = std::max(steady, part.poisson[np - 1].a);
    }
    if (nb > 0) {
      steady = std::max(steady, part.bursty[nb - 1].a);
    }
    const unsigned split = std::min(steady, w);
    for (unsigned n1 = 1; n1 < split; ++n1) {
      cell(row + n1, n1, np, nb, true);
    }
    for (unsigned n1 = split; n1 < w; ++n1) {
      cell(row + n1, n1, np, nb, false);
    }
  }
  return g;
}

// The paper's §6 backend: IEEE double with explicit dynamic scaling.  Each
// row carries a cumulative log scale; rows are renormalized whenever their
// largest entry leaves [scale_low, scale_high].  References to earlier rows
// are adjusted by the scale difference, and the on-demand log accessor
// subtracts the row scale so measures are unaffected — the paper's
// observation that "the scaling factor does not affect the performance
// measure results".
//
// The cross-row adjustment factors exp(scale[n2] - scale[n2 - d]) are
// computed once per row for every back-reference distance d and folded into
// the running omega on each rescale, so the O(N1 N2 R) inner loop performs
// no exp() calls at all.  Divisions by n1 are replaced with multiplications
// by a precomputed reciprocal table: the division sat on the loop-carried
// Q(n1-1, n2) dependency chain and dominated the fill latency.
DynGrids build_grid_dynamic_scaling(const CrossbarModel& model,
                                    const Algorithm1Options& opts,
                                    const ClassPartition& part,
                                    unsigned& scaling_events) {
  const unsigned w = model.dims().n1 + 1;
  const unsigned h = model.dims().n2 + 1;
  const std::size_t plane = static_cast<std::size_t>(w) * h;
  const std::size_t B = part.bursty.size();
  const std::size_t P = part.poisson.size();

  DynGrids g;
  g.q.assign(plane, 0.0);
  g.v.assign(B * plane, 0.0);
  g.row_log_scale.assign(h, 0.0);
  std::vector<double>& q = g.q;
  std::vector<double>& v = g.v;

  std::vector<double> inv(std::max(w, h), 0.0);
  for (unsigned k = 1; k < inv.size(); ++k) {
    inv[k] = 1.0 / k;
  }

  // adjust[d] caches exp(row_log_scale[n2] - row_log_scale[n2 - d]) for the
  // row being filled, for every back-reference distance d (class bandwidths
  // plus 1 for the column-0 inherit).  A rescale by omega folds omega into
  // each cached factor instead of re-exponentiating.
  const unsigned max_a = part.max_a;
  std::vector<double> adjust(static_cast<std::size_t>(max_a) + 1, 1.0);

  const auto cell = [&](std::size_t i, unsigned n1, std::size_t np,
                        std::size_t nb, bool guarded) {
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = part.bursty[b].a;
      if (guarded && n1 < a) {
        continue;
      }
      // Bring row (n2 - a) values into this row's scale.
      const std::size_t back = i - static_cast<std::size_t>(a) * (w + 1);
      double* vb = v.data() + b * plane;
      vb[i] = adjust[a] * (q[back] + part.bursty[b].x * vb[back]);
    }
    double sum = q[i - 1];
    for (std::size_t p = 0; p < np; ++p) {
      const unsigned a = part.poisson[p].a;
      if (guarded && n1 < a) {
        continue;
      }
      sum += part.poisson[p].coeff * adjust[a] *
             q[i - static_cast<std::size_t>(a) * (w + 1)];
    }
    for (std::size_t b = 0; b < nb; ++b) {
      if (guarded && n1 < part.bursty[b].a) {
        continue;
      }
      sum += part.bursty[b].coeff * v[b * plane + i];  // row's own scale
    }
    return sum * inv[n1];
  };

  // Dynamic scaling (paper §6): Q spans hundreds of decades even within a
  // single row (Q ~ 1/(n1! n2!)), so the check runs per cell.  When the
  // newest value leaves [scale_low, scale_high], multiply the already
  // filled prefix of this row by omega and fold omega into the row's scale
  // and the cached cross-row factors.
  const auto rescale_if_needed = [&](unsigned n2, unsigned n1, double qval) {
    if (!(qval > 0.0) ||
        (qval <= opts.scale_high && qval >= opts.scale_low)) {
      return;
    }
    const double omega = 1.0 / qval;
    const std::size_t row = static_cast<std::size_t>(n2) * w;
    for (std::size_t m = row; m <= row + n1; ++m) {
      q[m] *= omega;
    }
    for (std::size_t b = 0; b < B; ++b) {
      double* vb = v.data() + b * plane;
      for (std::size_t m = row; m <= row + n1; ++m) {
        vb[m] *= omega;
      }
    }
    g.row_log_scale[n2] += std::log(omega);
    for (unsigned d = 1; d <= max_a; ++d) {
      adjust[d] *= omega;
    }
    ++scaling_events;
  };

  q[0] = 1.0;
  for (unsigned n1 = 1; n1 < w; ++n1) {
    q[n1] = q[n1 - 1] * inv[n1];
    rescale_if_needed(0, n1, q[n1]);
  }
  std::size_t np = 0;
  std::size_t nb = 0;
  for (unsigned n2 = 1; n2 < h; ++n2) {
    while (np < P && part.poisson[np].a <= n2) {
      ++np;
    }
    while (nb < B && part.bursty[nb].a <= n2) {
      ++nb;
    }
    g.row_log_scale[n2] = g.row_log_scale[n2 - 1];
    for (unsigned d = 1; d <= max_a; ++d) {
      adjust[d] = d <= n2 ? std::exp(g.row_log_scale[n2] -
                                     g.row_log_scale[n2 - d])
                          : 1.0;
    }
    const std::size_t row = static_cast<std::size_t>(n2) * w;
    q[row] = q[row - w] * adjust[1] * inv[n2];
    rescale_if_needed(n2, 0, q[row]);
    unsigned steady = 1;
    if (np > 0) {
      steady = std::max(steady, part.poisson[np - 1].a);
    }
    if (nb > 0) {
      steady = std::max(steady, part.bursty[nb - 1].a);
    }
    const unsigned split = std::min(steady, w);
    for (unsigned n1 = 1; n1 < split; ++n1) {
      const double qval = cell(row + n1, n1, np, nb, true);
      q[row + n1] = qval;
      rescale_if_needed(n2, n1, qval);
    }
    for (unsigned n1 = split; n1 < w; ++n1) {
      const double qval = cell(row + n1, n1, np, nb, false);
      q[row + n1] = qval;
      rescale_if_needed(n2, n1, qval);
    }
  }
  return g;
}

}  // namespace

struct Algorithm1Solver::Impl {
  CrossbarModel model;
  Algorithm1Options options;
  GridStore grids;
  std::vector<std::size_t> bursty_slot;  // per class; kNoSlot for Poisson
  unsigned scaling_events = 0;
  bool degenerate = false;

  Impl(CrossbarModel m, Algorithm1Options o)
      : model(std::move(m)), options(o) {
    const ClassPartition part = partition_classes(model);
    bursty_slot = part.slot_of;
    switch (options.backend) {
      case Algorithm1Backend::kScaledFloat:
        grids = build_grid<num::ScaledFloat>(model, part);
        break;
      case Algorithm1Backend::kLongDouble:
        grids = build_grid<long double>(model, part);
        break;
      case Algorithm1Backend::kDoubleRaw:
        grids = build_grid<double>(model, part);
        break;
      case Algorithm1Backend::kDoubleDynamicScaling:
        grids = build_grid_dynamic_scaling(model, options, part,
                                           scaling_events);
        break;
      case Algorithm1Backend::kLogDomain:
        grids = build_grid<num::SignedLog>(model, part);
        break;
    }
    // Q(n) > 0 for every grid cell (the empty state always contributes
    // 1/(n1! n2!)), so any non-positive or non-finite entry flags
    // arithmetic breakdown.  The scan is a comparison per cell, not a log.
    degenerate = std::visit(
        [](const auto& g) {
          using G = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<G, DynGrids>) {
            for (const double qv : g.q) {
              if (!(qv > 0.0) || !std::isfinite(qv)) {
                return true;
              }
            }
          } else {
            using Ops = RealOps<typename G::real_type>;
            for (const auto& qv : g.q) {
              if (!Ops::positive_finite(qv)) {
                return true;
              }
            }
          }
          return false;
        },
        grids);
  }

  [[nodiscard]] std::size_t plane() const {
    return static_cast<std::size_t>(model.dims().n1 + 1) *
           (model.dims().n2 + 1);
  }

  [[nodiscard]] std::size_t index(unsigned n1, unsigned n2) const {
    return static_cast<std::size_t>(n2) * (model.dims().n1 + 1) + n1;
  }

  // ln Q(at), computed on demand from the raw grid.
  [[nodiscard]] double lq(Dims at) const {
    assert(at.n1 <= model.dims().n1 && at.n2 <= model.dims().n2);
    const std::size_t i = index(at.n1, at.n2);
    return std::visit(
        [&](const auto& g) -> double {
          using G = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<G, DynGrids>) {
            return std::log(g.q[i]) - g.row_log_scale[at.n2];
          } else {
            return RealOps<typename G::real_type>::log_of(g.q[i]);
          }
        },
        grids);
  }

  // ln V(at, r); -inf when V == 0 (subsystem too small).
  [[nodiscard]] double lv(std::size_t r, Dims at) const {
    const unsigned a = model.normalized(r).bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return kNegInf;
    }
    const std::size_t i = bursty_slot[r] * plane() + index(at.n1, at.n2);
    return std::visit(
        [&](const auto& g) -> double {
          using G = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<G, DynGrids>) {
            const double vv = g.v[i];
            return vv > 0.0 ? std::log(vv) - g.row_log_scale[at.n2]
                            : kNegInf;
          } else {
            return RealOps<typename G::real_type>::log_of(g.v[i]);
          }
        },
        grids);
  }

  [[nodiscard]] double non_blocking_at(std::size_t r, Dims at) const {
    const unsigned a = model.normalized(r).bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return 0.0;  // the class can never fit in this subsystem
    }
    const double log_b = lq(Dims{at.n1 - a, at.n2 - a}) - lq(at) -
                         num::log_falling_factorial(at.n1, a) -
                         num::log_falling_factorial(at.n2, a);
    return std::exp(log_b);
  }

  [[nodiscard]] double concurrency_at(std::size_t r, Dims at) const {
    const NormalizedClass& c = model.normalized(r);
    const unsigned a = c.bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return 0.0;
    }
    if (c.is_poisson()) {
      // E_r = rho_r Q(N - a I)/Q(N)
      return c.rho() * std::exp(lq(Dims{at.n1 - a, at.n2 - a}) - lq(at));
    }
    // E_r = rho_r V(N, r)/Q(N)
    const double logv = lv(r, at);
    if (logv == kNegInf) {
      return 0.0;
    }
    return c.rho() * std::exp(logv - lq(at));
  }

  [[nodiscard]] Measures measures_at(Dims at) const {
    Measures m;
    const std::size_t R = model.num_classes();
    m.per_class.resize(R);
    for (std::size_t r = 0; r < R; ++r) {
      const NormalizedClass& c = model.normalized(r);
      ClassMeasures& cm = m.per_class[r];
      cm.non_blocking = non_blocking_at(r, at);
      cm.blocking = 1.0 - cm.non_blocking;
      cm.concurrency = concurrency_at(r, at);
      cm.throughput = cm.concurrency * c.mu;
      cm.port_usage = cm.concurrency * static_cast<double>(c.bandwidth);
      m.revenue += c.weight * cm.concurrency;
      m.total_throughput += cm.throughput;
      m.utilization += cm.port_usage;
    }
    const unsigned cap = at.cap();
    m.utilization = cap > 0 ? m.utilization / cap : 0.0;
    return m;
  }
};

Algorithm1Solver::Algorithm1Solver(CrossbarModel model,
                                   Algorithm1Options options)
    : impl_(std::make_unique<Impl>(std::move(model), options)) {}

Algorithm1Solver::~Algorithm1Solver() = default;
Algorithm1Solver::Algorithm1Solver(Algorithm1Solver&&) noexcept = default;
Algorithm1Solver& Algorithm1Solver::operator=(Algorithm1Solver&&) noexcept =
    default;

Measures Algorithm1Solver::solve() const {
  return impl_->measures_at(impl_->model.dims());
}

Measures Algorithm1Solver::solve_at(Dims at) const {
  return impl_->measures_at(at);
}

double Algorithm1Solver::log_q(Dims at) const { return impl_->lq(at); }

double Algorithm1Solver::non_blocking(std::size_t r, Dims at) const {
  return impl_->non_blocking_at(r, at);
}

unsigned Algorithm1Solver::scaling_events() const noexcept {
  return impl_->scaling_events;
}

bool Algorithm1Solver::degenerate() const noexcept {
  return impl_->degenerate;
}

const CrossbarModel& Algorithm1Solver::model() const noexcept {
  return impl_->model;
}

}  // namespace xbar::core
