#include "core/algorithm1.hpp"

#include <memory>
#include <utility>

#include "core/algorithm1_internal.hpp"

namespace xbar::core {

Algorithm1Solver::Algorithm1Solver(CrossbarModel model,
                                   Algorithm1Options options)
    : impl_(std::make_unique<Impl>(std::move(model), options)) {}

Algorithm1Solver::Algorithm1Solver(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

Algorithm1Solver::~Algorithm1Solver() = default;
Algorithm1Solver::Algorithm1Solver(Algorithm1Solver&&) noexcept = default;
Algorithm1Solver& Algorithm1Solver::operator=(Algorithm1Solver&&) noexcept =
    default;

Measures Algorithm1Solver::solve() const {
  return impl_->measures_at(impl_->model.dims());
}

Measures Algorithm1Solver::solve_at(Dims at) const {
  return impl_->measures_at(at);
}

double Algorithm1Solver::log_q(Dims at) const { return impl_->lq(at); }

double Algorithm1Solver::non_blocking(std::size_t r, Dims at) const {
  return impl_->non_blocking_at(r, at);
}

unsigned Algorithm1Solver::scaling_events() const noexcept {
  return impl_->scaling_events;
}

bool Algorithm1Solver::degenerate() const noexcept {
  return impl_->degenerate;
}

const CrossbarModel& Algorithm1Solver::model() const noexcept {
  return impl_->model;
}

}  // namespace xbar::core
