#include "core/knapsack.hpp"

#include <cassert>
#include <stdexcept>

#include "numeric/combinatorics.hpp"
#include "numeric/scaled_float.hpp"

namespace xbar::core {

KnapsackResult solve_knapsack(unsigned capacity,
                              std::span<const KnapsackClass> classes,
                              std::span<const unsigned> reservations) {
  using num::ScaledFloat;
  if (!reservations.empty() && reservations.size() != classes.size()) {
    throw std::invalid_argument(
        "knapsack: reservations must match class count");
  }
  for (const auto& c : classes) {
    if (c.trunks == 0 || c.trunks > capacity) {
      throw std::invalid_argument("knapsack: class trunks out of range");
    }
    if (!(c.alpha > 0.0) || !(c.mu > 0.0)) {
      throw std::invalid_argument("knapsack: inadmissible class parameters");
    }
    // x >= 1 is fine here: the knapsack truncates the chain at C trunks, so
    // unlike the infinite-server case the stationary law exists for any
    // x >= 0 (the recursion is formal coefficient matching).  Smooth
    // classes must merely keep the intensity non-negative over the
    // feasible range.
    if (c.beta < 0.0 &&
        c.alpha + c.beta * static_cast<double>(capacity) < -1e-15) {
      throw std::invalid_argument(
          "knapsack: smooth class intensity goes negative in range");
    }
  }
  for (const unsigned res : reservations) {
    if (res > capacity) {
      throw std::invalid_argument("knapsack: reservation exceeds capacity");
    }
  }
  // Class r's admission ceiling: occupancy after admission may not exceed
  // ceil_r = C - res_r.  With no reservations every ceiling is C and the
  // recursion below is exactly Kaufman-Roberts/Delbrouck.
  const auto ceiling = [&](std::size_t r) {
    return capacity - (reservations.empty() ? 0U : reservations[r]);
  };

  // Unnormalized occupancy g(j) and per-class y_r(j), in extended range
  // (heavy overload can push g far past double).
  const std::size_t R = classes.size();
  std::vector<ScaledFloat> g(capacity + 1);
  std::vector<std::vector<ScaledFloat>> y(R,
                                          std::vector<ScaledFloat>(capacity + 1));
  g[0] = ScaledFloat::one();
  for (unsigned j = 1; j <= capacity; ++j) {
    ScaledFloat sum;
    for (std::size_t r = 0; r < R; ++r) {
      const unsigned a = classes[r].trunks;
      // Reservation truncation (Roberts' approximation): class r holds no
      // occupancy above its admission ceiling.
      if (j < a || j > ceiling(r)) {
        continue;
      }
      y[r][j] = g[j - a] + ScaledFloat{classes[r].x()} * y[r][j - a];
      sum += ScaledFloat{static_cast<double>(a) * classes[r].rho()} * y[r][j];
    }
    g[j] = sum / ScaledFloat{static_cast<double>(j)};
  }

  // Prefix sums S(c) = sum_{j<=c} g(j).
  std::vector<ScaledFloat> prefix(capacity + 1);
  prefix[0] = g[0];
  for (unsigned j = 1; j <= capacity; ++j) {
    prefix[j] = prefix[j - 1] + g[j];
  }
  const ScaledFloat total = prefix[capacity];

  KnapsackResult result;
  result.occupancy.resize(capacity + 1);
  double mean_occupancy = 0.0;
  for (unsigned j = 0; j <= capacity; ++j) {
    result.occupancy[j] = ScaledFloat::ratio(g[j], total);
    mean_occupancy += static_cast<double>(j) * result.occupancy[j];
  }
  result.utilization =
      capacity > 0 ? mean_occupancy / static_cast<double>(capacity) : 0.0;

  result.time_congestion.resize(R);
  result.call_congestion.resize(R);
  result.concurrency.resize(R);
  // E[k_r 1{occupancy <= t}] = rho_r sum_m x^m S(t - (m+1)a) — the same
  // derivative identity as the crossbar's V, with the feasibility
  // constraint passing through as an index shift.
  const auto truncated_mean = [&](std::size_t r, long t) {
    const unsigned a = classes[r].trunks;
    ScaledFloat acc;
    ScaledFloat xm = ScaledFloat::one();
    for (unsigned m = 0;; ++m) {
      const long idx =
          t - static_cast<long>(a) * (static_cast<long>(m) + 1);
      if (idx < 0) {
        break;
      }
      acc += xm * prefix[static_cast<std::size_t>(idx)];
      if (classes[r].x() == 0.0) {
        break;
      }
      xm *= ScaledFloat{classes[r].x()};
    }
    return classes[r].rho() * ScaledFloat::ratio(acc, total);
  };
  for (std::size_t r = 0; r < R; ++r) {
    const unsigned a = classes[r].trunks;
    const long ceil_r = static_cast<long>(ceiling(r));
    const long free_cap = ceil_r - static_cast<long>(a);
    if (free_cap < 0) {
      // Reservation leaves no room to admit class r at all.
      result.time_congestion[r] = 1.0;
      result.call_congestion[r] = 1.0;
      result.concurrency[r] = 0.0;
      continue;
    }
    // Time congestion: P(occupancy > ceil_r - a) — the states in which a
    // class-r arrival is refused (by capacity or by reservation).
    result.time_congestion[r] =
        1.0 -
        ScaledFloat::ratio(prefix[static_cast<std::size_t>(free_cap)], total);
    // Under the truncation approximation class r holds no occupancy above
    // its ceiling, so its mean lives below ceil_r.
    result.concurrency[r] = truncated_mean(r, ceil_r);
    // Call congestion: 1 - E[lambda_r 1{fits}] / E[lambda_r] with
    // lambda_r = alpha_r + beta_r k_r (equals time congestion for Poisson).
    const double p_fits =
        ScaledFloat::ratio(prefix[static_cast<std::size_t>(free_cap)], total);
    const double accepted = classes[r].alpha * p_fits +
                            classes[r].beta * truncated_mean(r, free_cap);
    const double offered =
        classes[r].alpha + classes[r].beta * result.concurrency[r];
    result.call_congestion[r] =
        offered > 0.0 ? 1.0 - accepted / offered : 0.0;
  }
  return result;
}

KnapsackResult solve_knapsack(unsigned capacity,
                              std::span<const KnapsackClass> classes) {
  return solve_knapsack(capacity, classes, {});
}

std::vector<KnapsackClass> knapsack_classes(const CrossbarModel& model) {
  const Dims dims = model.dims();
  std::vector<KnapsackClass> classes;
  classes.reserve(model.num_classes());
  for (const auto& c : model.normalized_classes()) {
    const double tuples = num::falling_factorial(dims.n1, c.bandwidth) *
                          num::falling_factorial(dims.n2, c.bandwidth);
    KnapsackClass k;
    k.trunks = c.bandwidth;
    k.alpha = tuples * c.alpha;  // empty-switch arrival rate, exactly
    k.beta = tuples * c.beta;
    k.mu = c.mu;
    classes.push_back(k);
  }
  return classes;
}

KnapsackResult knapsack_approximation(const CrossbarModel& model) {
  const std::vector<KnapsackClass> classes = knapsack_classes(model);
  return solve_knapsack(model.dims().cap(), classes);
}

KnapsackResult knapsack_approximation(const CrossbarModel& model,
                                      std::span<const unsigned> reservations) {
  const std::vector<KnapsackClass> classes = knapsack_classes(model);
  return solve_knapsack(model.dims().cap(), classes, reservations);
}

}  // namespace xbar::core
