// Stochastic-knapsack (single-resource) baseline: the Kaufman-Roberts
// occupancy recursion, generalized to BPP arrivals per Delbrouck (the
// paper's references [11] and [13]).
//
// A knapsack of C trunks carries R classes; class r holds a_r trunks per
// connection and arrives with BPP intensity lambda_r(k_r) = alpha_r +
// beta_r k_r.  The stationary trunk-occupancy distribution q(j) satisfies
//
//     j q(j) = sum_r a_r rho_r y_r(j),
//     y_r(j) = q(j - a_r) + (beta_r/mu_r) y_r(j - a_r),
//
// the 1-D analogue of the paper's Algorithm 1 (the crossbar's V recursion
// collapses onto it when the Psi resource-thinning factor is dropped).
//
// As a *crossbar approximation* the knapsack treats the switch as
// C = min(N1, N2) interchangeable trunks: it keeps the capacity constraint
// but ignores the two-sided port-matching factor
// P(N1-u,a) P(N2-u,a) / (P(N1,a) P(N2,a)) that thins acceptance even when
// capacity remains — so it *underestimates* blocking, increasingly with
// utilization.  bench/baseline_compare quantifies the gap.

#pragma once

#include <span>
#include <vector>

#include "core/model.hpp"

namespace xbar::core {

/// One class offered to the knapsack, in knapsack-native units (arrival
/// intensity per *class*, not per tuple).
struct KnapsackClass {
  unsigned trunks = 1;   ///< a_r
  double alpha = 0.0;    ///< state-independent arrival intensity
  double beta = 0.0;     ///< state-dependent slope (BPP)
  double mu = 1.0;       ///< per-connection completion rate

  [[nodiscard]] double rho() const noexcept { return alpha / mu; }
  [[nodiscard]] double x() const noexcept { return beta / mu; }
};

/// Knapsack solution.
struct KnapsackResult {
  std::vector<double> occupancy;        ///< q(j), j = 0..C, normalized
  std::vector<double> time_congestion;  ///< per class: P(free trunks < a_r)
  std::vector<double> call_congestion;  ///< per class: blocked arrival share
  std::vector<double> concurrency;      ///< per class: E[k_r]
  double utilization = 0.0;             ///< E[j] / C
};

/// Solve the knapsack exactly via the Kaufman-Roberts/Delbrouck recursion.
/// O(C R) time.  Peaky classes may have any x_r >= 0 (the truncation at C
/// trunks keeps the chain ergodic even where the infinite-server series
/// diverges); smooth classes must keep their intensity non-negative over
/// the feasible range.
[[nodiscard]] KnapsackResult solve_knapsack(
    unsigned capacity, std::span<const KnapsackClass> classes);

/// Trunk-reservation variant: class r is admitted only while occupancy
/// stays at or below C - reservations[r] after admission, protecting the
/// top `reservations[r]` trunks for other (typically higher-weight)
/// classes.  Reservation breaks product form, so this uses the standard
/// one-dimensional approximation (Roberts / Tran-Gia): the y_r recursion is
/// truncated at the class's admission ceiling, y_r(j) = 0 for
/// j > C - reservations[r].  With all-zero reservations the result is
/// bit-identical to the exact recursion above.  `reservations` must have
/// one entry per class, each <= capacity.
[[nodiscard]] KnapsackResult solve_knapsack(
    unsigned capacity, std::span<const KnapsackClass> classes,
    std::span<const unsigned> reservations);

/// The crossbar model's classes in knapsack-native units: capacity
/// min(N1, N2), intensities aggregated over all port tuples
/// (alpha_K = P(N1,a) P(N2,a) alpha_r etc.), which matches the crossbar's
/// empty-switch arrival rates exactly.  Exposed so admission-policy
/// searches (trunk reservation) can rebuild the class list once and solve
/// it under many reservation vectors.
[[nodiscard]] std::vector<KnapsackClass> knapsack_classes(
    const CrossbarModel& model);

/// The knapsack viewed as an approximation of a crossbar model: the
/// aggregated classes above at capacity min(N1, N2), which drops only the
/// port-matching thinning.
[[nodiscard]] KnapsackResult knapsack_approximation(const CrossbarModel& model);

/// knapsack_approximation under per-class trunk reservation.
[[nodiscard]] KnapsackResult knapsack_approximation(
    const CrossbarModel& model, std::span<const unsigned> reservations);

}  // namespace xbar::core
