// Explicit continuous-time Markov chain over the enumerated state space.
//
// The product form (paper eq. 2) answers only steady-state questions.  For
// small systems this module builds the full generator of {k(t)} and adds:
//
//   * an independent stationary solver (power iteration on the uniformized
//     chain) — the fifth computation path cross-validating the product
//     form, and one that does NOT assume reversibility;
//   * transient analysis via uniformization: the state distribution p(t)
//     from any initial state, hence time-dependent blocking B_r(t) — how
//     fast a cold or saturated switch relaxes to the steady state the
//     paper computes (bench/transient_analysis).
//
// State space is exponential in R; practical up to a few thousand states
// (e.g. 16x16 with 2-3 classes).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "core/state_space.hpp"

namespace xbar::core {

class MarkovChain {
 public:
  /// Enumerates Γ(N) and builds the sparse generator.  Throws
  /// std::invalid_argument if the state space exceeds `max_states`
  /// (guardrail against accidental blow-up).
  explicit MarkovChain(CrossbarModel model, std::size_t max_states = 2'000'000);

  /// Number of states |Γ(N)|.
  [[nodiscard]] std::size_t num_states() const noexcept {
    return states_.size();
  }

  /// The state vector of state index s.
  [[nodiscard]] std::span<const unsigned> state(std::size_t s) const {
    return states_.at(s);
  }

  /// Index of a state vector (states are stored in lexicographic order).
  /// Throws std::out_of_range for infeasible states.
  [[nodiscard]] std::size_t state_index(std::span<const unsigned> k) const;

  /// Index of the empty state k = 0.
  [[nodiscard]] std::size_t empty_state() const noexcept { return 0; }

  /// Index of a maximally loaded state: greedily fills classes in order.
  [[nodiscard]] std::size_t saturated_state() const;

  /// Stationary distribution by power iteration on the uniformized DTMC.
  /// Converges for any irreducible finite chain; no reversibility assumed.
  [[nodiscard]] std::vector<double> stationary(double tolerance = 1e-13,
                                               int max_iterations = 200000) const;

  /// Transient distribution p(t) from the given initial state, by
  /// uniformization with Poisson-tail truncation at `epsilon`.
  [[nodiscard]] std::vector<double> transient(double t,
                                              std::size_t initial_state,
                                              double epsilon = 1e-12) const;

  /// Non-blocking probability of class r under an arbitrary state
  /// distribution: sum_k p(k) P(N1-u,a)P(N2-u,a)/(P(N1,a)P(N2,a)) — the
  /// same probe the simulator uses; equals B_r(N) under the stationary law.
  [[nodiscard]] double non_blocking_under(std::span<const double> p,
                                          std::size_t r) const;

  /// E[k_r] under an arbitrary state distribution.
  [[nodiscard]] double concurrency_under(std::span<const double> p,
                                         std::size_t r) const;

  /// The uniformization rate Lambda (max total outflow over states).
  [[nodiscard]] double uniformization_rate() const noexcept { return lambda_; }

  [[nodiscard]] const CrossbarModel& model() const noexcept { return model_; }

 private:
  /// One step of the uniformized DTMC: out = in * P where
  /// P = I + Q/Lambda.
  void step(std::span<const double> in, std::span<double> out) const;

  struct Transition {
    std::uint32_t from;
    std::uint32_t to;
    double rate;
  };

  CrossbarModel model_;
  std::vector<StateVector> states_;
  std::vector<unsigned> usage_;          // k·A per state
  std::vector<Transition> transitions_;  // off-diagonal rates
  std::vector<double> exit_rate_;        // total outflow per state
  double lambda_ = 0.0;
};

}  // namespace xbar::core
