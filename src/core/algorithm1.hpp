// Algorithm 1 (paper §5): recursive computation of the scaled normalization
// function Q(N) = G(N)/(N1! N2!) over the full (N1+1) x (N2+1) grid,
//
//   Q(n+1_i) = [ Q(n) + sum_{r in R1} a_r rho_r Q(n+1_i - a_r I)
//                     + sum_{r in R2} a_r rho_r V(n+1_i, r) ] / (n_i + 1)
//   V(n, r)  = Q(n - a_r I) + (beta_r/mu_r) V(n - a_r I, r)
//
// with Q(0,0) = 1 and Q == 0 off the non-negative quadrant.  Complexity
// O(N1 N2 (R1 + R2)), exactly as the paper claims.
//
// Numeric backends:
//   * kScaledFloat (default)      — every cell carries its own binary
//     exponent; immune to under/overflow at any system size.
//   * kDoubleDynamicScaling       — IEEE double with the paper's §6 global
//     rescaling by omega whenever the grid drifts out of range.
//   * kLongDouble / kDoubleRaw    — plain arithmetic; kDoubleRaw exists to
//     demonstrate *why* scaling is needed (see bench/ablation_scaling).
//   * kLogDomain                  — every cell is a signed log-domain value
//     (num::SignedLog); slowest, but no linear-domain intermediate is ever
//     materialized.  The last rung of the sweep engine's numeric-escalation
//     ladder.
//
// Because all performance measures are ratios of Q values, the scaling factor
// cancels (paper §6), so every backend reports identical measures wherever it
// doesn't under/overflow.

#pragma once

#include <cstddef>
#include <memory>

#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

/// Arithmetic used for the Q grid.
enum class Algorithm1Backend {
  kScaledFloat,
  kDoubleDynamicScaling,
  kLongDouble,
  kDoubleRaw,
  kLogDomain,
};

/// Options for Algorithm 1.
struct Algorithm1Options {
  Algorithm1Backend backend = Algorithm1Backend::kScaledFloat;

  /// Dynamic-scaling thresholds (kDoubleDynamicScaling only): when any cell
  /// of the most recent row leaves [scale_low, scale_high], the whole grid is
  /// multiplied by a compensating omega.
  double scale_high = 1e150;
  double scale_low = 1e-150;
};

/// Computes the Q/V grids once and answers measure queries for the full
/// system and any subsystem (needed by the shadow-cost analysis, which
/// evaluates W(N - a_r I) with unchanged per-tuple rates).
class Algorithm1Solver {
 public:
  explicit Algorithm1Solver(CrossbarModel model, Algorithm1Options options = {});
  ~Algorithm1Solver();

  Algorithm1Solver(Algorithm1Solver&&) noexcept;
  Algorithm1Solver& operator=(Algorithm1Solver&&) noexcept;
  Algorithm1Solver(const Algorithm1Solver&) = delete;
  Algorithm1Solver& operator=(const Algorithm1Solver&) = delete;

  /// Measures at the full dimensions.
  [[nodiscard]] Measures solve() const;

  /// Measures at a subsystem (component-wise <= the model dims) with the
  /// same per-tuple rates.
  [[nodiscard]] Measures solve_at(Dims at) const;

  /// ln Q(at) — for cross-validation against the brute-force and
  /// generating-function solvers.  Meaningless (and asserts) for kDoubleRaw
  /// after an overflow.
  [[nodiscard]] double log_q(Dims at) const;

  /// Non-blocking probability B_r at a subsystem.
  [[nodiscard]] double non_blocking(std::size_t r, Dims at) const;

  /// Number of times the dynamic-scaling backend rescaled the grid (0 for
  /// other backends) — exposed for the §6 ablation.
  [[nodiscard]] unsigned scaling_events() const noexcept;

  /// True if the backend's arithmetic degenerated (inf/NaN/total underflow
  /// anywhere in the grid) — only possible for kDoubleRaw / kLongDouble.
  [[nodiscard]] bool degenerate() const noexcept;

  [[nodiscard]] const CrossbarModel& model() const noexcept;

 private:
  struct Impl;
  friend class Algorithm1BatchSolver;

  /// From-parts constructor used by the batched solver, which fills many
  /// scenarios' grids in one traversal and de-interleaves them into
  /// ordinary solvers.
  explicit Algorithm1Solver(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace xbar::core
