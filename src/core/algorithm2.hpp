// Algorithm 2 (paper §5.1): mean-value computation directly on ratios of
// normalization functions, avoiding the astronomically scaled Q values
// entirely — the numerically stable choice for large switches.
//
// Grids maintained over the (N1+1) x (N2+1) lattice:
//
//   F_i(n) = Q(n - 1_i)/Q(n)
//   H_r(n) = Q(n - a_r I)/Q(n)                   (0 when min(n) < a_r)
//   D_r(n) = sum_m x_r^m Q(n - m a_r I)/Q(n)     (bursty classes only)
//
// with the corrected recursions (see DESIGN.md "Paper errata"):
//
//   F_i(n) = n_i / (1 + sum_{R1} a_r rho_r U_r(n,i)
//                    + sum_{R2} a_r rho_r U_r(n,i) D_r(n - a_r I))
//   U_r(n,i) = Q(n - a_r I)/Q(n - 1_i)   — a product of already-computed
//              F factors along a lattice path (the paper's L_{jr})
//   H_r(n) = F_i(n) U_r(n,i)             (paper eq. 14)
//   D_r(n) = 1 + x_r H_r(n) D_r(n - a_r I)
//
// Boundaries: Q(n1,0) = 1/n1! gives F_1(n1,0) = n1 and F_2(0,n2) = n2;
// H_r = 0 and D_r = 1 wherever the class cannot fit.
//
// Complexity O(N1 N2 R a_max); every stored quantity is a tame ratio, so the
// algorithm runs at any system size without scaling tricks.

#pragma once

#include <cstddef>
#include <memory>

#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

class Algorithm2Solver {
 public:
  explicit Algorithm2Solver(CrossbarModel model);
  ~Algorithm2Solver();

  Algorithm2Solver(Algorithm2Solver&&) noexcept;
  Algorithm2Solver& operator=(Algorithm2Solver&&) noexcept;
  Algorithm2Solver(const Algorithm2Solver&) = delete;
  Algorithm2Solver& operator=(const Algorithm2Solver&) = delete;

  /// Measures at the full dimensions.
  [[nodiscard]] Measures solve() const;

  /// Measures at a subsystem with the same per-tuple rates.
  [[nodiscard]] Measures solve_at(Dims at) const;

  /// Non-blocking probability B_r at a subsystem.
  [[nodiscard]] double non_blocking(std::size_t r, Dims at) const;

  /// Ratio accessors for cross-validation tests.
  [[nodiscard]] double f1(Dims at) const;  ///< Q(n-1_1)/Q(n), n1 >= 1
  [[nodiscard]] double f2(Dims at) const;  ///< Q(n-1_2)/Q(n), n2 >= 1
  [[nodiscard]] double h(std::size_t r, Dims at) const;  ///< Q(n-a_r I)/Q(n)

  /// ln Q(at) reconstructed by summing ln F factors along a lattice path —
  /// used only by validation tests (Algorithm 2 never needs Q itself).
  [[nodiscard]] double log_q(Dims at) const;

  [[nodiscard]] const CrossbarModel& model() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xbar::core
