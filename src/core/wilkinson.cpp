#include "core/wilkinson.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/erlang.hpp"

namespace xbar::core {

OverflowMoments overflow_moments(double a, unsigned c) {
  assert(a >= 0.0);
  OverflowMoments m;
  if (a == 0.0) {
    return m;
  }
  const double b = erlang_b(a, c);
  m.mean = a * b;
  m.variance = m.mean * (1.0 - m.mean +
                         a / (static_cast<double>(c) + 1.0 - a + m.mean));
  return m;
}

EquivalentRandom fit_equivalent_random(double mean, double z) {
  if (!(mean > 0.0) || z < 1.0) {
    throw std::invalid_argument(
        "ERT fit requires mean > 0 and peakedness Z >= 1");
  }
  EquivalentRandom eq;
  const double variance = z * mean;
  // Rapp's approximation.
  eq.load = variance + 3.0 * z * (z - 1.0);
  eq.trunks = eq.load * (mean + z) / (mean + z - 1.0) - mean - 1.0;
  if (eq.trunks < 0.0) {
    eq.trunks = 0.0;
  }
  return eq;
}

double wilkinson_blocking(double mean, double z, unsigned trunks) {
  if (z < 1.0) {
    throw std::invalid_argument("ERT requires peakedness Z >= 1");
  }
  if (z == 1.0) {
    return erlang_b(mean, trunks);
  }
  const EquivalentRandom eq = fit_equivalent_random(mean, z);
  // Overflow mean past (c* + C) trunks, relative to the stream's own mean.
  const double total = eq.trunks + static_cast<double>(trunks);
  const double overflow = eq.load * erlang_b_real(eq.load, total);
  const double blocking = overflow / mean;
  return blocking < 1.0 ? blocking : 1.0;
}

}  // namespace xbar::core
