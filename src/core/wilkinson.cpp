#include "core/wilkinson.hpp"

#include <cmath>
#include <string>

#include "core/erlang.hpp"
#include "core/error.hpp"

namespace xbar::core {

namespace {

// Typed domain checks (kDomain) so sweep fault isolation can classify a bad
// (mean, Z) pair as an input failure rather than a numeric breakdown.
void require_peakedness(double z) {
  if (!(std::isfinite(z) && z >= 1.0)) {
    raise(ErrorKind::kDomain,
          "ERT requires a finite peakedness Z >= 1, got " + std::to_string(z));
  }
}

}  // namespace

OverflowMoments overflow_moments(double a, unsigned c) {
  if (!(std::isfinite(a) && a >= 0.0)) {
    raise(ErrorKind::kDomain,
          "overflow_moments requires a finite load >= 0, got " +
              std::to_string(a));
  }
  OverflowMoments m;
  if (a == 0.0) {
    return m;
  }
  const double b = erlang_b(a, c);
  m.mean = a * b;
  m.variance = m.mean * (1.0 - m.mean +
                         a / (static_cast<double>(c) + 1.0 - a + m.mean));
  return m;
}

EquivalentRandom fit_equivalent_random(double mean, double z) {
  if (!(std::isfinite(mean) && mean > 0.0)) {
    raise(ErrorKind::kDomain,
          "ERT fit requires a finite overflow mean > 0, got " +
              std::to_string(mean));
  }
  require_peakedness(z);
  EquivalentRandom eq;
  const double variance = z * mean;
  // Rapp's approximation.
  eq.load = variance + 3.0 * z * (z - 1.0);
  eq.trunks = eq.load * (mean + z) / (mean + z - 1.0) - mean - 1.0;
  if (eq.trunks < 0.0) {
    eq.trunks = 0.0;
  }
  return eq;
}

double wilkinson_blocking(double mean, double z, unsigned trunks) {
  require_peakedness(z);
  if (!(std::isfinite(mean) && mean >= 0.0)) {
    raise(ErrorKind::kDomain,
          "wilkinson_blocking requires a finite mean >= 0, got " +
              std::to_string(mean));
  }
  if (mean == 0.0) {
    return 0.0;  // no offered traffic, nothing blocked
  }
  if (z == 1.0) {
    return erlang_b(mean, trunks);
  }
  const EquivalentRandom eq = fit_equivalent_random(mean, z);
  // Overflow mean past (c* + C) trunks, relative to the stream's own mean.
  const double total = eq.trunks + static_cast<double>(trunks);
  const double overflow = eq.load * erlang_b_real(eq.load, total);
  const double blocking = overflow / mean;
  return blocking < 1.0 ? blocking : 1.0;
}

}  // namespace xbar::core
