// Internals of Algorithm 1, shared by the single-scenario solver
// (algorithm1.cpp) and the batched solver (algorithm1_batch.cpp).  Not part
// of the public API — include only from those translation units and tests
// that need white-box access.
//
// The grid fill is phase-structured per row so the hot loops are stride-1
// elementwise passes the compiler can vectorize (see numeric/simd.hpp):
//
//   phase V  — for each active bursty class, V(n1, n2) = Q(n1-a, n2-a) +
//              x V(n1-a, n2-a) across the row: pure elementwise reads from
//              finished rows, vectorizable.
//   phase A  — per-class contribution accumulator acc[n1] built by one
//              elementwise pass per active class: vectorizable.
//   phase B  — the loop-carried chain Q(n1) = (Q(n1-1) + acc[n1]) / n1,
//              the only part that must stay scalar.
//
// Classes activate when min(n1, n2) >= a_r; the n2 condition is the sorted
// active prefix (np/nb), the n1 condition is each class's loop starting at
// n1 = a_r, so no per-cell guard remains anywhere.

#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>
#include <variant>
#include <vector>

#include "core/algorithm1.hpp"
#include "core/model.hpp"
#include "numeric/arena.hpp"
#include "numeric/combinatorics.hpp"
#include "numeric/log_domain.hpp"
#include "numeric/scaled_float.hpp"
#include "numeric/simd.hpp"

namespace xbar::core::alg1 {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

// Small adapter so one kernel serves ScaledFloat, long double and double.
template <typename Real>
struct RealOps {
  static Real from_double(double v) { return static_cast<Real>(v); }
  static double log_of(Real v) {
    if (v == Real(0)) {
      return kNegInf;
    }
    if (v < Real(0)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return static_cast<double>(std::log(v));
  }
  static bool positive_finite(Real v) {
    return std::isfinite(v) && v > Real(0);
  }
  /// Valid V-plane entry: finite and non-negative (zero means "subsystem too
  /// small", which is legitimate; negative means the Bernoulli V-recursion
  /// cancelled catastrophically).
  static bool finite_nonneg(Real v) {
    return std::isfinite(v) && v >= Real(0);
  }
};

template <>
struct RealOps<num::SignedLog> {
  static num::SignedLog from_double(double v) { return num::SignedLog{v}; }
  static double log_of(const num::SignedLog& v) {
    if (v.is_zero()) {
      return kNegInf;
    }
    // Negative values (catastrophic cancellation in the Bernoulli
    // V-recursion) surface as NaN so degeneracy detection catches them.
    return v.log();
  }
  static bool positive_finite(const num::SignedLog& v) {
    return v.sign() > 0 && !std::isnan(v.log_magnitude()) &&
           v.log_magnitude() < std::numeric_limits<double>::infinity();
  }
  static bool finite_nonneg(const num::SignedLog& v) {
    if (v.is_zero()) {
      return true;
    }
    return positive_finite(v);
  }
};

template <>
struct RealOps<num::ScaledFloat> {
  static num::ScaledFloat from_double(double v) {
    return num::ScaledFloat{v};
  }
  static double log_of(const num::ScaledFloat& v) {
    if (v.is_zero()) {
      return kNegInf;
    }
    if (v.sign() < 0) {
      // Only reachable through catastrophic cancellation in the Bernoulli
      // V-recursion; surfaces as NaN so degeneracy detection catches it.
      return std::numeric_limits<double>::quiet_NaN();
    }
    return v.log();
  }
  static bool positive_finite(const num::ScaledFloat& v) {
    return v.sign() > 0 && std::isfinite(v.mantissa());
  }
  static bool finite_nonneg(const num::ScaledFloat& v) {
    return v.sign() >= 0 && std::isfinite(v.mantissa());
  }
};

// The classes, split once into the paper's R1 (Poisson) and R2 (bursty)
// sets and sorted by bandwidth, with everything the inner loops need
// hoisted out of the grid sweep.  `slot_of` maps an original class index to
// its V plane in the SoA block (kNoSlot for Poisson classes).
struct PoissonConst {
  unsigned a = 1;
  double coeff = 0.0;  // a * rho
};

struct BurstyConst {
  unsigned a = 1;
  double coeff = 0.0;   // a * rho
  double x = 0.0;       // beta/mu
  std::size_t cls = 0;  // original class index
};

struct ClassPartition {
  std::vector<PoissonConst> poisson;  // sorted by a
  std::vector<BurstyConst> bursty;    // sorted by a
  std::vector<std::size_t> slot_of;   // per original class index
  unsigned max_a = 1;
};

inline ClassPartition partition_classes(const CrossbarModel& model) {
  ClassPartition p;
  p.slot_of.assign(model.num_classes(), kNoSlot);
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const NormalizedClass& c = model.normalized(r);
    const double coeff = static_cast<double>(c.bandwidth) * c.rho();
    if (c.is_poisson()) {
      p.poisson.push_back(PoissonConst{c.bandwidth, coeff});
    } else {
      p.bursty.push_back(BurstyConst{c.bandwidth, coeff, c.x(), r});
    }
    p.max_a = std::max(p.max_a, c.bandwidth);
  }
  const auto by_a = [](const auto& l, const auto& r) { return l.a < r.a; };
  std::stable_sort(p.poisson.begin(), p.poisson.end(), by_a);
  std::stable_sort(p.bursty.begin(), p.bursty.end(), by_a);
  for (std::size_t b = 0; b < p.bursty.size(); ++b) {
    p.slot_of[p.bursty[b].cls] = b;
  }
  return p;
}

// Raw recurrence output, arena-backed (numeric/arena.hpp) so repeated
// solves recycle the same blocks.  Logs are NOT materialized here: a
// full-plane log snapshot costs one log() per cell — comparable to the
// recurrence itself for the double backends — while measure queries only
// ever touch a handful of cells.  The solver keeps the raw grids and takes
// logs on demand.
template <typename Real>
struct Grids {
  using real_type = Real;
  num::ArenaBuffer<Real> q;  // (N1+1) x (N2+1), row-major in n2
  num::ArenaBuffer<Real> v;  // bursty V planes, slot-major SoA
};

struct DynGrids {
  num::ArenaBuffer<double> q;
  num::ArenaBuffer<double> v;
  num::ArenaBuffer<double> row_log_scale;  // stored = true * exp(scale)
};

using GridStore = std::variant<Grids<num::ScaledFloat>, Grids<long double>,
                               Grids<double>, Grids<num::SignedLog>, DynGrids>;

// Phase-structured kernel in the chosen Real arithmetic.  The bursty V
// grids live in one contiguous slot-major SoA block so the per-class passes
// walk dense memory.
template <typename Real>
Grids<Real> build_grid(const CrossbarModel& model,
                       const ClassPartition& part) {
  using Ops = RealOps<Real>;
  const unsigned w = model.dims().n1 + 1;
  const unsigned h = model.dims().n2 + 1;
  const std::size_t plane = static_cast<std::size_t>(w) * h;
  const std::size_t B = part.bursty.size();
  const std::size_t P = part.poisson.size();

  Grids<Real> g;
  g.q = num::ArenaBuffer<Real>(plane);
  g.v = num::ArenaBuffer<Real>(B * plane);
  Real* const q = g.q.data();
  Real* const v = g.v.data();

  // Per-class constants and small-integer divisors converted to Real
  // exactly once.
  std::vector<Real> pcoeff(P, Ops::from_double(0.0));
  for (std::size_t p = 0; p < P; ++p) {
    pcoeff[p] = Ops::from_double(part.poisson[p].coeff);
  }
  std::vector<Real> bcoeff(B, Ops::from_double(0.0));
  std::vector<Real> bx(B, Ops::from_double(0.0));
  for (std::size_t b = 0; b < B; ++b) {
    bcoeff[b] = Ops::from_double(part.bursty[b].coeff);
    bx[b] = Ops::from_double(part.bursty[b].x);
  }
  std::vector<Real> rint(std::max(w, h), Ops::from_double(0.0));
  for (unsigned k = 0; k < rint.size(); ++k) {
    rint[k] = Ops::from_double(k);
  }
  const Real zero = Ops::from_double(0.0);
  num::ArenaBuffer<Real> accbuf(w);
  Real* const acc = accbuf.data();

  q[0] = Ops::from_double(1.0);
  // Row 0 is the pure factorial row: Q(n1, 0) = 1/n1! (no class fits).
  for (unsigned n1 = 1; n1 < w; ++n1) {
    q[n1] = q[n1 - 1] / rint[n1];
  }
  std::size_t np = 0;  // active prefix of part.poisson (a <= n2)
  std::size_t nb = 0;  // active prefix of part.bursty
  for (unsigned n2 = 1; n2 < h; ++n2) {
    while (np < P && part.poisson[np].a <= n2) {
      ++np;
    }
    while (nb < B && part.bursty[nb].a <= n2) {
      ++nb;
    }
    const std::size_t row = static_cast<std::size_t>(n2) * w;
    // Column 0: no class fits (a >= 1 > n1), so Q(0, n2) = Q(0, n2-1)/n2.
    q[row] = q[row - w] / rint[n2];

    // Phase V: each active bursty class reads the finished diagonal row
    // (n1 - a, n2 - a) elementwise.
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = part.bursty[b].a;
      if (a >= w) {
        continue;
      }
      const std::size_t base = static_cast<std::size_t>(n2 - a) * w;
      Real* const vb = v + b * plane;
      const Real x = bx[b];
      const std::size_t count = w - a;
      XBAR_PRAGMA_SIMD
      for (std::size_t j = 0; j < count; ++j) {
        vb[row + a + j] = q[base + j] + x * vb[base + j];
      }
    }

    // Phase A: per-class contributions, one elementwise pass per class.
    for (unsigned n1 = 1; n1 < w; ++n1) {
      acc[n1] = zero;
    }
    for (std::size_t p = 0; p < np; ++p) {
      const unsigned a = part.poisson[p].a;
      if (a >= w) {
        continue;
      }
      const std::size_t base = static_cast<std::size_t>(n2 - a) * w;
      const Real c = pcoeff[p];
      const std::size_t count = w - a;
      XBAR_PRAGMA_SIMD
      for (std::size_t j = 0; j < count; ++j) {
        acc[a + j] += c * q[base + j];
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = part.bursty[b].a;
      if (a >= w) {
        continue;
      }
      const Real* const vb = v + b * plane;
      const Real c = bcoeff[b];
      const std::size_t count = w - a;
      XBAR_PRAGMA_SIMD
      for (std::size_t j = 0; j < count; ++j) {
        acc[a + j] += c * vb[row + a + j];
      }
    }

    // Phase B: the loop-carried chain.
    for (unsigned n1 = 1; n1 < w; ++n1) {
      q[row + n1] = (q[row + n1 - 1] + acc[n1]) / rint[n1];
    }
  }
  return g;
}

// The paper's §6 backend: IEEE double with explicit dynamic scaling.  Each
// row carries a cumulative log scale; rows are renormalized whenever their
// newest entry leaves [scale_low, scale_high].  References to earlier rows
// are adjusted by the scale difference, and the on-demand log accessor
// subtracts the row scale so measures are unaffected — the paper's
// observation that "the scaling factor does not affect the performance
// measure results".
//
// The cross-row factors exp(scale[n2] - scale[n2 - d]) are computed once
// per row for every back-reference distance d.  A rescale by omega during
// the phase-B chain multiplies the finished prefix of the Q row, the
// already-computed V rows and the pending acc tail; a rescale at column 0
// additionally folds omega into the cached cross-row factors, which the
// phase V/A passes still need.  Divisions by n1 are replaced with
// multiplications by a precomputed reciprocal table: the division sat on
// the loop-carried Q(n1-1, n2) chain and dominated the fill latency.
inline DynGrids build_grid_dynamic_scaling(const CrossbarModel& model,
                                           const Algorithm1Options& opts,
                                           const ClassPartition& part,
                                           unsigned& scaling_events) {
  const unsigned w = model.dims().n1 + 1;
  const unsigned h = model.dims().n2 + 1;
  const std::size_t plane = static_cast<std::size_t>(w) * h;
  const std::size_t B = part.bursty.size();
  const std::size_t P = part.poisson.size();

  DynGrids g;
  g.q = num::ArenaBuffer<double>(plane);
  g.v = num::ArenaBuffer<double>(B * plane);
  g.row_log_scale = num::ArenaBuffer<double>(h);
  double* const q = g.q.data();
  double* const v = g.v.data();
  double* const rls = g.row_log_scale.data();

  std::vector<double> inv(std::max(w, h), 0.0);
  for (unsigned k = 1; k < inv.size(); ++k) {
    inv[k] = 1.0 / k;
  }
  const unsigned max_a = part.max_a;
  std::vector<double> adjust(static_cast<std::size_t>(max_a) + 1, 1.0);
  num::ArenaBuffer<double> accbuf(w);
  double* const acc = accbuf.data();

  const auto out_of_range = [&](double qval) {
    return !(!(qval > 0.0) ||
             (qval <= opts.scale_high && qval >= opts.scale_low));
  };

  q[0] = 1.0;
  for (unsigned n1 = 1; n1 < w; ++n1) {
    q[n1] = q[n1 - 1] * inv[n1];
    if (out_of_range(q[n1])) {
      const double omega = 1.0 / q[n1];
      for (unsigned m = 0; m <= n1; ++m) {
        q[m] *= omega;
      }
      rls[0] += std::log(omega);
      ++scaling_events;
    }
  }
  std::size_t np = 0;
  std::size_t nb = 0;
  for (unsigned n2 = 1; n2 < h; ++n2) {
    while (np < P && part.poisson[np].a <= n2) {
      ++np;
    }
    while (nb < B && part.bursty[nb].a <= n2) {
      ++nb;
    }
    rls[n2] = rls[n2 - 1];
    for (unsigned d = 1; d <= max_a; ++d) {
      adjust[d] = d <= n2 ? std::exp(rls[n2] - rls[n2 - d]) : 1.0;
    }
    const std::size_t row = static_cast<std::size_t>(n2) * w;
    q[row] = q[row - w] * adjust[1] * inv[n2];
    if (out_of_range(q[row])) {
      // Column-0 rescale: only q[row] exists in this row so far; fold omega
      // into the cross-row factors the upcoming phases will use.
      const double omega = 1.0 / q[row];
      q[row] *= omega;
      rls[n2] += std::log(omega);
      for (unsigned d = 1; d <= max_a; ++d) {
        adjust[d] *= omega;
      }
      ++scaling_events;
    }

    // Phase V: bring row (n2 - a) values into this row's scale.
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = part.bursty[b].a;
      if (a >= w) {
        continue;
      }
      const std::size_t base = static_cast<std::size_t>(n2 - a) * w;
      double* const vb = v + b * plane;
      const double x = part.bursty[b].x;
      const double adj = adjust[a];
      const std::size_t count = w - a;
      XBAR_PRAGMA_SIMD
      for (std::size_t j = 0; j < count; ++j) {
        vb[row + a + j] = adj * (q[base + j] + x * vb[base + j]);
      }
    }

    // Phase A: per-class contributions in this row's scale.
    for (unsigned n1 = 1; n1 < w; ++n1) {
      acc[n1] = 0.0;
    }
    for (std::size_t p = 0; p < np; ++p) {
      const unsigned a = part.poisson[p].a;
      if (a >= w) {
        continue;
      }
      const std::size_t base = static_cast<std::size_t>(n2 - a) * w;
      const double c = part.poisson[p].coeff * adjust[a];
      const std::size_t count = w - a;
      XBAR_PRAGMA_SIMD
      for (std::size_t j = 0; j < count; ++j) {
        acc[a + j] += c * q[base + j];
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = part.bursty[b].a;
      if (a >= w) {
        continue;
      }
      const double* const vb = v + b * plane;
      const double c = part.bursty[b].coeff;
      const std::size_t count = w - a;
      XBAR_PRAGMA_SIMD
      for (std::size_t j = 0; j < count; ++j) {
        acc[a + j] += c * vb[row + a + j];
      }
    }

    // Phase B: the chain, with the paper's per-cell scaling check.  Q spans
    // hundreds of decades even within a single row (Q ~ 1/(n1! n2!)).
    for (unsigned n1 = 1; n1 < w; ++n1) {
      const double qval = (q[row + n1 - 1] + acc[n1]) * inv[n1];
      q[row + n1] = qval;
      if (out_of_range(qval)) {
        const double omega = 1.0 / qval;
        for (std::size_t m = row; m <= row + n1; ++m) {
          q[m] *= omega;
        }
        // The V rows are fully materialized and the acc tail was computed
        // in the old scale: both move with the row.
        for (std::size_t b = 0; b < B; ++b) {
          double* const vb = v + b * plane;
          XBAR_PRAGMA_SIMD
          for (std::size_t m = row; m < row + w; ++m) {
            vb[m] *= omega;
          }
        }
        for (unsigned m = n1 + 1; m < w; ++m) {
          acc[m] *= omega;
        }
        rls[n2] += std::log(omega);
        ++scaling_events;
      }
    }
  }
  return g;
}

/// Degeneracy scan: Q(n) > 0 for every grid cell (the empty state always
/// contributes 1/(n1! n2!)), so any non-positive or non-finite Q entry
/// flags arithmetic breakdown.  V planes must be finite and non-negative:
/// a Bernoulli-class cancellation can leave Q finite while a V plane has
/// already gone negative, which poisons the class measures (log of a
/// negative number) — it must be flagged too.  The scan is a comparison
/// per cell, not a log.
inline bool scan_degenerate(const GridStore& grids) {
  return std::visit(
      [](const auto& g) {
        using G = std::decay_t<decltype(g)>;
        if constexpr (std::is_same_v<G, DynGrids>) {
          for (const double qv : g.q) {
            if (!(qv > 0.0) || !std::isfinite(qv)) {
              return true;
            }
          }
          for (const double vv : g.v) {
            if (!(vv >= 0.0) || !std::isfinite(vv)) {
              return true;
            }
          }
        } else {
          using Ops = RealOps<typename G::real_type>;
          for (const auto& qv : g.q) {
            if (!Ops::positive_finite(qv)) {
              return true;
            }
          }
          for (const auto& vv : g.v) {
            if (!Ops::finite_nonneg(vv)) {
              return true;
            }
          }
        }
        return false;
      },
      grids);
}

}  // namespace xbar::core::alg1

namespace xbar::core {

struct Algorithm1Solver::Impl {
  CrossbarModel model;
  Algorithm1Options options;
  alg1::GridStore grids;
  std::vector<std::size_t> bursty_slot;  // per class; kNoSlot for Poisson
  unsigned scaling_events = 0;
  bool degenerate = false;

  Impl(CrossbarModel m, Algorithm1Options o)
      : model(std::move(m)), options(o) {
    const alg1::ClassPartition part = alg1::partition_classes(model);
    bursty_slot = part.slot_of;
    switch (options.backend) {
      case Algorithm1Backend::kScaledFloat:
        grids = alg1::build_grid<num::ScaledFloat>(model, part);
        break;
      case Algorithm1Backend::kLongDouble:
        grids = alg1::build_grid<long double>(model, part);
        break;
      case Algorithm1Backend::kDoubleRaw:
        grids = alg1::build_grid<double>(model, part);
        break;
      case Algorithm1Backend::kDoubleDynamicScaling:
        grids = alg1::build_grid_dynamic_scaling(model, options, part,
                                                 scaling_events);
        break;
      case Algorithm1Backend::kLogDomain:
        grids = alg1::build_grid<num::SignedLog>(model, part);
        break;
    }
    degenerate = alg1::scan_degenerate(grids);
  }

  /// From-parts constructor for the batched solver: the grids were filled
  /// by the lane-interleaved kernel and de-interleaved row by row, with the
  /// degeneracy scan fused into that copy (re-scanning here would re-read
  /// the whole grid cold).  `is_degenerate` must be the result of the same
  /// predicates scan_degenerate applies.
  Impl(CrossbarModel m, Algorithm1Options o, alg1::GridStore g,
       std::vector<std::size_t> slots, unsigned events, bool is_degenerate)
      : model(std::move(m)),
        options(o),
        grids(std::move(g)),
        bursty_slot(std::move(slots)),
        scaling_events(events),
        degenerate(is_degenerate) {}

  [[nodiscard]] std::size_t plane() const {
    return static_cast<std::size_t>(model.dims().n1 + 1) *
           (model.dims().n2 + 1);
  }

  [[nodiscard]] std::size_t index(unsigned n1, unsigned n2) const {
    return static_cast<std::size_t>(n2) * (model.dims().n1 + 1) + n1;
  }

  // ln Q(at), computed on demand from the raw grid.
  [[nodiscard]] double lq(Dims at) const {
    assert(at.n1 <= model.dims().n1 && at.n2 <= model.dims().n2);
    const std::size_t i = index(at.n1, at.n2);
    return std::visit(
        [&](const auto& g) -> double {
          using G = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<G, alg1::DynGrids>) {
            return std::log(g.q[i]) - g.row_log_scale[at.n2];
          } else {
            return alg1::RealOps<typename G::real_type>::log_of(g.q[i]);
          }
        },
        grids);
  }

  // ln V(at, r); -inf when V == 0 (subsystem too small).
  [[nodiscard]] double lv(std::size_t r, Dims at) const {
    const unsigned a = model.normalized(r).bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return alg1::kNegInf;
    }
    const std::size_t i = bursty_slot[r] * plane() + index(at.n1, at.n2);
    return std::visit(
        [&](const auto& g) -> double {
          using G = std::decay_t<decltype(g)>;
          if constexpr (std::is_same_v<G, alg1::DynGrids>) {
            const double vv = g.v[i];
            return vv > 0.0 ? std::log(vv) - g.row_log_scale[at.n2]
                            : alg1::kNegInf;
          } else {
            return alg1::RealOps<typename G::real_type>::log_of(g.v[i]);
          }
        },
        grids);
  }

  [[nodiscard]] double non_blocking_at(std::size_t r, Dims at) const {
    const unsigned a = model.normalized(r).bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return 0.0;  // the class can never fit in this subsystem
    }
    const double log_b = lq(Dims{at.n1 - a, at.n2 - a}) - lq(at) -
                         num::log_falling_factorial(at.n1, a) -
                         num::log_falling_factorial(at.n2, a);
    return std::exp(log_b);
  }

  [[nodiscard]] double concurrency_at(std::size_t r, Dims at) const {
    const NormalizedClass& c = model.normalized(r);
    const unsigned a = c.bandwidth;
    if (at.n1 < a || at.n2 < a) {
      return 0.0;
    }
    if (c.is_poisson()) {
      // E_r = rho_r Q(N - a I)/Q(N)
      return c.rho() * std::exp(lq(Dims{at.n1 - a, at.n2 - a}) - lq(at));
    }
    // E_r = rho_r V(N, r)/Q(N)
    const double logv = lv(r, at);
    if (logv == alg1::kNegInf) {
      return 0.0;
    }
    return c.rho() * std::exp(logv - lq(at));
  }

  [[nodiscard]] Measures measures_at(Dims at) const {
    Measures m;
    const std::size_t R = model.num_classes();
    m.per_class.resize(R);
    for (std::size_t r = 0; r < R; ++r) {
      const NormalizedClass& c = model.normalized(r);
      ClassMeasures& cm = m.per_class[r];
      cm.non_blocking = non_blocking_at(r, at);
      cm.blocking = 1.0 - cm.non_blocking;
      cm.concurrency = concurrency_at(r, at);
      cm.throughput = cm.concurrency * c.mu;
      cm.port_usage = cm.concurrency * static_cast<double>(c.bandwidth);
      m.revenue += c.weight * cm.concurrency;
      m.total_throughput += cm.throughput;
      m.utilization += cm.port_usage;
    }
    const unsigned cap = at.cap();
    m.utilization = cap > 0 ? m.utilization / cap : 0.0;
    return m;
  }
};

}  // namespace xbar::core
