// Enumeration of the feasible state space Γ(N) (paper §2):
//
//     Γ(N) = { k = (k_1..k_R) : 0 <= k·A <= min(N1, N2) }
//
// Exponential in R, so this is only used by the brute-force reference solver
// and tests; the production algorithms never materialize Γ.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace xbar::core {

/// State vector: k[r] = number of active class-r connections.
using StateVector = std::vector<unsigned>;

/// Visit every k with sum_r k[r]*bandwidths[r] <= cap.  The visitor receives
/// the state and its total port usage k·A.  States are visited in
/// lexicographic order of k.
void for_each_state(
    std::span<const unsigned> bandwidths, unsigned cap,
    const std::function<void(std::span<const unsigned> k, unsigned usage)>&
        visit);

/// |Γ| for the given bandwidth vector and cap.
[[nodiscard]] std::uint64_t count_states(std::span<const unsigned> bandwidths,
                                         unsigned cap);

}  // namespace xbar::core
