#include "core/solver_spec.hpp"

#include "core/error.hpp"

namespace xbar::core {

std::string_view to_string(SolverAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case SolverAlgorithm::kAuto:
      return "auto";
    case SolverAlgorithm::kFast:
      return "fast";
    case SolverAlgorithm::kAlgorithm1:
      return "algorithm1";
    case SolverAlgorithm::kAlgorithm2:
      return "algorithm2";
    case SolverAlgorithm::kBruteForce:
      return "brute";
  }
  return "unknown";
}

std::string_view to_string(NumericBackend backend) noexcept {
  switch (backend) {
    case NumericBackend::kScaledFloat:
      return "scaled";
    case NumericBackend::kDoubleDynamicScaling:
      return "double-dynamic";
    case NumericBackend::kLongDouble:
      return "long-double";
    case NumericBackend::kDoubleRaw:
      return "double-raw";
    case NumericBackend::kRatio:
      return "ratio";
    case NumericBackend::kLogDomain:
      return "log-domain";
  }
  return "unknown";
}

namespace {

constexpr std::string_view kSpecGrammar =
    "auto|fast|algorithm1[/scaled|/double-dynamic|/long-double|/double-raw|"
    "/log-domain]|algorithm2|brute";

std::optional<NumericBackend> parse_grid_backend(std::string_view text) {
  for (const NumericBackend backend :
       {NumericBackend::kScaledFloat, NumericBackend::kDoubleDynamicScaling,
        NumericBackend::kLongDouble, NumericBackend::kDoubleRaw,
        NumericBackend::kLogDomain}) {
    if (text == to_string(backend)) {
      return backend;
    }
  }
  return std::nullopt;
}

}  // namespace

SolverSpec SolverSpec::parse(std::string_view text) {
  std::string_view name = text;
  std::optional<std::string_view> backend_name;
  if (const auto slash = text.find('/'); slash != std::string_view::npos) {
    name = text.substr(0, slash);
    backend_name = text.substr(slash + 1);
  }

  SolverSpec spec;
  bool known = false;
  for (const SolverAlgorithm algorithm :
       {SolverAlgorithm::kAuto, SolverAlgorithm::kFast,
        SolverAlgorithm::kAlgorithm1, SolverAlgorithm::kAlgorithm2,
        SolverAlgorithm::kBruteForce}) {
    if (name == core::to_string(algorithm)) {
      spec.algorithm = algorithm;
      known = true;
      break;
    }
  }
  if (!known) {
    raise(ErrorKind::kConfig, "unknown solver '" + std::string(text) +
                                  "' (expected " + std::string(kSpecGrammar) +
                                  ")");
  }
  if (backend_name) {
    if (spec.algorithm != SolverAlgorithm::kAlgorithm1) {
      raise(ErrorKind::kConfig,
            "solver '" + std::string(name) +
                "' does not take a backend (only algorithm1 does)");
    }
    spec.backend = parse_grid_backend(*backend_name);
    if (!spec.backend) {
      raise(ErrorKind::kConfig,
            "unknown algorithm1 backend '" + std::string(*backend_name) +
                "' (expected scaled|double-dynamic|long-double|double-raw|"
                "log-domain)");
    }
  }
  return spec;
}

std::string SolverSpec::to_string() const {
  std::string out(core::to_string(algorithm));
  if (backend) {
    out += '/';
    out += core::to_string(*backend);
  }
  return out;
}

ResolvedSolver resolve(const SolverSpec& spec, const CrossbarModel& model) {
  if (spec.backend && spec.algorithm != SolverAlgorithm::kAlgorithm1) {
    raise(ErrorKind::kConfig,
          "solver spec '" + std::string(to_string(spec.algorithm)) +
              "' does not take a backend (only algorithm1 does)");
  }
  ResolvedSolver resolved;
  switch (spec.algorithm) {
    case SolverAlgorithm::kAuto:
      // Paper §5: Algorithm 1 for small crossbars, Algorithm 2 beyond.
      if (model.dims().cap() <= 32) {
        resolved.algorithm = SolverAlgorithm::kAlgorithm1;
        resolved.backend = NumericBackend::kScaledFloat;
      } else {
        resolved.algorithm = SolverAlgorithm::kAlgorithm2;
        resolved.backend = NumericBackend::kRatio;
      }
      return resolved;
    case SolverAlgorithm::kFast:
      resolved.algorithm = SolverAlgorithm::kAlgorithm1;
      resolved.backend = NumericBackend::kDoubleDynamicScaling;
      resolved.fallback_on_degenerate = true;
      return resolved;
    case SolverAlgorithm::kAlgorithm1:
      resolved.algorithm = SolverAlgorithm::kAlgorithm1;
      resolved.backend = spec.backend.value_or(NumericBackend::kScaledFloat);
      return resolved;
    case SolverAlgorithm::kAlgorithm2:
      resolved.algorithm = SolverAlgorithm::kAlgorithm2;
      resolved.backend = NumericBackend::kRatio;
      return resolved;
    case SolverAlgorithm::kBruteForce:
      resolved.algorithm = SolverAlgorithm::kBruteForce;
      resolved.backend = NumericBackend::kLogDomain;
      return resolved;
  }
  raise(ErrorKind::kInternal, "unreachable solver algorithm");
}

}  // namespace xbar::core
