#include "core/solver_spec.hpp"

#include <array>
#include <charconv>

#include "core/error.hpp"

namespace xbar::core {

std::string_view to_string(SolverAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case SolverAlgorithm::kAuto:
      return "auto";
    case SolverAlgorithm::kFast:
      return "fast";
    case SolverAlgorithm::kAlgorithm1:
      return "algorithm1";
    case SolverAlgorithm::kAlgorithm2:
      return "algorithm2";
    case SolverAlgorithm::kBruteForce:
      return "brute";
    case SolverAlgorithm::kPriorityCtmc:
      return "priority-ctmc";
  }
  return "unknown";
}

std::string_view to_string(NumericBackend backend) noexcept {
  switch (backend) {
    case NumericBackend::kScaledFloat:
      return "scaled";
    case NumericBackend::kDoubleDynamicScaling:
      return "double-dynamic";
    case NumericBackend::kLongDouble:
      return "long-double";
    case NumericBackend::kDoubleRaw:
      return "double-raw";
    case NumericBackend::kRatio:
      return "ratio";
    case NumericBackend::kLogDomain:
      return "log-domain";
    case NumericBackend::kDense:
      return "dense";
  }
  return "unknown";
}

namespace {

constexpr std::string_view kSpecGrammar =
    "auto|fast|algorithm1[/scaled|/double-dynamic|/long-double|/double-raw|"
    "/log-domain]|algorithm2|brute, optionally @crossbar|@speedup-<s>|"
    "@priority";

constexpr std::string_view kFabricGrammar =
    "crossbar|speedup-<s>|priority (s in [2, 16])";

constexpr std::array<FabricInfo, 3> kFabricRegistry = {{
    {"crossbar", "crossbar",
     "the paper's internally non-blocking crossbar (default; omitted from "
     "canonical spec strings)"},
    {"speedup-<s>", "speedup-2",
     "speedup-s replicated crosspoints: every port carries s circuits "
     "(Cogill-Lall)"},
    {"priority", "priority",
     "fixed-priority arbiter with per-priority capacity reservation, exact "
     "CTMC under BPP classes (Mandal et al.)"},
}};

std::optional<NumericBackend> parse_grid_backend(std::string_view text) {
  for (const NumericBackend backend :
       {NumericBackend::kScaledFloat, NumericBackend::kDoubleDynamicScaling,
        NumericBackend::kLongDouble, NumericBackend::kDoubleRaw,
        NumericBackend::kLogDomain}) {
    if (text == to_string(backend)) {
      return backend;
    }
  }
  return std::nullopt;
}

[[noreturn]] void raise_bad_fabric(std::string_view token,
                                   std::string_view detail) {
  std::string message = "unknown fabric '" + std::string(token) +
                        "' (expected " + std::string(kFabricGrammar) + ")";
  if (!detail.empty()) {
    message += ": ";
    message += detail;
  }
  raise(ErrorKind::kConfig, message);
}

}  // namespace

std::span<const FabricInfo> fabric_registry() noexcept {
  return kFabricRegistry;
}

FabricModel FabricModel::parse(std::string_view text) {
  if (text == "crossbar") {
    return crossbar();
  }
  if (text == "priority") {
    return priority();
  }
  constexpr std::string_view kSpeedupPrefix = "speedup-";
  if (text.starts_with(kSpeedupPrefix)) {
    const std::string_view digits = text.substr(kSpeedupPrefix.size());
    unsigned s = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), s);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      raise_bad_fabric(text, "speedup factor must be a positive integer");
    }
    if (s == 1) {
      raise_bad_fabric(text, "speedup-1 is the plain crossbar; use 'crossbar'");
    }
    if (s < kMinSpeedup || s > kMaxSpeedup) {
      raise_bad_fabric(text, "speedup factor out of range");
    }
    return speedup_s(s);
  }
  raise_bad_fabric(text, {});
}

std::string FabricModel::to_string() const {
  switch (kind) {
    case FabricKind::kCrossbar:
      return "crossbar";
    case FabricKind::kSpeedup:
      return "speedup-" + std::to_string(static_cast<unsigned>(speedup));
    case FabricKind::kPriority:
      return "priority";
  }
  return "unknown";
}

SolverSpec SolverSpec::parse(std::string_view text) {
  // The fabric qualifier binds last: SPEC[@FABRIC], where SPEC may itself
  // contain a '/backend' part.
  std::string_view spec_text = text;
  SolverSpec spec;
  if (const auto at = text.find('@'); at != std::string_view::npos) {
    spec_text = text.substr(0, at);
    spec.fabric = FabricModel::parse(text.substr(at + 1));
  }

  std::string_view name = spec_text;
  std::optional<std::string_view> backend_name;
  if (const auto slash = spec_text.find('/'); slash != std::string_view::npos) {
    name = spec_text.substr(0, slash);
    backend_name = spec_text.substr(slash + 1);
  }

  bool known = false;
  for (const SolverAlgorithm algorithm :
       {SolverAlgorithm::kAuto, SolverAlgorithm::kFast,
        SolverAlgorithm::kAlgorithm1, SolverAlgorithm::kAlgorithm2,
        SolverAlgorithm::kBruteForce}) {
    if (name == core::to_string(algorithm)) {
      spec.algorithm = algorithm;
      known = true;
      break;
    }
  }
  if (!known) {
    raise(ErrorKind::kConfig, "unknown solver '" + std::string(text) +
                                  "' (expected " + std::string(kSpecGrammar) +
                                  ")");
  }
  if (backend_name) {
    if (spec.algorithm != SolverAlgorithm::kAlgorithm1) {
      raise(ErrorKind::kConfig,
            "solver '" + std::string(name) +
                "' does not take a backend (only algorithm1 does)");
    }
    spec.backend = parse_grid_backend(*backend_name);
    if (!spec.backend) {
      raise(ErrorKind::kConfig,
            "unknown algorithm1 backend '" + std::string(*backend_name) +
                "' (expected scaled|double-dynamic|long-double|double-raw|"
                "log-domain)");
    }
  }
  if (spec.fabric.kind == FabricKind::kPriority &&
      spec.algorithm != SolverAlgorithm::kAuto) {
    raise(ErrorKind::kConfig,
          "the priority fabric has its own exact solver; request "
          "'auto@priority' (got '" +
              std::string(text) + "')");
  }
  return spec;
}

std::string SolverSpec::to_string() const {
  std::string out(core::to_string(algorithm));
  if (backend) {
    out += '/';
    out += core::to_string(*backend);
  }
  // The crossbar default is omitted so legacy spec strings — and every
  // cache key and checkpoint fingerprint built from them — stay identical.
  if (fabric.kind != FabricKind::kCrossbar) {
    out += '@';
    out += fabric.to_string();
  }
  return out;
}

ResolvedSolver resolve(const SolverSpec& spec, const CrossbarModel& model) {
  if (spec.backend && spec.algorithm != SolverAlgorithm::kAlgorithm1) {
    raise(ErrorKind::kConfig,
          "solver spec '" + std::string(to_string(spec.algorithm)) +
              "' does not take a backend (only algorithm1 does)");
  }
  ResolvedSolver resolved;
  resolved.fabric = spec.fabric;

  if (spec.fabric.kind == FabricKind::kPriority) {
    if (spec.algorithm != SolverAlgorithm::kAuto) {
      raise(ErrorKind::kConfig,
            "the priority fabric has its own exact solver; request "
            "'auto@priority'");
    }
    // Every class must be admissible under its own reservation: class r
    // (declaration order = priority order, 0 highest) keeps t_r = r trunks
    // of headroom free for higher priorities.
    const auto& classes = model.classes();
    for (std::size_t r = 0; r < classes.size(); ++r) {
      if (classes[r].bandwidth + r > model.dims().cap()) {
        raise(ErrorKind::kModel,
              "priority fabric: class " + std::to_string(r) +
                  " can never be admitted (bandwidth " +
                  std::to_string(classes[r].bandwidth) +
                  " + reservation " + std::to_string(r) + " exceeds capacity " +
                  std::to_string(model.dims().cap()) + ")");
      }
    }
    resolved.algorithm = SolverAlgorithm::kPriorityCtmc;
    resolved.backend = NumericBackend::kDense;
    return resolved;
  }

  // Speedup scales every dimension by s before the product-form solve; the
  // kAuto crossover and validation both look at the *scaled* system.
  const unsigned s = spec.fabric.kind == FabricKind::kSpeedup
                         ? static_cast<unsigned>(spec.fabric.speedup)
                         : 1U;
  if (spec.fabric.kind == FabricKind::kSpeedup) {
    const std::uint64_t scaled_side =
        static_cast<std::uint64_t>(model.dims().max_side()) * s;
    if (scaled_side > 65536) {
      raise(ErrorKind::kConfig,
            "speedup-" + std::to_string(s) + " scales the " +
                std::to_string(model.dims().n1) + "x" +
                std::to_string(model.dims().n2) +
                " crossbar past the 65536-port ceiling");
    }
  }

  switch (spec.algorithm) {
    case SolverAlgorithm::kAuto:
      // Paper §5: Algorithm 1 for small crossbars, Algorithm 2 beyond.
      if (model.dims().cap() * s <= 32) {
        resolved.algorithm = SolverAlgorithm::kAlgorithm1;
        resolved.backend = NumericBackend::kScaledFloat;
      } else {
        resolved.algorithm = SolverAlgorithm::kAlgorithm2;
        resolved.backend = NumericBackend::kRatio;
      }
      return resolved;
    case SolverAlgorithm::kFast:
      resolved.algorithm = SolverAlgorithm::kAlgorithm1;
      resolved.backend = NumericBackend::kDoubleDynamicScaling;
      resolved.fallback_on_degenerate = true;
      return resolved;
    case SolverAlgorithm::kAlgorithm1:
      resolved.algorithm = SolverAlgorithm::kAlgorithm1;
      resolved.backend = spec.backend.value_or(NumericBackend::kScaledFloat);
      return resolved;
    case SolverAlgorithm::kAlgorithm2:
      resolved.algorithm = SolverAlgorithm::kAlgorithm2;
      resolved.backend = NumericBackend::kRatio;
      return resolved;
    case SolverAlgorithm::kBruteForce:
      resolved.algorithm = SolverAlgorithm::kBruteForce;
      resolved.backend = NumericBackend::kLogDomain;
      return resolved;
    case SolverAlgorithm::kPriorityCtmc:
      raise(ErrorKind::kConfig,
            "priority-ctmc is not directly requestable; use 'auto@priority'");
  }
  raise(ErrorKind::kInternal, "unreachable solver algorithm");
}

}  // namespace xbar::core
