#include "core/markov.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "numeric/combinatorics.hpp"

namespace xbar::core {

MarkovChain::MarkovChain(CrossbarModel model, std::size_t max_states)
    : model_(std::move(model)) {
  std::vector<unsigned> bandwidths;
  bandwidths.reserve(model_.num_classes());
  for (const auto& c : model_.normalized_classes()) {
    bandwidths.push_back(c.bandwidth);
  }
  const Dims dims = model_.dims();
  const unsigned cap = dims.cap();

  for_each_state(bandwidths, cap,
                 [&](std::span<const unsigned> k, unsigned usage) {
                   states_.emplace_back(k.begin(), k.end());
                   usage_.push_back(usage);
                 });
  if (states_.size() > max_states) {
    throw std::invalid_argument(
        "MarkovChain: state space too large (" +
        std::to_string(states_.size()) + " states)");
  }

  // Build the generator.  Enumeration is lexicographic, so neighbours are
  // found by binary search over the sorted state list.
  const auto find = [&](const StateVector& k) {
    const auto it = std::lower_bound(states_.begin(), states_.end(), k);
    assert(it != states_.end() && *it == k);
    return static_cast<std::size_t>(it - states_.begin());
  };

  exit_rate_.assign(states_.size(), 0.0);
  for (std::size_t s = 0; s < states_.size(); ++s) {
    const StateVector& k = states_[s];
    const unsigned u = usage_[s];
    for (std::size_t r = 0; r < k.size(); ++r) {
      const NormalizedClass& c = model_.normalized(r);
      const unsigned a = c.bandwidth;
      // Arrival (accepted) transition.
      if (u + a <= cap) {
        const double lam = c.intensity(k[r]);
        if (lam > 0.0) {
          const double rate = lam *
                              num::falling_factorial(dims.n1 - u, a) *
                              num::falling_factorial(dims.n2 - u, a);
          StateVector up = k;
          ++up[r];
          transitions_.push_back(Transition{static_cast<std::uint32_t>(s),
                                            static_cast<std::uint32_t>(
                                                find(up)),
                                            rate});
          exit_rate_[s] += rate;
        }
      }
      // Completion transition.
      if (k[r] > 0) {
        const double rate = static_cast<double>(k[r]) * c.mu;
        StateVector down = k;
        --down[r];
        transitions_.push_back(Transition{static_cast<std::uint32_t>(s),
                                          static_cast<std::uint32_t>(
                                              find(down)),
                                          rate});
        exit_rate_[s] += rate;
      }
    }
  }
  lambda_ = 0.0;
  for (const double e : exit_rate_) {
    lambda_ = std::max(lambda_, e);
  }
  // Strictly positive uniformization rate even for a frozen chain.
  lambda_ = std::max(lambda_, 1e-12) * 1.02;  // 2% headroom keeps P aperiodic
}

std::size_t MarkovChain::state_index(std::span<const unsigned> k) const {
  const StateVector key(k.begin(), k.end());
  const auto it = std::lower_bound(states_.begin(), states_.end(), key);
  if (it == states_.end() || *it != key) {
    throw std::out_of_range("MarkovChain: infeasible state");
  }
  return static_cast<std::size_t>(it - states_.begin());
}

std::size_t MarkovChain::saturated_state() const {
  const unsigned cap = model_.dims().cap();
  StateVector k(model_.num_classes(), 0);
  unsigned used = 0;
  for (std::size_t r = 0; r < k.size(); ++r) {
    const unsigned a = model_.normalized(r).bandwidth;
    while (used + a <= cap) {
      ++k[r];
      used += a;
    }
  }
  return state_index(k);
}

void MarkovChain::step(std::span<const double> in,
                       std::span<double> out) const {
  // out = in * (I + Q/Lambda): diagonal part first, then transitions.
  for (std::size_t s = 0; s < in.size(); ++s) {
    out[s] = in[s] * (1.0 - exit_rate_[s] / lambda_);
  }
  for (const Transition& t : transitions_) {
    out[t.to] += in[t.from] * (t.rate / lambda_);
  }
}

std::vector<double> MarkovChain::stationary(double tolerance,
                                            int max_iterations) const {
  std::vector<double> p(states_.size(),
                        1.0 / static_cast<double>(states_.size()));
  std::vector<double> next(states_.size());
  for (int iter = 0; iter < max_iterations; ++iter) {
    step(p, next);
    double delta = 0.0;
    for (std::size_t s = 0; s < p.size(); ++s) {
      delta = std::max(delta, std::fabs(next[s] - p[s]));
    }
    p.swap(next);
    if (delta < tolerance) {
      break;
    }
  }
  // Renormalize against accumulated rounding.
  double total = 0.0;
  for (const double v : p) {
    total += v;
  }
  for (double& v : p) {
    v /= total;
  }
  return p;
}

std::vector<double> MarkovChain::transient(double t,
                                           std::size_t initial_state,
                                           double epsilon) const {
  assert(t >= 0.0);
  std::vector<double> result(states_.size(), 0.0);
  std::vector<double> p(states_.size(), 0.0);
  p.at(initial_state) = 1.0;
  if (t == 0.0) {
    return p;
  }

  // Uniformization: p(t) = sum_m Poisson(m; Lambda t) * p0 P^m, truncated
  // when the accumulated Poisson mass reaches 1 - epsilon.
  const double lt = lambda_ * t;
  double log_weight = -lt;  // log Poisson(0)
  double accumulated = 0.0;
  std::vector<double> next(states_.size());
  const auto max_terms = static_cast<std::size_t>(
      lt + 12.0 * std::sqrt(lt + 1.0) + 64.0);
  for (std::size_t m = 0;; ++m) {
    const double w = std::exp(log_weight);
    for (std::size_t s = 0; s < p.size(); ++s) {
      result[s] += w * p[s];
    }
    accumulated += w;
    if (accumulated >= 1.0 - epsilon || m >= max_terms) {
      break;
    }
    step(p, next);
    p.swap(next);
    log_weight += std::log(lt) - std::log(static_cast<double>(m) + 1.0);
  }
  // Distribute the truncated tail mass proportionally (renormalize).
  double total = 0.0;
  for (const double v : result) {
    total += v;
  }
  for (double& v : result) {
    v /= total;
  }
  return result;
}

double MarkovChain::non_blocking_under(std::span<const double> p,
                                       std::size_t r) const {
  const NormalizedClass& c = model_.normalized(r);
  const unsigned a = c.bandwidth;
  const Dims dims = model_.dims();
  const double tuples = num::falling_factorial(dims.n1, a) *
                        num::falling_factorial(dims.n2, a);
  double acc = 0.0;
  for (std::size_t s = 0; s < p.size(); ++s) {
    const unsigned u = usage_[s];
    if (u + a > dims.cap()) {
      continue;
    }
    acc += p[s] * num::falling_factorial(dims.n1 - u, a) *
           num::falling_factorial(dims.n2 - u, a) / tuples;
  }
  return acc;
}

double MarkovChain::concurrency_under(std::span<const double> p,
                                      std::size_t r) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < p.size(); ++s) {
    acc += p[s] * static_cast<double>(states_[s][r]);
  }
  return acc;
}

}  // namespace xbar::core
