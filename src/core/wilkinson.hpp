// Wilkinson's Equivalent Random Theory (ERT) — the paper's reference [33],
// the 1956 method that motivated characterizing traffic by mean and
// peakedness in the first place.
//
// A peaky stream with mean M and peakedness Z > 1 is modelled as the
// *overflow* of an equivalent Poisson load A* offered to c* primary trunks
// (A*, c* fitted to reproduce M and V = ZM, via Rapp's approximation).
// Its blocking on C further trunks is then the conditional overflow ratio
//
//     B  =  m(c* + C) / m(c*) = m(c* + C) / M,
//
// where m(x) = A* ErlangB(A*, x) is the overflow mean past x trunks.
//
// Here ERT serves as a historical baseline for the BPP knapsack: both map
// (M, Z) to a blocking estimate on C trunks; Delbrouck's recursion
// (src/core/knapsack) is exact for the BPP process, ERT is the classical
// approximation.  bench/baseline_compare shows how close the 1956 method
// lands.

#pragma once

namespace xbar::core {

/// Overflow moments of Poisson load `a` past `c` trunks (Kosten's
/// formulas): mean m = a B(a,c) and variance
/// v = m (1 - m + a/(c + 1 - a + m)).
struct OverflowMoments {
  double mean = 0.0;
  double variance = 0.0;

  [[nodiscard]] double peakedness() const noexcept {
    return mean > 0.0 ? variance / mean : 1.0;
  }
};

/// Compute overflow moments of load `a` on `c` trunks.
[[nodiscard]] OverflowMoments overflow_moments(double a, unsigned c);

/// The fitted equivalent random source.
struct EquivalentRandom {
  double load = 0.0;    ///< A*: equivalent Poisson load
  double trunks = 0.0;  ///< c*: equivalent primary group size (real-valued)
};

/// Rapp's approximation for the ERT fit: given overflow mean M and
/// peakedness Z >= 1, A* ~ V + 3 Z (Z - 1) and
/// c* ~ A* (M + Z)/(M + Z - 1) - M - 1 (clamped at 0).
/// Raises xbar::Error(kDomain) unless M > 0 and Z >= 1, both finite.
[[nodiscard]] EquivalentRandom fit_equivalent_random(double mean, double z);

/// ERT blocking estimate: a (peaky) stream with mean M and peakedness Z
/// offered to `trunks` circuits.  For Z = 1 this degenerates to Erlang-B;
/// M = 0 blocks nothing.  Raises xbar::Error(kDomain) unless M >= 0 and
/// Z >= 1, both finite (smooth traffic is outside ERT's domain).
[[nodiscard]] double wilkinson_blocking(double mean, double z,
                                        unsigned trunks);

}  // namespace xbar::core
