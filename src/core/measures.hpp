// Performance measure result types (paper §3–§4).

#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace xbar::core {

/// Per-class steady-state measures.
struct ClassMeasures {
  /// Non-blocking probability B_r(N) = G(N - a_r I)/G(N): the long-run
  /// fraction of class-r requests accepted (paper eq. 4).
  double non_blocking = 0.0;

  /// Blocking probability 1 - B_r(N) — what the paper's figures plot.
  double blocking = 0.0;

  /// Concurrency E_r(N): mean number of simultaneous class-r connections.
  double concurrency = 0.0;

  /// Carried throughput E_r * mu_r (completed connections per unit time).
  double throughput = 0.0;

  /// Mean number of busy input/output port pairs held by this class,
  /// a_r * E_r.
  double port_usage = 0.0;
};

/// Full solution for one switch configuration.
struct Measures {
  std::vector<ClassMeasures> per_class;

  /// Weighted throughput / revenue W(N) = sum_r w_r E_r(N)  (paper §4).
  double revenue = 0.0;

  /// Unweighted total throughput sum_r mu_r E_r(N).
  double total_throughput = 0.0;

  /// Mean total port-pair utilization sum_r a_r E_r(N) / min(N1,N2).
  double utilization = 0.0;

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return per_class.size();
  }
};

std::ostream& operator<<(std::ostream& os, const Measures& m);

/// Post-solve numeric guard (sweep fault tolerance): the first violation of
/// the sanity contract, if any — every probability finite and inside [0, 1]
/// (up to a tiny roundoff tolerance), every concurrency / throughput /
/// revenue / utilization finite and non-negative.  Returns std::nullopt for
/// healthy measures; the message names the offending class and field.
[[nodiscard]] std::optional<std::string> validate_measures(const Measures& m);

}  // namespace xbar::core
