#include "core/state_space.hpp"

namespace xbar::core {

namespace {

void recurse(std::span<const unsigned> bandwidths, unsigned cap,
             std::size_t r, unsigned used, StateVector& k,
             const std::function<void(std::span<const unsigned>, unsigned)>&
                 visit) {
  if (r == bandwidths.size()) {
    visit(k, used);
    return;
  }
  const unsigned a = bandwidths[r];
  for (unsigned kr = 0;; ++kr) {
    const unsigned extra = kr * a;
    if (used + extra > cap) {
      break;
    }
    k[r] = kr;
    recurse(bandwidths, cap, r + 1, used + extra, k, visit);
  }
  k[r] = 0;
}

}  // namespace

void for_each_state(
    std::span<const unsigned> bandwidths, unsigned cap,
    const std::function<void(std::span<const unsigned> k, unsigned usage)>&
        visit) {
  StateVector k(bandwidths.size(), 0);
  recurse(bandwidths, cap, 0, 0, k, visit);
}

std::uint64_t count_states(std::span<const unsigned> bandwidths,
                           unsigned cap) {
  std::uint64_t n = 0;
  for_each_state(bandwidths, cap,
                 [&n](std::span<const unsigned>, unsigned) { ++n; });
  return n;
}

}  // namespace xbar::core
