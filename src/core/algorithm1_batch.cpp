#include "core/algorithm1_batch.hpp"

#include <cassert>
#include <cmath>
#include <map>
#include <utility>

#include "core/algorithm1_internal.hpp"
#include "core/error.hpp"
#include "numeric/arena.hpp"
#include "numeric/simd.hpp"

namespace xbar::core {

namespace {

using alg1::ClassPartition;
using alg1::DynGrids;
using alg1::Grids;

// Lanes can share a traversal when their sorted Poisson/bursty bandwidth
// sequences coincide: loop bounds and activation prefixes are then
// identical and only the per-class constants differ per lane.
std::vector<unsigned> skeleton_key(const ClassPartition& p) {
  std::vector<unsigned> key;
  key.reserve(p.poisson.size() + p.bursty.size() + 1);
  for (const auto& pc : p.poisson) {
    key.push_back(pc.a);
  }
  key.push_back(~0u);  // separator between the two sets
  for (const auto& bc : p.bursty) {
    key.push_back(bc.a);
  }
  return key;
}

// Per-lane constants interleaved lane-minor, like the grids.
struct LaneConsts {
  std::size_t L = 0;
  std::vector<double> pcoeff;  // [p * L + s]
  std::vector<double> bcoeff;  // [b * L + s]
  std::vector<double> bx;      // [b * L + s]
};

LaneConsts interleave_consts(const std::vector<const ClassPartition*>& parts) {
  LaneConsts c;
  c.L = parts.size();
  const std::size_t P = parts[0]->poisson.size();
  const std::size_t B = parts[0]->bursty.size();
  c.pcoeff.resize(P * c.L);
  c.bcoeff.resize(B * c.L);
  c.bx.resize(B * c.L);
  for (std::size_t s = 0; s < c.L; ++s) {
    for (std::size_t p = 0; p < P; ++p) {
      c.pcoeff[p * c.L + s] = parts[s]->poisson[p].coeff;
    }
    for (std::size_t b = 0; b < B; ++b) {
      c.bcoeff[b * c.L + s] = parts[s]->bursty[b].coeff;
      c.bx[b * c.L + s] = parts[s]->bursty[b].x;
    }
  }
  return c;
}

// The fill only ever reads back max_a rows of Q and V, so the interleaved
// working set is a circular window of max_a + 1 rows (~a few hundred KB for
// any N and L) instead of full (L x plane) grids.  Materializing the full
// interleaved grids costs a multi-megabyte zero-init, a cold de-interleave
// sweep and a cold degeneracy re-scan — three full-grid memory passes that
// together dwarfed the fill itself at N = 128, L = 16.  With the window,
// each finished row is de-interleaved into the per-lane output planes while
// still cache-hot, the degeneracy predicates ride the same row visit, and
// the outputs are allocated uninitialized because the row copy writes every
// cell exactly once.
struct LaneWindow {
  std::size_t rows = 0;  // max_a + 1
  std::size_t wl = 0;    // doubles per interleaved row: w * L
  num::ArenaBuffer<double> q;  // [rows][w][L], row r at slot r % rows
  num::ArenaBuffer<double> v;  // [B][rows][w][L]

  LaneWindow(unsigned w, std::size_t L, std::size_t B, unsigned max_a)
      : rows(static_cast<std::size_t>(max_a) + 1),
        wl(static_cast<std::size_t>(w) * L),
        // q is fully written before first read; v's pre-activation rows and
        // per-row n1 < a prefixes are read as the zeros the single kernel's
        // zero-initialized grid supplies, so v must start zeroed.
        q(rows * wl, num::uninitialized),
        v(B * rows * wl) {}

  [[nodiscard]] double* q_row(unsigned n2) {
    return q.data() + (n2 % rows) * wl;
  }
  [[nodiscard]] double* v_row(std::size_t b, unsigned n2) {
    return v.data() + (b * rows + n2 % rows) * wl;
  }
};

// Degeneracy predicates as branchless accumulators (the ternaries compile
// to compare/select, so the s-loops stay SIMD).  `x - x == 0` is the
// finiteness test without a libm call: NaN and +/-inf both fail it.
// bad_q counts cells violating positive_finite, bad_v cells violating
// finite_nonneg — exactly scan_degenerate's predicates for double grids.
void scan_row(const double* qrow, std::size_t w, std::size_t L, double* bad) {
  for (std::size_t n1 = 0; n1 < w; ++n1) {
    const double* const cell = qrow + n1 * L;
    XBAR_PRAGMA_SIMD
    for (std::size_t s = 0; s < L; ++s) {
      const double qv = cell[s];
      bad[s] += (qv > 0.0 && qv - qv == 0.0) ? 0.0 : 1.0;
    }
  }
}

void scan_row_v(const double* vrow, std::size_t w, std::size_t L,
                double* bad) {
  for (std::size_t n1 = 0; n1 < w; ++n1) {
    const double* const cell = vrow + n1 * L;
    XBAR_PRAGMA_SIMD
    for (std::size_t s = 0; s < L; ++s) {
      const double vv = cell[s];
      bad[s] += (vv >= 0.0 && vv - vv == 0.0) ? 0.0 : 1.0;
    }
  }
}

// Copy one interleaved row into every lane's plane, starting at element
// `off` of each destination.  Tiled transpose: per block the interleaved
// source chunk (kBlock * L doubles) is pulled into L1 by the first lane and
// the remaining lanes re-read it for free, while each lane writes one
// contiguous run.  Plain cell-major (all lanes advancing together) loses
// badly at L = 16: the per-lane planes come from power-of-two arena
// buckets, so the L destinations are congruent mod 4K and the parallel
// write streams evict each other out of the same L1 sets.
void emit_row(const double* rowbuf, std::size_t w, std::size_t L,
              double* const* dst, std::size_t off) {
  constexpr std::size_t kBlock = 64;
  for (std::size_t j0 = 0; j0 < w; j0 += kBlock) {
    const std::size_t jend = j0 + kBlock < w ? j0 + kBlock : w;
    for (std::size_t s = 0; s < L; ++s) {
      double* const d = dst[s] + off;
      for (std::size_t n1 = j0; n1 < jend; ++n1) {
        d[n1] = rowbuf[n1 * L + s];
      }
    }
  }
}

// Lane-interleaved fill, kDoubleRaw flavor: plain double arithmetic with
// divisions on the chain — per lane the exact op sequence of the single
// build_grid<double>, so de-interleaving reproduces it bit for bit.
std::vector<Grids<double>> fill_lanes_raw(
    Dims dims, const std::vector<const ClassPartition*>& parts,
    std::vector<unsigned char>& degen) {
  const unsigned w = dims.n1 + 1;
  const unsigned h = dims.n2 + 1;
  const std::size_t plane = static_cast<std::size_t>(w) * h;
  const std::size_t L = parts.size();
  const std::size_t P = parts[0]->poisson.size();
  const std::size_t B = parts[0]->bursty.size();
  const LaneConsts lc = interleave_consts(parts);
  degen.assign(L, 0);

  LaneWindow win(w, L, B, parts[0]->max_a);
  num::ArenaBuffer<double> accbuf(static_cast<std::size_t>(w) * L);
  double* const acc = accbuf.data();
  std::vector<double> bad(L, 0.0);

  std::vector<Grids<double>> out(L);
  std::vector<double*> qdst(L);
  std::vector<double*> vdst(L);
  for (std::size_t s = 0; s < L; ++s) {
    out[s].q = num::ArenaBuffer<double>(plane, num::uninitialized);
    out[s].v = num::ArenaBuffer<double>(B * plane, num::uninitialized);
    qdst[s] = out[s].q.data();
    vdst[s] = out[s].v.data();
  }
  const auto finish_row = [&](unsigned n2) {
    const std::size_t row = static_cast<std::size_t>(n2) * w;
    const double* const qrow = win.q_row(n2);
    scan_row(qrow, w, L, bad.data());
    emit_row(qrow, w, L, qdst.data(), row);
    for (std::size_t b = 0; b < B; ++b) {
      const double* const vrow = win.v_row(b, n2);
      scan_row_v(vrow, w, L, bad.data());
      emit_row(vrow, w, L, vdst.data(), b * plane + row);
    }
  };

  std::vector<double> rint(std::max(w, h), 0.0);
  for (unsigned k = 0; k < rint.size(); ++k) {
    rint[k] = static_cast<double>(k);
  }

  double* const q0 = win.q_row(0);
  for (std::size_t s = 0; s < L; ++s) {
    q0[s] = 1.0;
  }
  for (unsigned n1 = 1; n1 < w; ++n1) {
    const double d = rint[n1];
    XBAR_PRAGMA_SIMD
    for (std::size_t s = 0; s < L; ++s) {
      q0[n1 * L + s] = q0[(n1 - 1) * L + s] / d;
    }
  }
  finish_row(0);
  std::size_t np = 0;
  std::size_t nb = 0;
  for (unsigned n2 = 1; n2 < h; ++n2) {
    while (np < P && parts[0]->poisson[np].a <= n2) {
      ++np;
    }
    while (nb < B && parts[0]->bursty[nb].a <= n2) {
      ++nb;
    }
    double* const qr = win.q_row(n2);
    const double dn2 = rint[n2];
    {
      const double* const qp = win.q_row(n2 - 1);
      XBAR_PRAGMA_SIMD
      for (std::size_t s = 0; s < L; ++s) {
        qr[s] = qp[s] / dn2;
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = parts[0]->bursty[b].a;
      if (a >= w || a > n2) {
        continue;
      }
      const double* const qin = win.q_row(n2 - a);
      const double* const vin = win.v_row(b, n2 - a);
      double* const vb = win.v_row(b, n2);
      const double* const x = lc.bx.data() + b * L;
      const std::size_t count = w - a;
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t o = (static_cast<std::size_t>(a) + j) * L;
        const std::size_t in = j * L;
        XBAR_PRAGMA_SIMD
        for (std::size_t s = 0; s < L; ++s) {
          vb[o + s] = qin[in + s] + x[s] * vin[in + s];
        }
      }
    }
    for (std::size_t m = L; m < static_cast<std::size_t>(w) * L; ++m) {
      acc[m] = 0.0;
    }
    for (std::size_t p = 0; p < np; ++p) {
      const unsigned a = parts[0]->poisson[p].a;
      if (a >= w || a > n2) {
        continue;
      }
      const double* const qin = win.q_row(n2 - a);
      const double* const c = lc.pcoeff.data() + p * L;
      const std::size_t count = w - a;
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t o = (static_cast<std::size_t>(a) + j) * L;
        const std::size_t in = j * L;
        XBAR_PRAGMA_SIMD
        for (std::size_t s = 0; s < L; ++s) {
          acc[o + s] += c[s] * qin[in + s];
        }
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = parts[0]->bursty[b].a;
      if (a >= w || a > n2) {
        continue;
      }
      const double* const vb = win.v_row(b, n2);
      const double* const c = lc.bcoeff.data() + b * L;
      const std::size_t count = w - a;
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t o = (static_cast<std::size_t>(a) + j) * L;
        XBAR_PRAGMA_SIMD
        for (std::size_t s = 0; s < L; ++s) {
          acc[o + s] += c[s] * vb[o + s];
        }
      }
    }
    for (unsigned n1 = 1; n1 < w; ++n1) {
      const double d = rint[n1];
      const std::size_t o = static_cast<std::size_t>(n1) * L;
      const std::size_t prev = o - L;
      XBAR_PRAGMA_SIMD
      for (std::size_t s = 0; s < L; ++s) {
        qr[o + s] = (qr[prev + s] + acc[o + s]) / d;
      }
    }
    finish_row(n2);
  }
  for (std::size_t s = 0; s < L; ++s) {
    degen[s] = bad[s] != 0.0 ? 1 : 0;
  }
  return out;
}

// Lane-interleaved fill, kDoubleDynamicScaling flavor: per-lane row scales
// and rescale events, reciprocal-multiply chain — per lane the exact op
// sequence of the single build_grid_dynamic_scaling.  Rescales only ever
// touch the current row, so the row window stays valid: a finished row is
// final the moment its phase B completes.
std::vector<DynGrids> fill_lanes_dynamic(
    Dims dims, const Algorithm1Options& opts,
    const std::vector<const ClassPartition*>& parts,
    std::vector<unsigned>& events, std::vector<unsigned char>& degen) {
  const unsigned w = dims.n1 + 1;
  const unsigned h = dims.n2 + 1;
  const std::size_t plane = static_cast<std::size_t>(w) * h;
  const std::size_t L = parts.size();
  const std::size_t P = parts[0]->poisson.size();
  const std::size_t B = parts[0]->bursty.size();
  const unsigned max_a = parts[0]->max_a;
  const LaneConsts lc = interleave_consts(parts);
  events.assign(L, 0);
  degen.assign(L, 0);

  LaneWindow win(w, L, B, max_a);
  num::ArenaBuffer<double> accbuf(static_cast<std::size_t>(w) * L);
  num::ArenaBuffer<double> rlsbuf(static_cast<std::size_t>(h) * L);
  double* const acc = accbuf.data();
  double* const rls = rlsbuf.data();
  std::vector<double> bad(L, 0.0);

  std::vector<DynGrids> out(L);
  std::vector<double*> qdst(L);
  std::vector<double*> vdst(L);
  for (std::size_t s = 0; s < L; ++s) {
    out[s].q = num::ArenaBuffer<double>(plane, num::uninitialized);
    out[s].v = num::ArenaBuffer<double>(B * plane, num::uninitialized);
    out[s].row_log_scale = num::ArenaBuffer<double>(h, num::uninitialized);
    qdst[s] = out[s].q.data();
    vdst[s] = out[s].v.data();
  }
  const auto finish_row = [&](unsigned n2) {
    const std::size_t row = static_cast<std::size_t>(n2) * w;
    const double* const qrow = win.q_row(n2);
    scan_row(qrow, w, L, bad.data());
    emit_row(qrow, w, L, qdst.data(), row);
    for (std::size_t b = 0; b < B; ++b) {
      const double* const vrow = win.v_row(b, n2);
      scan_row_v(vrow, w, L, bad.data());
      emit_row(vrow, w, L, vdst.data(), b * plane + row);
    }
    for (std::size_t s = 0; s < L; ++s) {
      out[s].row_log_scale[n2] = rls[static_cast<std::size_t>(n2) * L + s];
    }
  };

  std::vector<double> inv(std::max(w, h), 0.0);
  for (unsigned k = 1; k < inv.size(); ++k) {
    inv[k] = 1.0 / k;
  }
  std::vector<double> adjust((static_cast<std::size_t>(max_a) + 1) * L, 1.0);
  std::vector<double> padj(L, 0.0);

  const auto out_of_range = [&](double qval) {
    return !(!(qval > 0.0) ||
             (qval <= opts.scale_high && qval >= opts.scale_low));
  };

  double* const q0 = win.q_row(0);
  for (std::size_t s = 0; s < L; ++s) {
    q0[s] = 1.0;
  }
  for (unsigned n1 = 1; n1 < w; ++n1) {
    const double d = inv[n1];
    XBAR_PRAGMA_SIMD
    for (std::size_t s = 0; s < L; ++s) {
      q0[n1 * L + s] = q0[(n1 - 1) * L + s] * d;
    }
    for (std::size_t s = 0; s < L; ++s) {
      if (out_of_range(q0[n1 * L + s])) {
        const double omega = 1.0 / q0[n1 * L + s];
        for (unsigned m = 0; m <= n1; ++m) {
          q0[m * L + s] *= omega;
        }
        rls[s] += std::log(omega);
        ++events[s];
      }
    }
  }
  finish_row(0);
  std::size_t np = 0;
  std::size_t nb = 0;
  for (unsigned n2 = 1; n2 < h; ++n2) {
    while (np < P && parts[0]->poisson[np].a <= n2) {
      ++np;
    }
    while (nb < B && parts[0]->bursty[nb].a <= n2) {
      ++nb;
    }
    double* const qr = win.q_row(n2);
    for (std::size_t s = 0; s < L; ++s) {
      rls[n2 * L + s] = rls[(n2 - 1) * L + s];
    }
    for (unsigned d = 1; d <= max_a; ++d) {
      for (std::size_t s = 0; s < L; ++s) {
        adjust[d * L + s] =
            d <= n2 ? std::exp(rls[n2 * L + s] - rls[(n2 - d) * L + s]) : 1.0;
      }
    }
    const double dn2 = inv[n2];
    {
      const double* const qp = win.q_row(n2 - 1);
      for (std::size_t s = 0; s < L; ++s) {
        qr[s] = qp[s] * adjust[L + s] * dn2;
      }
    }
    for (std::size_t s = 0; s < L; ++s) {
      if (out_of_range(qr[s])) {
        // Column-0 rescale: only q[row] exists in this row so far; fold
        // omega into the lane's cross-row factors for the phases below.
        const double omega = 1.0 / qr[s];
        qr[s] *= omega;
        rls[n2 * L + s] += std::log(omega);
        for (unsigned d = 1; d <= max_a; ++d) {
          adjust[d * L + s] *= omega;
        }
        ++events[s];
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = parts[0]->bursty[b].a;
      if (a >= w) {
        continue;
      }
      const double* const qin = win.q_row(n2 - a);
      const double* const vin = win.v_row(b, n2 - a);
      double* const vb = win.v_row(b, n2);
      const double* const x = lc.bx.data() + b * L;
      const double* const adj = adjust.data() + a * L;
      const std::size_t count = w - a;
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t o = (static_cast<std::size_t>(a) + j) * L;
        const std::size_t in = j * L;
        XBAR_PRAGMA_SIMD
        for (std::size_t s = 0; s < L; ++s) {
          vb[o + s] = adj[s] * (qin[in + s] + x[s] * vin[in + s]);
        }
      }
    }
    for (std::size_t m = L; m < static_cast<std::size_t>(w) * L; ++m) {
      acc[m] = 0.0;
    }
    for (std::size_t p = 0; p < np; ++p) {
      const unsigned a = parts[0]->poisson[p].a;
      if (a >= w) {
        continue;
      }
      const double* const qin = win.q_row(n2 - a);
      const double* const adj = adjust.data() + a * L;
      for (std::size_t s = 0; s < L; ++s) {
        padj[s] = lc.pcoeff[p * L + s] * adj[s];
      }
      const std::size_t count = w - a;
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t o = (static_cast<std::size_t>(a) + j) * L;
        const std::size_t in = j * L;
        XBAR_PRAGMA_SIMD
        for (std::size_t s = 0; s < L; ++s) {
          acc[o + s] += padj[s] * qin[in + s];
        }
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      const unsigned a = parts[0]->bursty[b].a;
      if (a >= w) {
        continue;
      }
      const double* const vb = win.v_row(b, n2);
      const double* const c = lc.bcoeff.data() + b * L;
      const std::size_t count = w - a;
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t o = (static_cast<std::size_t>(a) + j) * L;
        XBAR_PRAGMA_SIMD
        for (std::size_t s = 0; s < L; ++s) {
          acc[o + s] += c[s] * vb[o + s];
        }
      }
    }
    for (unsigned n1 = 1; n1 < w; ++n1) {
      const double d = inv[n1];
      const std::size_t o = static_cast<std::size_t>(n1) * L;
      const std::size_t prev = o - L;
      XBAR_PRAGMA_SIMD
      for (std::size_t s = 0; s < L; ++s) {
        qr[o + s] = (qr[prev + s] + acc[o + s]) * d;
      }
      for (std::size_t s = 0; s < L; ++s) {
        if (out_of_range(qr[o + s])) {
          const double omega = 1.0 / qr[o + s];
          for (std::size_t m = 0; m <= static_cast<std::size_t>(n1); ++m) {
            qr[m * L + s] *= omega;
          }
          for (std::size_t b = 0; b < B; ++b) {
            double* const vb = win.v_row(b, n2);
            for (std::size_t m = 0; m < w; ++m) {
              vb[m * L + s] *= omega;
            }
          }
          for (unsigned m = n1 + 1; m < w; ++m) {
            acc[static_cast<std::size_t>(m) * L + s] *= omega;
          }
          rls[n2 * L + s] += std::log(omega);
          ++events[s];
        }
      }
    }
    finish_row(n2);
  }
  for (std::size_t s = 0; s < L; ++s) {
    degen[s] = bad[s] != 0.0 ? 1 : 0;
  }
  return out;
}

}  // namespace

bool Algorithm1BatchSolver::lane_backend(Algorithm1Backend backend) noexcept {
  return backend == Algorithm1Backend::kDoubleDynamicScaling ||
         backend == Algorithm1Backend::kDoubleRaw;
}

Algorithm1BatchSolver::Algorithm1BatchSolver(std::vector<CrossbarModel> models,
                                             Algorithm1Options options) {
  if (models.empty()) {
    raise(ErrorKind::kConfig, "batch solve requires at least one scenario");
  }
  const Dims dims = models[0].dims();
  for (const auto& m : models) {
    if (m.dims().n1 != dims.n1 || m.dims().n2 != dims.n2) {
      raise(ErrorKind::kConfig,
            "batch solve requires all scenarios to share one Dims");
    }
  }
  const std::size_t n = models.size();
  solvers_.resize(n);
  batched_.assign(n, false);

  std::vector<ClassPartition> parts;
  parts.reserve(n);
  for (const auto& m : models) {
    parts.push_back(alg1::partition_classes(m));
  }

  if (lane_backend(options.backend)) {
    std::map<std::vector<unsigned>, std::vector<std::size_t>> groups;
    for (std::size_t s = 0; s < n; ++s) {
      groups[skeleton_key(parts[s])].push_back(s);
    }
    for (const auto& group : groups) {
      const std::vector<std::size_t>& lanes = group.second;
      if (lanes.size() < 2) {
        continue;  // nothing to amortize; the single path handles it
      }
      std::vector<const ClassPartition*> gparts;
      gparts.reserve(lanes.size());
      for (const std::size_t lane : lanes) {
        gparts.push_back(&parts[lane]);
      }
      if (options.backend == Algorithm1Backend::kDoubleDynamicScaling) {
        std::vector<unsigned> events;
        std::vector<unsigned char> degen;
        std::vector<DynGrids> grids =
            fill_lanes_dynamic(dims, options, gparts, events, degen);
        for (std::size_t k = 0; k < lanes.size(); ++k) {
          const std::size_t lane = lanes[k];
          auto impl = std::make_unique<Algorithm1Solver::Impl>(
              std::move(models[lane]), options,
              alg1::GridStore{std::move(grids[k])}, parts[lane].slot_of,
              events[k], degen[k] != 0);
          solvers_[lane].reset(new Algorithm1Solver(std::move(impl)));
          batched_[lane] = true;
        }
      } else {
        std::vector<unsigned char> degen;
        std::vector<Grids<double>> grids = fill_lanes_raw(dims, gparts, degen);
        for (std::size_t k = 0; k < lanes.size(); ++k) {
          const std::size_t lane = lanes[k];
          auto impl = std::make_unique<Algorithm1Solver::Impl>(
              std::move(models[lane]), options,
              alg1::GridStore{std::move(grids[k])}, parts[lane].slot_of, 0u,
              degen[k] != 0);
          solvers_[lane].reset(new Algorithm1Solver(std::move(impl)));
          batched_[lane] = true;
        }
      }
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (solvers_[s] == nullptr) {
      solvers_[s] =
          std::make_unique<Algorithm1Solver>(std::move(models[s]), options);
    }
  }
}

Algorithm1BatchSolver::~Algorithm1BatchSolver() = default;
Algorithm1BatchSolver::Algorithm1BatchSolver(Algorithm1BatchSolver&&) noexcept =
    default;
Algorithm1BatchSolver& Algorithm1BatchSolver::operator=(
    Algorithm1BatchSolver&&) noexcept = default;

std::size_t Algorithm1BatchSolver::batch_size() const noexcept {
  return solvers_.size();
}

const Algorithm1Solver& Algorithm1BatchSolver::solver(std::size_t s) const {
  assert(s < solvers_.size() && solvers_[s] != nullptr);
  return *solvers_[s];
}

Measures Algorithm1BatchSolver::solve(std::size_t s) const {
  return solver(s).solve();
}

Measures Algorithm1BatchSolver::solve_at(std::size_t s, Dims at) const {
  return solver(s).solve_at(at);
}

bool Algorithm1BatchSolver::degenerate(std::size_t s) const {
  return solver(s).degenerate();
}

unsigned Algorithm1BatchSolver::scaling_events(std::size_t s) const {
  return solver(s).scaling_events();
}

bool Algorithm1BatchSolver::lane_batched(std::size_t s) const {
  assert(s < batched_.size());
  return batched_[s];
}

std::unique_ptr<Algorithm1Solver> Algorithm1BatchSolver::extract(
    std::size_t s) {
  assert(s < solvers_.size() && solvers_[s] != nullptr);
  return std::move(solvers_[s]);
}

}  // namespace xbar::core
