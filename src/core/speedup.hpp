// Speedup-s switching (the `speedup-<s>` fabric).
//
// "A Delay Analysis of Maximal Matching Switching with Speedup" (Cogill &
// Lall) studies switches whose fabric runs s times faster than the line
// rate.  In the circuit-switched setting of this paper that corresponds to
// replicated crosspoints: every physical port carries s independent
// circuit appearances (s planes with per-port s-way muxes), so the switch
// behaves exactly like the paper's crossbar at the *virtual* dimensions
// (s N1, s N2) offered the same aggregate (tilde) traffic.  The product
// form therefore survives verbatim — `speedup_scaled_model` builds that
// scaled model and the regular Algorithm 1/2 machinery (numeric guards,
// escalation, batching) runs on it unchanged.  `fabric::SpeedupFabric`
// realizes the same semantics structurally so the simulator can
// cross-validate the scaled solve.
//
// Cogill–Lall's headline results — maximal matching is stable whenever the
// normalized load is below s/2, with an explicit mean-backlog bound — are
// exposed as `cogill_lall_bound` for the bench/report layers; they live
// outside `Measures` because they bound the queueing (waiting) side that
// the loss model deliberately does not track.

#pragma once

#include "core/model.hpp"

namespace xbar::core {

/// The crossbar model the speedup-s switch is equivalent to: dimensions
/// scaled by s, same aggregate (tilde) classes.  Raises kConfig when the
/// scaled dimensions leave the supported range.
[[nodiscard]] CrossbarModel speedup_scaled_model(const CrossbarModel& model,
                                                 unsigned s);

/// Cogill–Lall-style stability and mean-backlog bound for speedup-s
/// maximal matching under this model's offered load.
struct SpeedupBound {
  double load = 0.0;        ///< normalized offered port load rho
  double peakedness = 1.0;  ///< load-weighted BPP peakedness z
  bool stable = false;      ///< rho < s/2 (maximal matching, speedup s)
  double mean_backlog = 0.0;  ///< drift bound on E[backlog]; inf if unstable
  double mean_delay = 0.0;    ///< Little's-law delay bound; inf if unstable
};

[[nodiscard]] SpeedupBound cogill_lall_bound(const CrossbarModel& model,
                                             unsigned s);

}  // namespace xbar::core
