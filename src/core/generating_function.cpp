#include "core/generating_function.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/combinatorics.hpp"
#include "numeric/scaled_float.hpp"

namespace xbar::core {

double log_z(const CrossbarModel& model, double t1, double t2) {
  double exponent = t1 + t2;
  double log_pascal = 0.0;
  for (const auto& c : model.normalized_classes()) {
    const double s = std::pow(t1 * t2, static_cast<double>(c.bandwidth));
    if (c.is_poisson()) {
      exponent += c.rho() * s;
    } else {
      const double y = c.x() * s;
      if (y >= 1.0) {
        throw std::domain_error(
            "log_z: outside the Pascal factor's radius of convergence");
      }
      // (1 - y)^{-alpha/beta}: for Bernoulli classes alpha/beta < 0 and
      // y < 0, so log1p(-y) is still well-defined.
      log_pascal += -(c.alpha / c.beta) * std::log1p(-y);
    }
  }
  return exponent + log_pascal;
}

std::vector<double> series_log_q_grid(const CrossbarModel& model) {
  using num::ScaledFloat;
  const unsigned w = model.dims().n1 + 1;
  const unsigned h = model.dims().n2 + 1;
  const auto idx = [w](unsigned n1, unsigned n2) {
    return static_cast<std::size_t>(n2) * w + n1;
  };

  // Base grid: coefficients of exp(t1) exp(t2).
  std::vector<ScaledFloat> grid(static_cast<std::size_t>(w) * h);
  for (unsigned n2 = 0; n2 < h; ++n2) {
    for (unsigned n1 = 0; n1 < w; ++n1) {
      grid[idx(n1, n2)] = ScaledFloat::from_log(
          -num::log_factorial(n1) - num::log_factorial(n2));
    }
  }

  // Convolve with each class's diagonal series Phi_r(k) at (k a, k a).
  for (const auto& c : model.normalized_classes()) {
    const unsigned a = c.bandwidth;
    const unsigned max_k = model.dims().cap() / a;

    // Phi_r(k) = prod_{l=1..k} lambda(l-1)/(l mu); truncate where the
    // Bernoulli population is exhausted (lambda <= 0).
    std::vector<ScaledFloat> phi;
    phi.reserve(max_k + 1);
    phi.push_back(ScaledFloat::one());
    for (unsigned k = 1; k <= max_k; ++k) {
      const double lam = c.alpha + c.beta * static_cast<double>(k - 1);
      if (!(lam > 0.0)) {
        break;
      }
      phi.push_back(phi.back() *
                    ScaledFloat{lam / (static_cast<double>(k) * c.mu)});
    }

    std::vector<ScaledFloat> next(grid.size());
    for (unsigned n2 = 0; n2 < h; ++n2) {
      for (unsigned n1 = 0; n1 < w; ++n1) {
        ScaledFloat acc;
        const unsigned diag = std::min(n1, n2) / a;
        const unsigned terms =
            std::min<unsigned>(diag, static_cast<unsigned>(phi.size()) - 1);
        for (unsigned k = 0; k <= terms; ++k) {
          acc += phi[k] * grid[idx(n1 - k * a, n2 - k * a)];
        }
        next[idx(n1, n2)] = acc;
      }
    }
    grid = std::move(next);
  }

  std::vector<double> logs(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    logs[i] = grid[i].log();
  }
  return logs;
}

double series_log_q(const CrossbarModel& model) {
  const auto grid = series_log_q_grid(model);
  return grid.back();
}

}  // namespace xbar::core
