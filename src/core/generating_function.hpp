// The exponential generating function of Q(N) (paper eq. 5):
//
//   Z(t) = sum_N Q(N) t1^N1 t2^N2
//        = exp( t1 + t2 + sum_{r in R1} rho_r (t1 t2)^{a_r} )
//          * prod_{r in R2} (1 - (beta_r/mu_r)(t1 t2)^{a_r})^{-alpha_r/beta_r}
//
// This module provides two independent computation paths used purely for
// validation of Algorithms 1 and 2:
//
//  1. `log_z` — the closed form above, compared in tests against the
//     truncated series sum_N Q(N) t^N built from a solver's Q grid.
//  2. `series_log_q_grid` — Q(N) for every N on the grid obtained by 2-D
//     series convolution: the base exp(t1)exp(t2) grid 1/(n1! n2!) convolved
//     with each class's diagonal series Phi_r(k) placed at (k a_r, k a_r).
//     No recurrence is involved, so agreement with Algorithm 1/2 is a strong
//     correctness check.

#pragma once

#include <vector>

#include "core/model.hpp"

namespace xbar::core {

/// ln Z(t1, t2) by the closed form (eq. 5).  Requires
/// (beta_r/mu_r) (t1 t2)^{a_r} < 1 for every Pascal class (the radius of
/// convergence); throws std::domain_error otherwise.
[[nodiscard]] double log_z(const CrossbarModel& model, double t1, double t2);

/// ln Q(n1, n2) for the whole (N1+1) x (N2+1) grid (row-major, row = n2) by
/// series convolution.  O(R * N1 * N2 * min(N)/a) time.
[[nodiscard]] std::vector<double> series_log_q_grid(const CrossbarModel& model);

/// Convenience: ln Q at the model's own dimensions, by series convolution.
[[nodiscard]] double series_log_q(const CrossbarModel& model);

}  // namespace xbar::core
