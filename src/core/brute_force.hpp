// Reference solver by exhaustive enumeration of Γ(N).
//
// Evaluates the product-form distribution (paper eq. 2) term by term in the
// log domain and computes every performance measure directly from its
// definition (E_r = sum k_r pi(k), B_r = G(N - a_r I)/G(N), ...).  It is
// exponential in the number of classes and so only practical for small
// systems, but it contains no recurrence cleverness at all — which makes it
// the ground truth that Algorithm 1, Algorithm 2 and the generating-function
// expansion are all tested against.

#pragma once

#include <cstddef>
#include <span>

#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

class BruteForceSolver {
 public:
  explicit BruteForceSolver(CrossbarModel model);

  /// All measures, straight from the definitions.
  [[nodiscard]] Measures solve() const;

  /// ln G(N) — the normalization function, eq. 3.
  [[nodiscard]] double log_g() const;

  /// ln Q(N) = ln G(N) - ln N1! - ln N2!  (the quantity Algorithm 1 tracks).
  [[nodiscard]] double log_q() const;

  /// ln Q for an arbitrary subsystem size with this model's per-tuple rates.
  [[nodiscard]] double log_q(Dims dims) const;

  /// ln pi(k) of a specific state (normalized).  k.size() must equal R;
  /// returns -inf for infeasible states.
  [[nodiscard]] double log_pi(std::span<const unsigned> k) const;

  /// Fraction of class-r *arrivals* that are blocked ("call congestion").
  /// For Poisson classes this equals 1 - B_r (PASTA); for bursty classes it
  /// differs from the time-stationary 1 - B_r — the simulator measures this
  /// quantity directly.
  [[nodiscard]] double call_congestion(std::size_t r) const;

  /// The model being solved.
  [[nodiscard]] const CrossbarModel& model() const noexcept { return model_; }

 private:
  /// ln of the unnormalized stationary weight Psi(k) * prod Phi_r(k_r) for a
  /// switch of the given dims (state must satisfy k·A <= dims.cap()).
  [[nodiscard]] double log_weight(std::span<const unsigned> k, unsigned usage,
                                  Dims dims) const;

  CrossbarModel model_;
  std::vector<unsigned> bandwidths_;
};

}  // namespace xbar::core
