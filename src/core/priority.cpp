#include "core/priority.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/error.hpp"
#include "core/state_space.hpp"
#include "numeric/combinatorics.hpp"

namespace xbar::core {

namespace {

// Hash of one flattened state vector, for the neighbor index map.
struct StateKey {
  const unsigned* data;
  std::size_t size;

  friend bool operator==(const StateKey& a, const StateKey& b) {
    return a.size == b.size && std::equal(a.data, a.data + a.size, b.data);
  }
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (std::size_t i = 0; i < k.size; ++i) {
      h ^= k.data[i];
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

PriorityCtmcSolver::PriorityCtmcSolver(CrossbarModel model,
                                       PriorityOptions options)
    : model_(std::move(model)), options_(options) {
  const unsigned cap = model_.dims().cap();
  bandwidths_.reserve(model_.num_classes());
  for (const auto& cls : model_.normalized_classes()) {
    bandwidths_.push_back(cls.bandwidth);
  }
  for (std::size_t r = 0; r < bandwidths_.size(); ++r) {
    if (bandwidths_[r] + reservation(r) > cap) {
      raise(ErrorKind::kModel,
            "priority fabric: class " + std::to_string(r) +
                " can never be admitted (bandwidth " +
                std::to_string(bandwidths_[r]) + " + reservation " +
                std::to_string(reservation(r)) + " exceeds capacity " +
                std::to_string(cap) + ")");
    }
  }
  const std::uint64_t count = count_states(bandwidths_, cap);
  if (count > options_.max_states) {
    raise(ErrorKind::kModel,
          "priority fabric: state space has " + std::to_string(count) +
              " states (limit " + std::to_string(options_.max_states) + ")");
  }
  states_.reserve(count * bandwidths_.size());
  usage_.reserve(count);
  for_each_state(bandwidths_, cap,
                 [&](std::span<const unsigned> k, unsigned usage) {
                   states_.insert(states_.end(), k.begin(), k.end());
                   usage_.push_back(usage);
                 });
  solve_stationary();
}

unsigned PriorityCtmcSolver::reservation(std::size_t r) const noexcept {
  return static_cast<unsigned>(r) * options_.reservation_step;
}

// Probability a class-r request arriving with u port pairs busy is
// admitted: the arbiter gate times the chance all 2 a_r chosen ports are
// free.
double PriorityCtmcSolver::acceptance(std::size_t state, std::size_t r) const {
  const unsigned u = usage_[state];
  const unsigned a = bandwidths_[r];
  const Dims d = model_.dims();
  if (u + a > d.cap() - reservation(r)) {
    return 0.0;
  }
  return num::falling_factorial(d.n1 - u, a) *
         num::falling_factorial(d.n2 - u, a) /
         (num::falling_factorial(d.n1, a) * num::falling_factorial(d.n2, a));
}

void PriorityCtmcSolver::solve_stationary() {
  const std::size_t R = bandwidths_.size();
  const std::size_t S = usage_.size();
  const Dims d = model_.dims();

  std::unordered_map<StateKey, std::size_t, StateKeyHash> index;
  index.reserve(S);
  for (std::size_t s = 0; s < S; ++s) {
    index.emplace(StateKey{states_.data() + s * R, R}, s);
  }

  // Sparse uniformized transition structure: per state, the birth/death
  // targets and their CTMC rates.
  struct Arc {
    std::uint32_t target;
    double rate;
  };
  std::vector<std::vector<Arc>> arcs(S);
  std::vector<double> outflow(S, 0.0);
  std::vector<unsigned> scratch(R);
  for (std::size_t s = 0; s < S; ++s) {
    const unsigned* k = states_.data() + s * R;
    const unsigned u = usage_[s];
    for (std::size_t r = 0; r < R; ++r) {
      const NormalizedClass& cls = model_.normalized(r);
      const unsigned a = cls.bandwidth;
      // Birth: offered per-tuple intensity over the free ordered tuples,
      // gated by the reservation (exactly the simulator's admission).
      if (u + a <= d.cap() - std::min(reservation(r), d.cap())) {
        const double free_tuples = num::falling_factorial(d.n1 - u, a) *
                                   num::falling_factorial(d.n2 - u, a);
        const double rate = cls.intensity(k[r]) * free_tuples;
        if (rate > 0.0) {
          std::copy(k, k + R, scratch.begin());
          ++scratch[r];
          const auto it = index.find(StateKey{scratch.data(), R});
          if (it != index.end()) {
            arcs[s].push_back({static_cast<std::uint32_t>(it->second), rate});
            outflow[s] += rate;
          }
        }
      }
      // Death.
      if (k[r] > 0) {
        const double rate = static_cast<double>(k[r]) * cls.mu;
        std::copy(k, k + R, scratch.begin());
        --scratch[r];
        const auto it = index.find(StateKey{scratch.data(), R});
        arcs[s].push_back({static_cast<std::uint32_t>(it->second), rate});
        outflow[s] += rate;
      }
    }
  }

  // Uniformize: P = I + Q/Lambda with Lambda strictly above every outflow,
  // then power-iterate pi <- pi P.  The slack keeps a self-loop at every
  // state, so the DTMC is aperiodic and convergence is guaranteed.
  const double lambda =
      1.05 * *std::max_element(outflow.begin(), outflow.end()) + 1e-9;
  pi_.assign(S, 1.0 / static_cast<double>(S));
  std::vector<double> next(S, 0.0);
  for (iterations_ = 0; iterations_ < options_.max_iterations; ++iterations_) {
    for (std::size_t s = 0; s < S; ++s) {
      next[s] = pi_[s] * (1.0 - outflow[s] / lambda);
    }
    for (std::size_t s = 0; s < S; ++s) {
      const double mass = pi_[s] / lambda;
      for (const Arc& arc : arcs[s]) {
        next[arc.target] += mass * arc.rate;
      }
    }
    double diff = 0.0;
    double total = 0.0;
    for (std::size_t s = 0; s < S; ++s) {
      diff += std::abs(next[s] - pi_[s]);
      total += next[s];
    }
    // Renormalize each step to stop roundoff drift from accumulating.
    for (std::size_t s = 0; s < S; ++s) {
      pi_[s] = next[s] / total;
    }
    if (diff < options_.tolerance) {
      return;
    }
  }
  raise(ErrorKind::kInternal,
        "priority CTMC stationary solve did not converge in " +
            std::to_string(options_.max_iterations) + " iterations");
}

Measures PriorityCtmcSolver::solve() const {
  const std::size_t R = bandwidths_.size();
  const std::size_t S = usage_.size();
  Measures m;
  m.per_class.resize(R);
  for (std::size_t r = 0; r < R; ++r) {
    const NormalizedClass& cls = model_.normalized(r);
    double accept = 0.0;
    double concurrency = 0.0;
    for (std::size_t s = 0; s < S; ++s) {
      accept += pi_[s] * acceptance(s, r);
      concurrency += pi_[s] * static_cast<double>(states_[s * R + r]);
    }
    ClassMeasures& cm = m.per_class[r];
    cm.non_blocking = accept;
    cm.blocking = 1.0 - accept;
    cm.concurrency = concurrency;
    cm.throughput = concurrency * cls.mu;
    cm.port_usage = concurrency * static_cast<double>(cls.bandwidth);
    m.revenue += cls.weight * concurrency;
    m.total_throughput += cm.throughput;
    m.utilization += cm.port_usage;
  }
  m.utilization /= static_cast<double>(model_.dims().cap());
  return m;
}

double PriorityCtmcSolver::call_congestion(std::size_t r) const {
  const std::size_t R = bandwidths_.size();
  const NormalizedClass& cls = model_.normalized(r);
  double offered = 0.0;
  double accepted = 0.0;
  for (std::size_t s = 0; s < usage_.size(); ++s) {
    const double rate = cls.intensity(states_[s * R + r]);
    offered += pi_[s] * rate;
    accepted += pi_[s] * rate * acceptance(s, r);
  }
  if (offered <= 0.0) {
    return 0.0;
  }
  return 1.0 - accepted / offered;
}

double PriorityCtmcSolver::reservation_blocking(std::size_t r) const {
  // Probability the arbiter gate bites where the ports alone would not:
  // cap - t_r < u + a_r <= cap.
  const unsigned a = bandwidths_[r];
  const unsigned cap = model_.dims().cap();
  const unsigned t = std::min(reservation(r), cap);
  double p = 0.0;
  for (std::size_t s = 0; s < usage_.size(); ++s) {
    const unsigned u = usage_[s];
    if (u + a > cap - t && u + a <= cap) {
      p += pi_[s];
    }
  }
  return p;
}

}  // namespace xbar::core
