#include "core/revenue.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "numeric/combinatorics.hpp"
#include "numeric/kahan.hpp"
#include "numeric/scaled_float.hpp"

namespace xbar::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Signed lattice point: subsystem coordinates that may fall off the grid.
struct Point {
  long n1 = 0;
  long n2 = 0;

  [[nodiscard]] bool on_grid() const noexcept { return n1 >= 0 && n2 >= 0; }
  [[nodiscard]] Point minus(unsigned a, unsigned count = 1) const noexcept {
    const long d = static_cast<long>(a) * static_cast<long>(count);
    return Point{n1 - d, n2 - d};
  }
  [[nodiscard]] Dims dims() const noexcept {
    return Dims{static_cast<unsigned>(n1), static_cast<unsigned>(n2)};
  }
};

// All exact-gradient sums are linear combinations of terms
//   sign * exp(log_coeff) * Q(M) / Q(N).
// Individual Q ratios reach e^1000 while the coefficients reach e^-2000, so
// each term's exponent is assembled fully in the log domain and the signed
// accumulation runs in extended-range ScaledFloat; only the final (moderate)
// totals are converted back to double.
class ExactGradient {
 public:
  explicit ExactGradient(const Algorithm1Solver& solver)
      : solver_(solver),
        model_(solver.model()),
        root_(Point{static_cast<long>(model_.dims().n1),
                    static_cast<long>(model_.dims().n2)}),
        log_q_root_(solver.log_q(model_.dims())),
        measures_(solver.solve()) {}

  // dW/drho_r with x_r (= beta_r/mu_r) held fixed; exact series.
  [[nodiscard]] double d_revenue_d_rho(std::size_t r) const {
    const NormalizedClass& cr = model_.normalized(r);
    num::ScaledFloat total;
    // Explicit-rho term: w_r T_r(N)/Q(N) = w_r E_r / rho_r.
    total += num::ScaledFloat{cr.weight *
                              measures_.per_class[r].concurrency / cr.rho()};
    // Q-mediated terms: sum_s w_s rho_s d(T_s)/drho_r / Q(N).
    for (std::size_t s = 0; s < model_.num_classes(); ++s) {
      const NormalizedClass& cs = model_.normalized(s);
      total += num::ScaledFloat{cs.weight * cs.rho()} *
               mediated_sum(s, [&](Point m, double lp, int sp) {
                 return rho_series(r, m, lp, sp);
               });
    }
    // Normalization term: -W * dQ(N)/drho_r / Q(N).
    total -= num::ScaledFloat{measures_.revenue} * rho_series(r, root_, 0.0, 1);
    return total.to_double();
  }

  // dW/dx_r with rho_r held fixed; exact series.  Defined for every class
  // (for Poisson classes it is the sensitivity to becoming bursty).
  [[nodiscard]] double d_revenue_d_x(std::size_t r) const {
    const NormalizedClass& cr = model_.normalized(r);
    const unsigned a = cr.bandwidth;
    num::ScaledFloat total;
    for (std::size_t s = 0; s < model_.num_classes(); ++s) {
      const NormalizedClass& cs = model_.normalized(s);
      num::ScaledFloat mediated =
          mediated_sum(s, [&](Point m, double lp, int sp) {
            return x_series(r, m, lp, sp);
          });
      if (s == r) {
        // V(N,r) depends on x explicitly: sum_j j x^{j-1} Q(N-(j+1)a I),
        // reindexed as sum_{i>=0} (i+1) x^i Q(N-(i+2)a I).
        mediated += geometric_sum(
            cr.x(), [&](unsigned i, double log_xi, int sign) -> num::ScaledFloat {
              const Point m = root_.minus(a, i + 2);
              if (!m.on_grid()) {
                return num::ScaledFloat{};
              }
              return signed_exp(std::log(static_cast<double>(i) + 1.0) +
                                    log_xi + lq(m) - log_q_root_,
                                sign);
            });
      }
      total += num::ScaledFloat{cs.weight * cs.rho()} * mediated;
    }
    total -= num::ScaledFloat{measures_.revenue} * x_series(r, root_, 0.0, 1);
    return total.to_double();
  }

 private:
  static num::ScaledFloat signed_exp(double log_abs, int sign) {
    if (log_abs == kNegInf) {
      return num::ScaledFloat{};
    }
    num::ScaledFloat v = num::ScaledFloat::from_log(log_abs);
    return sign < 0 ? -v : v;
  }

  [[nodiscard]] double lq(Point m) const {
    return m.on_grid() ? solver_.log_q(m.dims()) : kNegInf;
  }

  // sum over j >= 0 of term(j, ln|x^j|, sign(x^j)); stops once the series
  // walks off the grid (signalled by a zero term after j = 0).
  template <typename TermFn>
  [[nodiscard]] num::ScaledFloat geometric_sum(double x, TermFn term) const {
    num::ScaledFloat acc;
    const unsigned max_j = model_.dims().cap() + 2;
    const double log_ax = x != 0.0 ? std::log(std::fabs(x)) : kNegInf;
    const int sign_x = x < 0.0 ? -1 : 1;
    for (unsigned j = 0; j <= max_j; ++j) {
      double log_xj;
      if (j == 0) {
        log_xj = 0.0;  // 0^0 = 1
      } else if (x == 0.0) {
        break;
      } else {
        log_xj = static_cast<double>(j) * log_ax;
      }
      const int sign = (j % 2 == 1 && sign_x < 0) ? -1 : 1;
      const num::ScaledFloat t = term(j, log_xj, sign);
      if (t.is_zero() && j > 0) {
        break;  // walked off the grid; all later terms vanish too
      }
      acc += t;
    }
    return acc;
  }

  // R-hat_r(M) = dQ(M)/drho_r / Q(N)
  //            = sum_{m>=1} x^{m-1}/m * Q(M - m a_r I) / Q(N),
  // scaled by sign_pref * exp(log_pref).
  [[nodiscard]] num::ScaledFloat rho_series(std::size_t r, Point base,
                                            double log_pref,
                                            int sign_pref) const {
    const NormalizedClass& c = model_.normalized(r);
    const unsigned a = c.bandwidth;
    return geometric_sum(
        c.x(), [&](unsigned j, double log_xj, int sign) -> num::ScaledFloat {
          const unsigned m = j + 1;  // m >= 1, x^{m-1} = x^j
          const Point p = base.minus(a, m);
          if (!p.on_grid()) {
            return num::ScaledFloat{};
          }
          return signed_exp(log_pref + log_xj -
                                std::log(static_cast<double>(m)) + lq(p) -
                                log_q_root_,
                            sign * sign_pref);
        });
  }

  // S-hat_r(M) = dQ(M)/dx_r / Q(N)
  //            = rho_r sum_{m>=2} ((m-1)/m) x^{m-2} Q(M - m a_r I) / Q(N),
  // scaled by sign_pref * exp(log_pref).
  [[nodiscard]] num::ScaledFloat x_series(std::size_t r, Point base,
                                          double log_pref,
                                          int sign_pref) const {
    const NormalizedClass& c = model_.normalized(r);
    const unsigned a = c.bandwidth;
    const double log_rho = std::log(c.rho());
    return geometric_sum(
        c.x(), [&](unsigned j, double log_xj, int sign) -> num::ScaledFloat {
          const unsigned m = j + 2;  // m >= 2, x^{m-2} = x^j
          const Point p = base.minus(a, m);
          if (!p.on_grid()) {
            return num::ScaledFloat{};
          }
          const double md = static_cast<double>(m);
          return signed_exp(log_pref + log_rho + std::log((md - 1.0) / md) +
                                log_xj + lq(p) - log_q_root_,
                            sign * sign_pref);
        });
  }

  // sum_j x_s^j InnerSeries(N - (j+1) a_s I, ln|x_s^j|, sign(x_s^j)) — the
  // chain rule through T_s = V(N, s); for Poisson s only the j = 0 term.
  template <typename InnerFn>
  [[nodiscard]] num::ScaledFloat mediated_sum(std::size_t s,
                                              InnerFn inner) const {
    const NormalizedClass& cs = model_.normalized(s);
    const unsigned a = cs.bandwidth;
    const double xs = cs.x();
    const double log_ax = xs != 0.0 ? std::log(std::fabs(xs)) : kNegInf;
    num::ScaledFloat acc;
    const unsigned max_j = model_.dims().cap() / a + 1;
    for (unsigned j = 0; j <= max_j; ++j) {
      const Point m = root_.minus(a, j + 1);
      if (!m.on_grid()) {
        break;
      }
      const double log_pref = j == 0 ? 0.0 : static_cast<double>(j) * log_ax;
      const int sign_pref = (xs < 0.0 && j % 2 == 1) ? -1 : 1;
      acc += inner(m, log_pref, sign_pref);
      if (xs == 0.0) {
        break;  // Poisson: only j = 0
      }
    }
    return acc;
  }

  const Algorithm1Solver& solver_;
  const CrossbarModel& model_;
  Point root_;
  double log_q_root_;
  Measures measures_;
};

// Rebuild the model with class r's alpha~ (or beta~) shifted so that the
// per-tuple rho_r (or x_r) moves by `delta`.
CrossbarModel perturbed_model(const CrossbarModel& model, std::size_t r,
                              double delta_rho, double delta_x) {
  const NormalizedClass& c = model.normalized(r);
  const double sets = num::binomial(model.dims().n2, c.bandwidth);
  std::vector<TrafficClass> classes(model.classes().begin(),
                                    model.classes().end());
  classes[r].alpha_tilde += delta_rho * c.mu * sets;
  classes[r].beta_tilde += delta_x * c.mu * sets;
  return CrossbarModel(model.dims(), std::move(classes));
}

double revenue_of(const CrossbarModel& model) {
  return Algorithm1Solver(model).solve().revenue;
}

}  // namespace

RevenueAnalyzer::RevenueAnalyzer(CrossbarModel model)
    : solver_(std::move(model)) {}

double RevenueAnalyzer::revenue() const { return solver_.solve().revenue; }

double RevenueAnalyzer::revenue_at(Dims at) const {
  return solver_.solve_at(at).revenue;
}

double RevenueAnalyzer::shadow_cost(std::size_t r) const {
  const Dims dims = solver_.model().dims();
  const unsigned a = solver_.model().normalized(r).bandwidth;
  if (dims.n1 < a || dims.n2 < a) {
    return revenue();
  }
  return revenue() - revenue_at(Dims{dims.n1 - a, dims.n2 - a});
}

double RevenueAnalyzer::d_revenue_d_rho_exact(std::size_t r) const {
  const NormalizedClass& c = solver_.model().normalized(r);
  if (c.is_poisson()) {
    // Closed form (paper §4, exact also with bursty classes present —
    // DESIGN.md): P(N1,a) P(N2,a) B_r (w_r - DeltaW_r).
    const Dims dims = solver_.model().dims();
    const double pp = num::falling_factorial(dims.n1, c.bandwidth) *
                      num::falling_factorial(dims.n2, c.bandwidth);
    const double b = solver_.non_blocking(r, dims);
    return pp * b * (c.weight - shadow_cost(r));
  }
  return ExactGradient(solver_).d_revenue_d_rho(r);
}

double RevenueAnalyzer::d_revenue_d_x_exact(std::size_t r) const {
  return ExactGradient(solver_).d_revenue_d_x(r);
}

double RevenueAnalyzer::d_revenue_d_rho_numeric(std::size_t r,
                                                GradientMethod method,
                                                double relative_step) const {
  const NormalizedClass& c = solver_.model().normalized(r);
  const double h = relative_step * c.rho();
  const double w0 = revenue();
  switch (method) {
    case GradientMethod::kForwardDifference:
      return (revenue_of(perturbed_model(solver_.model(), r, h, 0.0)) - w0) /
             h;
    case GradientMethod::kCentralDifference:
      return (revenue_of(perturbed_model(solver_.model(), r, h, 0.0)) -
              revenue_of(perturbed_model(solver_.model(), r, -h, 0.0))) /
             (2.0 * h);
    case GradientMethod::kExact:
      return d_revenue_d_rho_exact(r);
  }
  throw std::logic_error("unreachable gradient method");
}

double RevenueAnalyzer::d_revenue_d_x_numeric(std::size_t r,
                                              GradientMethod method,
                                              double relative_step) const {
  const NormalizedClass& c = solver_.model().normalized(r);
  const double scale = c.x() != 0.0 ? std::fabs(c.x()) : c.rho();
  const double h = relative_step * scale;
  const double w0 = revenue();
  switch (method) {
    case GradientMethod::kForwardDifference:
      return (revenue_of(perturbed_model(solver_.model(), r, 0.0, h)) - w0) /
             h;
    case GradientMethod::kCentralDifference:
      return (revenue_of(perturbed_model(solver_.model(), r, 0.0, h)) -
              revenue_of(perturbed_model(solver_.model(), r, 0.0, -h))) /
             (2.0 * h);
    case GradientMethod::kExact:
      return d_revenue_d_x_exact(r);
  }
  throw std::logic_error("unreachable gradient method");
}

RevenueReport RevenueAnalyzer::analyze(GradientMethod method) const {
  RevenueReport report;
  report.measures = solver_.solve();
  report.revenue = report.measures.revenue;
  const std::size_t R = solver_.model().num_classes();
  report.per_class.resize(R);
  for (std::size_t r = 0; r < R; ++r) {
    ClassSensitivity& s = report.per_class[r];
    s.shadow_cost = shadow_cost(r);
    constexpr double kStep = 1e-4;
    switch (method) {
      case GradientMethod::kExact:
        s.d_revenue_d_rho = d_revenue_d_rho_exact(r);
        s.d_revenue_d_x = d_revenue_d_x_exact(r);
        break;
      case GradientMethod::kForwardDifference:
      case GradientMethod::kCentralDifference:
        s.d_revenue_d_rho = d_revenue_d_rho_numeric(r, method, kStep);
        s.d_revenue_d_x = d_revenue_d_x_numeric(r, method, kStep);
        break;
    }
    s.worth_admitting =
        solver_.model().normalized(r).weight > s.shadow_cost;
  }
  return report;
}

}  // namespace xbar::core
