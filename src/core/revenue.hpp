// Revenue-oriented performance analysis (paper §4).
//
// An accepted class-r connection earns revenue w_r, so the long-run revenue
// rate is the weighted throughput W(N) = sum_r w_r E_r(N).  The economics of
// admitting more class-r traffic are captured by the shadow cost
// DeltaW_r = W(N) - W(N - a_r I): a class whose weight exceeds its shadow
// cost raises revenue when its load grows; otherwise it crowds out more
// valuable traffic (the paper's "economic interpretation").
//
// Gradients:
//   * dW/drho_r — the paper gives the closed form
//       P(N1,a_r) P(N2,a_r) B_r(N) (w_r - DeltaW_r)
//     for Poisson classes.  We prove (DESIGN.md) it remains exact with
//     bursty classes present, and additionally derive an exact series for
//     bursty r:  dQ(M)/drho_r = sum_{m>=1} x^{m-1}/m Q(M - m a_r I).
//   * dW/dx_r (x = beta_r/mu_r) — the paper resorts to a forward
//     difference.  We implement that (for fidelity) *and* the exact series
//       dQ(M)/dx_r = rho_r sum_{m>=2} ((m-1)/m) x^{m-2} Q(M - m a_r I),
//     so Table 2 can be regenerated with either method.

#pragma once

#include <cstddef>
#include <vector>

#include "core/algorithm1.hpp"
#include "core/measures.hpp"
#include "core/model.hpp"

namespace xbar::core {

/// How to compute load-sensitivity gradients.
enum class GradientMethod {
  kExact,              ///< closed form / exact series (this library)
  kForwardDifference,  ///< the paper's §4 method
  kCentralDifference,  ///< O(h^2) numeric check
};

/// Sensitivity of the revenue W(N) to one class's load.
struct ClassSensitivity {
  /// Shadow cost DeltaW_r = W(N) - W(N - a_r I).
  double shadow_cost = 0.0;

  /// dW/drho_r at the per-tuple scale.
  double d_revenue_d_rho = 0.0;

  /// dW/d(beta_r/mu_r) at the per-tuple scale; 0 exactly has no meaning for
  /// Poisson-only perturbations but the derivative is still well defined.
  double d_revenue_d_x = 0.0;

  /// Paper's admission economics: accepting more class-r traffic increases
  /// revenue iff w_r > DeltaW_r.
  bool worth_admitting = false;
};

/// Full revenue report for one configuration.
struct RevenueReport {
  double revenue = 0.0;                     ///< W(N)
  Measures measures;                        ///< underlying solution
  std::vector<ClassSensitivity> per_class;  ///< sensitivities per class
};

/// Computes W(N), shadow costs and gradients on top of an Algorithm 1 grid.
class RevenueAnalyzer {
 public:
  explicit RevenueAnalyzer(CrossbarModel model);

  /// Full report with the requested gradient method.
  [[nodiscard]] RevenueReport analyze(
      GradientMethod method = GradientMethod::kExact) const;

  /// W(N).
  [[nodiscard]] double revenue() const;

  /// W at a subsystem (same per-tuple rates) — the W(N - a_r I) of the
  /// shadow-cost formula.
  [[nodiscard]] double revenue_at(Dims at) const;

  /// Shadow cost DeltaW_r.
  [[nodiscard]] double shadow_cost(std::size_t r) const;

  /// Exact dW/drho_r (per-tuple scale); closed form for Poisson classes,
  /// series for bursty classes.
  [[nodiscard]] double d_revenue_d_rho_exact(std::size_t r) const;

  /// Exact dW/dx_r (per-tuple scale).
  [[nodiscard]] double d_revenue_d_x_exact(std::size_t r) const;

  /// Numeric dW/drho_r by re-solving a perturbed model.
  [[nodiscard]] double d_revenue_d_rho_numeric(std::size_t r,
                                               GradientMethod method,
                                               double relative_step) const;

  /// Numeric dW/dx_r by re-solving a perturbed model.  `relative_step` is
  /// relative to x_r when nonzero, to rho_r otherwise.
  [[nodiscard]] double d_revenue_d_x_numeric(std::size_t r,
                                             GradientMethod method,
                                             double relative_step) const;

  [[nodiscard]] const CrossbarModel& model() const noexcept {
    return solver_.model();
  }

 private:
  Algorithm1Solver solver_;
};

}  // namespace xbar::core
