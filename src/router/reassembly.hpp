// Backend-response reassembly: the router's trust boundary with its own
// fleet.
//
// The front tier relays backend response lines to clients verbatim — it
// must not re-serialize (that would perturb float formatting and double
// the parse cost) — but it also must not relay garbage: a backend that
// truncates a frame mid-write, or a misconfigured process that is not
// xbar_serve at all, would otherwise corrupt the client's NDJSON stream.
// So every backend line passes through `relay_or_error` first: a frame is
// relayed only if it parses as a JSON object carrying a "status" member
// (the protocol's response envelope); anything else becomes a typed "io"
// error frame under the *client's* request id.  The router never crashes
// and never emits a non-protocol line, no matter what the backend sends —
// this function is the fuzz target for exactly that property.
//
// Note the split with XbarClient: the client already rejects frames that
// do not start with '{' as transport resets (kReset) before they reach
// this layer, so reassembly's job is the harder half — '{'-prefixed bytes
// that are not a well-formed response envelope.

#pragma once

#include <string>
#include <string_view>

namespace xbar::router {

struct RelayResult {
  std::string frame;    ///< line to send to the client (no trailing \n)
  bool relayed = true;  ///< false when `frame` is a synthesized "io" error
};

/// Validate one backend response line for client `id` (raw JSON rendering,
/// as parse_request yields).  Returns the line itself when it is a valid
/// response envelope, otherwise a typed "io" error frame echoing `id`.
[[nodiscard]] RelayResult relay_or_error(std::string_view backend_line,
                                         const std::string& id);

}  // namespace xbar::router
