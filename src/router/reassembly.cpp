#include "router/reassembly.hpp"

#include "core/error.hpp"
#include "report/json_reader.hpp"
#include "service/protocol.hpp"

namespace xbar::router {

RelayResult relay_or_error(std::string_view backend_line,
                           const std::string& id) {
  const auto reject = [&](std::string_view why) {
    RelayResult r;
    r.relayed = false;
    r.frame = service::render_error(id, "io", std::string("backend sent ") +
                                                  std::string(why));
    return r;
  };
  if (backend_line.empty()) {
    return reject("an empty frame");
  }
  try {
    const report::JsonValue doc = report::parse_json(backend_line);
    if (!doc.is_object()) {
      return reject("a non-object frame");
    }
    const report::JsonValue* status = doc.find("status");
    if (status == nullptr || !status->is_string()) {
      return reject("a frame without a status");
    }
  } catch (const xbar::Error&) {
    return reject("a malformed frame");
  }
  RelayResult r;
  r.frame.assign(backend_line);
  return r;
}

}  // namespace xbar::router
