// Consistent hash ring with bounded load — the router's placement policy.
//
// Why consistent hashing at all: every backend keeps two caches keyed on
// the canonical scenario+spec fingerprint (the sharded ResultCache and the
// per-worker SolverCaches).  Spraying requests round-robin would dilute
// both across the fleet; hashing the fingerprint onto a ring gives each
// backend a stable key range, so its caches stay hot, and
// adding/removing one backend of B remaps only ~1/B of the keys instead
// of reshuffling everything.
//
// Why *bounded load* (Mirrokni et al.'s consistent-hashing-with-bounded-
// loads variant): pure affinity has a pathology under skew — one hot key
// range can bury its owner while neighbors idle.  Each pick therefore
// admits the ring-order candidate only if its in-flight count stays under
// ceil(c * (total_inflight + 1) / alive_backends); overloaded candidates
// are deferred (not dropped) to the tail of the preference order, sorted
// by load.  c = 1 degenerates to least-loaded, c = inf to pure ring
// order; the default 1.25 keeps affinity until a backend is ~25% over its
// fair share.  The same spill rule is what bounds the backlog a slow
// backend can accumulate — the ring never keeps feeding a backend that is
// already `c`x over fair share, for the same reason speedup bounds
// backlog in a maximal-matching switch: capacity beyond fair share is
// what drains bursts.
//
// The ring itself: `vnodes` virtual points per backend (splitmix64-mixed
// FNV-1a of "backend/vnode"), sorted once at construction.  Membership
// changes are expressed per lookup via the `alive` mask rather than by
// rebuilding — ejection/readmission is frequent under chaos, the backend
// set is not.
//
// Everything here is pure and deterministic: no clocks, no RNG, no
// internal state mutation after construction — the unit tests pin exact
// placements.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace xbar::router {

struct RingConfig {
  std::size_t vnodes = 64;    ///< virtual points per backend
  double load_factor = 1.25;  ///< bounded-load c (>= 1; larger = stickier)
};

class HashRing {
 public:
  HashRing(std::size_t backends, RingConfig config = {});

  [[nodiscard]] std::size_t backends() const noexcept { return backends_; }

  /// 64-bit position for a request key (the canonical fingerprint).
  [[nodiscard]] static std::uint64_t hash_key(std::string_view key) noexcept;

  /// Full preference order for `key_hash` over the alive backends:
  /// ring-successor candidates that pass the bounded-load admission first
  /// (affinity preserved), then the deferred/overloaded ones by ascending
  /// outstanding.  Empty iff no backend is alive.  `outstanding[b]` is the
  /// in-flight count per backend (indexed like `alive`).
  [[nodiscard]] std::vector<std::size_t> plan(
      std::uint64_t key_hash, const std::vector<char>& alive,
      const std::vector<std::size_t>& outstanding) const;

  /// Keyless preference order (non-cacheable methods): alive backends by
  /// ascending outstanding, ties by index.
  [[nodiscard]] static std::vector<std::size_t> by_load(
      const std::vector<char>& alive,
      const std::vector<std::size_t>& outstanding);

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t backend;
  };

  std::size_t backends_;
  RingConfig config_;
  std::vector<Point> points_;  ///< sorted by position
};

}  // namespace xbar::router
