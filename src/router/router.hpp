// Router: the fault-tolerant front tier over an xbar_serve fleet.
//
// Architecture (one box per thread kind):
//
//   acceptor ──> bounded connection queue ──> worker 0..W-1
//      │               (admission)                │ per request:
//      │  queue full: typed "overloaded"          │   parse (protocol) for
//      │  response + close                        │   method + id + the
//      └─ poll()s a drain pipe                    │   canonical cache_key
//                                                 │   place on the ring
//                 prober (one thread)             │   hedged call + failover
//      health-probes every backend on its         │   reassemble, relay
//      jittered schedule; the only path that      │
//      talks to *ejected* backends                │
//
// Placement: cacheable methods (solve/revenue/sweep/batch) hash their
// canonical fingerprint onto the bounded-load ring, so each backend's
// result/solver caches stay hot on a stable key range; non-cacheable
// methods go least-outstanding.  Membership (healthy/suspect/ejected) is
// driven by probe outcomes plus data-path transport failures; a served
// "overloaded" frame counts as liveness.  Readmission happens only via
// probes — the data path never touches an ejected backend.
//
// Hedging: after the primary has been silent for the observed backend
// latency's `hedge_quantile` (clamped; a fixed cold value until warmup),
// the same request is issued to the next candidate and the first OK frame
// wins.  Every method the router forwards is idempotent — backends are
// deterministic evaluators keyed on the same fingerprint — so a hedge can
// never double-apply anything; deduplication is structural (the worker
// writes exactly one response per request id, the loser's frame is
// dropped on the floor).  Failures fail over synchronously down the rest
// of the placement plan; when the plan is exhausted (or empty because the
// whole fleet is ejected) the router sheds with a typed "overloaded"
// frame, which clients already treat as retryable backpressure.
//
// The router speaks the exact same NDJSON protocol on both sides, so
// xbar_client/xbar_loadgen work against it unchanged, and so does another
// router (tiers compose).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "client/pool.hpp"
#include "router/hash_ring.hpp"
#include "router/membership.hpp"
#include "service/connection.hpp"
#include "service/histogram.hpp"
#include "service/protocol.hpp"

namespace xbar::router {

struct BackendAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct HedgeConfig {
  bool enabled = true;
  double quantile = 0.9;         ///< latency quantile that arms the hedge
  double min_delay_seconds = 0.002;  ///< clamp floor for the armed delay
  double max_delay_seconds = 0.5;    ///< clamp ceiling
  double cold_delay_seconds = 0.05;  ///< used until `warmup` observations
  std::uint64_t warmup = 64;     ///< observations before the quantile rules
};

struct RouterConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  std::vector<BackendAddress> backends;

  unsigned workers = 0;  ///< 0 = one per hardware thread
  std::size_t queue_capacity = 128;
  std::size_t max_line_bytes = 1 << 20;
  double idle_poll_seconds = 0.25;
  double send_timeout_seconds = 5.0;

  RingConfig ring;
  MembershipConfig membership;
  HedgeConfig hedge;

  /// Per-backend connection settings (host/port overwritten per backend).
  client::ClientConfig backend_client;
  /// Idle pooled connections kept warm per backend.  Backends are
  /// thread-per-connection, so every warm connection pins one backend
  /// worker: a backend must run with at least `pool_max_idle` + slack
  /// worker threads, or the router's own pool starves it.
  std::size_t pool_max_idle = 2;
  client::BreakerConfig breaker;

  double probe_timeout_seconds = 0.25;  ///< health-probe call budget
  std::uint64_t seed = 1;

  /// Brownout-aware placement: each backend's advertised pressure [0, 1]
  /// inflates its apparent outstanding count by `pressure * penalty`
  /// virtual requests, steering the bounded-load ring away from saturated
  /// backends before they start shedding.
  double pressure_penalty = 4.0;
};

/// Per-backend operational view (stats rendering + tests).
struct BackendSnapshot {
  std::string endpoint;
  BackendStatus status;
  std::size_t outstanding = 0;
  client::ClientStats client;  ///< pool tallies + hedge wins/losses
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
};

/// Point-in-time router stats (the `stats` method renders exactly this).
struct RouterStatsSnapshot {
  double uptime_seconds = 0.0;
  bool draining = false;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t overload_rejections = 0;  ///< accept-queue admission drops
  std::uint64_t requests_total = 0;
  std::uint64_t routed_ok = 0;      ///< backend frames relayed
  std::uint64_t local_ok = 0;       ///< ping/stats/health answered here
  std::uint64_t local_errors = 0;   ///< parse/internal answered here
  std::uint64_t relay_rejections = 0;  ///< corrupt backend frames replaced
  std::uint64_t failovers = 0;      ///< attempts beyond each request's first
  std::uint64_t shed = 0;           ///< typed "overloaded" after exhaustion
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t hedges_lost = 0;
  std::uint64_t hedges_suppressed = 0;  ///< armed but no eligible target
  std::uint64_t ejections = 0;
  std::uint64_t readmissions = 0;
  double hedge_delay_seconds = 0.0;  ///< the currently armed delay
  service::Histogram::Snapshot backend_latency;
  std::vector<BackendSnapshot> backends;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind, listen, and spawn acceptor + workers + prober.  Raises
  /// xbar::Error(kIo/kConfig) on bind failure or an empty backend list.
  void start();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful shutdown: stop accepting, finish accepted connections, wait
  /// for hedge losers to land, stop probing.  Safe from any thread.
  void request_drain();
  void wait();
  void stop();

  [[nodiscard]] RouterStatsSnapshot stats() const;

  /// The delay a hedge would arm right now (exposed for tests).
  [[nodiscard]] double hedge_delay_seconds() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One backend's data-path state.
  struct Backend {
    std::unique_ptr<client::ClientPool> pool;
    std::atomic<std::uint64_t> hedges_won{0};
    std::atomic<std::uint64_t> hedges_lost{0};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> probe_failures{0};
  };

  /// First-OK-wins rendezvous between a request's hedged attempts.
  struct Rendezvous;

  void acceptor_main();
  void worker_main();
  void handle_connection(service::Socket socket);
  bool handle_request(int fd, const std::string& line);
  std::string route(const service::Request& request,
                    const std::string& line);
  /// Launch one attempt against backend `b` on a tracked thread.
  void launch_attempt(const std::shared_ptr<Rendezvous>& rendezvous,
                      std::size_t slot, std::size_t b,
                      const std::string& line);
  /// Feed one attempt outcome into membership + latency.
  void observe_attempt(std::size_t b, const client::CallResult& result,
                       double seconds);
  void prober_main();
  void probe_one(std::size_t b, client::XbarClient& probe_client);

  [[nodiscard]] std::vector<std::size_t> placement_plan(
      const service::Request& request) const;
  [[nodiscard]] std::vector<std::size_t> outstanding_by_backend() const;
  std::string render_stats() const;
  std::string render_health() const;

  RouterConfig config_;
  service::Socket listen_socket_;
  std::uint16_t port_ = 0;
  int drain_pipe_read_ = -1;
  int drain_pipe_write_ = -1;
  bool started_ = false;

  HashRing ring_;
  std::unique_ptr<Membership> membership_;
  std::vector<std::unique_ptr<Backend>> backends_;
  service::Histogram backend_latency_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread prober_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<service::Socket> queue_;
  std::atomic<bool> draining_{false};

  std::mutex prober_mutex_;  ///< prober parks here between due probes
  std::condition_variable prober_cv_;

  // Hedge losers outlive their request; drain waits for them.
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_attempts_ = 0;

  Clock::time_point start_time_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> overload_rejections_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> routed_ok_{0};
  std::atomic<std::uint64_t> local_ok_{0};
  std::atomic<std::uint64_t> local_errors_{0};
  std::atomic<std::uint64_t> relay_rejections_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> hedges_launched_{0};
  std::atomic<std::uint64_t> hedges_suppressed_{0};
};

}  // namespace xbar::router
