#include "router/router.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "client/stats_json.hpp"
#include "core/error.hpp"
#include "report/json_reader.hpp"
#include "report/json_writer.hpp"
#include "router/reassembly.hpp"

namespace xbar::router {

namespace {

using report::JsonWriter;
using service::LineReader;
using service::Method;
using service::render_error;
using service::render_ok;
using service::Request;
using service::SendStatus;
using service::Socket;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The prober's request line.  The id marks the traffic in backend logs.
constexpr const char* kProbeLine =
    "{\"method\":\"health\",\"id\":\"router-probe\"}";

}  // namespace

/// First-OK-wins rendezvous between a request's hedged attempts.  The
/// request worker and up to two attempt threads meet here; the loser's
/// frame is dropped under the same lock that elected the winner, which is
/// what makes response deduplication structural rather than best-effort.
struct Router::Rendezvous {
  std::mutex mutex;
  std::condition_variable cv;
  unsigned launched = 0;
  unsigned finished = 0;
  bool has_winner = false;
  std::size_t winner_slot = 0;     ///< 0 = primary, 1 = hedge
  std::size_t winner_backend = 0;
  std::string winner_frame;
};

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.backends.size(), config_.ring) {
  membership_ = std::make_unique<Membership>(
      config_.backends.size(), config_.membership, config_.seed,
      Clock::now());
  backends_.reserve(config_.backends.size());
  for (std::size_t b = 0; b < config_.backends.size(); ++b) {
    client::PoolConfig pool;
    pool.client = config_.backend_client;
    pool.client.host = config_.backends[b].host;
    pool.client.port = config_.backends[b].port;
    pool.client.seed = config_.seed * 0x9e3779b9u + b;
    pool.max_idle = config_.pool_max_idle;
    pool.breaker = config_.breaker;
    auto backend = std::make_unique<Backend>();
    backend->pool = std::make_unique<client::ClientPool>(std::move(pool));
    backends_.push_back(std::move(backend));
  }
}

Router::~Router() {
  stop();
  if (drain_pipe_read_ >= 0) {
    ::close(drain_pipe_read_);
    ::close(drain_pipe_write_);
  }
}

void Router::start() {
  if (started_) {
    raise(ErrorKind::kInternal, "Router::start() called twice");
  }
  if (config_.backends.empty()) {
    raise(ErrorKind::kConfig, "router needs at least one backend");
  }
  listen_socket_ = service::listen_on(config_.host, config_.port, port_);
  int fds[2];
  if (::pipe(fds) != 0) {
    raise(ErrorKind::kIo, std::string("pipe(): ") + std::strerror(errno));
  }
  drain_pipe_read_ = fds[0];
  drain_pipe_write_ = fds[1];
  start_time_ = Clock::now();
  started_ = true;

  const unsigned workers =
      config_.workers != 0
          ? config_.workers
          : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  acceptor_ = std::thread([this] { acceptor_main(); });
  prober_ = std::thread([this] { prober_main(); });
}

void Router::request_drain() {
  if (!started_) {
    return;
  }
  draining_.store(true, std::memory_order_relaxed);
  const unsigned char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(drain_pipe_write_, &byte, 1);
  queue_cv_.notify_all();
  prober_cv_.notify_all();
}

void Router::wait() {
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  if (prober_.joinable()) {
    prober_.join();
  }
  // Hedge losers may still be in flight against slow backends; they hold
  // pooled connections, so wait for every attempt to land before
  // declaring the router drained.
  std::unique_lock<std::mutex> lock(inflight_mutex_);
  inflight_cv_.wait(lock, [this] { return inflight_attempts_ == 0; });
}

void Router::stop() {
  request_drain();
  wait();
}

void Router::acceptor_main() {
  for (;;) {
    pollfd fds[2] = {{listen_socket_.fd(), POLLIN, 0},
                     {drain_pipe_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        draining_.load(std::memory_order_relaxed)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    Socket conn(::accept(listen_socket_.fd(), nullptr, nullptr));
    if (!conn.valid()) {
      continue;
    }
    const int one = 1;
    ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    service::set_recv_timeout(conn.fd(), config_.idle_poll_seconds);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
      lock.unlock();
      (void)service::write_line(
          conn.fd(),
          render_error("null", "shutdown", "router is draining"));
      break;
    }
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      overload_rejections_.fetch_add(1, std::memory_order_relaxed);
      (void)service::write_line(
          conn.fd(),
          render_error("null", "overloaded",
                       "router accept queue full; retry with backoff"));
      continue;
    }
    queue_.push_back(std::move(conn));
    lock.unlock();
    queue_cv_.notify_one();
  }
  listen_socket_.reset();
}

void Router::worker_main() {
  for (;;) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        return;
      }
      conn = std::move(queue_.front());
      queue_.pop_front();
    }
    handle_connection(std::move(conn));
  }
}

void Router::handle_connection(Socket socket) {
  connections_active_.fetch_add(1, std::memory_order_relaxed);
  if (config_.send_timeout_seconds > 0.0) {
    service::set_send_timeout(socket.fd(), config_.send_timeout_seconds);
  }
  LineReader reader(socket.fd(), config_.max_line_bytes);
  std::string line;
  for (;;) {
    const LineReader::Status status = reader.read_line(line);
    if (status == LineReader::Status::kLine) {
      if (!handle_request(socket.fd(), line)) {
        break;
      }
      continue;
    }
    if (status == LineReader::Status::kTimeout) {
      if (draining_.load(std::memory_order_relaxed)) {
        break;
      }
      continue;
    }
    if (status == LineReader::Status::kOverflow) {
      requests_total_.fetch_add(1, std::memory_order_relaxed);
      local_errors_.fetch_add(1, std::memory_order_relaxed);
      (void)service::write_line(
          socket.fd(),
          render_error("null", "parse",
                       "request line exceeds " +
                           std::to_string(config_.max_line_bytes) +
                           " bytes"));
      break;
    }
    break;  // kEof / kError
  }
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

bool Router::handle_request(int fd, const std::string& line) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  std::string response;
  try {
    const Request request = service::parse_request(line);
    switch (request.method) {
      case Method::kPing:
        local_ok_.fetch_add(1, std::memory_order_relaxed);
        response = render_ok(request.id, "\"pong\"", false);
        break;
      case Method::kStats:
        local_ok_.fetch_add(1, std::memory_order_relaxed);
        response = render_ok(request.id, render_stats(), false);
        break;
      case Method::kHealth:
        local_ok_.fetch_add(1, std::memory_order_relaxed);
        response = render_ok(request.id, render_health(), false);
        break;
      default:
        response = route(request, line);
        break;
    }
  } catch (const xbar::Error& e) {
    // The id is unknown when parsing failed — respond with id null.  A
    // malformed line is answered here; the fleet never sees it.
    local_errors_.fetch_add(1, std::memory_order_relaxed);
    response = render_error("null", e);
  } catch (const std::exception& e) {
    local_errors_.fetch_add(1, std::memory_order_relaxed);
    response = render_error("null", "internal", e.what());
  }
  switch (service::send_line(fd, response)) {
    case SendStatus::kOk:
      return true;
    case SendStatus::kTimeout:
    case SendStatus::kError:
      return false;
  }
  return false;
}

std::vector<std::size_t> Router::outstanding_by_backend() const {
  std::vector<std::size_t> outstanding(backends_.size(), 0);
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    outstanding[b] = backends_[b]->pool->outstanding();
  }
  return outstanding;
}

std::vector<std::size_t> Router::placement_plan(
    const Request& request) const {
  const std::vector<char> alive = membership_->alive();
  std::vector<std::size_t> outstanding = outstanding_by_backend();
  // Brownout weighting: advertised pressure shows up as virtual
  // outstanding load, so the bounded-load ring spills away from a
  // saturated backend before it starts shedding.
  if (config_.pressure_penalty > 0.0) {
    const std::vector<double> pressures = membership_->pressures();
    for (std::size_t b = 0; b < outstanding.size(); ++b) {
      outstanding[b] += static_cast<std::size_t>(
          pressures[b] * config_.pressure_penalty);
    }
  }
  if (!request.cache_key.empty()) {
    return ring_.plan(HashRing::hash_key(request.cache_key), alive,
                      outstanding);
  }
  return HashRing::by_load(alive, outstanding);
}

double Router::hedge_delay_seconds() const {
  if (backend_latency_.count() < config_.hedge.warmup) {
    return config_.hedge.cold_delay_seconds;
  }
  return std::clamp(backend_latency_.quantile(config_.hedge.quantile),
                    config_.hedge.min_delay_seconds,
                    config_.hedge.max_delay_seconds);
}

void Router::observe_attempt(std::size_t b,
                             const client::CallResult& result,
                             double seconds) {
  const Clock::time_point now = Clock::now();
  switch (result.outcome) {
    case client::Outcome::kOk:
      // Only served responses feed the hedge-delay histogram: timeouts
      // would teach the quantile the timeout ceiling, not the latency.
      backend_latency_.record(seconds);
      membership_->record_success(b, now);
      break;
    case client::Outcome::kOverloaded:
      // A typed "overloaded" frame is *liveness*: the backend answered.
      // It still decays the backend's hedge eligibility — hedging into a
      // backend that just said "go away" only deepens its overload.
      membership_->record_overloaded(b, now);
      break;
    case client::Outcome::kTimeout:
    case client::Outcome::kRefused:
    case client::Outcome::kReset:
      membership_->record_failure(b, now);
      break;
    case client::Outcome::kBreakerOpen:
      break;  // no attempt was made; not evidence about the backend
  }
}

void Router::launch_attempt(const std::shared_ptr<Rendezvous>& rendezvous,
                            std::size_t slot, std::size_t b,
                            const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    ++inflight_attempts_;
  }
  {
    std::lock_guard<std::mutex> lock(rendezvous->mutex);
    ++rendezvous->launched;
  }
  std::thread([this, rendezvous, slot, b, line] {
    const Clock::time_point begin = Clock::now();
    client::CallResult result = backends_[b]->pool->call(line);
    observe_attempt(b, result, seconds_since(begin));
    {
      std::lock_guard<std::mutex> lock(rendezvous->mutex);
      ++rendezvous->finished;
      if (result.outcome == client::Outcome::kOk &&
          !rendezvous->has_winner) {
        rendezvous->has_winner = true;
        rendezvous->winner_slot = slot;
        rendezvous->winner_backend = b;
        rendezvous->winner_frame = std::move(result.response);
      }
    }
    rendezvous->cv.notify_all();
    {
      // Notify under the lock: wait() may destroy the router (and this
      // cv) the moment it can observe the count at zero, and it cannot
      // observe that until this lock is released.
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      --inflight_attempts_;
      inflight_cv_.notify_all();
    }
  }).detach();
}

std::string Router::route(const Request& request, const std::string& line) {
  const std::vector<std::size_t> plan = placement_plan(request);
  if (plan.empty()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return render_error(request.id, "overloaded",
                        "every backend is ejected; retry with backoff");
  }

  // Phase 1: hedged primary.  The primary attempt runs on its own thread;
  // if it is still silent after the armed delay and the plan has a second
  // candidate, the hedge races it and the first OK frame wins.
  auto rendezvous = std::make_shared<Rendezvous>();
  launch_attempt(rendezvous, 0, plan[0], line);
  bool hedged = false;
  if (config_.hedge.enabled && plan.size() > 1) {
    const double delay = hedge_delay_seconds();
    std::unique_lock<std::mutex> lock(rendezvous->mutex);
    const bool settled = rendezvous->cv.wait_for(
        lock, std::chrono::duration<double>(delay), [&] {
          return rendezvous->finished >= rendezvous->launched;
        });
    hedged = !settled;
  }
  std::size_t hedge_target = 0;
  bool hedge_launched = false;
  if (hedged) {
    // The hedge must not land on a browned-out backend: pick the first
    // eligible candidate down the plan (plan order is already cheapest
    // first).  With no eligible target, suppress the hedge — the primary
    // keeps running and failover still covers a true failure.
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 1; i < plan.size(); ++i) {
      if (membership_->hedge_eligible(plan[i], now)) {
        hedge_target = plan[i];
        hedge_launched = true;
        break;
      }
    }
    if (hedge_launched) {
      hedges_launched_.fetch_add(1, std::memory_order_relaxed);
      launch_attempt(rendezvous, 1, hedge_target, line);
    } else {
      hedges_suppressed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::string frame;
  bool have_frame = false;
  {
    std::unique_lock<std::mutex> lock(rendezvous->mutex);
    rendezvous->cv.wait(lock, [&] {
      return rendezvous->has_winner ||
             rendezvous->finished == rendezvous->launched;
    });
    if (rendezvous->has_winner) {
      frame = rendezvous->winner_frame;
      have_frame = true;
    }
    if (rendezvous->launched == 2) {
      // Hedge accounting (won + lost == launched is the smoke-test
      // invariant that proves no request was answered twice).
      Backend& hedge_backend = *backends_[hedge_target];
      if (rendezvous->has_winner && rendezvous->winner_slot == 1) {
        hedge_backend.hedges_won.fetch_add(1, std::memory_order_relaxed);
      } else {
        hedge_backend.hedges_lost.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // A winning frame must still survive reassembly — a backend that sent
  // '{'-prefixed garbage is a failover, not a relay.
  std::string pending_io_error;
  const auto accept_frame =
      [&](std::string&& candidate) -> std::optional<std::string> {
    RelayResult relay = relay_or_error(candidate, request.id);
    if (relay.relayed) {
      routed_ok_.fetch_add(1, std::memory_order_relaxed);
      return std::move(relay.frame);
    }
    relay_rejections_.fetch_add(1, std::memory_order_relaxed);
    pending_io_error = std::move(relay.frame);
    return std::nullopt;
  };
  if (have_frame) {
    if (std::optional<std::string> ok = accept_frame(std::move(frame))) {
      return *ok;
    }
  }

  // Phase 2: synchronous failover down the rest of the plan.  No hedging
  // here — by now the fast path has failed and the priority is finding
  // *any* healthy candidate, cheapest (least-loaded, per the plan) first.
  // The hedge target (if any) was already tried; everything else in the
  // plan — including candidates skipped as hedge-ineligible — still gets
  // its synchronous shot.
  for (std::size_t i = 1; i < plan.size(); ++i) {
    if (hedge_launched && plan[i] == hedge_target) {
      continue;
    }
    failovers_.fetch_add(1, std::memory_order_relaxed);
    const Clock::time_point begin = Clock::now();
    client::CallResult result = backends_[plan[i]]->pool->call(line);
    observe_attempt(plan[i], result, seconds_since(begin));
    if (result.outcome == client::Outcome::kOk) {
      if (std::optional<std::string> ok =
              accept_frame(std::move(result.response))) {
        return *ok;
      }
    }
  }

  // Exhausted.  A corrupt-frame error is more specific than a shed, so
  // prefer it when one occurred.
  if (!pending_io_error.empty()) {
    return pending_io_error;
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  return render_error(request.id, "overloaded",
                      "no backend could serve the request; retry with "
                      "backoff");
}

void Router::prober_main() {
  // One single-threaded probe client per backend, with tight budgets and
  // retries/breaker disabled: a probe *is* the retry policy, and it must
  // keep reaching ejected backends the data path has given up on.
  std::vector<std::unique_ptr<client::XbarClient>> probes;
  probes.reserve(backends_.size());
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    client::ClientConfig pc = config_.backend_client;
    pc.host = config_.backends[b].host;
    pc.port = config_.backends[b].port;
    pc.connect_timeout_seconds = config_.probe_timeout_seconds;
    pc.request_timeout_seconds = config_.probe_timeout_seconds;
    pc.backoff.max_attempts = 1;
    pc.breaker.failure_threshold = 2.0;  // unreachable: never trips
    pc.seed = config_.seed * 0x2545f491u + b;
    probes.push_back(std::make_unique<client::XbarClient>(pc));
  }
  while (!draining_.load(std::memory_order_relaxed)) {
    const Clock::time_point now = Clock::now();
    Clock::time_point earliest = now + std::chrono::seconds(1);
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      if (membership_->next_probe_due(b) <= now) {
        probe_one(b, *probes[b]);
      }
      earliest = std::min(earliest, membership_->next_probe_due(b));
    }
    std::unique_lock<std::mutex> lock(prober_mutex_);
    prober_cv_.wait_until(lock, earliest, [this] {
      return draining_.load(std::memory_order_relaxed);
    });
  }
}

void Router::probe_one(std::size_t b, client::XbarClient& probe_client) {
  backends_[b]->probes.fetch_add(1, std::memory_order_relaxed);
  const client::CallResult result = probe_client.call(kProbeLine);
  // Dial per probe: the backends are thread-per-connection, so a parked
  // persistent probe connection would pin one backend worker full-time.
  // Redialing also exercises the accept path, which is the half a probe
  // exists to verify.
  probe_client.disconnect();
  const Clock::time_point now = Clock::now();
  if (result.outcome == client::Outcome::kOk) {
    membership_->record_success(b, now);
  } else if (result.outcome == client::Outcome::kOverloaded) {
    membership_->record_overloaded(b, now);
  } else {
    backends_[b]->probe_failures.fetch_add(1, std::memory_order_relaxed);
    membership_->record_failure(b, now);
  }
  if (result.outcome != client::Outcome::kOk) {
    return;
  }
  // Harvest the routing hints from the health payload; a malformed
  // payload only costs us the hints, never the liveness verdict.
  try {
    const report::JsonValue doc = report::parse_json(result.response);
    const report::JsonValue* payload = doc.find("result");
    if (payload == nullptr || !payload->is_object()) {
      return;
    }
    double load = 0.0;
    bool draining = false;
    std::uint64_t cache_entries = 0;
    if (const report::JsonValue* v = payload->find("load");
        v != nullptr && v->is_number()) {
      load = v->as_number();
    }
    if (const report::JsonValue* v = payload->find("draining");
        v != nullptr && v->is_bool()) {
      draining = v->as_bool();
    }
    if (const report::JsonValue* v = payload->find("cache_entries");
        v != nullptr && v->is_number()) {
      cache_entries = static_cast<std::uint64_t>(v->as_number());
    }
    double pressure = 0.0;
    if (const report::JsonValue* v = payload->find("pressure");
        v != nullptr && v->is_number()) {
      pressure = v->as_number();
    }
    membership_->note_health(b, load, draining, cache_entries, pressure);
  } catch (const xbar::Error&) {
  }
}

RouterStatsSnapshot Router::stats() const {
  RouterStatsSnapshot s;
  s.uptime_seconds = started_ ? seconds_since(start_time_) : 0.0;
  s.draining = draining_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  s.overload_rejections =
      overload_rejections_.load(std::memory_order_relaxed);
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.routed_ok = routed_ok_.load(std::memory_order_relaxed);
  s.local_ok = local_ok_.load(std::memory_order_relaxed);
  s.local_errors = local_errors_.load(std::memory_order_relaxed);
  s.relay_rejections = relay_rejections_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.hedges_launched = hedges_launched_.load(std::memory_order_relaxed);
  s.hedges_suppressed =
      hedges_suppressed_.load(std::memory_order_relaxed);
  s.ejections = membership_->ejections();
  s.readmissions = membership_->readmissions();
  s.hedge_delay_seconds = hedge_delay_seconds();
  s.backend_latency = backend_latency_.snapshot();
  s.backends.reserve(backends_.size());
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    const Backend& backend = *backends_[b];
    BackendSnapshot bs;
    bs.endpoint = backend.pool->endpoint();
    bs.status = membership_->status(b);
    bs.outstanding = backend.pool->outstanding();
    bs.client = backend.pool->stats();
    bs.client.hedges_won =
        backend.hedges_won.load(std::memory_order_relaxed);
    bs.client.hedges_lost =
        backend.hedges_lost.load(std::memory_order_relaxed);
    bs.probes = backend.probes.load(std::memory_order_relaxed);
    bs.probe_failures =
        backend.probe_failures.load(std::memory_order_relaxed);
    s.hedges_won += bs.client.hedges_won;
    s.hedges_lost += bs.client.hedges_lost;
    s.backends.push_back(std::move(bs));
  }
  return s;
}

std::string Router::render_stats() const {
  const RouterStatsSnapshot s = stats();
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("uptime_seconds").value(s.uptime_seconds);
  json.key("draining").value(s.draining);
  json.key("connections").begin_object();
  json.key("accepted").value(s.connections_accepted);
  json.key("active").value(s.connections_active);
  json.key("overload_rejections").value(s.overload_rejections);
  json.end_object();
  json.key("requests").begin_object();
  json.key("total").value(s.requests_total);
  json.key("routed_ok").value(s.routed_ok);
  json.key("local_ok").value(s.local_ok);
  json.key("local_errors").value(s.local_errors);
  json.key("relay_rejections").value(s.relay_rejections);
  json.key("failovers").value(s.failovers);
  json.key("shed").value(s.shed);
  json.end_object();
  json.key("hedging").begin_object();
  json.key("delay_ms").value(s.hedge_delay_seconds * 1e3);
  json.key("launched").value(s.hedges_launched);
  json.key("won").value(s.hedges_won);
  json.key("lost").value(s.hedges_lost);
  json.key("suppressed").value(s.hedges_suppressed);
  json.end_object();
  json.key("membership").begin_object();
  json.key("ejections").value(s.ejections);
  json.key("readmissions").value(s.readmissions);
  json.end_object();
  json.key("backend_latency_ms").begin_object();
  json.key("count").value(s.backend_latency.count);
  json.key("mean").value(s.backend_latency.mean * 1e3);
  json.key("p50").value(s.backend_latency.p50 * 1e3);
  json.key("p90").value(s.backend_latency.p90 * 1e3);
  json.key("p99").value(s.backend_latency.p99 * 1e3);
  json.key("max").value(s.backend_latency.max * 1e3);
  json.end_object();
  json.key("backends").begin_array();
  for (const BackendSnapshot& bs : s.backends) {
    json.begin_object();
    json.key("endpoint").value(bs.endpoint);
    json.key("state").value(to_string(bs.status.state));
    json.key("outstanding")
        .value(static_cast<std::uint64_t>(bs.outstanding));
    json.key("consecutive_failures")
        .value(static_cast<std::uint64_t>(bs.status.consecutive_failures));
    json.key("consecutive_successes").value(
        static_cast<std::uint64_t>(bs.status.consecutive_successes));
    json.key("ejections").value(bs.status.ejections);
    json.key("readmissions").value(bs.status.readmissions);
    json.key("load").value(bs.status.load);
    json.key("draining").value(bs.status.draining);
    json.key("cache_entries").value(bs.status.cache_entries);
    json.key("pressure").value(bs.status.pressure);
    json.key("probes").value(bs.probes);
    json.key("probe_failures").value(bs.probe_failures);
    json.key("client");
    client::write_client_stats_json(json, bs.client);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(out).str();
}

std::string Router::render_health() const {
  std::size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_depth = queue_.size();
  }
  const bool draining = draining_.load(std::memory_order_relaxed);
  const std::size_t alive = membership_->alive_count();
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("live").value(true);
  json.key("status").value(draining    ? "draining"
                           : alive > 0 ? "serving"
                                       : "no-backends");
  json.key("draining").value(draining);
  json.key("queue_depth").value(static_cast<std::uint64_t>(queue_depth));
  json.key("queue_capacity")
      .value(static_cast<std::uint64_t>(config_.queue_capacity));
  json.key("load").value(
      config_.queue_capacity > 0
          ? static_cast<double>(queue_depth) /
                static_cast<double>(config_.queue_capacity)
          : 0.0);
  json.key("backends").value(static_cast<std::uint64_t>(backends_.size()));
  json.key("alive_backends").value(static_cast<std::uint64_t>(alive));
  // Fleet pressure as a downstream router tier would want it: the least
  // pressured routable backend bounds what a new request must endure.
  {
    const std::vector<char> mask = membership_->alive();
    const std::vector<double> pressures = membership_->pressures();
    double fleet = 1.0;
    bool any = false;
    for (std::size_t b = 0; b < mask.size(); ++b) {
      if (mask[b] != 0) {
        fleet = any ? std::min(fleet, pressures[b]) : pressures[b];
        any = true;
      }
    }
    json.key("pressure").value(any ? fleet : 1.0);
  }
  json.end_object();
  return std::move(out).str();
}

}  // namespace xbar::router
