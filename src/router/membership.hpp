// Fleet membership: per-backend health state machines.
//
//            failures >= suspect_after      failures >= eject_after
//   healthy ───────────────────────> suspect ─────────────────────> ejected
//      ^                                │ any success                  │
//      └────────────────────────────────┘                             │
//      ^                  successes >= readmit_after (readmission)    │
//      └──────────────────────────────────────────────────────────────┘
//
// The three states answer different questions.  *healthy* and *suspect*
// are both routable — suspect only marks "the last probe(s) failed, keep
// an eye on it", so one dropped packet does not dump a backend's whole
// key range onto its neighbors (every handoff is a cache-cold start).
// *ejected* is out of the rotation entirely; only the prober talks to it,
// and readmission demands `readmit_after` *consecutive* successes so a
// flapping backend cannot oscillate its key range in and out.
//
// Probe pacing is jittered everywhere (interval * (1 ± jitter * U)) so a
// fleet of probers never synchronizes into a thundering herd, and backs
// off exponentially (capped) while a backend stays ejected — a dead
// backend costs a probe per backoff period, not per interval.
//
// Time is a parameter, never an ambient read (the CircuitBreaker
// discipline): record_* and next_probe_due all take/return explicit time
// points, so the tests replay exact transition sequences with a synthetic
// clock.  The class is a monitor (internal mutex): the probe thread and
// every router worker feed it concurrently.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "dist/rng.hpp"

namespace xbar::router {

enum class BackendState : std::uint8_t { kHealthy, kSuspect, kEjected };

[[nodiscard]] std::string_view to_string(BackendState state) noexcept;

struct MembershipConfig {
  double probe_interval_seconds = 0.25;  ///< base probe cadence
  double probe_jitter = 0.2;             ///< ± fraction of the interval
  unsigned suspect_after = 1;  ///< consecutive failures -> suspect
  unsigned eject_after = 3;    ///< consecutive failures -> ejected
  unsigned readmit_after = 2;  ///< consecutive successes to readmit
  double ejected_backoff_cap_seconds = 2.0;  ///< probe backoff ceiling
  /// Brownout tracking: each served `overloaded` frame bumps the
  /// backend's overload score by 1; the score decays exponentially with
  /// this time constant.  A backend stays hedge-ineligible while its
  /// decayed score is at or above `hedge_suppress_threshold`, or while
  /// its advertised pressure is at or above `brownout_pressure` — a hedge
  /// into a saturated backend only amplifies the overload it is fleeing.
  double overload_decay_seconds = 2.0;
  double hedge_suppress_threshold = 0.5;
  double brownout_pressure = 0.8;
};

/// Point-in-time view of one backend's machine (for stats rendering).
struct BackendStatus {
  BackendState state = BackendState::kHealthy;
  unsigned consecutive_failures = 0;
  unsigned consecutive_successes = 0;
  std::uint64_t ejections = 0;
  std::uint64_t readmissions = 0;
  // Last health-payload observations (note_health); routing hints only.
  double load = 0.0;
  bool draining = false;
  std::uint64_t cache_entries = 0;
  double pressure = 0.0;  ///< backend-advertised overload pressure [0, 1]
};

class Membership {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// All backends start healthy with probes due immediately (`now`), so
  /// the first probe round converges the real state right after start().
  Membership(std::size_t backends, MembershipConfig config,
             std::uint64_t seed, TimePoint now);

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Probe or data-path outcome for backend `b` at `now`.  Failures are
  /// transport-level (timeout/refused/reset); a served "overloaded" frame
  /// is *liveness*, so callers report it as success and let the breaker /
  /// bounded-load ring handle the pressure.
  void record_success(std::size_t b, TimePoint now);
  void record_failure(std::size_t b, TimePoint now);

  /// A served "overloaded" frame from backend `b`: liveness-wise a
  /// success (the backend answered), but it also bumps the decaying
  /// overload score that gates hedge eligibility.
  void record_overloaded(std::size_t b, TimePoint now);

  /// Attach the latest health-payload observations (load, draining flag,
  /// result-cache occupancy, advertised overload pressure) to backend `b`.
  void note_health(std::size_t b, double load, bool draining,
                   std::uint64_t cache_entries, double pressure = 0.0);

  [[nodiscard]] BackendState state(std::size_t b) const;
  [[nodiscard]] BackendStatus status(std::size_t b) const;

  /// Routable mask: healthy or suspect.
  [[nodiscard]] std::vector<char> alive() const;
  [[nodiscard]] std::size_t alive_count() const;

  /// Decayed overload score for backend `b` as of `now` (tests/stats).
  [[nodiscard]] double overload_score(std::size_t b, TimePoint now) const;

  /// Whether backend `b` is a sane hedge target at `now`: routable, not
  /// draining, decayed overload score under `hedge_suppress_threshold`,
  /// and advertised pressure under `brownout_pressure`.
  [[nodiscard]] bool hedge_eligible(std::size_t b, TimePoint now) const;

  /// Advertised pressure per backend (placement weighting).
  [[nodiscard]] std::vector<double> pressures() const;

  /// When backend `b`'s next probe is due (jittered; backed off while
  /// ejected).
  [[nodiscard]] TimePoint next_probe_due(std::size_t b) const;

  /// Fleet-wide transition totals.
  [[nodiscard]] std::uint64_t ejections() const;
  [[nodiscard]] std::uint64_t readmissions() const;

 private:
  struct Slot {
    BackendStatus status;
    TimePoint next_probe;
    double backoff_seconds = 0.0;  ///< current ejected-probe backoff
    double overload_score = 0.0;   ///< decaying served-overloaded count
    TimePoint overload_at{};       ///< when overload_score was last set
  };

  /// base * (1 ± jitter * U), U uniform in [0, 1).  Caller holds mutex_.
  double jittered(double base_seconds);
  void schedule(Slot& slot, TimePoint now, double base_seconds);
  /// Success-path state transition shared by record_success and
  /// record_overloaded.  Caller holds mutex_.
  void success_locked(Slot& slot, TimePoint now);
  /// Slot's overload score decayed to `now`.  Caller holds mutex_.
  [[nodiscard]] double decayed_score(const Slot& slot,
                                     TimePoint now) const;

  MembershipConfig config_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  dist::Xoshiro256 rng_;
};

}  // namespace xbar::router
