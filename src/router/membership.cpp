#include "router/membership.hpp"

#include <algorithm>

namespace xbar::router {

std::string_view to_string(BackendState state) noexcept {
  switch (state) {
    case BackendState::kHealthy: return "healthy";
    case BackendState::kSuspect: return "suspect";
    case BackendState::kEjected: return "ejected";
  }
  return "?";
}

Membership::Membership(std::size_t backends, MembershipConfig config,
                       std::uint64_t seed, TimePoint now)
    : config_(config), slots_(backends), rng_(seed) {
  config_.suspect_after = std::max(1u, config_.suspect_after);
  config_.eject_after = std::max(config_.suspect_after, config_.eject_after);
  config_.readmit_after = std::max(1u, config_.readmit_after);
  for (Slot& slot : slots_) {
    slot.next_probe = now;  // first round fires immediately
  }
}

double Membership::jittered(double base_seconds) {
  const double u = 2.0 * rng_.uniform01() - 1.0;  // [-1, 1)
  return base_seconds * (1.0 + config_.probe_jitter * u);
}

void Membership::schedule(Slot& slot, TimePoint now, double base_seconds) {
  slot.next_probe =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(jittered(base_seconds)));
}

void Membership::record_success(std::size_t b, TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[b];
  slot.status.consecutive_failures = 0;
  ++slot.status.consecutive_successes;
  switch (slot.status.state) {
    case BackendState::kHealthy:
      break;
    case BackendState::kSuspect:
      // One good answer clears suspicion: the backend never left the
      // rotation, so there is no key-range movement to be careful about.
      slot.status.state = BackendState::kHealthy;
      break;
    case BackendState::kEjected:
      if (slot.status.consecutive_successes >= config_.readmit_after) {
        slot.status.state = BackendState::kHealthy;
        ++slot.status.readmissions;
        slot.backoff_seconds = 0.0;
      }
      break;
  }
  schedule(slot, now, config_.probe_interval_seconds);
}

void Membership::record_failure(std::size_t b, TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[b];
  slot.status.consecutive_successes = 0;
  ++slot.status.consecutive_failures;
  switch (slot.status.state) {
    case BackendState::kHealthy:
      if (slot.status.consecutive_failures >= config_.suspect_after) {
        slot.status.state = BackendState::kSuspect;
      }
      if (slot.status.consecutive_failures >= config_.eject_after) {
        slot.status.state = BackendState::kEjected;
        ++slot.status.ejections;
        slot.backoff_seconds = config_.probe_interval_seconds;
      }
      break;
    case BackendState::kSuspect:
      if (slot.status.consecutive_failures >= config_.eject_after) {
        slot.status.state = BackendState::kEjected;
        ++slot.status.ejections;
        slot.backoff_seconds = config_.probe_interval_seconds;
      }
      break;
    case BackendState::kEjected:
      // Still dead: exponential probe backoff, capped, so a long outage
      // costs probes per backoff period instead of per interval.
      slot.backoff_seconds =
          std::min(2.0 * slot.backoff_seconds,
                   config_.ejected_backoff_cap_seconds);
      break;
  }
  schedule(slot, now,
           slot.status.state == BackendState::kEjected
               ? slot.backoff_seconds
               : config_.probe_interval_seconds);
}

void Membership::note_health(std::size_t b, double load, bool draining,
                             std::uint64_t cache_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[b].status.load = load;
  slots_[b].status.draining = draining;
  slots_[b].status.cache_entries = cache_entries;
}

BackendState Membership::state(std::size_t b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[b].status.state;
}

BackendStatus Membership::status(std::size_t b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[b].status;
}

std::vector<char> Membership::alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<char> mask(slots_.size(), 0);
  for (std::size_t b = 0; b < slots_.size(); ++b) {
    mask[b] = slots_[b].status.state != BackendState::kEjected ? 1 : 0;
  }
  return mask;
}

std::size_t Membership::alive_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Slot& slot : slots_) {
    n += slot.status.state != BackendState::kEjected ? 1 : 0;
  }
  return n;
}

Membership::TimePoint Membership::next_probe_due(std::size_t b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[b].next_probe;
}

std::uint64_t Membership::ejections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const Slot& slot : slots_) {
    n += slot.status.ejections;
  }
  return n;
}

std::uint64_t Membership::readmissions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const Slot& slot : slots_) {
    n += slot.status.readmissions;
  }
  return n;
}

}  // namespace xbar::router
