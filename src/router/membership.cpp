#include "router/membership.hpp"

#include <algorithm>
#include <cmath>

namespace xbar::router {

std::string_view to_string(BackendState state) noexcept {
  switch (state) {
    case BackendState::kHealthy: return "healthy";
    case BackendState::kSuspect: return "suspect";
    case BackendState::kEjected: return "ejected";
  }
  return "?";
}

Membership::Membership(std::size_t backends, MembershipConfig config,
                       std::uint64_t seed, TimePoint now)
    : config_(config), slots_(backends), rng_(seed) {
  config_.suspect_after = std::max(1u, config_.suspect_after);
  config_.eject_after = std::max(config_.suspect_after, config_.eject_after);
  config_.readmit_after = std::max(1u, config_.readmit_after);
  for (Slot& slot : slots_) {
    slot.next_probe = now;  // first round fires immediately
  }
}

double Membership::jittered(double base_seconds) {
  const double u = 2.0 * rng_.uniform01() - 1.0;  // [-1, 1)
  return base_seconds * (1.0 + config_.probe_jitter * u);
}

void Membership::schedule(Slot& slot, TimePoint now, double base_seconds) {
  slot.next_probe =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(jittered(base_seconds)));
}

void Membership::record_success(std::size_t b, TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  success_locked(slots_[b], now);
}

void Membership::record_overloaded(std::size_t b, TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[b];
  // Liveness-wise this is a success: the backend answered a well-formed
  // frame.  But it answered "go away", so bump the decaying score that
  // keeps hedges from piling onto a saturated backend.
  slot.overload_score = decayed_score(slot, now) + 1.0;
  slot.overload_at = now;
  success_locked(slot, now);
}

void Membership::success_locked(Slot& slot, TimePoint now) {
  slot.status.consecutive_failures = 0;
  ++slot.status.consecutive_successes;
  switch (slot.status.state) {
    case BackendState::kHealthy:
      break;
    case BackendState::kSuspect:
      // One good answer clears suspicion: the backend never left the
      // rotation, so there is no key-range movement to be careful about.
      slot.status.state = BackendState::kHealthy;
      break;
    case BackendState::kEjected:
      if (slot.status.consecutive_successes >= config_.readmit_after) {
        slot.status.state = BackendState::kHealthy;
        ++slot.status.readmissions;
        slot.backoff_seconds = 0.0;
      }
      break;
  }
  schedule(slot, now, config_.probe_interval_seconds);
}

void Membership::record_failure(std::size_t b, TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[b];
  slot.status.consecutive_successes = 0;
  ++slot.status.consecutive_failures;
  switch (slot.status.state) {
    case BackendState::kHealthy:
      if (slot.status.consecutive_failures >= config_.suspect_after) {
        slot.status.state = BackendState::kSuspect;
      }
      if (slot.status.consecutive_failures >= config_.eject_after) {
        slot.status.state = BackendState::kEjected;
        ++slot.status.ejections;
        slot.backoff_seconds = config_.probe_interval_seconds;
      }
      break;
    case BackendState::kSuspect:
      if (slot.status.consecutive_failures >= config_.eject_after) {
        slot.status.state = BackendState::kEjected;
        ++slot.status.ejections;
        slot.backoff_seconds = config_.probe_interval_seconds;
      }
      break;
    case BackendState::kEjected:
      // Still dead: exponential probe backoff, capped, so a long outage
      // costs probes per backoff period instead of per interval.
      slot.backoff_seconds =
          std::min(2.0 * slot.backoff_seconds,
                   config_.ejected_backoff_cap_seconds);
      break;
  }
  schedule(slot, now,
           slot.status.state == BackendState::kEjected
               ? slot.backoff_seconds
               : config_.probe_interval_seconds);
}

void Membership::note_health(std::size_t b, double load, bool draining,
                             std::uint64_t cache_entries, double pressure) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[b].status.load = load;
  slots_[b].status.draining = draining;
  slots_[b].status.cache_entries = cache_entries;
  slots_[b].status.pressure = std::clamp(pressure, 0.0, 1.0);
}

double Membership::decayed_score(const Slot& slot, TimePoint now) const {
  if (slot.overload_score <= 0.0) {
    return 0.0;
  }
  const double tau = std::max(1e-9, config_.overload_decay_seconds);
  const double dt = std::max(
      0.0, std::chrono::duration<double>(now - slot.overload_at).count());
  return slot.overload_score * std::exp(-dt / tau);
}

double Membership::overload_score(std::size_t b, TimePoint now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decayed_score(slots_[b], now);
}

bool Membership::hedge_eligible(std::size_t b, TimePoint now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Slot& slot = slots_[b];
  if (slot.status.state == BackendState::kEjected || slot.status.draining) {
    return false;
  }
  if (slot.status.pressure >= config_.brownout_pressure) {
    return false;
  }
  return decayed_score(slot, now) < config_.hedge_suppress_threshold;
}

std::vector<double> Membership::pressures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> out(slots_.size(), 0.0);
  for (std::size_t b = 0; b < slots_.size(); ++b) {
    out[b] = slots_[b].status.pressure;
  }
  return out;
}

BackendState Membership::state(std::size_t b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[b].status.state;
}

BackendStatus Membership::status(std::size_t b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[b].status;
}

std::vector<char> Membership::alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<char> mask(slots_.size(), 0);
  for (std::size_t b = 0; b < slots_.size(); ++b) {
    mask[b] = slots_[b].status.state != BackendState::kEjected ? 1 : 0;
  }
  return mask;
}

std::size_t Membership::alive_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Slot& slot : slots_) {
    n += slot.status.state != BackendState::kEjected ? 1 : 0;
  }
  return n;
}

Membership::TimePoint Membership::next_probe_due(std::size_t b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[b].next_probe;
}

std::uint64_t Membership::ejections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const Slot& slot : slots_) {
    n += slot.status.ejections;
  }
  return n;
}

std::uint64_t Membership::readmissions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const Slot& slot : slots_) {
    n += slot.status.readmissions;
  }
  return n;
}

}  // namespace xbar::router
