#include "router/hash_ring.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace xbar::router {

namespace {

/// FNV-1a over bytes (the same primitive the result cache fingerprints
/// with), finished with a splitmix64 mix so ring positions scatter even
/// when inputs share long prefixes.
std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(std::size_t backends, RingConfig config)
    : backends_(backends), config_(config) {
  if (config_.vnodes == 0) {
    config_.vnodes = 1;
  }
  if (!(config_.load_factor >= 1.0)) {
    config_.load_factor = 1.0;
  }
  points_.reserve(backends_ * config_.vnodes);
  for (std::size_t b = 0; b < backends_; ++b) {
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      const std::string label =
          std::to_string(b) + '/' + std::to_string(v);
      points_.push_back({mix(fnv1a(label)), static_cast<std::uint32_t>(b)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.position != b.position ? a.position < b.position
                                              : a.backend < b.backend;
            });
}

std::uint64_t HashRing::hash_key(std::string_view key) noexcept {
  return mix(fnv1a(key));
}

std::vector<std::size_t> HashRing::by_load(
    const std::vector<char>& alive,
    const std::vector<std::size_t>& outstanding) {
  std::vector<std::size_t> order;
  order.reserve(alive.size());
  for (std::size_t b = 0; b < alive.size(); ++b) {
    if (alive[b]) {
      order.push_back(b);
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return outstanding[a] < outstanding[b];
                   });
  return order;
}

std::vector<std::size_t> HashRing::plan(
    std::uint64_t key_hash, const std::vector<char>& alive,
    const std::vector<std::size_t>& outstanding) const {
  std::size_t alive_count = 0;
  std::size_t total_outstanding = 0;
  for (std::size_t b = 0; b < alive.size(); ++b) {
    if (alive[b]) {
      ++alive_count;
      total_outstanding += outstanding[b];
    }
  }
  if (alive_count == 0 || points_.empty()) {
    return {};
  }

  // Bounded-load admission threshold: fair share of the in-flight work
  // (counting the request being placed), scaled by c, rounded up.
  const double fair =
      config_.load_factor *
      (static_cast<double>(total_outstanding) + 1.0) /
      static_cast<double>(alive_count);
  const auto admitted = [&](std::size_t b) {
    return static_cast<double>(outstanding[b]) < std::ceil(fair);
  };

  // Walk ring successors from the key's position, collecting each alive
  // backend once, in ring order.
  std::vector<std::size_t> ring_order;
  ring_order.reserve(alive_count);
  std::vector<char> seen(alive.size(), 0);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key_hash,
      [](const Point& p, std::uint64_t h) { return p.position < h; });
  for (std::size_t walked = 0;
       walked < points_.size() && ring_order.size() < alive_count;
       ++walked, ++it) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    const std::size_t b = it->backend;
    if (!seen[b] && alive[b]) {
      seen[b] = 1;
      ring_order.push_back(b);
    }
  }

  // Admitted candidates keep ring order (affinity); deferred ones go to
  // the tail sorted by load, so failover still prefers the least-buried.
  std::vector<std::size_t> preferred;
  std::vector<std::size_t> deferred;
  preferred.reserve(ring_order.size());
  for (const std::size_t b : ring_order) {
    (admitted(b) ? preferred : deferred).push_back(b);
  }
  std::stable_sort(deferred.begin(), deferred.end(),
                   [&](std::size_t a, std::size_t b) {
                     return outstanding[a] < outstanding[b];
                   });
  preferred.insert(preferred.end(), deferred.begin(), deferred.end());
  return preferred;
}

}  // namespace xbar::router
