#include "numeric/combinatorics.hpp"

#include <array>
#include <cmath>
#include <limits>

namespace xbar::num {

namespace {

// 21! overflows uint64.
constexpr unsigned kMaxExactFactorial = 20;

constexpr std::array<std::uint64_t, kMaxExactFactorial + 1> kFactorials = [] {
  std::array<std::uint64_t, kMaxExactFactorial + 1> t{};
  t[0] = 1;
  for (unsigned i = 1; i <= kMaxExactFactorial; ++i) {
    t[i] = t[i - 1] * i;
  }
  return t;
}();

constexpr unsigned kLogFactorialTableSize = 1025;

const std::array<double, kLogFactorialTableSize>& log_factorial_table() {
  static const auto table = [] {
    std::array<double, kLogFactorialTableSize> t{};
    t[0] = 0.0;
    for (unsigned i = 1; i < kLogFactorialTableSize; ++i) {
      t[i] = t[i - 1] + std::log(static_cast<double>(i));
    }
    return t;
  }();
  return table;
}

// a*b with overflow check.
std::optional<std::uint64_t> checked_mul(std::uint64_t a,
                                         std::uint64_t b) noexcept {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::nullopt;
  }
  return a * b;
}

}  // namespace

std::optional<std::uint64_t> factorial_exact(unsigned n) noexcept {
  if (n > kMaxExactFactorial) {
    return std::nullopt;
  }
  return kFactorials[n];
}

std::optional<std::uint64_t> falling_factorial_exact(unsigned n,
                                                     unsigned a) noexcept {
  if (a > n) {
    return 0;
  }
  std::uint64_t result = 1;
  for (unsigned i = 0; i < a; ++i) {
    const auto next = checked_mul(result, n - i);
    if (!next) {
      return std::nullopt;
    }
    result = *next;
  }
  return result;
}

std::optional<std::uint64_t> binomial_exact(unsigned n, unsigned a) noexcept {
  if (a > n) {
    return 0;
  }
  if (a > n - a) {
    a = n - a;
  }
  // Multiply/divide alternately to keep intermediates minimal and exact:
  // C(n,k) = C(n,k-1) * (n-k+1) / k, and the division is always exact.
  std::uint64_t result = 1;
  for (unsigned k = 1; k <= a; ++k) {
    const auto scaled = checked_mul(result, n - k + 1);
    if (!scaled) {
      return std::nullopt;
    }
    result = *scaled / k;
  }
  return result;
}

double log_factorial(unsigned n) noexcept {
  if (n < kLogFactorialTableSize) {
    return log_factorial_table()[n];
  }
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_falling_factorial(unsigned n, unsigned a) noexcept {
  if (a > n) {
    return -std::numeric_limits<double>::infinity();
  }
  return log_factorial(n) - log_factorial(n - a);
}

double log_binomial(unsigned n, unsigned a) noexcept {
  if (a > n) {
    return -std::numeric_limits<double>::infinity();
  }
  return log_factorial(n) - log_factorial(a) - log_factorial(n - a);
}

double falling_factorial(unsigned n, unsigned a) noexcept {
  if (a > n) {
    return 0.0;
  }
  if (const auto exact = falling_factorial_exact(n, a)) {
    return static_cast<double>(*exact);
  }
  return std::exp(log_falling_factorial(n, a));
}

double binomial(unsigned n, unsigned a) noexcept {
  if (a > n) {
    return 0.0;
  }
  if (const auto exact = binomial_exact(n, a)) {
    return static_cast<double>(*exact);
  }
  return std::exp(log_binomial(n, a));
}

}  // namespace xbar::num
