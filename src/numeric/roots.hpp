// Bracketing root finders.
//
// Used by the workload calibration layer to invert the model: e.g. "what
// offered load alpha~ drives a 64x64 switch to 0.5% blocking?" (the operating
// point the paper's figures are tuned to).

#pragma once

#include <functional>
#include <optional>

namespace xbar::num {

/// Options for the root finders.
struct RootOptions {
  double x_tolerance = 1e-12;   ///< Stop when the bracket is this narrow.
  double f_tolerance = 0.0;     ///< Stop when |f| falls below this.
  int max_iterations = 200;     ///< Hard iteration cap.
};

/// Result of a root search.
struct RootResult {
  double x = 0.0;         ///< Best estimate of the root.
  double f = 0.0;         ///< f(x) at the estimate.
  int iterations = 0;     ///< Iterations consumed.
  bool converged = false; ///< True if a tolerance was met within the cap.
};

/// Bisection on [lo, hi].  Requires f(lo) and f(hi) to have opposite signs
/// (or one of them to be zero); returns nullopt if the bracket is invalid.
[[nodiscard]] std::optional<RootResult> bisect(
    const std::function<double(double)>& f, double lo, double hi,
    const RootOptions& options = {});

/// Brent's method on [lo, hi]: inverse-quadratic/secant steps guarded by
/// bisection.  Same bracketing requirement as `bisect`.
[[nodiscard]] std::optional<RootResult> brent(
    const std::function<double(double)>& f, double lo, double hi,
    const RootOptions& options = {});

/// Grow `hi` geometrically from `lo` until f changes sign, then return the
/// bracket.  Returns nullopt if no sign change is found within `max_growth`
/// doublings.
[[nodiscard]] std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double lo, double initial_width,
    int max_growth = 60);

}  // namespace xbar::num
