// Approximate floating-point comparison helpers shared by tests and the
// algorithm cross-validation layer.

#pragma once

#include <algorithm>
#include <cmath>

namespace xbar::num {

/// True when `a` and `b` agree within `rel` relative tolerance or `abs`
/// absolute tolerance (whichever is looser) — the standard combined test.
[[nodiscard]] inline bool approx_equal(double a, double b, double rel = 1e-9,
                                       double abs = 1e-12) noexcept {
  const double diff = std::fabs(a - b);
  if (diff <= abs) {
    return true;
  }
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= rel * scale;
}

/// Relative error |a-b| / max(|b|, floor); convenient for reporting.
[[nodiscard]] inline double relative_error(double a, double b,
                                           double floor = 1e-300) noexcept {
  return std::fabs(a - b) / std::max(std::fabs(b), floor);
}

}  // namespace xbar::num
