// Finite-difference derivatives.
//
// Section 4 of the paper: "A closed form expression for the gradient of the
// weighted throughput was not found for the more general case ... The
// gradient dW/d(beta_r/mu_r) is approximated via a forward difference."
// We provide forward and central differences plus Richardson extrapolation so
// the revenue analysis (Table 2) can report well-converged gradients.

#pragma once

#include <functional>

namespace xbar::num {

/// A scalar function of one real variable.
using ScalarFn = std::function<double(double)>;

/// One-sided forward difference (f(x+h) - f(x)) / h — the paper's method.
[[nodiscard]] double forward_difference(const ScalarFn& f, double x, double h);

/// Central difference (f(x+h) - f(x-h)) / (2h); O(h^2) accurate.
[[nodiscard]] double central_difference(const ScalarFn& f, double x, double h);

/// Richardson-extrapolated central difference: combines step sizes h and h/2
/// to cancel the leading error term; O(h^4) accurate.
[[nodiscard]] double richardson_derivative(const ScalarFn& f, double x,
                                           double h);

/// A reasonable step for differencing around `x`: relative to |x| with an
/// absolute floor, tuned for functions evaluated in double precision.
[[nodiscard]] double default_step(double x) noexcept;

}  // namespace xbar::num
