// Factorials, falling factorials (permutations) and binomial coefficients.
//
// The model uses P(n,a) = n!/(n-a)! and C(n,a) both as exact small integers
// (a_r is a handful, n up to a few hundred) and inside log-domain products.
// We provide exact 64-bit versions with overflow detection plus lgamma-based
// real/log versions that are valid for any magnitude.

#pragma once

#include <cstdint>
#include <optional>

namespace xbar::num {

/// Exact n! as uint64 when it fits (n <= 20), otherwise nullopt.
[[nodiscard]] std::optional<std::uint64_t> factorial_exact(unsigned n) noexcept;

/// Exact falling factorial P(n,a) = n (n-1) ... (n-a+1) when it fits in
/// uint64, otherwise nullopt.  P(n,0) = 1; P(n,a) = 0 when a > n.
[[nodiscard]] std::optional<std::uint64_t> falling_factorial_exact(
    unsigned n, unsigned a) noexcept;

/// Exact binomial coefficient C(n,a) when it fits in uint64, otherwise
/// nullopt.  C(n,a) = 0 when a > n.
[[nodiscard]] std::optional<std::uint64_t> binomial_exact(unsigned n,
                                                          unsigned a) noexcept;

/// ln(n!) using a cached table for small n and lgamma beyond.
[[nodiscard]] double log_factorial(unsigned n) noexcept;

/// ln P(n,a); requires a <= n (P would be zero otherwise — callers must
/// handle that case; we return -inf for convenience).
[[nodiscard]] double log_falling_factorial(unsigned n, unsigned a) noexcept;

/// ln C(n,a); -inf when a > n.
[[nodiscard]] double log_binomial(unsigned n, unsigned a) noexcept;

/// P(n,a) as a double (exact for the sizes the model sweeps; lgamma-based
/// fallback beyond).  0 when a > n.
[[nodiscard]] double falling_factorial(unsigned n, unsigned a) noexcept;

/// C(n,a) as a double.  0 when a > n.
[[nodiscard]] double binomial(unsigned n, unsigned a) noexcept;

}  // namespace xbar::num
