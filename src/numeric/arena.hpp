// Reusable block pool for grid storage.
//
// Every Algorithm 1 solve allocates a handful of large, short-lived buffers
// (the Q grid, the per-class V planes, scratch accumulators).  Sweeps and
// the serving path construct thousands of solvers, so without reuse the
// allocator traffic — page faults on first touch more than malloc itself —
// shows up in the profile.  `ArenaPool` keeps freed blocks on a size-bucketed
// free list and hands them back to the next solve; the per-slot
// `SolverCache`s in src/sweep keep one pool warm per worker for the whole
// sweep.  `ArenaBuffer<T>` is the RAII view the kernels use.
//
// Blocks are 64-byte aligned (cache line / widest vector on the targets we
// care about) so the SIMD kernels never straddle an alignment boundary that
// the scalar build would not.

#pragma once

#include <cstddef>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace xbar::num {

/// Thread-safe pool of raw 64-byte-aligned blocks, bucketed by
/// power-of-two capacity.  Blocks released back to the pool are recycled by
/// later acquires of any size up to the block capacity (same bucket).
/// Cached bytes are capped; releases beyond the cap free eagerly.
class ArenaPool {
 public:
  static constexpr std::size_t kAlignment = 64;

  struct Stats {
    std::size_t acquires = 0;    ///< total acquire() calls
    std::size_t reuses = 0;      ///< acquires served from the free list
    std::size_t cached_bytes = 0;
    std::size_t cached_blocks = 0;
  };

  explicit ArenaPool(std::size_t max_cached_bytes = std::size_t{256} << 20)
      : max_cached_bytes_(max_cached_bytes) {}

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  ~ArenaPool() { trim(); }

  /// Process-wide pool, used when a buffer is not told otherwise.
  static ArenaPool& global();

  /// A block of at least `bytes` capacity.  The returned capacity is the
  /// bucket size; pass it back verbatim to release().
  [[nodiscard]] void* acquire(std::size_t bytes, std::size_t& capacity) {
    const std::size_t cap = bucket_of(bytes);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.acquires;
      for (std::size_t i = free_.size(); i-- > 0;) {
        if (free_[i].capacity == cap) {
          void* p = free_[i].ptr;
          free_[i] = free_.back();
          free_.pop_back();
          stats_.cached_bytes -= cap;
          --stats_.cached_blocks;
          ++stats_.reuses;
          capacity = cap;
          return p;
        }
      }
    }
    capacity = cap;
    return ::operator new(cap, std::align_val_t{kAlignment});
  }

  /// Return a block obtained from acquire().  `capacity` must be the value
  /// acquire() reported.
  void release(void* ptr, std::size_t capacity) noexcept {
    if (ptr == nullptr) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stats_.cached_bytes + capacity <= max_cached_bytes_) {
        free_.push_back({ptr, capacity});
        stats_.cached_bytes += capacity;
        ++stats_.cached_blocks;
        return;
      }
    }
    ::operator delete(ptr, std::align_val_t{kAlignment});
  }

  /// Drop every cached block.
  void trim() noexcept {
    std::vector<Block> doomed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      doomed.swap(free_);
      stats_.cached_bytes = 0;
      stats_.cached_blocks = 0;
    }
    for (const Block& b : doomed) {
      ::operator delete(b.ptr, std::align_val_t{kAlignment});
    }
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct Block {
    void* ptr;
    std::size_t capacity;
  };

  /// Smallest power of two >= bytes (minimum 256): big-buffer reuse across
  /// slightly different grid sizes with at most 2x slack.
  static std::size_t bucket_of(std::size_t bytes) noexcept {
    std::size_t cap = 256;
    while (cap < bytes) {
      cap <<= 1;
    }
    return cap;
  }

  mutable std::mutex mu_;
  std::vector<Block> free_;
  Stats stats_;
  const std::size_t max_cached_bytes_;
};

/// Tag requesting storage without value-initialization (see ArenaBuffer).
struct uninitialized_t {
  explicit uninitialized_t() = default;
};
inline constexpr uninitialized_t uninitialized{};

/// RAII typed buffer drawn from an ArenaPool.  Move-only; the element type
/// must be trivially destructible (the pool recycles raw bytes).  Elements
/// are value-initialized on construction, exactly like
/// `std::vector<T>(n)` — unless the `uninitialized` tag is passed, for
/// buffers whose every element is about to be overwritten (zeroing a
/// multi-megabyte grid that a kernel immediately fills costs a full memory
/// sweep for nothing).
template <typename T>
class ArenaBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "ArenaBuffer recycles raw storage");

 public:
  ArenaBuffer() noexcept = default;

  explicit ArenaBuffer(std::size_t n, ArenaPool& pool = ArenaPool::global())
      : pool_(&pool), size_(n) {
    if (n == 0) {
      return;
    }
    data_ = static_cast<T*>(pool_->acquire(n * sizeof(T), capacity_));
    for (std::size_t i = 0; i < n; ++i) {
      ::new (static_cast<void*>(data_ + i)) T();
    }
  }

  ArenaBuffer(std::size_t n, uninitialized_t,
              ArenaPool& pool = ArenaPool::global())
      : pool_(&pool), size_(n) {
    static_assert(std::is_trivial_v<T>,
                  "uninitialized storage requires a trivial element type");
    if (n == 0) {
      return;
    }
    data_ = static_cast<T*>(pool_->acquire(n * sizeof(T), capacity_));
  }

  ArenaBuffer(ArenaBuffer&& other) noexcept
      : pool_(other.pool_),
        data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  ~ArenaBuffer() { reset(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

 private:
  void reset() noexcept {
    if (data_ != nullptr) {
      pool_->release(data_, capacity_);
      data_ = nullptr;
      size_ = 0;
      capacity_ = 0;
    }
  }

  ArenaPool* pool_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace xbar::num
