#include "numeric/scaled_float.hpp"

#include <cassert>
#include <ostream>

namespace xbar::num {

namespace {
constexpr double kLn2 = 0.6931471805599453094;
constexpr double kLog10Of2 = 0.3010299956639811952;
}  // namespace

ScaledFloat ScaledFloat::from_log(double log_value) {
  if (log_value == -std::numeric_limits<double>::infinity()) {
    return ScaledFloat{};
  }
  // log_value = ln(m * 2^e) = ln m + e ln 2.  Pick e = floor(log2) and
  // exponentiate the (small) remainder.
  const double log2v = log_value / kLn2;
  const auto e = static_cast<std::int64_t>(std::floor(log2v));
  const double m = std::exp(log_value - static_cast<double>(e) * kLn2);
  return from_mantissa_exp(m, e);
}

double ScaledFloat::to_double() const noexcept {
  if (mantissa_ == 0.0) {
    return 0.0;
  }
  if (exponent_ > std::numeric_limits<double>::max_exponent) {
    return mantissa_ > 0 ? std::numeric_limits<double>::infinity()
                         : -std::numeric_limits<double>::infinity();
  }
  if (exponent_ < std::numeric_limits<double>::min_exponent -
                      std::numeric_limits<double>::digits) {
    return 0.0;
  }
  return std::ldexp(mantissa_, static_cast<int>(exponent_));
}

double ScaledFloat::log() const noexcept {
  assert(mantissa_ >= 0.0);
  if (mantissa_ <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::log(mantissa_) + static_cast<double>(exponent_) * kLn2;
}

double ScaledFloat::log10() const noexcept {
  assert(mantissa_ >= 0.0);
  if (mantissa_ <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::log10(mantissa_) + static_cast<double>(exponent_) * kLog10Of2;
}

std::strong_ordering operator<=>(const ScaledFloat& a,
                                 const ScaledFloat& b) noexcept {
  const int sa = a.sign();
  const int sb = b.sign();
  if (sa != sb) {
    return sa < sb ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  if (sa == 0) {
    return std::strong_ordering::equal;
  }
  // Same nonzero sign: compare magnitudes, flipping for negatives.
  std::strong_ordering mag = std::strong_ordering::equal;
  if (a.exponent_ != b.exponent_) {
    mag = a.exponent_ < b.exponent_ ? std::strong_ordering::less
                                    : std::strong_ordering::greater;
  } else {
    const double ma = std::fabs(a.mantissa_);
    const double mb = std::fabs(b.mantissa_);
    if (ma < mb) {
      mag = std::strong_ordering::less;
    } else if (ma > mb) {
      mag = std::strong_ordering::greater;
    }
  }
  if (sa > 0) {
    return mag;
  }
  if (mag == std::strong_ordering::less) {
    return std::strong_ordering::greater;
  }
  if (mag == std::strong_ordering::greater) {
    return std::strong_ordering::less;
  }
  return std::strong_ordering::equal;
}

double ScaledFloat::ratio(const ScaledFloat& a, const ScaledFloat& b) noexcept {
  if (b.is_zero()) {
    if (a.is_zero()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return a.sign() > 0 ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
  }
  if (a.is_zero()) {
    return 0.0;
  }
  const std::int64_t gap = a.exponent_ - b.exponent_;
  const double m = a.mantissa_ / b.mantissa_;
  if (gap > std::numeric_limits<double>::max_exponent) {
    return m > 0 ? std::numeric_limits<double>::infinity()
                 : -std::numeric_limits<double>::infinity();
  }
  if (gap < std::numeric_limits<double>::min_exponent -
                std::numeric_limits<double>::digits) {
    return 0.0;
  }
  return std::ldexp(m, static_cast<int>(gap));
}

std::ostream& operator<<(std::ostream& os, const ScaledFloat& v) {
  if (v.is_zero()) {
    return os << "0";
  }
  if (v.sign() < 0) {
    os << "-";
  }
  const double l10 = v.abs().log10();
  const double e = std::floor(l10);
  const double m = std::pow(10.0, l10 - e);
  return os << m << "e" << static_cast<long long>(e);
}

}  // namespace xbar::num
