// SIMD dispatch for the grid kernels.
//
// The Algorithm 1 fill loops are written as stride-1 elementwise passes so
// the compiler can vectorize them; `XBAR_PRAGMA_SIMD` marks the loops that
// are safe to vectorize even when the compiler cannot prove independence
// (e.g. loads and stores through different rows of the same grid buffer).
//
// The macro expands to `#pragma omp simd` when the build enables the SIMD
// path (CMake option XBAR_SIMD, on by default, which compiles with
// -fopenmp-simd and defines XBAR_SIMD_ENABLED — no OpenMP runtime is
// involved) and to nothing in the scalar-fallback build (-DXBAR_SIMD=OFF).
// Both variants are exact: the marked loops carry no reduction or
// reassociation, every element's operation sequence is unchanged, so SIMD
// and scalar builds produce bit-identical grids.

#pragma once

#if defined(XBAR_SIMD_ENABLED)
#define XBAR_PRAGMA_SIMD _Pragma("omp simd")
#else
#define XBAR_PRAGMA_SIMD
#endif
