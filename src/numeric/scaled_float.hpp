// Extended-range floating point.
//
// The normalization function G(N) of the crossbar model (paper eq. 3) mixes
// factorial terms with products of per-class loads that can be as small as
// 1e-7, so a direct evaluation over- or under-flows IEEE double well before
// the system sizes the paper reports (N = 256).  Section 6 of the paper
// proposes dynamic scaling by a factor "omega"; `ScaledFloat` is the
// systematic version of that idea: every value carries its own 64-bit binary
// exponent, giving ~2^63 binades of range while retaining full double
// precision in the mantissa.
//
// Values are signed: smooth (Bernoulli) traffic has beta < 0, which makes
// the V-recursion of Algorithm 1 an alternating sum.
//
// The arithmetic operators are the inner loop of the default Algorithm 1
// backend, so they live here in the header and normalize by exponent-field
// bit manipulation instead of calling frexp()/ldexp(): for normal doubles
// the two are bit-identical, and the libm calls (plus the out-of-line call
// overhead) used to dominate the grid fill.  Subnormal and zero mantissas
// take the frexp slow path.

#pragma once

#include <bit>
#include <cassert>
#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace xbar::num {

namespace detail {

/// 2^e as a double for e in [-1022, 1023] (always a normal value).
[[nodiscard]] inline double pow2(int e) noexcept {
  return std::bit_cast<double>(static_cast<std::uint64_t>(1023 + e) << 52);
}

}  // namespace detail

/// A real number `mantissa * 2^exponent` with |mantissa| in [0.5, 1) (or
/// exactly 0).  Supports the arithmetic the model's recurrences need:
/// addition, subtraction, multiplication, division, comparisons and
/// conversion to/from `double` and natural log.
class ScaledFloat {
 public:
  /// Zero.
  constexpr ScaledFloat() noexcept = default;

  /// Construct from a finite double.
  explicit ScaledFloat(double value) noexcept {
    mantissa_ = value;
    normalize();
  }

  /// Named constructor from `mantissa * 2^exp2`; any finite mantissa is
  /// accepted and renormalized.
  static ScaledFloat from_mantissa_exp(double mantissa, std::int64_t exp2) {
    ScaledFloat r;
    r.mantissa_ = mantissa;
    r.exponent_ = exp2;
    r.normalize();
    return r;
  }

  /// Named constructor for `exp(log_value)`; accepts any finite double and
  /// -inf (maps to zero).  Useful to ingest log-domain results.
  static ScaledFloat from_log(double log_value);

  /// One.
  static ScaledFloat one() { return ScaledFloat{1.0}; }

  /// True iff the value is exactly zero.
  [[nodiscard]] bool is_zero() const noexcept { return mantissa_ == 0.0; }

  /// -1, 0 or +1.
  [[nodiscard]] int sign() const noexcept {
    return mantissa_ > 0.0 ? 1 : (mantissa_ < 0.0 ? -1 : 0);
  }

  /// Signed mantissa with |m| in [0.5, 1) (0 iff the value is zero).
  [[nodiscard]] double mantissa() const noexcept { return mantissa_; }

  /// Binary exponent (0 iff the value is zero).
  [[nodiscard]] std::int64_t exponent2() const noexcept { return exponent_; }

  /// Nearest double; saturates to +/-inf or 0 when out of double range.
  [[nodiscard]] double to_double() const noexcept;

  /// Natural logarithm; requires a non-negative value (-inf for zero).
  [[nodiscard]] double log() const noexcept;

  /// Base-10 logarithm; requires a non-negative value (-inf for zero).
  [[nodiscard]] double log10() const noexcept;

  /// Absolute value.
  [[nodiscard]] ScaledFloat abs() const noexcept {
    ScaledFloat r = *this;
    r.mantissa_ = std::fabs(r.mantissa_);
    return r;
  }

  ScaledFloat operator-() const noexcept {
    ScaledFloat r = *this;
    r.mantissa_ = -r.mantissa_;
    return r;
  }

  ScaledFloat& operator+=(const ScaledFloat& rhs) noexcept {
    if (rhs.mantissa_ == 0.0) {
      return *this;
    }
    if (mantissa_ == 0.0) {
      *this = rhs;
      return *this;
    }
    // Align to the larger exponent; if the gap exceeds double precision the
    // smaller operand vanishes, which is the mathematically correct
    // rounding.  The gap is <= 54, so 2^-gap is a normal double and the
    // alignment multiply is exact — identical to ldexp.
    const ScaledFloat& hi = (exponent_ >= rhs.exponent_) ? *this : rhs;
    const ScaledFloat& lo = (exponent_ >= rhs.exponent_) ? rhs : *this;
    const std::int64_t gap = hi.exponent_ - lo.exponent_;
    double sum = hi.mantissa_;
    if (gap <= std::numeric_limits<double>::digits + 1) {
      sum += lo.mantissa_ * detail::pow2(-static_cast<int>(gap));
    }
    const std::int64_t e = hi.exponent_;
    mantissa_ = sum;
    exponent_ = e;
    normalize();
    return *this;
  }

  ScaledFloat& operator-=(const ScaledFloat& rhs) noexcept {
    return *this += -rhs;
  }

  ScaledFloat& operator*=(const ScaledFloat& rhs) noexcept {
    if (mantissa_ == 0.0 || rhs.mantissa_ == 0.0) {
      mantissa_ = 0.0;
      exponent_ = 0;
      return *this;
    }
    mantissa_ *= rhs.mantissa_;  // |m| in [0.25, 1): no overflow possible
    exponent_ += rhs.exponent_;
    normalize();
    return *this;
  }

  ScaledFloat& operator/=(const ScaledFloat& rhs) noexcept {
    assert(!rhs.is_zero());
    if (mantissa_ == 0.0) {
      return *this;
    }
    mantissa_ /= rhs.mantissa_;  // |m| in (0.5, 2): no overflow possible
    exponent_ -= rhs.exponent_;
    normalize();
    return *this;
  }

  friend ScaledFloat operator+(ScaledFloat a, const ScaledFloat& b) noexcept {
    a += b;
    return a;
  }
  friend ScaledFloat operator-(ScaledFloat a, const ScaledFloat& b) noexcept {
    a -= b;
    return a;
  }
  friend ScaledFloat operator*(ScaledFloat a, const ScaledFloat& b) noexcept {
    a *= b;
    return a;
  }
  friend ScaledFloat operator/(ScaledFloat a, const ScaledFloat& b) noexcept {
    a /= b;
    return a;
  }

  /// Exact ordering (compares as real numbers).
  friend std::strong_ordering operator<=>(const ScaledFloat& a,
                                          const ScaledFloat& b) noexcept;
  friend bool operator==(const ScaledFloat& a, const ScaledFloat& b) noexcept {
    return a.mantissa_ == b.mantissa_ && a.exponent_ == b.exponent_;
  }

  /// `a/b` as a double, valid whenever the *ratio* is in double range even if
  /// neither operand is.  Division by zero yields +/-inf (or NaN for 0/0),
  /// mirroring IEEE semantics.
  static double ratio(const ScaledFloat& a, const ScaledFloat& b) noexcept;

 private:
  void normalize() noexcept {
    assert(std::isfinite(mantissa_));
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(mantissa_);
    const std::uint64_t field = (bits >> 52) & 0x7FFu;
    if (field == 0) {
      // Zero (normalize -0.0 too) or subnormal: the rare slow path.
      if (mantissa_ == 0.0) {
        mantissa_ = 0.0;
        exponent_ = 0;
        return;
      }
      int shift = 0;
      mantissa_ = std::frexp(mantissa_, &shift);
      exponent_ += shift;
      return;
    }
    // Normal double: frexp is exactly "set the exponent field to 1022"
    // (|m| lands in [0.5, 1)) plus the field's distance from 1022.
    exponent_ += static_cast<std::int64_t>(field) - 1022;
    mantissa_ = std::bit_cast<double>((bits & ~(0x7FFull << 52)) |
                                      (0x3FEull << 52));
  }

  double mantissa_ = 0.0;       // 0, or |m| in [0.5, 1), sign carried here
  std::int64_t exponent_ = 0;   // value = mantissa_ * 2^exponent_
};

std::ostream& operator<<(std::ostream& os, const ScaledFloat& v);

}  // namespace xbar::num
