// Extended-range floating point.
//
// The normalization function G(N) of the crossbar model (paper eq. 3) mixes
// factorial terms with products of per-class loads that can be as small as
// 1e-7, so a direct evaluation over- or under-flows IEEE double well before
// the system sizes the paper reports (N = 256).  Section 6 of the paper
// proposes dynamic scaling by a factor "omega"; `ScaledFloat` is the
// systematic version of that idea: every value carries its own 64-bit binary
// exponent, giving ~2^63 binades of range while retaining full double
// precision in the mantissa.
//
// Values are signed: smooth (Bernoulli) traffic has beta < 0, which makes
// the V-recursion of Algorithm 1 an alternating sum.

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace xbar::num {

/// A real number `mantissa * 2^exponent` with |mantissa| in [0.5, 1) (or
/// exactly 0).  Supports the arithmetic the model's recurrences need:
/// addition, subtraction, multiplication, division, comparisons and
/// conversion to/from `double` and natural log.
class ScaledFloat {
 public:
  /// Zero.
  constexpr ScaledFloat() noexcept = default;

  /// Construct from a finite double.
  explicit ScaledFloat(double value);

  /// Named constructor from `mantissa * 2^exp2`; any finite mantissa is
  /// accepted and renormalized.
  static ScaledFloat from_mantissa_exp(double mantissa, std::int64_t exp2);

  /// Named constructor for `exp(log_value)`; accepts any finite double and
  /// -inf (maps to zero).  Useful to ingest log-domain results.
  static ScaledFloat from_log(double log_value);

  /// One.
  static ScaledFloat one() { return ScaledFloat{1.0}; }

  /// True iff the value is exactly zero.
  [[nodiscard]] bool is_zero() const noexcept { return mantissa_ == 0.0; }

  /// -1, 0 or +1.
  [[nodiscard]] int sign() const noexcept {
    return mantissa_ > 0.0 ? 1 : (mantissa_ < 0.0 ? -1 : 0);
  }

  /// Signed mantissa with |m| in [0.5, 1) (0 iff the value is zero).
  [[nodiscard]] double mantissa() const noexcept { return mantissa_; }

  /// Binary exponent (0 iff the value is zero).
  [[nodiscard]] std::int64_t exponent2() const noexcept { return exponent_; }

  /// Nearest double; saturates to +/-inf or 0 when out of double range.
  [[nodiscard]] double to_double() const noexcept;

  /// Natural logarithm; requires a non-negative value (-inf for zero).
  [[nodiscard]] double log() const noexcept;

  /// Base-10 logarithm; requires a non-negative value (-inf for zero).
  [[nodiscard]] double log10() const noexcept;

  /// Absolute value.
  [[nodiscard]] ScaledFloat abs() const noexcept;

  ScaledFloat operator-() const noexcept;

  ScaledFloat& operator+=(const ScaledFloat& rhs) noexcept;
  ScaledFloat& operator-=(const ScaledFloat& rhs) noexcept;
  ScaledFloat& operator*=(const ScaledFloat& rhs) noexcept;
  ScaledFloat& operator/=(const ScaledFloat& rhs) noexcept;

  friend ScaledFloat operator+(ScaledFloat a, const ScaledFloat& b) noexcept {
    a += b;
    return a;
  }
  friend ScaledFloat operator-(ScaledFloat a, const ScaledFloat& b) noexcept {
    a -= b;
    return a;
  }
  friend ScaledFloat operator*(ScaledFloat a, const ScaledFloat& b) noexcept {
    a *= b;
    return a;
  }
  friend ScaledFloat operator/(ScaledFloat a, const ScaledFloat& b) noexcept {
    a /= b;
    return a;
  }

  /// Exact ordering (compares as real numbers).
  friend std::strong_ordering operator<=>(const ScaledFloat& a,
                                          const ScaledFloat& b) noexcept;
  friend bool operator==(const ScaledFloat& a, const ScaledFloat& b) noexcept {
    return a.mantissa_ == b.mantissa_ && a.exponent_ == b.exponent_;
  }

  /// `a/b` as a double, valid whenever the *ratio* is in double range even if
  /// neither operand is.  Division by zero yields +/-inf (or NaN for 0/0),
  /// mirroring IEEE semantics.
  static double ratio(const ScaledFloat& a, const ScaledFloat& b) noexcept;

 private:
  void normalize() noexcept;

  double mantissa_ = 0.0;       // 0, or |m| in [0.5, 1), sign carried here
  std::int64_t exponent_ = 0;   // value = mantissa_ * 2^exponent_
};

std::ostream& operator<<(std::ostream& os, const ScaledFloat& v);

}  // namespace xbar::num
