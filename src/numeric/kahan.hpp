// Compensated (Neumaier) summation.
//
// The brute-force solver and the simulator's time-weighted statistics both
// accumulate millions of terms that span many orders of magnitude; naive
// summation loses the small terms that carry the blocking-probability signal.

#pragma once

namespace xbar::num {

/// Running sum with Neumaier compensation (a variant of Kahan summation that
/// also handles the case where the addend is larger than the running sum).
class KahanSum {
 public:
  constexpr KahanSum() noexcept = default;

  /// Start from an initial value.
  explicit constexpr KahanSum(double initial) noexcept : sum_(initial) {}

  /// Add one term.
  constexpr void add(double term) noexcept {
    const double t = sum_ + term;
    const double abs_sum = sum_ < 0 ? -sum_ : sum_;
    const double abs_term = term < 0 ? -term : term;
    if (abs_sum >= abs_term) {
      compensation_ += (sum_ - t) + term;
    } else {
      compensation_ += (term - t) + sum_;
    }
    sum_ = t;
  }

  constexpr KahanSum& operator+=(double term) noexcept {
    add(term);
    return *this;
  }

  /// The compensated total.
  [[nodiscard]] constexpr double value() const noexcept {
    return sum_ + compensation_;
  }

  /// Reset to zero.
  constexpr void reset() noexcept {
    sum_ = 0.0;
    compensation_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace xbar::num
