// Log-domain arithmetic for non-negative reals.
//
// The brute-force reference solver enumerates the full state space Γ(N) and
// sums terms like N1! N2! prod_r Phi_r(k_r) / ((N1-kA)! (N2-kA)!).  Working
// with natural logs keeps every intermediate finite and gives an independent
// numerical path against which both paper algorithms are validated.

#pragma once

#include <cmath>
#include <limits>

namespace xbar::num {

/// `log(exp(a) + exp(b))` computed without overflow.  Either argument may be
/// -inf (representing zero).
[[nodiscard]] inline double log_add(double a, double b) noexcept {
  if (a == -std::numeric_limits<double>::infinity()) {
    return b;
  }
  if (b == -std::numeric_limits<double>::infinity()) {
    return a;
  }
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  return hi + std::log1p(std::exp(lo - hi));
}

/// `log(exp(a) - exp(b))` for a >= b; returns -inf when a == b.
/// Precondition: a >= b (the difference must be non-negative).
[[nodiscard]] inline double log_sub(double a, double b) noexcept {
  if (b == -std::numeric_limits<double>::infinity()) {
    return a;
  }
  if (a <= b) {
    return -std::numeric_limits<double>::infinity();
  }
  return a + std::log1p(-std::exp(b - a));
}

/// Accumulator for `log(sum_i exp(x_i))` built incrementally.
class LogSum {
 public:
  constexpr LogSum() noexcept = default;

  /// Add a term given as its natural log (-inf adds zero).
  void add_log(double log_term) noexcept { value_ = log_add(value_, log_term); }

  /// Add a positive term given in linear domain.
  void add(double term) noexcept { add_log(std::log(term)); }

  /// `log` of the accumulated sum (-inf if empty/zero).
  [[nodiscard]] double log_value() const noexcept { return value_; }

  /// Linear value of the sum; may overflow to +inf for huge sums.
  [[nodiscard]] double value() const noexcept { return std::exp(value_); }

 private:
  double value_ = -std::numeric_limits<double>::infinity();
};

}  // namespace xbar::num
