// Log-domain arithmetic for non-negative reals.
//
// The brute-force reference solver enumerates the full state space Γ(N) and
// sums terms like N1! N2! prod_r Phi_r(k_r) / ((N1-kA)! (N2-kA)!).  Working
// with natural logs keeps every intermediate finite and gives an independent
// numerical path against which both paper algorithms are validated.
//
// `SignedLog` extends the idea to a full signed real type (sign + log
// magnitude) with +, *, / — enough for the Algorithm 1 grid recurrence to
// run entirely in the log domain.  It is the top rung of the sweep engine's
// numeric-escalation ladder: slower than ScaledFloat but immune to
// under/overflow by construction, since no linear-domain value is ever
// materialized.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace xbar::num {

/// `log(exp(a) + exp(b))` computed without overflow.  Either argument may be
/// -inf (representing zero).
[[nodiscard]] inline double log_add(double a, double b) noexcept {
  if (a == -std::numeric_limits<double>::infinity()) {
    return b;
  }
  if (b == -std::numeric_limits<double>::infinity()) {
    return a;
  }
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  return hi + std::log1p(std::exp(lo - hi));
}

/// `log(exp(a) - exp(b))` for a >= b; returns -inf when a == b.
/// Precondition: a >= b (the difference must be non-negative).
[[nodiscard]] inline double log_sub(double a, double b) noexcept {
  if (b == -std::numeric_limits<double>::infinity()) {
    return a;
  }
  if (a <= b) {
    return -std::numeric_limits<double>::infinity();
  }
  return a + std::log1p(-std::exp(b - a));
}

/// Accumulator for `log(sum_i exp(x_i))` built incrementally.
class LogSum {
 public:
  constexpr LogSum() noexcept = default;

  /// Add a term given as its natural log (-inf adds zero).
  void add_log(double log_term) noexcept { value_ = log_add(value_, log_term); }

  /// Add a positive term given in linear domain.
  void add(double term) noexcept { add_log(std::log(term)); }

  /// `log` of the accumulated sum (-inf if empty/zero).
  [[nodiscard]] double log_value() const noexcept { return value_; }

  /// Linear value of the sum; may overflow to +inf for huge sums.
  [[nodiscard]] double value() const noexcept { return std::exp(value_); }

 private:
  double value_ = -std::numeric_limits<double>::infinity();
};

/// A signed real number stored as (sign, log|x|).  Zero is sign 0 with
/// log magnitude -inf.  Addition uses log-sum-exp / log-diff-exp, so no
/// intermediate ever leaves the representable range: the type cannot
/// underflow or overflow for any crossbar size.  Used as the Algorithm 1
/// grid backend behind `NumericBackend::kLogDomain` — the last rung of the
/// sweep engine's escalation ladder.
class SignedLog {
 public:
  constexpr SignedLog() noexcept = default;

  explicit SignedLog(double v) noexcept {
    if (v > 0.0) {
      sign_ = 1;
      log_mag_ = std::log(v);
    } else if (v < 0.0) {
      sign_ = -1;
      log_mag_ = std::log(-v);
    }
  }

  /// Build from a natural-log magnitude (+inf magnitude is not meaningful).
  [[nodiscard]] static SignedLog from_log(double log_mag,
                                          int sign = 1) noexcept {
    SignedLog v;
    if (log_mag != -std::numeric_limits<double>::infinity() && sign != 0) {
      v.sign_ = sign < 0 ? -1 : 1;
      v.log_mag_ = log_mag;
    }
    return v;
  }

  [[nodiscard]] int sign() const noexcept { return sign_; }
  [[nodiscard]] bool is_zero() const noexcept { return sign_ == 0; }

  /// log|x|; -inf for zero.
  [[nodiscard]] double log_magnitude() const noexcept { return log_mag_; }

  /// ln(x) of a positive value; NaN for negative, -inf for zero.
  [[nodiscard]] double log() const noexcept {
    if (sign_ < 0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return log_mag_;
  }

  /// Linear value; may overflow to ±inf for huge magnitudes.
  [[nodiscard]] double value() const noexcept {
    return static_cast<double>(sign_) * std::exp(log_mag_);
  }

  friend SignedLog operator+(const SignedLog& a, const SignedLog& b) noexcept {
    if (a.sign_ == 0) {
      return b;
    }
    if (b.sign_ == 0) {
      return a;
    }
    if (a.sign_ == b.sign_) {
      return from_log(log_add(a.log_mag_, b.log_mag_), a.sign_);
    }
    // Opposite signs: the larger magnitude wins; equal magnitudes cancel.
    if (a.log_mag_ == b.log_mag_) {
      return SignedLog{};
    }
    const bool a_wins = a.log_mag_ > b.log_mag_;
    const SignedLog& hi = a_wins ? a : b;
    const SignedLog& lo = a_wins ? b : a;
    return from_log(log_sub(hi.log_mag_, lo.log_mag_), hi.sign_);
  }

  friend SignedLog operator*(const SignedLog& a, const SignedLog& b) noexcept {
    if (a.sign_ == 0 || b.sign_ == 0) {
      return SignedLog{};
    }
    return from_log(a.log_mag_ + b.log_mag_, a.sign_ * b.sign_);
  }

  friend SignedLog operator/(const SignedLog& a, const SignedLog& b) noexcept {
    if (a.sign_ == 0) {
      return SignedLog{};
    }
    // Division by zero cannot arise in the grid recurrence (divisors are
    // positive integers); keep the IEEE-ish convention of a NaN magnitude.
    return from_log(a.log_mag_ - b.log_mag_, a.sign_ * b.sign_);
  }

  SignedLog& operator+=(const SignedLog& o) noexcept {
    *this = *this + o;
    return *this;
  }

  friend bool operator==(const SignedLog& a, const SignedLog& b) noexcept {
    return a.sign_ == b.sign_ && (a.sign_ == 0 || a.log_mag_ == b.log_mag_);
  }

  friend bool operator<(const SignedLog& a, const SignedLog& b) noexcept {
    if (a.sign_ != b.sign_) {
      return a.sign_ < b.sign_;
    }
    if (a.sign_ == 0) {
      return false;
    }
    return a.sign_ > 0 ? a.log_mag_ < b.log_mag_ : b.log_mag_ < a.log_mag_;
  }

 private:
  int sign_ = 0;
  double log_mag_ = -std::numeric_limits<double>::infinity();
};

}  // namespace xbar::num
