#include "numeric/roots.hpp"

#include <cmath>
#include <utility>

namespace xbar::num {

namespace {

bool opposite_signs(double a, double b) noexcept {
  return (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
}

}  // namespace

std::optional<RootResult> bisect(const std::function<double(double)>& f,
                                 double lo, double hi,
                                 const RootOptions& options) {
  double flo = f(lo);
  double fhi = f(hi);
  if (!opposite_signs(flo, fhi)) {
    return std::nullopt;
  }
  RootResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result.x = mid;
    result.f = fmid;
    result.iterations = i + 1;
    if (std::fabs(fmid) <= options.f_tolerance ||
        (hi - lo) * 0.5 <= options.x_tolerance) {
      result.converged = true;
      return result;
    }
    if (opposite_signs(flo, fmid)) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return result;
}

std::optional<RootResult> brent(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& options) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (!opposite_signs(fa, fb)) {
    return std::nullopt;
  }
  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  double d = b - a;
  bool used_bisection = true;

  RootResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    result.iterations = i + 1;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double mid = 0.5 * (a + b);
    const bool s_outside = !((s > mid && s < b) || (s < mid && s > b));
    const double step_prev = std::fabs(used_bisection ? b - c : d);
    if (s_outside || std::fabs(s - b) >= 0.5 * step_prev) {
      s = mid;
      used_bisection = true;
    } else {
      used_bisection = false;
    }

    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (opposite_signs(fa, fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    result.x = b;
    result.f = fb;
    if (std::fabs(fb) <= options.f_tolerance ||
        std::fabs(b - a) <= options.x_tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double lo, double initial_width,
    int max_growth) {
  const double flo = f(lo);
  double width = initial_width;
  for (int i = 0; i < max_growth; ++i) {
    const double hi = lo + width;
    const double fhi = f(hi);
    if (opposite_signs(flo, fhi)) {
      return std::make_pair(lo, hi);
    }
    width *= 2.0;
  }
  return std::nullopt;
}

}  // namespace xbar::num
