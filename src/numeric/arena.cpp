#include "numeric/arena.hpp"

namespace xbar::num {

ArenaPool& ArenaPool::global() {
  static ArenaPool* pool = new ArenaPool();  // leaked: outlives all users
  return *pool;
}

}  // namespace xbar::num
