#include "numeric/gradient.hpp"

#include <cmath>

namespace xbar::num {

double forward_difference(const ScalarFn& f, double x, double h) {
  return (f(x + h) - f(x)) / h;
}

double central_difference(const ScalarFn& f, double x, double h) {
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

double richardson_derivative(const ScalarFn& f, double x, double h) {
  const double d_h = central_difference(f, x, h);
  const double d_h2 = central_difference(f, x, h / 2.0);
  return (4.0 * d_h2 - d_h) / 3.0;
}

double default_step(double x) noexcept {
  // cbrt(eps) balances truncation vs rounding error for central differences.
  constexpr double kCbrtEps = 6.055454452393343e-06;
  const double scale = std::fabs(x) > 1.0 ? std::fabs(x) : 1.0;
  return kCbrtEps * scale;
}

}  // namespace xbar::num
