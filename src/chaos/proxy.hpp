// ChaosProxy: a TCP fault-injection proxy for resilience testing.
//
// Sits between XbarClient/xbar_loadgen and xbar_serve and misbehaves on a
// *scriptable, deterministic* schedule, so the failure modes a hostile
// network produces — slow links, dead peers, truncated frames, resets,
// stalled readers — can be reproduced byte-for-byte in CI instead of
// hoping the network misbehaves on its own.  The schedule follows the
// FaultInjector spec style from the sweep engine (`POINT:action`), keyed
// by the proxy-side connection index:
//
//   CONN:delay:MS      hold the connection MS milliseconds before proxying
//   CONN:drop          accept, then close immediately (client sees EOF)
//   CONN:reset         forward BYTES response bytes (default 0), then RST
//                      the client (SO_LINGER 0 close) — `CONN:reset:BYTES`
//   CONN:truncate:N    forward only the first N response bytes (default
//                      16), then close cleanly: a torn frame
//   CONN:garbage       prepend a non-protocol line to the response stream
//                      (framing desynchronization)
//   CONN:stall         forward the request upstream, then never relay the
//                      response and stop reading it (the upstream-facing
//                      socket keeps a minimal receive buffer), so the
//                      *server* experiences a slow reader while the client
//                      waits out its own timeout
//
// Connections without a matching rule are proxied faithfully.  Rules are
// deterministic because connection indices are assigned in accept order —
// drive the proxy from a single-threaded client (or accept the index
// interleaving) and a given schedule perturbs the same requests every run.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/connection.hpp"

namespace xbar::chaos {

enum class FaultAction : std::uint8_t {
  kNone, kDelay, kDrop, kReset, kTruncate, kGarbage, kStall,
};

[[nodiscard]] std::string_view to_string(FaultAction action) noexcept;

struct FaultRule {
  std::size_t conn = 0;  ///< accept-order connection index
  FaultAction action = FaultAction::kNone;
  double delay_seconds = 0.0;  ///< kDelay only
  std::size_t bytes = 0;       ///< kReset / kTruncate response-byte budget
};

/// Parse "CONN:action[:arg][,CONN:action[:arg]]..." (the grammar above).
/// Raises xbar::Error(kUsage) naming the bad token.
[[nodiscard]] std::vector<FaultRule> parse_fault_spec(std::string_view spec);

struct ProxyConfig {
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral (read back via port())
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  double connect_timeout_seconds = 2.0;
  double stall_max_seconds = 30.0;  ///< bound on how long kStall holds on
  std::vector<FaultRule> faults;
};

/// Operational counters (monitoring; read with counters()).
struct ProxyCounters {
  std::uint64_t accepted = 0;
  std::uint64_t faulted = 0;  ///< connections a rule acted on
  std::uint64_t upstream_dial_failures = 0;
  std::uint64_t bytes_to_upstream = 0;
  std::uint64_t bytes_to_client = 0;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ProxyConfig config);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind + listen + spawn the acceptor.  Raises xbar::Error(kIo) when the
  /// listen address cannot be bound.
  void start();

  /// Stop accepting, close the listen socket, join every pump thread.
  /// Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] ProxyCounters counters() const;

 private:
  void acceptor_main();
  void pump(service::Socket client, FaultRule rule);
  void stall(service::Socket client, service::Socket upstream);

  ProxyConfig config_;
  service::Socket listen_socket_;
  std::uint16_t port_ = 0;
  int stop_pipe_read_ = -1;
  int stop_pipe_write_ = -1;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread acceptor_;
  std::mutex threads_mutex_;
  std::vector<std::thread> pumps_;

  mutable std::mutex counters_mutex_;
  ProxyCounters counters_;
};

}  // namespace xbar::chaos
