#include "chaos/proxy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "core/error.hpp"

namespace xbar::chaos {

namespace {

using Clock = std::chrono::steady_clock;

/// Blocking send of the whole buffer; false on any error.
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Close with SO_LINGER{1,0}: the kernel sends RST instead of FIN.
void reset_close(service::Socket& sock) {
  const linger hard{1, 0};
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  sock.reset();
}

/// Upstream dial for kStall: the receive buffer is clamped to the kernel
/// minimum *before* connect, so the advertised window is tiny and the
/// server's send path backs up after a few KB instead of after the
/// default ~128 KB of buffering.
service::Socket dial_stall(const std::string& host, std::uint16_t port,
                           double timeout_seconds) {
  service::Socket probe = service::dial_timeout(host, port, timeout_seconds);
  if (!probe.valid()) {
    return probe;
  }
  probe.reset();  // reachable; redo the dial with the clamped buffer
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return service::Socket();
  }
  service::Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return sock;
  }
  const int tiny = 2048;  // kernel clamps to its floor
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return service::Socket();
  }
  return sock;
}

std::size_t parse_count(std::string_view token, std::string_view what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    raise(ErrorKind::kUsage, "--faults: invalid " + std::string(what) +
                                 " '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

std::string_view to_string(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kDelay: return "delay";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kReset: return "reset";
    case FaultAction::kTruncate: return "truncate";
    case FaultAction::kGarbage: return "garbage";
    case FaultAction::kStall: return "stall";
  }
  return "?";
}

std::vector<FaultRule> parse_fault_spec(std::string_view spec) {
  std::vector<FaultRule> rules;
  std::size_t start = 0;
  while (start < spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view token = spec.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    start = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (token.empty()) {
      continue;
    }
    const std::size_t first = token.find(':');
    if (first == std::string_view::npos) {
      raise(ErrorKind::kUsage,
            "--faults: expected CONN:action, got '" + std::string(token) +
                "'");
    }
    FaultRule rule;
    rule.conn = parse_count(token.substr(0, first), "connection index");
    const std::size_t second = token.find(':', first + 1);
    const std::string_view action =
        token.substr(first + 1, second == std::string_view::npos
                                    ? std::string_view::npos
                                    : second - first - 1);
    const std::string_view arg =
        second == std::string_view::npos ? std::string_view()
                                         : token.substr(second + 1);
    if (action == "delay") {
      rule.action = FaultAction::kDelay;
      if (arg.empty()) {
        raise(ErrorKind::kUsage, "--faults: delay needs CONN:delay:MS");
      }
      rule.delay_seconds =
          static_cast<double>(parse_count(arg, "delay ms")) * 1e-3;
    } else if (action == "drop") {
      rule.action = FaultAction::kDrop;
    } else if (action == "reset") {
      rule.action = FaultAction::kReset;
      rule.bytes = arg.empty() ? 0 : parse_count(arg, "byte count");
    } else if (action == "truncate") {
      rule.action = FaultAction::kTruncate;
      rule.bytes = arg.empty() ? 16 : parse_count(arg, "byte count");
    } else if (action == "garbage") {
      rule.action = FaultAction::kGarbage;
    } else if (action == "stall") {
      rule.action = FaultAction::kStall;
    } else {
      raise(ErrorKind::kUsage,
            "--faults: unknown action '" + std::string(action) +
                "' (expected delay|drop|reset|truncate|garbage|stall)");
    }
    rules.push_back(rule);
  }
  return rules;
}

ChaosProxy::ChaosProxy(ProxyConfig config) : config_(std::move(config)) {}

ChaosProxy::~ChaosProxy() {
  stop();
  if (stop_pipe_read_ >= 0) {
    ::close(stop_pipe_read_);
    ::close(stop_pipe_write_);
  }
}

void ChaosProxy::start() {
  if (started_) {
    raise(ErrorKind::kInternal, "ChaosProxy::start() called twice");
  }
  listen_socket_ =
      service::listen_on(config_.listen_host, config_.listen_port, port_);
  int fds[2];
  if (::pipe(fds) != 0) {
    raise(ErrorKind::kIo, std::string("pipe(): ") + std::strerror(errno));
  }
  stop_pipe_read_ = fds[0];
  stop_pipe_write_ = fds[1];
  started_ = true;
  acceptor_ = std::thread([this] { acceptor_main(); });
}

void ChaosProxy::stop() {
  if (!started_) {
    return;
  }
  if (!stopping_.exchange(true)) {
    const unsigned char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_write_, &byte, 1);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::thread> pumps;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    pumps.swap(pumps_);
  }
  for (std::thread& t : pumps) {
    if (t.joinable()) {
      t.join();
    }
  }
}

ProxyCounters ChaosProxy::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

void ChaosProxy::acceptor_main() {
  std::size_t index = 0;
  for (;;) {
    pollfd fds[2] = {{listen_socket_.fd(), POLLIN, 0},
                     {stop_pipe_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        stopping_.load(std::memory_order_relaxed)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    service::Socket conn(::accept(listen_socket_.fd(), nullptr, nullptr));
    if (!conn.valid()) {
      continue;
    }
    const int one = 1;
    ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    FaultRule rule;
    for (const FaultRule& r : config_.faults) {
      if (r.conn == index) {
        rule = r;
        break;
      }
    }
    ++index;
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.accepted;
      if (rule.action != FaultAction::kNone) {
        ++counters_.faulted;
      }
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    pumps_.emplace_back(
        [this, c = std::move(conn), rule]() mutable {
          pump(std::move(c), rule);
        });
  }
  listen_socket_.reset();
}

void ChaosProxy::pump(service::Socket client, FaultRule rule) {
  if (rule.action == FaultAction::kDrop) {
    return;  // close immediately: the client sees EOF before any response
  }
  if (rule.action == FaultAction::kDelay) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(rule.delay_seconds));
  }
  service::Socket upstream =
      rule.action == FaultAction::kStall
          ? dial_stall(config_.upstream_host, config_.upstream_port,
                       config_.connect_timeout_seconds)
          : service::dial_timeout(config_.upstream_host,
                                  config_.upstream_port,
                                  config_.connect_timeout_seconds);
  if (!upstream.valid()) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.upstream_dial_failures;
    return;  // the client sees EOF, exactly like a dead upstream
  }
  if (rule.action == FaultAction::kStall) {
    stall(std::move(client), std::move(upstream));
    return;
  }

  // Bidirectional byte pump with the fault shaping applied to the
  // upstream->client (response) direction.
  std::size_t response_forwarded = 0;
  bool garbage_sent = false;
  char chunk[4096];
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) {
      break;
    }
    pollfd fds[2] = {{client.fd(), POLLIN, 0}, {upstream.fd(), POLLIN, 0}};
    const int ready = ::poll(fds, 2, 500);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0) {
      continue;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t n = ::recv(client.fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) {
        break;
      }
      if (!send_all(upstream.fd(), chunk, static_cast<std::size_t>(n))) {
        break;
      }
      std::lock_guard<std::mutex> lock(counters_mutex_);
      counters_.bytes_to_upstream += static_cast<std::uint64_t>(n);
    }
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t n = ::recv(upstream.fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) {
        break;
      }
      std::size_t forward = static_cast<std::size_t>(n);
      if (rule.action == FaultAction::kGarbage && !garbage_sent) {
        // A line that can never be a protocol frame: clients must treat
        // the stream as desynchronized, reconnect, and retry.
        static constexpr char kGarbage[] = "\x15xbar-chaos-garbage\n";
        garbage_sent = true;
        if (!send_all(client.fd(), kGarbage, sizeof(kGarbage) - 1)) {
          break;
        }
      }
      if (rule.action == FaultAction::kTruncate ||
          rule.action == FaultAction::kReset) {
        forward = response_forwarded >= rule.bytes
                      ? 0
                      : std::min(forward, rule.bytes - response_forwarded);
      }
      if (forward > 0 && !send_all(client.fd(), chunk, forward)) {
        break;
      }
      response_forwarded += forward;
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        counters_.bytes_to_client += static_cast<std::uint64_t>(forward);
      }
      if (rule.action == FaultAction::kTruncate &&
          response_forwarded >= rule.bytes) {
        break;  // clean close mid-frame: a torn response
      }
      if (rule.action == FaultAction::kReset &&
          response_forwarded >= rule.bytes) {
        reset_close(client);
        return;
      }
    }
  }
}

void ChaosProxy::stall(service::Socket client, service::Socket upstream) {
  // Forward whatever the client sends, never read the response: the
  // server's send path sees a reader that stopped draining.  Ends when
  // the client gives up (its timeout closes the socket), the proxy is
  // stopped, or the stall bound elapses.
  const Clock::time_point start = Clock::now();
  char chunk[4096];
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed) ||
        std::chrono::duration<double>(Clock::now() - start).count() >
            config_.stall_max_seconds) {
      break;
    }
    pollfd pfd{client.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0) {
      continue;
    }
    const ssize_t n = ::recv(client.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    if (!send_all(upstream.fd(), chunk, static_cast<std::size_t>(n))) {
      break;
    }
    std::lock_guard<std::mutex> lock(counters_mutex_);
    counters_.bytes_to_upstream += static_cast<std::uint64_t>(n);
  }
}

}  // namespace xbar::chaos
