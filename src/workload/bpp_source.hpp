// Stand-alone BPP traffic source (infinite-server semantics).
//
// A BPP stream is *defined* by its behaviour against an infinite server
// group: arrivals at lambda(k) = alpha + beta k where k is the number in
// service, exponential service at mu.  This module simulates exactly that,
// producing arrival traces and occupancy statistics, so the distribution
// layer's claims — occupancy is Binomial/Poisson/Pascal, peakedness is
// Z = 1/(1 - beta/mu) — can be verified empirically, independent of any
// switch.

#pragma once

#include <cstdint>
#include <vector>

#include "dist/bpp.hpp"
#include "dist/empirical.hpp"
#include "dist/rng.hpp"

namespace xbar::workload {

/// One offered arrival.
struct TraceEvent {
  double time = 0.0;
  bool accepted = true;  ///< always true for an infinite server
};

/// Result of running the source.
struct SourceTrace {
  std::vector<TraceEvent> arrivals;
  dist::TimeWeightedMoments occupancy;  ///< time-weighted busy-server stats
  dist::Histogram occupancy_histogram;  ///< busy-server distribution
  double horizon = 0.0;
};

/// Simulate a BPP source against an infinite server group for `horizon`
/// time units (after `warmup`), recording arrivals and occupancy.
/// `histogram_max` bounds the occupancy histogram.
[[nodiscard]] SourceTrace run_bpp_source(const dist::BppParams& params,
                                         double warmup, double horizon,
                                         std::uint64_t seed,
                                         std::size_t histogram_max = 64);

}  // namespace xbar::workload
