// Load calibration: invert the model.
//
// The paper tunes its figures to a 0.5% blocking operating point ("which may
// be considered an acceptable operating point").  This module answers the
// planning questions that tuning implies: what offered load alpha~ drives a
// given switch to a target blocking, and how much carried traffic that
// admits.  Built on Brent's method over the (monotone) blocking-vs-load
// curve.

#pragma once

#include <optional>

#include "core/model.hpp"

namespace xbar::workload {

/// Result of a calibration search.
struct CalibrationResult {
  double alpha_tilde = 0.0;   ///< load achieving the target
  double blocking = 0.0;      ///< achieved blocking (within tolerance)
  double concurrency = 0.0;   ///< carried connections at that load
  int iterations = 0;
};

/// Find alpha~ such that a single class (bandwidth `a`, peakedness slope
/// beta~ = ratio * alpha~) sees `target_blocking` on an n x n crossbar.
/// `beta_over_alpha` of 0 is Poisson; negative is smooth; positive peaky.
/// Returns nullopt if the target is unreachable (e.g. above the blocking at
/// saturating load within the search bracket).  Raises xbar::Error
/// (kDomain) when the question itself is ill-posed: n or a of zero,
/// a > n (the class can never fit), or a target outside (0, 1).
[[nodiscard]] std::optional<CalibrationResult> calibrate_load(
    unsigned n, unsigned a, double target_blocking,
    double beta_over_alpha = 0.0, double blocking_tolerance = 1e-10);

}  // namespace xbar::workload
