#include "workload/scenario.hpp"

#include "numeric/combinatorics.hpp"

namespace xbar::workload {

using core::CrossbarModel;
using core::Dims;
using core::TrafficClass;

std::vector<double> fig1_beta_tildes() {
  return {0.0, -1.0e-6, -2.0e-6, -3.0e-6, -4.0e-6};
}

std::vector<double> fig2_beta_tildes() {
  return {0.0, kFigureAlphaTilde / 8.0, kFigureAlphaTilde / 4.0,
          kFigureAlphaTilde / 2.0, kFigureAlphaTilde};
}

std::vector<unsigned> figure_sizes() {
  return {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128};
}

CrossbarModel single_class_model(unsigned n, double alpha_tilde,
                                 double beta_tilde) {
  return CrossbarModel(
      Dims::square(n),
      {TrafficClass::bursty("bursty", alpha_tilde, beta_tilde)});
}

CrossbarModel two_class_model(unsigned n, double alpha1_tilde,
                              double alpha2_tilde, double beta2_tilde) {
  return CrossbarModel(
      Dims::square(n),
      {TrafficClass::poisson("poisson", alpha1_tilde),
       TrafficClass::bursty("bursty", alpha2_tilde, beta2_tilde)});
}

std::vector<unsigned> fig4_sizes() { return {4, 8, 16, 32, 64}; }

double fig4_rho_tilde(unsigned n, unsigned a, double tau) {
  // The paper's text says rho~_r = tau_r / C(N1, a_r), but its own Table 1
  // prints values matching rho~_r = tau_r * a_r / (2 C(N1, a_r)) for every
  // row (e.g. N=4, a=1: .0006 = .0048/8, not .0048/4).  We reproduce the
  // table.  The extra a_r/2 equalizes the *port-time* demand of the two
  // classes, which is the comparison Figure 4 is making.
  return tau * static_cast<double>(a) / (2.0 * num::binomial(n, a));
}

CrossbarModel fig4_model(unsigned n, unsigned a, double tau) {
  return CrossbarModel(
      Dims::square(n),
      {TrafficClass::poisson("a=" + std::to_string(a),
                             fig4_rho_tilde(n, a, tau), a)});
}

std::vector<Table2Set> table2_sets() {
  return {
      {"rho~1=.0012 rho~2=.0012 beta~2=.0012", 0.0012, 0.0012, 0.0012},
      {"rho~1=.0012 rho~2=.0012 beta~2=.0036", 0.0012, 0.0012, 0.0036},
      {"rho~1=.0012 rho~2=.0036 beta~2=.0012", 0.0012, 0.0036, 0.0012},
  };
}

std::vector<unsigned> table2_sizes() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

CrossbarModel table2_model(unsigned n, const Table2Set& set) {
  return CrossbarModel(
      Dims::square(n),
      {TrafficClass::poisson("type1", set.rho1_tilde, 1, 1.0, 1.0),
       TrafficClass::bursty("type2", set.rho2_tilde, set.beta2_tilde, 1, 1.0,
                            0.0001)});
}

}  // namespace xbar::workload
