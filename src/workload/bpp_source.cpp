#include "workload/bpp_source.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace xbar::workload {

SourceTrace run_bpp_source(const dist::BppParams& params, double warmup,
                           double horizon, std::uint64_t seed,
                           std::size_t histogram_max) {
  dist::Xoshiro256 rng(seed);
  SourceTrace trace{.arrivals = {},
                    .occupancy = {},
                    .occupancy_histogram = dist::Histogram(histogram_max),
                    .horizon = horizon};

  // Min-heap of service completion times; size == number in service.
  std::priority_queue<double, std::vector<double>, std::greater<>> completions;
  double now = 0.0;
  const double end = warmup + horizon;

  // The histogram samples the occupancy at regular epochs, giving the
  // *time-stationary* distribution (sampling at arrival epochs would be
  // biased — peaky arrivals see more-than-average occupancy).
  const double sample_step = horizon / 65536.0;
  double next_sample = warmup;

  while (now < end) {
    const auto k = static_cast<unsigned>(completions.size());
    const double rate = params.intensity(k);

    const double t_arrival =
        rate > 0.0 ? now + rng.exponential(rate)
                   : std::numeric_limits<double>::infinity();
    const double t_completion =
        completions.empty() ? std::numeric_limits<double>::infinity()
                            : completions.top();
    const double t_next = std::min(t_arrival, t_completion);
    if (t_next == std::numeric_limits<double>::infinity()) {
      break;  // dead source (alpha <= 0 and no jobs): nothing more happens
    }
    const double segment_end = std::min(t_next, end);
    if (segment_end > warmup) {
      const double measured_from = std::max(now, warmup);
      trace.occupancy.add(static_cast<double>(k), segment_end - measured_from);
    }
    while (next_sample < segment_end) {
      trace.occupancy_histogram.add(k);
      next_sample += sample_step;
    }
    now = t_next;
    if (now >= end) {
      break;
    }
    if (t_arrival <= t_completion) {
      if (now >= warmup) {
        trace.arrivals.push_back(TraceEvent{now - warmup, true});
      }
      completions.push(now + rng.exponential(params.mu));
    } else {
      completions.pop();
    }
  }
  return trace;
}

}  // namespace xbar::workload
