#include "workload/calibrate.hpp"

#include <cmath>
#include <string>

#include "core/error.hpp"
#include "core/solver.hpp"
#include "numeric/roots.hpp"
#include "workload/scenario.hpp"

namespace xbar::workload {

std::optional<CalibrationResult> calibrate_load(unsigned n, unsigned a,
                                                double target_blocking,
                                                double beta_over_alpha,
                                                double blocking_tolerance) {
  if (n == 0 || a == 0) {
    raise(ErrorKind::kDomain,
          "calibrate_load: n and a must be >= 1 (got n=" + std::to_string(n) +
              ", a=" + std::to_string(a) + ")");
  }
  if (a > n) {
    raise(ErrorKind::kDomain,
          "calibrate_load: bandwidth a=" + std::to_string(a) +
              " exceeds the switch size n=" + std::to_string(n) +
              "; the class can never fit");
  }
  if (!(target_blocking > 0.0 && target_blocking < 1.0)) {
    raise(ErrorKind::kDomain,
          "calibrate_load: target blocking must lie in (0, 1)");
  }
  const auto blocking_at = [&](double alpha_tilde) {
    const core::CrossbarModel model(
        core::Dims::square(n),
        {core::TrafficClass::bursty("cal", alpha_tilde,
                                    beta_over_alpha * alpha_tilde, a)});
    return core::solve(model).per_class[0].blocking;
  };

  // Bracket: blocking is monotone increasing in load, ~0 at tiny load.
  const double lo = 1e-12;
  const auto bracket = num::expand_bracket(
      [&](double alpha) { return blocking_at(alpha) - target_blocking; }, lo,
      1e-6);
  if (!bracket) {
    return std::nullopt;
  }
  num::RootOptions opts;
  opts.x_tolerance = 0.0;
  opts.f_tolerance = blocking_tolerance;
  const auto root = num::brent(
      [&](double alpha) { return blocking_at(alpha) - target_blocking; },
      bracket->first, bracket->second, opts);
  if (!root || !root->converged) {
    return std::nullopt;
  }

  const core::CrossbarModel model(
      core::Dims::square(n),
      {core::TrafficClass::bursty("cal", root->x, beta_over_alpha * root->x,
                                  a)});
  const auto measures = core::solve(model);
  CalibrationResult result;
  result.alpha_tilde = root->x;
  result.blocking = measures.per_class[0].blocking;
  result.concurrency = measures.per_class[0].concurrency;
  result.iterations = root->iterations;
  return result;
}

}  // namespace xbar::workload
