// Scenario catalog: the exact workloads behind every figure and table in the
// paper, expressed as model factories.  Centralizing them here keeps the
// benches, tests and examples in agreement about parameters.
//
// Units are the paper's tilde (aggregate) units throughout; the per-size
// normalization rho_r = rho~_r / C(N2, a_r) happens inside CrossbarModel,
// which is why each sweep point constructs a fresh model.

#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"

namespace xbar::workload {

/// Figures 1-3 operating point: alpha~ = .0024, mu = 1 ("chosen to drive the
/// non-blocking probability to approximately 99.5%").
inline constexpr double kFigureAlphaTilde = 0.0024;

/// Figure 1 beta~ series: smooth (Bernoulli) traffic, beta~ from 0 to
/// -4e-6 — the values printed in the paper (alpha~/beta~ is always a
/// negative integer, as §2 requires).
[[nodiscard]] std::vector<double> fig1_beta_tildes();

/// Figure 2 beta~ series: peaky (Pascal) traffic.  The paper prints the
/// range qualitatively; we use beta~ in {0, alpha/8, alpha/4, alpha/2,
/// alpha}, the same order of magnitude Table 2 uses (beta~2 = .0012-.0036).
[[nodiscard]] std::vector<double> fig2_beta_tildes();

/// System sizes swept by figures 1-3 (1..128, log-ish spacing).
[[nodiscard]] std::vector<unsigned> figure_sizes();

/// Single bursty class (R1 = 0, R2 = 1, a = 1) — figures 1 and 2.
[[nodiscard]] core::CrossbarModel single_class_model(unsigned n,
                                                     double alpha_tilde,
                                                     double beta_tilde);

/// Figure 3 two-class variant: Poisson class (R1) at alpha~1 plus bursty
/// class (R2) at (alpha~2, beta~2).
[[nodiscard]] core::CrossbarModel two_class_model(unsigned n,
                                                  double alpha1_tilde,
                                                  double alpha2_tilde,
                                                  double beta2_tilde);

/// Figure 4 / Table 1: two Poisson classes with bandwidths a=1 and a=2 at
/// constant total load tau = .0048, rho~_r = tau / C(N1, a_r); each class is
/// analyzed separately (the paper plots their independent effect).
inline constexpr double kFig4TotalLoad = 0.0048;

/// Sizes used by figure 4 / table 1.
[[nodiscard]] std::vector<unsigned> fig4_sizes();

/// rho~ for a single class of bandwidth `a` at total load tau on an NxN
/// switch.  NOTE: reproduces the paper's *Table 1 values*
/// (tau * a / (2 C(N,a))), which differ from the formula printed in its
/// text (tau / C(N,a)) — see the erratum note in DESIGN.md.
[[nodiscard]] double fig4_rho_tilde(unsigned n, unsigned a,
                                    double tau = kFig4TotalLoad);

/// Single Poisson class with bandwidth a at figure-4 load.
[[nodiscard]] core::CrossbarModel fig4_model(unsigned n, unsigned a,
                                             double tau = kFig4TotalLoad);

/// One parameter set of Table 2.
struct Table2Set {
  std::string label;
  double rho1_tilde;   ///< Poisson class 1 load (w1 = 1)
  double rho2_tilde;   ///< bursty class 2 load (w2 = 1e-4)
  double beta2_tilde;  ///< bursty class 2 peakedness parameter
};

/// The three parameter sets of Table 2, in paper order.
[[nodiscard]] std::vector<Table2Set> table2_sets();

/// Sizes in Table 2's rows.
[[nodiscard]] std::vector<unsigned> table2_sizes();

/// The two-class Table 2 model (w1 = 1.0, w2 = 1e-4).
[[nodiscard]] core::CrossbarModel table2_model(unsigned n,
                                               const Table2Set& set);

}  // namespace xbar::workload
