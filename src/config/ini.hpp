// Minimal INI reader for scenario files.
//
// Grammar (a deliberate subset of common INI):
//   * `[section]` or `[section label]` headers; repeated sections are kept
//     in file order (e.g. one `[class ...]` per traffic class);
//   * `key = value` pairs; values are raw strings, trimmed;
//   * `#` or `;` start a comment (full line or trailing);
//   * blank lines ignored.
//
// Parse errors carry 1-based line numbers.

#pragma once

#include <istream>
#include <optional>
#include <source_location>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace xbar::config {

/// Parse error with input location: an `xbar::Error` of kind kParse whose
/// `line()` is the 1-based line of the malformed input text.
class IniError : public Error {
 public:
  IniError(unsigned line, const std::string& what,
           std::source_location where = std::source_location::current())
      : Error(ErrorKind::kParse,
              "line " + std::to_string(line) + ": " + what, where),
        line_(line) {}

  [[nodiscard]] unsigned line() const noexcept { return line_; }

 private:
  unsigned line_;
};

/// One `[name label]` section with its key/value pairs in file order.
struct IniSection {
  std::string name;   ///< first word of the header
  std::string label;  ///< rest of the header (may be empty)
  std::vector<std::pair<std::string, std::string>> entries;

  /// Value of `key`, if present (first occurrence).
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Value of `key` parsed as double; raises xbar::Error (kParse)
  /// mentioning the key on garbage.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// Value of `key` parsed as unsigned.
  [[nodiscard]] unsigned get_unsigned(const std::string& key,
                                      unsigned fallback) const;

  /// Required variants: raise xbar::Error (kConfig) when missing.
  [[nodiscard]] std::string require(const std::string& key) const;
  [[nodiscard]] double require_double(const std::string& key) const;
};

/// A parsed INI document.
struct IniFile {
  std::vector<IniSection> sections;

  /// First section with the given name, if any.
  [[nodiscard]] const IniSection* find(const std::string& name) const;

  /// All sections with the given name, in file order.
  [[nodiscard]] std::vector<const IniSection*> find_all(
      const std::string& name) const;
};

/// Parse from a stream; throws IniError on malformed input.
[[nodiscard]] IniFile parse_ini(std::istream& in);

/// Parse from a string (convenience for tests).
[[nodiscard]] IniFile parse_ini_string(const std::string& text);

}  // namespace xbar::config
