#include "config/ini.hpp"

#include <cstdlib>
#include <sstream>

namespace xbar::config {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string strip_comment(const std::string& s) {
  const auto pos = s.find_first_of("#;");
  return pos == std::string::npos ? s : s.substr(0, pos);
}

}  // namespace

std::optional<std::string> IniSection::get(const std::string& key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) {
      return v;
    }
  }
  return std::nullopt;
}

double IniSection::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    raise(ErrorKind::kParse,
          "[" + name + "] " + key + ": not a number: '" + *v + "'");
  }
  return parsed;
}

unsigned IniSection::get_unsigned(const std::string& key,
                                  unsigned fallback) const {
  const auto v = get(key);
  if (!v) {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    raise(ErrorKind::kParse,
          "[" + name + "] " + key + ": not an unsigned integer: '" + *v + "'");
  }
  return static_cast<unsigned>(parsed);
}

std::string IniSection::require(const std::string& key) const {
  const auto v = get(key);
  if (!v) {
    raise(ErrorKind::kConfig, "[" + name +
                                  (label.empty() ? "" : " " + label) +
                                  "] missing required key '" + key + "'");
  }
  return *v;
}

double IniSection::require_double(const std::string& key) const {
  (void)require(key);
  return get_double(key, 0.0);
}

const IniSection* IniFile::find(const std::string& name) const {
  for (const auto& s : sections) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<const IniSection*> IniFile::find_all(
    const std::string& name) const {
  std::vector<const IniSection*> out;
  for (const auto& s : sections) {
    if (s.name == name) {
      out.push_back(&s);
    }
  }
  return out;
}

IniFile parse_ini(std::istream& in) {
  IniFile file;
  std::string raw;
  unsigned line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw IniError(line_no, "unterminated section header");
      }
      const std::string header = trim(line.substr(1, line.size() - 2));
      if (header.empty()) {
        throw IniError(line_no, "empty section header");
      }
      IniSection section;
      const auto space = header.find_first_of(" \t");
      if (space == std::string::npos) {
        section.name = header;
      } else {
        section.name = header.substr(0, space);
        section.label = trim(header.substr(space + 1));
      }
      file.sections.push_back(std::move(section));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw IniError(line_no, "expected 'key = value': '" + line + "'");
    }
    if (file.sections.empty()) {
      throw IniError(line_no, "key/value pair before any [section]");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw IniError(line_no, "empty key");
    }
    file.sections.back().entries.emplace_back(key, value);
  }
  return file;
}

IniFile parse_ini_string(const std::string& text) {
  std::istringstream in(text);
  return parse_ini(in);
}

}  // namespace xbar::config
