#include "config/scenario_file.hpp"

#include <fstream>
#include <sstream>

#include "config/ini.hpp"

namespace xbar::config {

namespace {

core::TrafficClass parse_class(const IniSection& section) {
  const std::string name =
      section.label.empty() ? "class" + std::to_string(0) : section.label;
  const std::string shape = section.require("shape");
  const auto bandwidth = section.get_unsigned("bandwidth", 1);
  const double mu = section.get_double("mu", 1.0);
  const double weight = section.get_double("weight", 1.0);
  if (shape == "poisson") {
    return core::TrafficClass::poisson(name, section.require_double("rho"),
                                       bandwidth, mu, weight);
  }
  if (shape == "bursty") {
    return core::TrafficClass::bursty(name, section.require_double("alpha"),
                                      section.get_double("beta", 0.0),
                                      bandwidth, mu, weight);
  }
  raise(ErrorKind::kConfig, "[class " + section.label + "] unknown shape '" +
                                shape + "' (expected poisson|bursty)");
}

}  // namespace

Scenario parse_scenario(std::istream& in) {
  const IniFile ini = parse_ini(in);

  const IniSection* sw = ini.find("switch");
  if (sw == nullptr) {
    raise(ErrorKind::kConfig, "scenario needs a [switch] section");
  }
  const unsigned n1 = sw->get_unsigned("inputs", 0);
  const unsigned n2 = sw->get_unsigned("outputs", n1);
  if (n1 == 0) {
    raise(ErrorKind::kConfig, "[switch] inputs must be set and positive");
  }

  std::vector<core::TrafficClass> classes;
  for (const IniSection* section : ini.find_all("class")) {
    classes.push_back(parse_class(*section));
  }
  if (classes.empty()) {
    raise(ErrorKind::kConfig, "scenario needs at least one [class ...]");
  }

  Scenario scenario{
      .model = core::CrossbarModel(core::Dims{n1, n2}, std::move(classes)),
      .solver = {},
      .sim = {},
      .replications = 5,
      .hotspot_fraction = 0.0,
      .has_simulation_section = false,
  };

  if (const IniSection* solve = ini.find("solve")) {
    if (const auto algo = solve->get("algorithm")) {
      scenario.solver = core::SolverSpec::parse(*algo);
    }
  }
  if (const IniSection* simulate = ini.find("simulate")) {
    scenario.has_simulation_section = true;
    scenario.sim.warmup_time = simulate->get_double("warmup", 500.0);
    scenario.sim.measurement_time = simulate->get_double("time", 10'000.0);
    scenario.sim.num_batches = simulate->get_unsigned("batches", 20);
    scenario.sim.seed = simulate->get_unsigned("seed", 0x5EED);
    scenario.replications = simulate->get_unsigned("replications", 5);
    scenario.hotspot_fraction = simulate->get_double("hotspot", 0.0);
    if (scenario.hotspot_fraction < 0.0 || scenario.hotspot_fraction > 1.0) {
      raise(ErrorKind::kConfig, "[simulate] hotspot must be in [0, 1]");
    }
  }
  return scenario;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    raise(ErrorKind::kIo, "cannot open scenario file: " + path);
  }
  return parse_scenario(in);
}

Scenario parse_scenario_string(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

}  // namespace xbar::config
