// Scenario files: declare a switch + traffic mix (+ run options) in a small
// INI dialect, so experiments can be run from the command line (tools/xbar)
// without writing C++.
//
//   [switch]
//   inputs  = 64
//   outputs = 64
//
//   [class voice]            # one section per traffic class
//   shape     = poisson      # poisson | bursty
//   rho       = 0.45         # poisson: offered load rho~
//   bandwidth = 1            # optional, default 1
//   mu        = 1.0          # optional, default 1.0
//   weight    = 1.0          # optional, default 1.0
//
//   [class bulk]
//   shape = bursty
//   alpha = 0.1              # bursty: alpha~ and beta~
//   beta  = 0.05
//
//   [solve]                  # optional
//   algorithm = auto         # SolverSpec string: auto | fast |
//                            # algorithm1[/scaled|/double-dynamic|
//                            # /long-double|/double-raw|/log-domain]
//                            # | algorithm2 | brute
//
//   [simulate]               # optional; enables `xbar simulate`
//   warmup       = 500
//   time         = 10000
//   batches      = 20
//   replications = 5
//   seed         = 42
//   hotspot      = 0.0       # optional non-uniform output fraction

#pragma once

#include <iosfwd>
#include <string>

#include "core/model.hpp"
#include "core/solver_spec.hpp"
#include "sim/simulator.hpp"

namespace xbar::config {

/// Parsed scenario.
struct Scenario {
  core::CrossbarModel model;
  core::SolverSpec solver;  ///< defaults to SolverAlgorithm::kAuto
  sim::SimulationConfig sim;
  std::size_t replications = 5;
  double hotspot_fraction = 0.0;
  bool has_simulation_section = false;
};

/// Parse a scenario from a stream.  Raises xbar::Error: kParse for syntax
/// problems (IniError carries the input line), kConfig for semantic ones
/// (missing sections/keys, unknown shapes/solvers), kModel for model
/// validation failures.
[[nodiscard]] Scenario parse_scenario(std::istream& in);

/// Parse a scenario from a file path.
[[nodiscard]] Scenario load_scenario(const std::string& path);

/// Parse from a string (tests).
[[nodiscard]] Scenario parse_scenario_string(const std::string& text);

}  // namespace xbar::config
