// Structural N1 x N2 crossbar (paper §2's switch, made concrete).
//
// Tracks per-port occupancy and the closed crosspoints of every active
// circuit.  Internally non-blocking: `try_connect` fails only when a named
// port is already busy.  `check_invariants` cross-verifies the port state
// against the crosspoint matrix and the circuit table — used by the
// fabric property tests under random churn.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fabric/switch_fabric.hpp"

namespace xbar::fabric {

class CrossbarFabric final : public SwitchFabric {
 public:
  /// Build an idle N1 x N2 crossbar.
  CrossbarFabric(unsigned n1, unsigned n2);

  [[nodiscard]] unsigned num_inputs() const noexcept override { return n1_; }
  [[nodiscard]] unsigned num_outputs() const noexcept override { return n2_; }

  using SwitchFabric::try_connect;  // keep the priority-aware overload
  [[nodiscard]] std::optional<CircuitId> try_connect(
      std::span<const unsigned> inputs,
      std::span<const unsigned> outputs) override;

  void release(CircuitId id) override;

  [[nodiscard]] bool input_busy(unsigned port) const override;
  [[nodiscard]] bool output_busy(unsigned port) const override;
  [[nodiscard]] unsigned free_inputs() const noexcept override;
  [[nodiscard]] unsigned free_outputs() const noexcept override;
  [[nodiscard]] unsigned active_circuits() const noexcept override;
  [[nodiscard]] std::string name() const override;

  /// True if crosspoint (input, output) is closed (carrying light).
  [[nodiscard]] bool crosspoint_closed(unsigned input, unsigned output) const;

  /// Exhaustive internal consistency check (ports vs crosspoints vs circuit
  /// table); returns false and leaves diagnostics to the caller on breakage.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Circuit {
    std::vector<unsigned> inputs;
    std::vector<unsigned> outputs;
  };

  [[nodiscard]] std::size_t xp_index(unsigned input, unsigned output) const {
    return static_cast<std::size_t>(input) * n2_ + output;
  }

  unsigned n1_;
  unsigned n2_;
  std::vector<std::uint8_t> input_busy_;   // per input port
  std::vector<std::uint8_t> output_busy_;  // per output port
  std::vector<std::uint8_t> crosspoint_;   // n1*n2 matrix
  std::unordered_map<std::uint64_t, Circuit> circuits_;
  std::uint64_t next_id_ = 1;
  unsigned busy_inputs_ = 0;
  unsigned busy_outputs_ = 0;
};

}  // namespace xbar::fabric
