// Approximate analytic model of the banyan under circuit-switched traffic —
// the paper's stated future work ("extending this analysis to asynchronous
// all-optical multi-stage networks"), delivered as a C. Y. Lee-style
// link-independence fixed point.
//
// Model: an N x N omega network (S = log2 N stages) offered single-port
// Poisson circuit requests at total rate Lambda (class-level), holding time
// 1/mu, blocked-calls-cleared.  With E established circuits:
//
//   * every circuit occupies its input, its output, and one link in each
//     of the S-1 intermediate link columns;
//   * under uniform traffic each port/link is busy with probability E/N;
//   * Lee's independence assumption: a request is accepted iff its input,
//     its output and its S-1 intermediate links are all free, treated as
//     independent events:
//
//       A(E) = (1 - E/N)^2 (1 - E/N)^(S-1)
//
//   * flow balance Lambda A(E) = E mu fixes E; blocking = 1 - A(E).
//
// The same machinery with S = 1 (no intermediate links) is the analogous
// single-path approximation of the crossbar, so the bench can show both
// the banyan approximation quality and what Lee's method loses vs the
// paper's exact two-sided analysis.

#pragma once

namespace xbar::fabric {

/// Result of the Lee fixed point.
struct LeeResult {
  double carried = 0.0;      ///< E: mean established circuits
  double blocking = 0.0;     ///< 1 - A(E)
  double link_load = 0.0;    ///< E/N: per-port/per-link occupancy
  int iterations = 0;        ///< fixed-point iterations used
  bool converged = false;
};

/// Parameters of the Lee approximation.
struct LeeParams {
  unsigned ports = 8;        ///< N (power of two for a real banyan)
  unsigned stages = 3;       ///< S = log2 N for the omega network
  double arrival_rate = 1.0; ///< Lambda: total circuit request rate
  double mu = 1.0;           ///< holding rate
};

/// Solve the Lee fixed point E = (Lambda/mu) A(E) by damped iteration.
[[nodiscard]] LeeResult solve_lee(const LeeParams& params,
                                  double tolerance = 1e-12,
                                  int max_iterations = 10000);

/// Convenience: Lee approximation for an N x N omega network carrying a
/// single a = 1 Poisson class with the crossbar model's tilde load rho~
/// (class-level arrival rate Lambda = rho~ * N * mu, matching the
/// crossbar's empty-switch offered rate).
[[nodiscard]] LeeResult lee_banyan(unsigned n, double rho_tilde,
                                   double mu = 1.0);

/// The same approximation with no intermediate stages (S = 1): Lee's view
/// of the crossbar itself, for calibrating the method's baseline error.
[[nodiscard]] LeeResult lee_crossbar(unsigned n, double rho_tilde,
                                     double mu = 1.0);

}  // namespace xbar::fabric
