// Banyan (omega) multistage interconnection network.
//
// The paper's introduction motivates the crossbar against multistage
// networks: an N x N omega network uses log2(N) stages of 2x2 crossbars
// (O(N log N) crosspoints vs the crossbar's O(N^2)) but pays for it with
// *internal* blocking — two circuits can conflict on a shared inter-stage
// link even when all four end ports are idle.  `BanyanFabric` implements the
// classic destination-tag-routed omega network so the simulator can quantify
// that trade-off under the same offered traffic (bench/multistage_compare).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fabric/switch_fabric.hpp"

namespace xbar::fabric {

class BanyanFabric final : public SwitchFabric {
 public:
  /// Build an idle N x N omega network; N must be a power of two >= 2.
  explicit BanyanFabric(unsigned n);

  [[nodiscard]] unsigned num_inputs() const noexcept override { return n_; }
  [[nodiscard]] unsigned num_outputs() const noexcept override { return n_; }

  using SwitchFabric::try_connect;  // keep the priority-aware overload
  [[nodiscard]] std::optional<CircuitId> try_connect(
      std::span<const unsigned> inputs,
      std::span<const unsigned> outputs) override;

  void release(CircuitId id) override;

  [[nodiscard]] bool input_busy(unsigned port) const override;
  [[nodiscard]] bool output_busy(unsigned port) const override;
  [[nodiscard]] unsigned free_inputs() const noexcept override;
  [[nodiscard]] unsigned free_outputs() const noexcept override;
  [[nodiscard]] unsigned active_circuits() const noexcept override;
  [[nodiscard]] std::string name() const override;

  /// Number of 2x2 switching stages (log2 N).
  [[nodiscard]] unsigned num_stages() const noexcept { return stages_; }

  /// The unique omega path of (src -> dst) as the sequence of stage-output
  /// link positions (one entry per stage).  Pure topology; no state change.
  [[nodiscard]] std::vector<unsigned> route(unsigned src, unsigned dst) const;

  /// Rejections caused by a busy end port.
  [[nodiscard]] std::uint64_t rejected_port() const noexcept {
    return rejected_port_;
  }

  /// Rejections caused by an internal link conflict while all end ports
  /// were free — the blocking mode the crossbar does not have.
  [[nodiscard]] std::uint64_t rejected_internal() const noexcept {
    return rejected_internal_;
  }

  /// Internal consistency check (link occupancy vs circuit table).
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Circuit {
    std::vector<unsigned> inputs;
    std::vector<unsigned> outputs;
    std::vector<unsigned> links;  // stages_ entries per port pair
  };

  /// Perfect shuffle on `stages_`-bit positions: rotate left one bit.
  [[nodiscard]] unsigned shuffle(unsigned p) const noexcept {
    return ((p << 1) | (p >> (stages_ - 1))) & (n_ - 1);
  }

  [[nodiscard]] std::size_t link_index(unsigned stage, unsigned pos) const {
    return static_cast<std::size_t>(stage) * n_ + pos;
  }

  unsigned n_;
  unsigned stages_;
  std::vector<std::uint8_t> input_busy_;
  std::vector<std::uint8_t> output_busy_;
  std::vector<std::uint8_t> link_busy_;  // stages_ x n_
  std::unordered_map<std::uint64_t, Circuit> circuits_;
  std::uint64_t next_id_ = 1;
  unsigned busy_inputs_ = 0;
  unsigned busy_outputs_ = 0;
  std::uint64_t rejected_port_ = 0;
  std::uint64_t rejected_internal_ = 0;
};

}  // namespace xbar::fabric
