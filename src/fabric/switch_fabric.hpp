// Abstract circuit-switching fabric interface.
//
// The analytical model abstracts the switch to "a_r free inputs AND a_r free
// outputs"; the fabric layer gives it a concrete body so the discrete-event
// simulator can exercise real admission and teardown.  Two implementations:
//
//   * `CrossbarFabric`   — N1 x N2 crosspoint matrix, internally non-blocking
//     (the paper's switch: a request fails only due to busy ports).
//   * `BanyanFabric`     — log2(N)-stage delta network of 2x2 elements with
//     internal link blocking (the multistage alternative the paper's
//     introduction compares against).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace xbar::fabric {

/// Opaque handle to an established circuit.
struct CircuitId {
  std::uint64_t value = 0;
  friend bool operator==(const CircuitId&, const CircuitId&) = default;
};

/// A circuit-switching fabric: ports, admission, teardown.
class SwitchFabric {
 public:
  virtual ~SwitchFabric() = default;

  /// Number of input ports.
  [[nodiscard]] virtual unsigned num_inputs() const noexcept = 0;

  /// Number of output ports.
  [[nodiscard]] virtual unsigned num_outputs() const noexcept = 0;

  /// Attempt to establish a circuit bundle connecting inputs[i] -> outputs[i]
  /// for every i.  Port lists must be duplicate-free and in range.  Returns
  /// nullopt if any port is busy or (for blocking fabrics) no internal path
  /// exists; on failure the fabric state is unchanged (all-or-nothing).
  [[nodiscard]] virtual std::optional<CircuitId> try_connect(
      std::span<const unsigned> inputs, std::span<const unsigned> outputs) = 0;

  /// Priority-aware admission: `priority` is the requester's arbitration
  /// rank (0 = highest; the simulator passes the traffic-class index).
  /// Fabrics without an arbiter ignore it — the default forwards to the
  /// two-argument overload.
  [[nodiscard]] virtual std::optional<CircuitId> try_connect(
      std::span<const unsigned> inputs, std::span<const unsigned> outputs,
      unsigned priority) {
    (void)priority;
    return try_connect(inputs, outputs);
  }

  /// Tear down a previously established circuit.  Unknown ids are a
  /// precondition violation.
  virtual void release(CircuitId id) = 0;

  /// True if the input port is currently part of a circuit.
  [[nodiscard]] virtual bool input_busy(unsigned port) const = 0;

  /// True if the output port is currently part of a circuit.
  [[nodiscard]] virtual bool output_busy(unsigned port) const = 0;

  /// Number of idle input ports.
  [[nodiscard]] virtual unsigned free_inputs() const noexcept = 0;

  /// Number of idle output ports.
  [[nodiscard]] virtual unsigned free_outputs() const noexcept = 0;

  /// Number of circuits currently established.
  [[nodiscard]] virtual unsigned active_circuits() const noexcept = 0;

  /// Implementation name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace xbar::fabric
