#include "fabric/lee_model.hpp"

#include <cassert>
#include <cmath>

namespace xbar::fabric {

LeeResult solve_lee(const LeeParams& params, double tolerance,
                    int max_iterations) {
  assert(params.ports > 0);
  assert(params.mu > 0.0);
  const double n = params.ports;
  const double offered = params.arrival_rate / params.mu;
  // Acceptance probability given E circuits in progress: input free,
  // output free, S-1 intermediate links free, all independent with
  // occupancy E/N.
  const auto acceptance = [&](double e) {
    const double free = 1.0 - std::min(e / n, 1.0);
    return std::pow(free, 2.0 + static_cast<double>(params.stages) - 1.0);
  };

  LeeResult result;
  double e = std::min(offered, n * 0.5);  // any start in [0, N)
  for (int i = 0; i < max_iterations; ++i) {
    const double target = offered * acceptance(e);
    const double next = 0.5 * (e + std::min(target, n));  // damped
    result.iterations = i + 1;
    if (std::fabs(next - e) < tolerance * (1.0 + e)) {
      e = next;
      result.converged = true;
      break;
    }
    e = next;
  }
  result.carried = e;
  result.link_load = e / n;
  result.blocking = 1.0 - acceptance(e);
  return result;
}

namespace {

unsigned log2_ceil(unsigned v) noexcept {
  unsigned bits = 0;
  while ((1u << bits) < v) {
    ++bits;
  }
  return bits;
}

}  // namespace

LeeResult lee_banyan(unsigned n, double rho_tilde, double mu) {
  LeeParams params;
  params.ports = n;
  params.stages = log2_ceil(n);
  params.arrival_rate = rho_tilde * static_cast<double>(n) * mu;
  params.mu = mu;
  return solve_lee(params);
}

LeeResult lee_crossbar(unsigned n, double rho_tilde, double mu) {
  LeeParams params;
  params.ports = n;
  params.stages = 1;  // no intermediate links: input + output only
  params.arrival_rate = rho_tilde * static_cast<double>(n) * mu;
  params.mu = mu;
  return solve_lee(params);
}

}  // namespace xbar::fabric
