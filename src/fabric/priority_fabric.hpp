// Fixed-priority arbitrated crossbar (Mandal et al., made structural).
//
// A plain crossbar behind a priority arbiter: a request of arbitration
// rank p (0 = highest) is admitted only if, after admission, at least
// p * reservation_step port pairs of headroom remain for higher ranks —
//
//     busy_pairs + bundle <= cap - p * reservation_step,
//
// cap = min(N1, N2).  Requests that pass the gate are then subject to the
// crossbar's ordinary port-availability check.  This is the process the
// exact CTMC in `core::PriorityCtmcSolver` solves, which is what the
// simulator cross-validates.  The two-argument `try_connect` is rank 0
// (an unarbitrated request).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "fabric/crossbar.hpp"
#include "fabric/switch_fabric.hpp"

namespace xbar::fabric {

class PriorityFabric final : public SwitchFabric {
 public:
  /// Build an idle N1 x N2 arbitrated crossbar.  Rank p reserves
  /// p * reservation_step port pairs (step 0 = plain crossbar).
  PriorityFabric(unsigned n1, unsigned n2, unsigned reservation_step = 1);

  [[nodiscard]] unsigned num_inputs() const noexcept override {
    return inner_.num_inputs();
  }
  [[nodiscard]] unsigned num_outputs() const noexcept override {
    return inner_.num_outputs();
  }

  [[nodiscard]] std::optional<CircuitId> try_connect(
      std::span<const unsigned> inputs,
      std::span<const unsigned> outputs) override;

  [[nodiscard]] std::optional<CircuitId> try_connect(
      std::span<const unsigned> inputs, std::span<const unsigned> outputs,
      unsigned priority) override;

  void release(CircuitId id) override;

  [[nodiscard]] bool input_busy(unsigned port) const override {
    return inner_.input_busy(port);
  }
  [[nodiscard]] bool output_busy(unsigned port) const override {
    return inner_.output_busy(port);
  }
  [[nodiscard]] unsigned free_inputs() const noexcept override {
    return inner_.free_inputs();
  }
  [[nodiscard]] unsigned free_outputs() const noexcept override {
    return inner_.free_outputs();
  }
  [[nodiscard]] unsigned active_circuits() const noexcept override {
    return inner_.active_circuits();
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] unsigned reservation_step() const noexcept { return step_; }

  /// Port pairs currently held across all circuits.
  [[nodiscard]] unsigned busy_pairs() const noexcept { return busy_pairs_; }

  /// Requests refused by the arbiter gate (ports may have been free).
  [[nodiscard]] std::uint64_t arbiter_rejections() const noexcept {
    return arbiter_rejections_;
  }

 private:
  CrossbarFabric inner_;
  unsigned cap_;
  unsigned step_;
  unsigned busy_pairs_ = 0;
  std::uint64_t arbiter_rejections_ = 0;
  std::unordered_map<std::uint64_t, unsigned> bundle_size_;
};

}  // namespace xbar::fabric
