#include "fabric/speedup_fabric.hpp"

#include <cassert>
#include <stdexcept>

namespace xbar::fabric {

SpeedupFabric::SpeedupFabric(unsigned n1, unsigned n2, unsigned speedup)
    : n1_(n1),
      n2_(n2),
      s_(speedup),
      input_busy_(static_cast<std::size_t>(n1) * speedup, 0),
      output_busy_(static_cast<std::size_t>(n2) * speedup, 0) {
  if (n1 == 0 || n2 == 0) {
    throw std::invalid_argument("SpeedupFabric: dimensions must be positive");
  }
  if (speedup == 0) {
    throw std::invalid_argument("SpeedupFabric: speedup must be positive");
  }
}

std::optional<CircuitId> SpeedupFabric::try_connect(
    std::span<const unsigned> inputs, std::span<const unsigned> outputs) {
  assert(inputs.size() == outputs.size());
  assert(!inputs.empty());
  // All-or-nothing admission over virtual ports: check before touching
  // state.  The per-port mux makes any free input appearance reachable
  // from any free output appearance, so no path check is needed.
  for (const unsigned in : inputs) {
    assert(in < num_inputs());
    if (input_busy_[in]) {
      return std::nullopt;
    }
  }
  for (const unsigned out : outputs) {
    assert(out < num_outputs());
    if (output_busy_[out]) {
      return std::nullopt;
    }
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    input_busy_[inputs[i]] = 1;
    output_busy_[outputs[i]] = 1;
  }
  busy_inputs_ += static_cast<unsigned>(inputs.size());
  busy_outputs_ += static_cast<unsigned>(outputs.size());
  const CircuitId id{next_id_++};
  circuits_.emplace(id.value,
                    Circuit{{inputs.begin(), inputs.end()},
                            {outputs.begin(), outputs.end()}});
  return id;
}

void SpeedupFabric::release(CircuitId id) {
  const auto it = circuits_.find(id.value);
  if (it == circuits_.end()) {
    throw std::logic_error("SpeedupFabric::release: unknown circuit id");
  }
  const Circuit& c = it->second;
  for (std::size_t i = 0; i < c.inputs.size(); ++i) {
    input_busy_[c.inputs[i]] = 0;
    output_busy_[c.outputs[i]] = 0;
  }
  busy_inputs_ -= static_cast<unsigned>(c.inputs.size());
  busy_outputs_ -= static_cast<unsigned>(c.outputs.size());
  circuits_.erase(it);
}

bool SpeedupFabric::input_busy(unsigned port) const {
  assert(port < num_inputs());
  return input_busy_[port] != 0;
}

bool SpeedupFabric::output_busy(unsigned port) const {
  assert(port < num_outputs());
  return output_busy_[port] != 0;
}

unsigned SpeedupFabric::free_inputs() const noexcept {
  return num_inputs() - busy_inputs_;
}

unsigned SpeedupFabric::free_outputs() const noexcept {
  return num_outputs() - busy_outputs_;
}

unsigned SpeedupFabric::active_circuits() const noexcept {
  return static_cast<unsigned>(circuits_.size());
}

std::string SpeedupFabric::name() const {
  return "speedup-" + std::to_string(s_) + "(" + std::to_string(n1_) + "x" +
         std::to_string(n2_) + ")";
}

unsigned SpeedupFabric::input_load(unsigned physical_port) const {
  assert(physical_port < n1_);
  unsigned load = 0;
  for (unsigned plane = 0; plane < s_; ++plane) {
    load += input_busy_[static_cast<std::size_t>(plane) * n1_ + physical_port];
  }
  return load;
}

unsigned SpeedupFabric::output_load(unsigned physical_port) const {
  assert(physical_port < n2_);
  unsigned load = 0;
  for (unsigned plane = 0; plane < s_; ++plane) {
    load += output_busy_[static_cast<std::size_t>(plane) * n2_ + physical_port];
  }
  return load;
}

bool SpeedupFabric::check_invariants() const {
  std::vector<std::uint8_t> in_expect(input_busy_.size(), 0);
  std::vector<std::uint8_t> out_expect(output_busy_.size(), 0);
  for (const auto& [id, c] : circuits_) {
    if (c.inputs.size() != c.outputs.size() || c.inputs.empty()) {
      return false;
    }
    for (std::size_t i = 0; i < c.inputs.size(); ++i) {
      if (c.inputs[i] >= input_busy_.size() ||
          c.outputs[i] >= output_busy_.size()) {
        return false;
      }
      if (in_expect[c.inputs[i]] || out_expect[c.outputs[i]]) {
        return false;  // two circuits share a virtual port
      }
      in_expect[c.inputs[i]] = 1;
      out_expect[c.outputs[i]] = 1;
    }
  }
  unsigned busy_in = 0;
  unsigned busy_out = 0;
  for (std::size_t p = 0; p < in_expect.size(); ++p) {
    busy_in += in_expect[p];
  }
  for (std::size_t p = 0; p < out_expect.size(); ++p) {
    busy_out += out_expect[p];
  }
  return in_expect == input_busy_ && out_expect == output_busy_ &&
         busy_in == busy_inputs_ && busy_out == busy_outputs_;
}

}  // namespace xbar::fabric
