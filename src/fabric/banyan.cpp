#include "fabric/banyan.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace xbar::fabric {

namespace {

bool is_power_of_two(unsigned v) noexcept { return v >= 2 && (v & (v - 1)) == 0; }

unsigned log2_exact(unsigned v) noexcept {
  unsigned bits = 0;
  while ((1u << bits) < v) {
    ++bits;
  }
  return bits;
}

}  // namespace

BanyanFabric::BanyanFabric(unsigned n)
    : n_(n),
      stages_(log2_exact(n)),
      input_busy_(n, 0),
      output_busy_(n, 0) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("BanyanFabric: N must be a power of two >= 2");
  }
  link_busy_.assign(static_cast<std::size_t>(stages_) * n_, 0);
}

std::vector<unsigned> BanyanFabric::route(unsigned src, unsigned dst) const {
  assert(src < n_ && dst < n_);
  std::vector<unsigned> links;
  links.reserve(stages_);
  unsigned p = src;
  for (unsigned s = 0; s < stages_; ++s) {
    p = shuffle(p);
    // Destination-tag routing: the stage-s element forwards to its upper or
    // lower output according to bit (stages - 1 - s) of the destination.
    const unsigned bit = (dst >> (stages_ - 1 - s)) & 1u;
    p = (p & ~1u) | bit;
    links.push_back(p);
  }
  assert(p == dst);  // omega networks deliver to the destination by design
  return links;
}

std::optional<CircuitId> BanyanFabric::try_connect(
    std::span<const unsigned> inputs, std::span<const unsigned> outputs) {
  assert(inputs.size() == outputs.size());
  assert(!inputs.empty());
  for (const unsigned in : inputs) {
    assert(in < n_);
    if (input_busy_[in]) {
      ++rejected_port_;
      return std::nullopt;
    }
  }
  for (const unsigned out : outputs) {
    assert(out < n_);
    if (output_busy_[out]) {
      ++rejected_port_;
      return std::nullopt;
    }
  }
  // All end ports free: any failure from here on is internal blocking.
  std::vector<unsigned> links;
  links.reserve(inputs.size() * stages_);
  std::vector<std::uint8_t> claimed(link_busy_.size(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto path = route(inputs[i], outputs[i]);
    for (unsigned s = 0; s < stages_; ++s) {
      const std::size_t li = link_index(s, path[s]);
      if (link_busy_[li] || claimed[li]) {
        ++rejected_internal_;
        return std::nullopt;
      }
      claimed[li] = 1;
      links.push_back(path[s]);
    }
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    input_busy_[inputs[i]] = 1;
    output_busy_[outputs[i]] = 1;
    for (unsigned s = 0; s < stages_; ++s) {
      link_busy_[link_index(s, links[i * stages_ + s])] = 1;
    }
  }
  busy_inputs_ += static_cast<unsigned>(inputs.size());
  busy_outputs_ += static_cast<unsigned>(outputs.size());
  const CircuitId id{next_id_++};
  circuits_.emplace(id.value, Circuit{{inputs.begin(), inputs.end()},
                                      {outputs.begin(), outputs.end()},
                                      std::move(links)});
  return id;
}

void BanyanFabric::release(CircuitId id) {
  const auto it = circuits_.find(id.value);
  if (it == circuits_.end()) {
    throw std::logic_error("BanyanFabric::release: unknown circuit id");
  }
  const Circuit& c = it->second;
  for (std::size_t i = 0; i < c.inputs.size(); ++i) {
    input_busy_[c.inputs[i]] = 0;
    output_busy_[c.outputs[i]] = 0;
    for (unsigned s = 0; s < stages_; ++s) {
      link_busy_[link_index(s, c.links[i * stages_ + s])] = 0;
    }
  }
  busy_inputs_ -= static_cast<unsigned>(c.inputs.size());
  busy_outputs_ -= static_cast<unsigned>(c.outputs.size());
  circuits_.erase(it);
}

bool BanyanFabric::input_busy(unsigned port) const {
  assert(port < n_);
  return input_busy_[port] != 0;
}

bool BanyanFabric::output_busy(unsigned port) const {
  assert(port < n_);
  return output_busy_[port] != 0;
}

unsigned BanyanFabric::free_inputs() const noexcept {
  return n_ - busy_inputs_;
}

unsigned BanyanFabric::free_outputs() const noexcept {
  return n_ - busy_outputs_;
}

unsigned BanyanFabric::active_circuits() const noexcept {
  return static_cast<unsigned>(circuits_.size());
}

std::string BanyanFabric::name() const {
  return "banyan(" + std::to_string(n_) + "x" + std::to_string(n_) + ", " +
         std::to_string(stages_) + " stages)";
}

bool BanyanFabric::check_invariants() const {
  std::vector<std::uint8_t> in_expect(n_, 0);
  std::vector<std::uint8_t> out_expect(n_, 0);
  std::vector<std::uint8_t> link_expect(link_busy_.size(), 0);
  for (const auto& [id, c] : circuits_) {
    if (c.inputs.size() != c.outputs.size() ||
        c.links.size() != c.inputs.size() * stages_) {
      return false;
    }
    for (std::size_t i = 0; i < c.inputs.size(); ++i) {
      if (in_expect[c.inputs[i]] || out_expect[c.outputs[i]]) {
        return false;
      }
      in_expect[c.inputs[i]] = 1;
      out_expect[c.outputs[i]] = 1;
      // The recorded links must match the topology's unique path.
      const auto path = route(c.inputs[i], c.outputs[i]);
      for (unsigned s = 0; s < stages_; ++s) {
        if (path[s] != c.links[i * stages_ + s]) {
          return false;
        }
        const std::size_t li = link_index(s, path[s]);
        if (link_expect[li]) {
          return false;  // two circuits share a link
        }
        link_expect[li] = 1;
      }
    }
  }
  return in_expect == input_busy_ && out_expect == output_busy_ &&
         link_expect == link_busy_;
}

}  // namespace xbar::fabric
