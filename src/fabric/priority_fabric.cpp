#include "fabric/priority_fabric.hpp"

#include <algorithm>
#include <cassert>

namespace xbar::fabric {

PriorityFabric::PriorityFabric(unsigned n1, unsigned n2,
                               unsigned reservation_step)
    : inner_(n1, n2), cap_(std::min(n1, n2)), step_(reservation_step) {}

std::optional<CircuitId> PriorityFabric::try_connect(
    std::span<const unsigned> inputs, std::span<const unsigned> outputs) {
  return try_connect(inputs, outputs, 0);
}

std::optional<CircuitId> PriorityFabric::try_connect(
    std::span<const unsigned> inputs, std::span<const unsigned> outputs,
    unsigned priority) {
  assert(inputs.size() == outputs.size());
  const auto bundle = static_cast<unsigned>(inputs.size());
  const unsigned reserved = std::min(priority * step_, cap_);
  // Arbiter gate first: leave `reserved` pairs of headroom for higher
  // ranks.  Only then does the crossbar's port check run.
  if (busy_pairs_ + bundle > cap_ - reserved) {
    ++arbiter_rejections_;
    return std::nullopt;
  }
  const auto id = inner_.try_connect(inputs, outputs);
  if (id) {
    busy_pairs_ += bundle;
    bundle_size_.emplace(id->value, bundle);
  }
  return id;
}

void PriorityFabric::release(CircuitId id) {
  inner_.release(id);  // throws on unknown ids before we touch our state
  const auto it = bundle_size_.find(id.value);
  assert(it != bundle_size_.end());
  busy_pairs_ -= it->second;
  bundle_size_.erase(it);
}

std::string PriorityFabric::name() const {
  return "priority(" + std::to_string(inner_.num_inputs()) + "x" +
         std::to_string(inner_.num_outputs()) +
         ",step=" + std::to_string(step_) + ")";
}

}  // namespace xbar::fabric
