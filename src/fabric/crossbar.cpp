#include "fabric/crossbar.hpp"

#include <cassert>
#include <stdexcept>

namespace xbar::fabric {

CrossbarFabric::CrossbarFabric(unsigned n1, unsigned n2)
    : n1_(n1),
      n2_(n2),
      input_busy_(n1, 0),
      output_busy_(n2, 0),
      crosspoint_(static_cast<std::size_t>(n1) * n2, 0) {
  if (n1 == 0 || n2 == 0) {
    throw std::invalid_argument("CrossbarFabric: dimensions must be positive");
  }
}

std::optional<CircuitId> CrossbarFabric::try_connect(
    std::span<const unsigned> inputs, std::span<const unsigned> outputs) {
  assert(inputs.size() == outputs.size());
  assert(!inputs.empty());
  // All-or-nothing admission: check everything before touching state.
  for (const unsigned in : inputs) {
    assert(in < n1_);
    if (input_busy_[in]) {
      return std::nullopt;
    }
  }
  for (const unsigned out : outputs) {
    assert(out < n2_);
    if (output_busy_[out]) {
      return std::nullopt;
    }
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    input_busy_[inputs[i]] = 1;
    output_busy_[outputs[i]] = 1;
    crosspoint_[xp_index(inputs[i], outputs[i])] = 1;
  }
  busy_inputs_ += static_cast<unsigned>(inputs.size());
  busy_outputs_ += static_cast<unsigned>(outputs.size());
  const CircuitId id{next_id_++};
  circuits_.emplace(id.value,
                    Circuit{{inputs.begin(), inputs.end()},
                            {outputs.begin(), outputs.end()}});
  return id;
}

void CrossbarFabric::release(CircuitId id) {
  const auto it = circuits_.find(id.value);
  if (it == circuits_.end()) {
    throw std::logic_error("CrossbarFabric::release: unknown circuit id");
  }
  const Circuit& c = it->second;
  for (std::size_t i = 0; i < c.inputs.size(); ++i) {
    input_busy_[c.inputs[i]] = 0;
    output_busy_[c.outputs[i]] = 0;
    crosspoint_[xp_index(c.inputs[i], c.outputs[i])] = 0;
  }
  busy_inputs_ -= static_cast<unsigned>(c.inputs.size());
  busy_outputs_ -= static_cast<unsigned>(c.outputs.size());
  circuits_.erase(it);
}

bool CrossbarFabric::input_busy(unsigned port) const {
  assert(port < n1_);
  return input_busy_[port] != 0;
}

bool CrossbarFabric::output_busy(unsigned port) const {
  assert(port < n2_);
  return output_busy_[port] != 0;
}

unsigned CrossbarFabric::free_inputs() const noexcept {
  return n1_ - busy_inputs_;
}

unsigned CrossbarFabric::free_outputs() const noexcept {
  return n2_ - busy_outputs_;
}

unsigned CrossbarFabric::active_circuits() const noexcept {
  return static_cast<unsigned>(circuits_.size());
}

std::string CrossbarFabric::name() const {
  return "crossbar(" + std::to_string(n1_) + "x" + std::to_string(n2_) + ")";
}

bool CrossbarFabric::crosspoint_closed(unsigned input, unsigned output) const {
  assert(input < n1_ && output < n2_);
  return crosspoint_[xp_index(input, output)] != 0;
}

bool CrossbarFabric::check_invariants() const {
  // Rebuild the expected port/crosspoint state from the circuit table.
  std::vector<std::uint8_t> in_expect(n1_, 0);
  std::vector<std::uint8_t> out_expect(n2_, 0);
  std::vector<std::uint8_t> xp_expect(crosspoint_.size(), 0);
  for (const auto& [id, c] : circuits_) {
    if (c.inputs.size() != c.outputs.size() || c.inputs.empty()) {
      return false;
    }
    for (std::size_t i = 0; i < c.inputs.size(); ++i) {
      if (c.inputs[i] >= n1_ || c.outputs[i] >= n2_) {
        return false;
      }
      if (in_expect[c.inputs[i]] || out_expect[c.outputs[i]]) {
        return false;  // two circuits share a port
      }
      in_expect[c.inputs[i]] = 1;
      out_expect[c.outputs[i]] = 1;
      xp_expect[xp_index(c.inputs[i], c.outputs[i])] = 1;
    }
  }
  unsigned busy_in = 0;
  unsigned busy_out = 0;
  for (unsigned p = 0; p < n1_; ++p) {
    if (in_expect[p] != input_busy_[p]) {
      return false;
    }
    busy_in += in_expect[p];
  }
  for (unsigned p = 0; p < n2_; ++p) {
    if (out_expect[p] != output_busy_[p]) {
      return false;
    }
    busy_out += out_expect[p];
  }
  return xp_expect == crosspoint_ && busy_in == busy_inputs_ &&
         busy_out == busy_outputs_;
}

}  // namespace xbar::fabric
