// Speedup-s replicated-crosspoint switch (Cogill–Lall speedup, made
// structural).
//
// Each physical port carries s independent circuit appearances: s crossbar
// planes with an s-way mux/demux at every port, so any free appearance of
// an input can reach any free appearance of an output.  The fabric
// therefore exposes s*N1 virtual inputs and s*N2 virtual outputs and is
// internally non-blocking over them — exactly the crossbar the analytical
// speedup model (`core::speedup_scaled_model`) solves, which is what lets
// the simulator cross-validate that model verbatim.  Virtual port v maps
// to physical port v % N and plane v / N.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fabric/switch_fabric.hpp"

namespace xbar::fabric {

class SpeedupFabric final : public SwitchFabric {
 public:
  /// Build an idle N1 x N2 switch with speedup s (s >= 1).
  SpeedupFabric(unsigned n1, unsigned n2, unsigned speedup);

  /// Virtual dimensions: every physical port appears `speedup` times.
  [[nodiscard]] unsigned num_inputs() const noexcept override {
    return n1_ * s_;
  }
  [[nodiscard]] unsigned num_outputs() const noexcept override {
    return n2_ * s_;
  }

  using SwitchFabric::try_connect;  // keep the priority-aware overload
  [[nodiscard]] std::optional<CircuitId> try_connect(
      std::span<const unsigned> inputs,
      std::span<const unsigned> outputs) override;

  void release(CircuitId id) override;

  [[nodiscard]] bool input_busy(unsigned port) const override;
  [[nodiscard]] bool output_busy(unsigned port) const override;
  [[nodiscard]] unsigned free_inputs() const noexcept override;
  [[nodiscard]] unsigned free_outputs() const noexcept override;
  [[nodiscard]] unsigned active_circuits() const noexcept override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] unsigned speedup() const noexcept { return s_; }

  /// Busy appearances of a physical input/output port (0..s).
  [[nodiscard]] unsigned input_load(unsigned physical_port) const;
  [[nodiscard]] unsigned output_load(unsigned physical_port) const;

  /// Port state vs circuit table consistency (property tests).
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Circuit {
    std::vector<unsigned> inputs;
    std::vector<unsigned> outputs;
  };

  unsigned n1_;
  unsigned n2_;
  unsigned s_;
  std::vector<std::uint8_t> input_busy_;   // per virtual input
  std::vector<std::uint8_t> output_busy_;  // per virtual output
  std::unordered_map<std::uint64_t, Circuit> circuits_;
  std::uint64_t next_id_ = 1;
  unsigned busy_inputs_ = 0;
  unsigned busy_outputs_ = 0;
};

}  // namespace xbar::fabric
