#include "service/signal.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <pthread.h>

#include "core/error.hpp"

namespace xbar::service {

namespace {

sigset_t drain_signal_set() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  return set;
}

}  // namespace

void install_drain_signals() {
  const sigset_t set = drain_signal_set();
  const int rc = ::pthread_sigmask(SIG_BLOCK, &set, nullptr);
  if (rc != 0) {
    raise(ErrorKind::kIo,
          std::string("pthread_sigmask(): ") + std::strerror(rc));
  }
}

int wait_for_drain_signal() {
  const sigset_t set = drain_signal_set();
  int signo = 0;
  for (;;) {
    const int rc = ::sigwait(&set, &signo);
    if (rc == 0) {
      return signo;
    }
    if (rc != EINTR) {
      raise(ErrorKind::kIo,
            std::string("sigwait(): ") + std::strerror(rc));
    }
  }
}

}  // namespace xbar::service
