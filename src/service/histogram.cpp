#include "service/histogram.hpp"

#include <cmath>

namespace xbar::service {

namespace {

// Bucket 0 holds everything below 1us; above that, four buckets per octave.
constexpr double kBaseSeconds = 1e-6;
constexpr double kBucketsPerOctave = 4.0;

}  // namespace

std::size_t Histogram::bucket_index(double seconds) noexcept {
  if (!(seconds > kBaseSeconds)) {
    return 0;
  }
  const double octaves = std::log2(seconds / kBaseSeconds);
  const auto index =
      static_cast<std::size_t>(octaves * kBucketsPerOctave) + 1;
  return index < kBuckets ? index : kBuckets - 1;
}

double Histogram::bucket_upper_edge(std::size_t index) noexcept {
  return kBaseSeconds *
         std::exp2(static_cast<double>(index) / kBucketsPerOctave);
}

void Histogram::record(double seconds) noexcept {
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double clamped = seconds > 0.0 ? seconds : 0.0;
  const auto ns = static_cast<std::uint64_t>(clamped * 1e9);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target) {
      return bucket_upper_edge(i);
    }
  }
  return bucket_upper_edge(kBuckets - 1);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.mean = static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
             static_cast<double>(s.count) * 1e-9;
  }
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  s.max =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

}  // namespace xbar::service
