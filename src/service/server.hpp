// xbar_serve's engine: a long-lived concurrent evaluation server.
//
// Architecture (one box per thread kind):
//
//   acceptor ──> bounded connection queue ──> worker 0..W-1
//      │                (admission)               │
//      │  queue full: typed "overloaded"          │ per request:
//      │  response + close — never unbounded      │   parse (protocol)
//      │  buffering                               │   result-cache lookup
//      └─ poll()s a drain pipe, so request_       │   solve on the shared
//         drain() stops accepting immediately     │   sweep::ThreadPool via
//                                                 │   a worker SolverCache
//                                                 │   / SweepRunner
//                                                 │   respond, record stats
//
// Reuse story, end to end: requests are parsed with report/json_reader,
// validated into a SolverSpec + CrossbarModel by service/protocol, solved
// through the same SolverCache / SweepRunner machinery the CLI sweeps
// use (per-worker caches persist across requests, so repeated grids are
// warm even when the result cache is bypassed), guarded by
// core::validate_measures via the sweep engine's fault isolation, and
// cancelled by the same CancellationToken deadline plumbing.  What is new
// here is the serving shape: the sharded result cache (completed answers
// shared across workers), admission control, per-request deadlines, and
// graceful drain — on request_drain() the acceptor closes the listen
// socket, workers finish every accepted connection's in-flight requests,
// idle connections are closed at the next poll tick, and wait() returns.
//
// Thread safety: the Server object may be started once; stats() and
// request_drain() are safe from any thread at any time.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "advisor/advisor.hpp"
#include "service/connection.hpp"
#include "service/histogram.hpp"
#include "service/overload.hpp"
#include "service/protocol.hpp"
#include "service/result_cache.hpp"

namespace xbar::service {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())

  /// Worker threads (each serves one connection at a time).  0 = one per
  /// hardware thread.
  unsigned workers = 0;

  /// Admission control: accepted connections waiting for a worker beyond
  /// this bound are answered with a typed "overloaded" error and closed.
  std::size_t queue_capacity = 128;

  std::size_t cache_shards = 8;            ///< result-cache shards
  std::size_t cache_entries_per_shard = 64;
  std::size_t solver_cache_entries = 8;    ///< per-worker SolverCache grids
  std::size_t max_line_bytes = 1 << 20;    ///< request frame cap

  /// Applied when a request carries no deadline_ms of its own (0 = none).
  double default_deadline_ms = 0.0;

  /// Granularity at which parked readers re-check the drain flag; also the
  /// bound on how long an idle connection can delay wait().
  double idle_poll_seconds = 0.25;

  /// Slow-reader protection: a response send that cannot make progress for
  /// this long (peer stopped draining) disconnects the peer instead of
  /// blocking the worker forever.  0 = block indefinitely (pre-hardening
  /// behavior; not recommended).
  double send_timeout_seconds = 5.0;

  /// Connections idle (no complete request) this long are reaped so a
  /// silent peer cannot pin a worker forever.  0 = never reap.
  double idle_timeout_seconds = 0.0;

  /// Per-connection budgets: after this many requests / request bytes the
  /// connection is closed (clients redial), recycling worker assignment
  /// under sustained load.  0 = unlimited.
  std::size_t max_requests_per_connection = 0;
  std::size_t max_bytes_per_connection = 0;

  /// Clamp SO_SNDBUF on accepted connections (0 = kernel default).  Small
  /// values make slow-reader detection deterministic in tests.
  int send_buffer_bytes = 0;

  /// Streaming capacity advisor (ROADMAP item 2).  When set, the server
  /// accepts the `observe` (trace ingestion) and `advise` (current
  /// recommendation) methods, and — with `advisor->enact` — denies
  /// observed connections whose class the revenue economics mark not
  /// worth admitting.  Unset: both methods answer kConfig.
  std::optional<advisor::AdvisorConfig> advisor;

  /// Adaptive overload control + degradation ladder (service/overload.hpp).
  /// When set, an AIMD concurrency limit becomes the primary admission
  /// signal (the static queue bound stays as the hard backstop) and the
  /// request path serves stale / bound-only / shed responses as pressure
  /// rises.  Unset: the pre-overload behavior, every frame byte-identical.
  std::optional<OverloadConfig> overload;
};

/// One row of the `stats` frame's per-class traffic section: offered and
/// blocked arrivals, mean inter-arrival, mean hold.  Fed by `observe`
/// ingestion (trace classes, trace seconds) and by the request tap (every
/// served request under the pseudo-class "method:<name>", arrival on the
/// server clock, hold = request latency).
struct ClassTrafficSnapshot {
  std::string name;
  std::uint64_t offered = 0;
  std::uint64_t blocked = 0;
  double mean_interarrival_seconds = 0.0;
  double mean_hold_seconds = 0.0;
};

/// Thread-safe per-class ledger behind the traffic section.  Class count
/// is protocol-bounded and small, so a flat vector under one mutex is
/// cheaper than anything sharded.
class TrafficLedger {
 public:
  void record(std::string_view name, double arrival_time, double hold,
              bool blocked);
  [[nodiscard]] std::vector<ClassTrafficSnapshot> snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::uint64_t offered = 0;
    std::uint64_t blocked = 0;
    double hold_sum = 0.0;
    std::uint64_t hold_count = 0;
    double last_arrival = 0.0;
    double interarrival_sum = 0.0;
    std::uint64_t interarrival_count = 0;
  };
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // first-seen order
};

/// Point-in-time operational stats (the `stats` method renders exactly
/// this).
struct StatsSnapshot {
  double uptime_seconds = 0.0;
  bool draining = false;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t overload_rejections = 0;
  std::uint64_t requests_total = 0;
  std::array<std::uint64_t, kMethodCount> by_method{};
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;    ///< typed toolkit errors (parse/config/...)
  std::uint64_t deadlines = 0;
  // Connection-level fault counters (the hardening layer's scoreboard).
  std::uint64_t slow_reader_disconnects = 0;
  std::uint64_t idle_disconnects = 0;
  std::uint64_t budget_disconnects = 0;
  ResultCacheCounters cache;
  Histogram::Snapshot latency;
  std::vector<ClassTrafficSnapshot> traffic;  ///< per-class counters
  bool advisor_enabled = false;
  std::uint64_t advisor_events = 0;  ///< events ingested via observe
  std::uint64_t advisor_denied = 0;  ///< connections denied by enactment
  bool overload_enabled = false;
  OverloadSnapshot overload;  ///< zeroed when the controller is off
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the acceptor + workers.  Raises
  /// xbar::Error(kIo) when the address cannot be bound.
  void start();

  /// The bound port (valid after start(); useful with port = 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Begin graceful shutdown: stop accepting, let workers finish accepted
  /// connections, then exit.  Safe from any thread (and from a
  /// signal-wait thread).  Idempotent.
  void request_drain();

  /// Join every thread (returns once drained).
  void wait();

  /// request_drain() + wait().
  void stop();

  [[nodiscard]] StatsSnapshot stats() const;

 private:
  struct Worker;

  void acceptor_main();
  void worker_main(Worker& worker);
  void handle_connection(Worker& worker, Socket socket);
  /// One request line -> one response line.  Returns false when the
  /// connection must close (frame overflow).
  bool handle_request(Worker& worker, int fd, const std::string& line);
  std::string execute(Worker& worker, const Request& request,
                      std::chrono::steady_clock::time_point received);
  std::string execute_observe(const Request& request);
  std::string execute_advise(const Request& request) const;
  /// Which rung of the degradation ladder this request gets right now
  /// (kExact whenever the controller is off).
  LadderRung ladder_rung(const Request& request) const;
  std::string render_stats() const;
  std::string render_health() const;

  ServerConfig config_;
  Socket listen_socket_;
  std::uint16_t port_ = 0;
  int drain_pipe_read_ = -1;
  int drain_pipe_write_ = -1;

  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex queue_mutex_;  ///< also read by the const health path
  std::condition_variable queue_cv_;
  std::deque<Socket> queue_;
  std::atomic<bool> draining_{false};
  bool started_ = false;

  std::chrono::steady_clock::time_point start_time_;
  ResultCache cache_;
  Histogram latency_;
  TrafficLedger traffic_;
  std::unique_ptr<advisor::Advisor> advisor_;  ///< null without --advise
  std::unique_ptr<OverloadController> overload_;  ///< null when disabled

  // Counters (relaxed: monitoring, not synchronization).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> overload_rejections_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::array<std::atomic<std::uint64_t>, kMethodCount> by_method_{};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadlines_{0};
  std::atomic<std::uint64_t> slow_reader_disconnects_{0};
  std::atomic<std::uint64_t> idle_disconnects_{0};
  std::atomic<std::uint64_t> budget_disconnects_{0};
};

}  // namespace xbar::service
