#include "service/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <optional>
#include <sstream>
#include <utility>

#include "core/error.hpp"
#include "core/knapsack.hpp"
#include "core/measures.hpp"
#include "core/revenue.hpp"
#include "report/json_writer.hpp"
#include "report/solve_json.hpp"
#include "service/protocol.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"

namespace xbar::service {

namespace {

using Clock = std::chrono::steady_clock;
using report::JsonWriter;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::size_t method_index(Method method) noexcept {
  return static_cast<std::size_t>(method);
}

/// One scenario's bound-only answer: the Kaufman-Roberts knapsack
/// approximation with an explicit per-class blocking bracket.  The
/// knapsack drops the port-matching thinning factor, so its congestion is
/// a *lower* bound; the upper edge applies the two-sided 1-(1-B)^2
/// heuristic (both input and output side thin independently at worst).
void write_bound_json(JsonWriter& json, const core::CrossbarModel& model) {
  const core::KnapsackResult bound = core::knapsack_approximation(model);
  const unsigned capacity =
      std::min(model.dims().n1, model.dims().n2);
  json.begin_object();
  json.key("bound").begin_object();
  json.key("method").value("knapsack");
  json.key("capacity").value(capacity);
  json.key("utilization").value(bound.utilization);
  json.key("classes").begin_array();
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const double lower = bound.call_congestion[r];
    const double upper =
        std::clamp(1.0 - (1.0 - lower) * (1.0 - lower), lower, 1.0);
    json.begin_object();
    json.key("name").value(model.classes()[r].name);
    json.key("bandwidth").value(model.classes()[r].bandwidth);
    json.key("blocking_lower").value(lower);
    json.key("blocking_upper").value(upper);
    json.key("time_congestion").value(bound.time_congestion[r]);
    json.key("mean_concurrency").value(bound.concurrency[r]);
    json.end_object();
  }
  json.end_array();
  json.key("error_bar").begin_object();
  json.key("kind").value("one_sided");
  json.key("note").value(
      "knapsack capacity bound drops port-matching thinning; true "
      "blocking lies in [blocking_lower, blocking_upper]");
  json.end_object();
  json.end_object();
  json.end_object();
}

}  // namespace

void TrafficLedger::record(std::string_view name, double arrival_time,
                           double hold, bool blocked) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = nullptr;
  for (Entry& e : entries_) {
    if (e.name == name) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    entries_.emplace_back();
    entry = &entries_.back();
    entry->name = std::string(name);
  } else if (arrival_time >= entry->last_arrival) {
    entry->interarrival_sum += arrival_time - entry->last_arrival;
    ++entry->interarrival_count;
  }
  entry->last_arrival = std::max(entry->last_arrival, arrival_time);
  ++entry->offered;
  if (blocked) {
    ++entry->blocked;
  } else if (hold > 0.0) {
    entry->hold_sum += hold;
    ++entry->hold_count;
  }
}

std::vector<ClassTrafficSnapshot> TrafficLedger::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClassTrafficSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    ClassTrafficSnapshot s;
    s.name = e.name;
    s.offered = e.offered;
    s.blocked = e.blocked;
    s.mean_interarrival_seconds =
        e.interarrival_count > 0
            ? e.interarrival_sum / static_cast<double>(e.interarrival_count)
            : 0.0;
    s.mean_hold_seconds =
        e.hold_count > 0 ? e.hold_sum / static_cast<double>(e.hold_count)
                         : 0.0;
    out.push_back(std::move(s));
  }
  return out;
}

/// Per-worker persistent solve state: the SolverCache keeps grids warm
/// across requests (serving the same scenario repeatedly re-uses the
/// already-built grid even when the result cache is bypassed).
struct Server::Worker {
  explicit Worker(std::size_t solver_cache_entries)
      : solver_cache(solver_cache_entries) {}
  sweep::SolverCache solver_cache;
  std::thread thread;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_shards, config_.cache_entries_per_shard) {
  if (config_.advisor.has_value()) {
    advisor_ = std::make_unique<advisor::Advisor>(*config_.advisor);
  }
  if (config_.overload.has_value()) {
    overload_ = std::make_unique<OverloadController>(*config_.overload);
  }
}

Server::~Server() {
  stop();
  if (drain_pipe_read_ >= 0) {
    ::close(drain_pipe_read_);
    ::close(drain_pipe_write_);
  }
}

void Server::start() {
  if (started_) {
    raise(ErrorKind::kInternal, "Server::start() called twice");
  }
  listen_socket_ = listen_on(config_.host, config_.port, port_);
  int fds[2];
  if (::pipe(fds) != 0) {
    raise(ErrorKind::kIo, std::string("pipe(): ") + std::strerror(errno));
  }
  drain_pipe_read_ = fds[0];
  drain_pipe_write_ = fds[1];
  start_time_ = Clock::now();
  started_ = true;

  const unsigned workers = config_.workers != 0
                               ? config_.workers
                               : sweep::ThreadPool::default_concurrency();
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(config_.solver_cache_entries));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] {
      worker_main(*w);
    });
  }
  acceptor_ = std::thread([this] { acceptor_main(); });
}

void Server::request_drain() {
  if (!started_) {
    return;
  }
  draining_.store(true, std::memory_order_relaxed);
  const unsigned char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(drain_pipe_write_, &byte, 1);
  queue_cv_.notify_all();
}

void Server::wait() {
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void Server::stop() {
  request_drain();
  wait();
}

void Server::acceptor_main() {
  for (;;) {
    pollfd fds[2] = {{listen_socket_.fd(), POLLIN, 0},
                     {drain_pipe_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        draining_.load(std::memory_order_relaxed)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    Socket conn(::accept(listen_socket_.fd(), nullptr, nullptr));
    if (!conn.valid()) {
      continue;
    }
    const int one = 1;
    ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_recv_timeout(conn.fd(), config_.idle_poll_seconds);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
      lock.unlock();
      (void)write_line(conn.fd(),
                       render_error("null", "shutdown",
                                    "server is draining"));
      break;
    }
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      // Admission control: bounded queue; tell the client instead of
      // buffering without limit.  The rejected frame carries no id — the
      // request was never read.
      overload_rejections_.fetch_add(1, std::memory_order_relaxed);
      (void)write_line(
          conn.fd(),
          render_error("null", "overloaded",
                       "accept queue full; retry with backoff"));
      continue;
    }
    if (overload_ != nullptr) {
      // Adaptive admission: the AIMD limit on concurrency (queued +
      // active connections) is the primary signal; the static queue bound
      // above stays as the hard memory backstop.
      const std::size_t in_flight =
          queue_.size() +
          connections_active_.load(std::memory_order_relaxed);
      if (!overload_->admit(in_flight)) {
        lock.unlock();
        overload_rejections_.fetch_add(1, std::memory_order_relaxed);
        (void)write_line(
            conn.fd(),
            render_error("null", "overloaded",
                         "adaptive concurrency limit reached; retry with "
                         "backoff"));
        continue;
      }
    }
    queue_.push_back(std::move(conn));
    if (overload_ != nullptr) {
      overload_->note_queue(queue_.size(), config_.queue_capacity);
    }
    lock.unlock();
    queue_cv_.notify_one();
  }
  listen_socket_.reset();  // new connections are refused from here on
}

void Server::worker_main(Worker& worker) {
  for (;;) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        return;  // draining and nothing left: accepted work is all done
      }
      conn = std::move(queue_.front());
      queue_.pop_front();
      if (overload_ != nullptr) {
        overload_->note_queue(queue_.size(), config_.queue_capacity);
      }
    }
    handle_connection(worker, std::move(conn));
  }
}

void Server::handle_connection(Worker& worker, Socket socket) {
  connections_active_.fetch_add(1, std::memory_order_relaxed);
  if (config_.send_timeout_seconds > 0.0) {
    set_send_timeout(socket.fd(), config_.send_timeout_seconds);
  }
  if (config_.send_buffer_bytes > 0) {
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDBUF,
                 &config_.send_buffer_bytes,
                 sizeof(config_.send_buffer_bytes));
  }
  LineReader reader(socket.fd(), config_.max_line_bytes);
  std::string line;
  std::size_t requests_served = 0;
  std::size_t bytes_read = 0;
  Clock::time_point last_activity = Clock::now();
  for (;;) {
    const LineReader::Status status = reader.read_line(line);
    if (status == LineReader::Status::kLine) {
      last_activity = Clock::now();
      ++requests_served;
      bytes_read += line.size() + 1;
      if (!handle_request(worker, socket.fd(), line)) {
        break;
      }
      // Per-connection budgets: the over-budget request was still served;
      // the close recycles the connection (clients simply redial), so one
      // peer cannot monopolize a worker indefinitely.
      if ((config_.max_requests_per_connection != 0 &&
           requests_served >= config_.max_requests_per_connection) ||
          (config_.max_bytes_per_connection != 0 &&
           bytes_read >= config_.max_bytes_per_connection)) {
        budget_disconnects_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      continue;
    }
    if (status == LineReader::Status::kTimeout) {
      if (draining_.load(std::memory_order_relaxed)) {
        break;  // idle connection during drain: close it
      }
      if (config_.idle_timeout_seconds > 0.0 &&
          seconds_since(last_activity) > config_.idle_timeout_seconds) {
        idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
        break;  // reap the idle connection; a silent peer frees its worker
      }
      continue;  // idle connection in normal operation: keep waiting
    }
    if (status == LineReader::Status::kOverflow) {
      requests_total_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      (void)write_line(
          socket.fd(),
          render_error("null", "parse",
                       "request line exceeds " +
                           std::to_string(config_.max_line_bytes) +
                           " bytes"));
      break;  // framing is unsynchronized; drop the connection
    }
    break;  // kEof / kError
  }
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

bool Server::handle_request(Worker& worker, int fd,
                            const std::string& line) {
  const Clock::time_point received = Clock::now();
  std::string response;
  try {
    const Request request = parse_request(line);
    response = execute(worker, request, received);
    // Request-stream tap: every parsed request lands in the traffic ledger
    // as a pseudo-class arrival with hold = serving latency.  Responses we
    // render carry exactly one status field, so the substring test is an
    // unambiguous ok/error discriminator.
    traffic_.record(std::string("method:") +
                        std::string(to_string(request.method)),
                    seconds_since(start_time_), seconds_since(received),
                    response.find("\"status\":\"ok\"") == std::string::npos);
  } catch (const xbar::Error& e) {
    // The id is unknown when parsing failed — respond with id null.
    requests_total_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    response = render_error("null", e);
  } catch (const std::exception& e) {
    requests_total_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    response = render_error("null", "internal", e.what());
  }
  latency_.record(seconds_since(received));
  if (overload_ != nullptr) {
    // Every served request feeds the SLO window — the AIMD loop reacts to
    // what the server actually delivers, cheap methods included.
    overload_->on_latency(seconds_since(received), Clock::now());
  }
  switch (send_line(fd, response)) {
    case SendStatus::kOk:
      return true;
    case SendStatus::kTimeout:
      // The peer stopped draining its socket: drop it rather than let one
      // slow reader pin this worker (and its queue slot) indefinitely.
      slow_reader_disconnects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    case SendStatus::kError:
      return false;
  }
  return false;
}

std::string Server::execute(Worker& worker, const Request& request,
                            Clock::time_point received) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  by_method_[method_index(request.method)].fetch_add(
      1, std::memory_order_relaxed);

  if (request.method == Method::kPing) {
    ok_.fetch_add(1, std::memory_order_relaxed);
    return render_ok(request.id, "\"pong\"", false);
  }
  if (request.method == Method::kStats) {
    ok_.fetch_add(1, std::memory_order_relaxed);
    return render_ok(request.id, render_stats(), false);
  }
  if (request.method == Method::kHealth) {
    ok_.fetch_add(1, std::memory_order_relaxed);
    return render_ok(request.id, render_health(), false);
  }
  // Advisor-path methods: stateful, never cached, must precede the result-
  // cache lookup (their cache key is intentionally empty).
  if (request.method == Method::kObserve ||
      request.method == Method::kAdvise) {
    if (advisor_ == nullptr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return render_error(request.id, "config",
                          "server is not running with --advise");
    }
    try {
      const std::string result = request.method == Method::kObserve
                                     ? execute_observe(request)
                                     : execute_advise(request);
      ok_.fetch_add(1, std::memory_order_relaxed);
      return render_ok(request.id, result, false);
    } catch (const xbar::Error& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return render_error(request.id, e);
    } catch (const std::exception& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return render_error(request.id, "internal", e.what());
    }
  }

  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;
  const LadderRung rung = ladder_rung(request);
  if (!request.no_cache) {
    if (std::optional<ResultCache::AgedValue> hit =
            cache_.get_with_age(request.cache_key)) {
      const double ttl = overload_ != nullptr
                             ? overload_->config().stale_ttl_seconds
                             : 0.0;
      if (ttl <= 0.0 || hit->age_seconds <= ttl) {
        // Fresh (or ttl disabled, the pre-overload behavior): the frame is
        // byte-identical to the unloaded path.
        ok_.fetch_add(1, std::memory_order_relaxed);
        return render_ok(request.id, hit->value, true);
      }
      if (rung != LadderRung::kExact) {
        // First rung of the ladder: an expired answer now is better than a
        // fresh answer the pressured solver cannot afford.  The frame says
        // so honestly.
        overload_->count_stale();
        ok_.fetch_add(1, std::memory_order_relaxed);
        std::string degraded = "{\"mode\":\"stale\",\"age_ms\":";
        degraded +=
            std::to_string(static_cast<std::uint64_t>(hit->age_seconds * 1e3));
        degraded += "}";
        return render_ok_degraded(request.id, hit->value, true, degraded);
      }
      // Expired and unpressured: fall through and recompute (the put below
      // refreshes the entry's age).
    }
  }
  if (deadline_ms > 0.0 && seconds_since(received) * 1e3 > deadline_ms) {
    deadlines_.fetch_add(1, std::memory_order_relaxed);
    return render_error(request.id, "deadline",
                        "deadline expired before execution started");
  }
  if (rung == LadderRung::kShed) {
    // Bottom of the ladder: trunk-reservation shedding, lowest rank first.
    overload_->count_shed();
    errors_.fetch_add(1, std::memory_order_relaxed);
    char pressure[16];
    std::snprintf(pressure, sizeof(pressure), "%.2f",
                  overload_->pressure());
    return render_error(request.id, "overloaded",
                        std::string("priority-shed at pressure ") + pressure +
                            "; retry with backoff");
  }
  if (rung == LadderRung::kBoundOnly &&
      (request.method == Method::kSolve ||
       request.method == Method::kBatch)) {
    // Middle rung: the Kaufman-Roberts knapsack bound instead of the full
    // solve — O(C R) versus a grid traversal, with an explicit error
    // bracket (the knapsack drops port-matching thinning, so it
    // *underestimates* blocking; the upper edge is the 1-(1-B)^2 two-sided
    // heuristic).  Never cached: a bound must not shadow an exact answer.
    try {
      std::ostringstream out;
      JsonWriter json(out, JsonWriter::Style::kCompact);
      if (request.method == Method::kSolve) {
        write_bound_json(json, *request.model);
      } else {
        json.begin_object();
        json.key("scenarios").begin_array();
        for (const core::CrossbarModel& model : request.scenarios) {
          write_bound_json(json, model);
        }
        json.end_array();
        json.end_object();
      }
      overload_->count_bound();
      ok_.fetch_add(1, std::memory_order_relaxed);
      return render_ok_degraded(request.id, std::move(out).str(), false,
                                "{\"mode\":\"bound\"}");
    } catch (const xbar::Error& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return render_error(request.id, e);
    } catch (const std::exception& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return render_error(request.id, "internal", e.what());
    }
  }

  try {
    std::ostringstream out;
    JsonWriter json(out, JsonWriter::Style::kCompact);
    bool deadline_cancelled = false;

    if (request.method == Method::kSolve) {
      const core::SolveResult result =
          worker.solver_cache.eval_result(*request.model, request.solver);
      if (const auto violation = core::validate_measures(result.measures)) {
        raise(ErrorKind::kDomain, "solve produced invalid measures: " +
                                      *violation);
      }
      json.begin_object();
      json.key("measures");
      report::write_measures_json(json, *request.model, result.measures);
      json.key("diagnostics");
      report::write_diagnostics_json(json, result.diagnostics);
      json.end_object();
    } else if (request.method == Method::kBatch) {
      // One call through the worker's solver cache: scenarios sharing
      // dimensions advance through a single batched grid traversal, and
      // repeats are answered from already-built grids.
      const std::vector<core::SolveResult> results =
          worker.solver_cache.eval_batch_result(request.scenarios,
                                                request.solver);
      json.begin_object();
      json.key("scenarios").begin_array();
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (const auto violation =
                core::validate_measures(results[i].measures)) {
          raise(ErrorKind::kDomain, "batch scenario " + std::to_string(i) +
                                        " produced invalid measures: " +
                                        *violation);
        }
        json.begin_object();
        json.key("measures");
        report::write_measures_json(json, request.scenarios[i],
                                    results[i].measures);
        json.key("diagnostics");
        report::write_diagnostics_json(json, results[i].diagnostics);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    } else if (request.method == Method::kRevenue) {
      const core::RevenueAnalyzer analyzer(*request.model);
      const core::RevenueReport rev = analyzer.analyze();
      if (const auto violation = core::validate_measures(rev.measures)) {
        raise(ErrorKind::kDomain, "revenue produced invalid measures: " +
                                      *violation);
      }
      json.begin_object();
      json.key("measures");
      report::write_measures_json(json, *request.model, rev.measures);
      json.key("sensitivities").begin_array();
      for (std::size_t r = 0; r < request.model->num_classes(); ++r) {
        const core::ClassSensitivity& s = rev.per_class[r];
        json.begin_object();
        json.key("name").value(request.model->classes()[r].name);
        json.key("weight").value(request.model->normalized(r).weight);
        json.key("shadow_cost").value(s.shadow_cost);
        json.key("d_revenue_d_rho").value(s.d_revenue_d_rho);
        json.key("d_revenue_d_x").value(s.d_revenue_d_x);
        json.key("worth_admitting").value(s.worth_admitting);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    } else {  // Method::kSweep
      std::vector<sweep::ScenarioPoint> points;
      points.reserve(request.sizes.size());
      for (const unsigned n : request.sizes) {
        std::vector<core::TrafficClass> classes(
            request.model->classes().begin(),
            request.model->classes().end());
        points.push_back({core::CrossbarModel(core::Dims::square(n),
                                              std::move(classes)),
                          std::nullopt});
      }
      sweep::SweepOptions options;
      options.solver = request.solver;
      options.fault.isolate = true;
      if (deadline_ms > 0.0) {
        const double remaining =
            deadline_ms * 1e-3 - seconds_since(received);
        options.fault.deadline_seconds = remaining > 1e-9 ? remaining : 1e-9;
      }
      sweep::SweepRunner runner(options);
      const sweep::SweepReport swept = runner.run_report(points);
      deadline_cancelled = deadline_ms > 0.0 &&
                           swept.count(sweep::PointState::kCancelled) > 0;

      json.begin_object();
      json.key("points").begin_array();
      for (std::size_t i = 0; i < points.size(); ++i) {
        const sweep::PointStatus& status = swept.statuses[i];
        const bool solved = status.state == sweep::PointState::kOk ||
                            status.state == sweep::PointState::kRetried;
        json.begin_object();
        json.key("n").value(request.sizes[i]);
        json.key("status").value(sweep::to_string(status.state));
        if (!status.error.empty()) {
          json.key("error_kind").value(xbar::to_string(status.error_kind));
          json.key("error").value(status.error);
        }
        json.key("measures");
        if (solved) {
          report::write_measures_json(json, points[i].model,
                                      swept.results[i].measures);
        } else {
          json.value_null();
        }
        json.key("diagnostics");
        if (solved) {
          report::write_diagnostics_json(json, swept.results[i].diagnostics);
        } else {
          json.value_null();
        }
        json.end_object();
      }
      json.end_array();
      json.key("summary").begin_object();
      json.key("ok").value(
          static_cast<std::uint64_t>(swept.count(sweep::PointState::kOk)));
      json.key("retried").value(static_cast<std::uint64_t>(
          swept.count(sweep::PointState::kRetried)));
      json.key("failed").value(static_cast<std::uint64_t>(
          swept.count(sweep::PointState::kFailed)));
      json.key("cancelled").value(static_cast<std::uint64_t>(
          swept.count(sweep::PointState::kCancelled)));
      json.key("complete").value(swept.complete());
      json.end_object();
      json.key("cache").begin_object();
      json.key("hits").value(static_cast<std::uint64_t>(swept.total_hits()));
      json.key("misses").value(
          static_cast<std::uint64_t>(swept.total_misses()));
      json.end_object();
      json.key("wall_seconds").value(swept.wall_seconds);
      json.end_object();
    }

    std::string result_json = std::move(out).str();
    if (deadline_cancelled) {
      deadlines_.fetch_add(1, std::memory_order_relaxed);
      return render_error(request.id, "deadline",
                          "deadline expired mid-sweep; unfinished points "
                          "were cancelled");
    }
    if (!request.no_cache) {
      cache_.put(request.cache_key, result_json);
    }
    if (deadline_ms > 0.0 && seconds_since(received) * 1e3 > deadline_ms) {
      deadlines_.fetch_add(1, std::memory_order_relaxed);
      return render_error(request.id, "deadline",
                          "deadline expired during execution");
    }
    ok_.fetch_add(1, std::memory_order_relaxed);
    return render_ok(request.id, result_json, false);
  } catch (const xbar::Error& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return render_error(request.id, e);
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return render_error(request.id, "internal", e.what());
  }
}

std::string Server::execute_observe(const Request& request) {
  // Ingest the trace batch.  Enactment may deny events class-wise; denied
  // connections are recorded as blocked in the ledger so the stats frame
  // shows what admission control is doing.
  std::size_t admitted = 0;
  for (const advisor::ObservedEvent& event : request.events) {
    const bool ok = advisor_->observe(event);
    if (ok) {
      ++admitted;
    }
    traffic_.record(event.class_name, event.t, event.hold,
                    event.blocked || !ok);
  }
  const advisor::AdvisorState state = advisor_->state();
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("ingested").value(static_cast<std::uint64_t>(
      request.events.size()));
  json.key("admitted").value(static_cast<std::uint64_t>(admitted));
  json.key("denied").value(
      static_cast<std::uint64_t>(request.events.size() - admitted));
  json.key("state").value(advisor::to_string(state));
  json.end_object();
  return std::move(out).str();
}

std::string Server::execute_advise(const Request& request) const {
  (void)request;
  const advisor::Recommendation rec = advisor_->recommendation();
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("state").value(advisor::to_string(rec.state));
  json.key("confident").value(rec.confident);
  json.key("target_blocking").value(rec.target_blocking);
  json.key("recommended").begin_object();
  json.key("n1").value(rec.recommended_size);
  json.key("n2").value(rec.recommended_size);
  json.key("slo_met").value(rec.slo_met);
  json.key("revenue").value(rec.revenue);
  json.key("current_revenue").value(rec.current_revenue);
  json.key("revenue_delta").value(rec.revenue_delta);
  json.key("reservation_step").value(rec.reservation_step);
  json.end_object();
  json.key("classes").begin_array();
  for (const advisor::ClassAdvice& advice : rec.per_class) {
    json.begin_object();
    json.key("name").value(advice.name);
    json.key("bandwidth").value(advice.bandwidth);
    json.key("weight").value(advice.weight);
    json.key("shadow_cost").value(advice.shadow_cost);
    json.key("admit").value(advice.admit);
    json.key("blocking").value(advice.blocking);
    json.key("reservation").value(advice.reservation);
    json.end_object();
  }
  json.end_array();
  json.key("fits").begin_array();
  for (const advisor::FittedClass& fit : rec.fits) {
    json.begin_object();
    json.key("name").value(fit.name);
    json.key("bandwidth").value(fit.bandwidth);
    json.key("weight").value(fit.weight);
    json.key("arrival_rate").value(fit.arrival_rate);
    json.key("mean_hold").value(fit.mean_hold);
    json.key("mean_occupancy").value(fit.mean_occupancy);
    json.key("peakedness").value(fit.peakedness);
    json.key("events").value(fit.events);
    json.key("confident").value(fit.confident);
    json.end_object();
  }
  json.end_array();
  json.key("options").begin_array();
  for (const advisor::SizingOption& opt : rec.options) {
    json.begin_object();
    json.key("n").value(opt.size);
    json.key("worst_blocking").value(opt.worst_blocking);
    json.key("revenue").value(opt.revenue);
    json.key("meets_slo").value(opt.meets_slo);
    json.end_object();
  }
  json.end_array();
  json.key("solve_cycles").value(rec.solve_cycles);
  json.key("refits").value(rec.refits);
  json.key("fitted_at").value(rec.fitted_at);
  json.end_object();
  return std::move(out).str();
}

LadderRung Server::ladder_rung(const Request& request) const {
  if (overload_ == nullptr) {
    return LadderRung::kExact;
  }
  unsigned rank = overload_->rank_of(request.priority);
  double step_scale = 1.0;
  if (advisor_ != nullptr &&
      overload_->pressure() >= overload_->config().shed_start) {
    // Consult the advisor only when shedding is imminent: a confident
    // recommendation's reservation step widens the trunk-reservation
    // spacing between rank thresholds, and a class whose shadow-cost
    // economics say "not worth admitting" is demoted to the shed-first
    // rank regardless of the priority it asked for.
    const advisor::Recommendation rec = advisor_->recommendation();
    if (rec.confident) {
      step_scale =
          std::max(1.0, static_cast<double>(rec.reservation_step));
      if (request.model.has_value() && rank > 0) {
        for (const advisor::ClassAdvice& advice : rec.per_class) {
          if (advice.admit) {
            continue;
          }
          for (const core::TrafficClass& c : request.model->classes()) {
            if (c.name == advice.name) {
              rank = 0;
              break;
            }
          }
          if (rank == 0) {
            break;
          }
        }
      }
    }
  }
  return overload_->classify(rank, step_scale);
}

StatsSnapshot Server::stats() const {
  StatsSnapshot s;
  s.uptime_seconds = started_ ? seconds_since(start_time_) : 0.0;
  s.draining = draining_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  s.overload_rejections =
      overload_rejections_.load(std::memory_order_relaxed);
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMethodCount; ++i) {
    s.by_method[i] = by_method_[i].load(std::memory_order_relaxed);
  }
  s.ok = ok_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.deadlines = deadlines_.load(std::memory_order_relaxed);
  s.slow_reader_disconnects =
      slow_reader_disconnects_.load(std::memory_order_relaxed);
  s.idle_disconnects = idle_disconnects_.load(std::memory_order_relaxed);
  s.budget_disconnects =
      budget_disconnects_.load(std::memory_order_relaxed);
  s.cache = cache_.counters();
  s.latency = latency_.snapshot();
  s.traffic = traffic_.snapshot();
  if (advisor_ != nullptr) {
    s.advisor_enabled = true;
    s.advisor_events = advisor_->events_observed();
    s.advisor_denied = advisor_->events_denied();
  }
  if (overload_ != nullptr) {
    s.overload_enabled = true;
    s.overload = overload_->snapshot();
  }
  return s;
}

std::string Server::render_stats() const {
  const StatsSnapshot s = stats();
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("uptime_seconds").value(s.uptime_seconds);
  json.key("draining").value(s.draining);
  json.key("connections").begin_object();
  json.key("accepted").value(s.connections_accepted);
  json.key("active").value(s.connections_active);
  json.key("overload_rejections").value(s.overload_rejections);
  json.key("slow_reader_disconnects").value(s.slow_reader_disconnects);
  json.key("idle_disconnects").value(s.idle_disconnects);
  json.key("budget_disconnects").value(s.budget_disconnects);
  json.end_object();
  json.key("requests").begin_object();
  json.key("total").value(s.requests_total);
  json.key("by_method").begin_object();
  for (std::size_t i = 0; i < kMethodCount; ++i) {
    json.key(to_string(static_cast<Method>(i))).value(s.by_method[i]);
  }
  json.end_object();
  json.key("by_status").begin_object();
  json.key("ok").value(s.ok);
  json.key("error").value(s.errors);
  json.key("deadline").value(s.deadlines);
  json.end_object();
  json.end_object();
  json.key("result_cache").begin_object();
  json.key("hits").value(s.cache.hits);
  json.key("misses").value(s.cache.misses);
  json.key("evictions").value(s.cache.evictions);
  json.key("entries").value(s.cache.entries);
  json.end_object();
  json.key("latency_ms").begin_object();
  json.key("count").value(s.latency.count);
  json.key("mean").value(s.latency.mean * 1e3);
  json.key("p50").value(s.latency.p50 * 1e3);
  json.key("p90").value(s.latency.p90 * 1e3);
  json.key("p99").value(s.latency.p99 * 1e3);
  json.key("max").value(s.latency.max * 1e3);
  json.end_object();
  json.key("traffic").begin_array();
  for (const ClassTrafficSnapshot& t : s.traffic) {
    json.begin_object();
    json.key("class").value(t.name);
    json.key("offered").value(t.offered);
    json.key("blocked").value(t.blocked);
    json.key("mean_interarrival_s").value(t.mean_interarrival_seconds);
    json.key("mean_hold_s").value(t.mean_hold_seconds);
    json.end_object();
  }
  json.end_array();
  if (s.advisor_enabled) {
    json.key("advisor").begin_object();
    json.key("events").value(s.advisor_events);
    json.key("denied").value(s.advisor_denied);
    json.key("state").value(advisor::to_string(advisor_->state()));
    json.end_object();
  }
  if (s.overload_enabled) {
    json.key("overload").begin_object();
    json.key("pressure").value(s.overload.pressure);
    json.key("limit").value(static_cast<std::uint64_t>(s.overload.limit));
    json.key("latency_ratio").value(s.overload.latency_ratio);
    json.key("queue_fraction").value(s.overload.queue_fraction);
    json.key("window_p99_ms").value(s.overload.window_p99_ms);
    json.key("windows").value(s.overload.windows);
    json.key("limit_increases").value(s.overload.limit_increases);
    json.key("limit_decreases").value(s.overload.limit_decreases);
    json.key("admitted").value(s.overload.admitted);
    json.key("limited").value(s.overload.limited);
    json.key("stale_served").value(s.overload.stale_served);
    json.key("bound_served").value(s.overload.bound_served);
    json.key("shed").value(s.overload.shed);
    json.end_object();
  }
  json.end_object();
  return std::move(out).str();
}

std::string Server::render_health() const {
  // Cheap by construction: no solver state, no cache walk — a health
  // probe must answer even when every worker is saturated.
  std::size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_depth = queue_.size();
  }
  const bool draining = draining_.load(std::memory_order_relaxed);
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("live").value(true);
  json.key("status").value(draining ? "draining" : "serving");
  json.key("draining").value(draining);
  json.key("queue_depth").value(static_cast<std::uint64_t>(queue_depth));
  json.key("queue_capacity")
      .value(static_cast<std::uint64_t>(config_.queue_capacity));
  json.key("connections_active")
      .value(connections_active_.load(std::memory_order_relaxed));
  json.key("workers").value(static_cast<std::uint64_t>(workers_.size()));
  // Routing signals for a front tier: admission-queue pressure in [0, 1]
  // and result-cache occupancy, both O(1) reads.  A router uses `load` to
  // break ties and `cache_entries` to see whether a backend's key range is
  // actually warm (counters() aggregates per-shard under shard mutexes —
  // still cheap, no entry walk).
  json.key("load").value(
      config_.queue_capacity > 0
          ? static_cast<double>(queue_depth) /
                static_cast<double>(config_.queue_capacity)
          : 0.0);
  const ResultCacheCounters cache = cache_.counters();
  json.key("cache_entries").value(cache.entries);
  json.key("cache_capacity")
      .value(static_cast<std::uint64_t>(cache_.capacity()));
  json.key("requests_total")
      .value(requests_total_.load(std::memory_order_relaxed));
  // Brownout propagation: the router's membership reads `pressure` off the
  // health probe and steers placement/hedging away from browned-out
  // backends.  Absent (or 0) when the controller is off.
  if (overload_ != nullptr) {
    json.key("pressure").value(overload_->pressure());
    json.key("overload_limit")
        .value(static_cast<std::uint64_t>(overload_->limit()));
  }
  json.end_object();
  return std::move(out).str();
}

}  // namespace xbar::service
