// Adaptive overload control for the serving tier.
//
// The paper predicts what a multi-rate crossbar does *under load*; this is
// the serving stack's own answer to the same question.  An
// OverloadController per server replaces the static accept-queue bound as
// the primary admission signal with an AIMD concurrency limit driven by the
// observed p99 against a latency target, and exposes a *degradation
// ladder* the request path walks instead of shedding outright:
//
//   kExact     -> full solve, byte-identical frames to the unloaded path
//   kStale     -> serve an expired ResultCache entry, flagged with age_ms
//   kBoundOnly -> cheap knapsack bound answer with an error bracket
//   kShed      -> typed `overloaded` rejection, lowest priority first
//
// Priority shedding uses trunk-reservation-style thresholds (the paper's
// own admission discipline): request rank r is shed once pressure crosses
// shed_start + r * shed_step, so low ranks go first and high ranks keep
// degraded service until the very top of the pressure range.  The advisor's
// per-class shadow costs (PR 9) can widen the spacing via `step_scale`.
//
// Pressure is a [0,1] scalar published to the router via stats/health
// frames (brownout propagation): max of a smoothed latency component
// (1 - target/p99, zero when under target) and the instantaneous accept
// queue fraction.  Everything here is "time is a parameter" — callers pass
// `now`, nothing reads the clock — so tests replay transitions with a
// synthetic clock and nothing sleeps.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace xbar::service {

/// One rung of the degradation ladder, in escalation order.
enum class LadderRung { kExact = 0, kStale, kBoundOnly, kShed };

const char* to_string(LadderRung rung);

struct OverloadConfig {
  /// Latency SLO the AIMD loop steers the window p99 toward.
  double target_p99_seconds = 0.050;
  /// Concurrency limit bounds and start point.
  std::size_t min_limit = 4;
  std::size_t max_limit = 1024;
  std::size_t initial_limit = 64;
  /// Additive increase per under-target window; multiplicative decrease
  /// factor per over-target window.
  double additive_step = 2.0;
  double decrease_factor = 0.7;
  /// A window closes after this many samples or this much wall time,
  /// whichever comes first (the time bound keeps the signal fresh at low
  /// rates).
  std::size_t window = 64;
  double window_seconds = 1.0;
  /// EWMA weight of the newest window's p99/target ratio.
  double smoothing = 0.3;
  /// How long a cache entry may be served as "stale" once the ladder is
  /// past kExact.  0 disables stale serving (entries never expire, the
  /// pre-overload behavior).
  double stale_ttl_seconds = 5.0;
  /// Ladder thresholds on pressure in [0,1].
  double stale_at = 0.50;
  double bound_at = 0.70;
  double shed_start = 0.85;
  /// Trunk-reservation spacing between per-rank shed thresholds.
  double shed_step = 0.05;
  /// Number of distinct priority ranks (requests without a priority get
  /// the top rank: shed last).
  unsigned priority_levels = 4;
};

/// Point-in-time view for stats frames and tests.
struct OverloadSnapshot {
  std::size_t limit = 0;
  double pressure = 0.0;
  double latency_ratio = 0.0;
  double queue_fraction = 0.0;
  double window_p99_ms = 0.0;
  std::uint64_t windows = 0;
  std::uint64_t limit_increases = 0;
  std::uint64_t limit_decreases = 0;
  std::uint64_t admitted = 0;
  std::uint64_t limited = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t bound_served = 0;
  std::uint64_t shed = 0;
};

class OverloadController {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  explicit OverloadController(OverloadConfig config);

  /// Admission check for a newly accepted connection: `in_flight` is the
  /// server's current concurrency (queued + active connections).  False
  /// means shed at the door with a typed `overloaded` frame.
  bool admit(std::size_t in_flight);

  /// Current adaptive concurrency limit.
  std::size_t limit() const {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Feed one served-request latency into the current window; closes the
  /// window (AIMD step + pressure update) when it is full or old enough.
  void on_latency(double seconds, TimePoint now);

  /// Instantaneous accept-queue occupancy, folded into pressure.
  void note_queue(std::size_t depth, std::size_t capacity);

  /// Brownout pressure in [0,1], advertised via stats/health frames.
  double pressure() const {
    return pressure_.load(std::memory_order_relaxed);
  }

  /// Which rung of the ladder a request of priority rank `rank` gets at
  /// the current pressure.  `step_scale` >= 1 widens the per-rank shed
  /// spacing (the advisor's reservation step feeds this).
  LadderRung classify(unsigned rank, double step_scale = 1.0) const;

  /// Rank for a request-carried priority (negative = unset = top rank).
  unsigned rank_of(int priority) const;

  /// Ladder accounting, called by the server when it serves a rung.
  void count_stale() { stale_served_.fetch_add(1, std::memory_order_relaxed); }
  void count_bound() { bound_served_.fetch_add(1, std::memory_order_relaxed); }
  void count_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }

  OverloadSnapshot snapshot() const;

  const OverloadConfig& config() const { return config_; }

 private:
  void refresh_pressure();

  OverloadConfig config_;

  // Window state under the mutex; published signals are lock-free atomics
  // so admit()/pressure()/classify() never contend with window closes.
  mutable std::mutex mutex_;
  std::vector<double> window_;
  TimePoint window_start_{};
  double limit_raw_ = 0.0;
  double smoothed_ratio_ = 0.0;

  std::atomic<std::size_t> limit_{0};
  std::atomic<double> pressure_{0.0};
  std::atomic<double> latency_ratio_{0.0};
  std::atomic<double> queue_fraction_{0.0};
  std::atomic<double> window_p99_{0.0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint64_t> limit_increases_{0};
  std::atomic<std::uint64_t> limit_decreases_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> limited_{0};
  std::atomic<std::uint64_t> stale_served_{0};
  std::atomic<std::uint64_t> bound_served_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace xbar::service
