// The xbar_serve wire protocol: newline-delimited JSON over TCP.
//
// One request per line, one response line per request, connections may
// pipeline any number of requests.  A request is a JSON object:
//
//   {"method": "solve" | "revenue" | "sweep" | "batch" | "stats" | "ping"
//            | "health" | "observe" | "advise",
//    "id": <string or number, echoed back verbatim>,        (optional)
//    "scenario": {                                          (solve paths)
//        "switch":  {"inputs": 64, "outputs": 64},
//        "classes": [{"name": "voice", "shape": "poisson", "rho": 0.45},
//                    {"shape": "bursty", "alpha": 0.1, "beta": 0.05,
//                     "bandwidth": 2, "mu": 2.0, "weight": 0.2}]},
//    "solver": "auto",                                      (optional)
//    "sizes": [4, 8, 16],                                   (sweep only)
//    "scenarios": [{...}, {...}],                           (batch only)
//    "events": [{"class": "voice", "t": 12.5, "hold": 0.9,  (observe only)
//                "bandwidth": 1, "weight": 1.0, "blocked": false}],
//    "deadline_ms": 250,                                    (optional)
//    "no_cache": true,                                      (optional)
//    "priority": 2}                                         (optional)
//
// `priority` ranks the request for overload shedding (0 = shed first;
// omitted = top rank, shed last).  It is deliberately *not* part of the
// cache key: the same computation at two priorities is still the same
// computation.
//
// `observe` ingests externally captured connection-trace events into the
// server's streaming capacity advisor (timestamps are trace seconds, not
// wall clock); `advise` returns its current recommendation.  Both are
// advisor-path methods: never cached, rejected with kConfig when the
// server runs without `--advise`.
//
// and a response is `{"id": ..., "status": "ok", "cached": ...,
// "result": ...}` or `{"id": ..., "status": "error", "error": {"kind":
// ..., "message": ...}}`.  Error kinds are the `xbar::ErrorKind` names
// ("parse", "config", "model", ...) plus the service-level kinds
// "overloaded" (admission control rejected the connection), "deadline"
// (the request's budget expired), and "shutdown" (the server is
// draining).  Scenario semantics mirror config/scenario_file exactly;
// numeric fields are validated here (kConfig) before the model's own
// well-posedness rules run (kModel), and untrusted-input bounds (class
// count, switch size, sweep width) are enforced so a single request
// cannot ask for an unbounded computation.
//
// `parse_request` also derives the request's canonical cache key: the
// method, the solver spec, and the exact bit pattern of every class
// parameter plus the sweep sizes — two requests share a key iff they
// denote the same computation, which is what the server's ResultCache
// keys on.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "advisor/estimator.hpp"
#include "core/error.hpp"
#include "core/model.hpp"
#include "core/solver_spec.hpp"

namespace xbar::service {

enum class Method : std::uint8_t {
  kPing, kSolve, kRevenue, kSweep, kStats, kHealth, kBatch,
  kObserve, kAdvise,
};
inline constexpr std::size_t kMethodCount = 9;

/// Lowercase wire name ("ping", "solve", ...).
[[nodiscard]] std::string_view to_string(Method method) noexcept;

/// Untrusted-input bounds enforced by `parse_request`.
inline constexpr std::size_t kMaxClasses = 64;
inline constexpr unsigned kMaxSwitchSide = 4096;
inline constexpr std::size_t kMaxSweepSizes = 1024;
inline constexpr std::size_t kMaxBatchScenarios = 64;
inline constexpr std::size_t kMaxObserveEvents = 4096;

/// One parsed request.
struct Request {
  Method method = Method::kPing;
  std::string id = "null";  ///< raw JSON rendering, echoed into responses
  std::optional<core::CrossbarModel> model;  ///< solve/revenue/sweep
  std::vector<core::CrossbarModel> scenarios;  ///< batch only
  core::SolverSpec solver;                   ///< default: auto
  std::vector<unsigned> sizes;               ///< sweep only
  std::vector<advisor::ObservedEvent> events;  ///< observe only
  double deadline_ms = 0.0;                  ///< 0 = no deadline
  bool no_cache = false;
  int priority = -1;  ///< shed rank (0 = shed first); -1 = unset (top rank)
  std::string cache_key;  ///< canonical fingerprint (cacheable methods only)
};

/// Parse one request line.  Raises xbar::Error — kParse for malformed
/// JSON, kConfig for a well-formed request with invalid semantics, kModel
/// when the scenario violates the paper's well-posedness rules.
[[nodiscard]] Request parse_request(std::string_view line);

/// Render an ok response around an already-rendered result payload.
[[nodiscard]] std::string render_ok(const std::string& id,
                                    std::string_view result_json,
                                    bool cached);

/// Render a degraded-but-ok response: identical to render_ok except for a
/// `degraded` object (already-rendered JSON, e.g. `{"mode":"stale",
/// "age_ms":1200}`) between `cached` and `result`.  Exact-path responses
/// never carry the field, so unloaded frames stay byte-identical.
[[nodiscard]] std::string render_ok_degraded(const std::string& id,
                                             std::string_view result_json,
                                             bool cached,
                                             std::string_view degraded_json);

/// Render a typed error response.  `kind` is an ErrorKind name or one of
/// the service kinds ("overloaded", "deadline", "shutdown").
[[nodiscard]] std::string render_error(const std::string& id,
                                       std::string_view kind,
                                       std::string_view message);

/// render_error with the kind taken from a toolkit error.
[[nodiscard]] std::string render_error(const std::string& id,
                                       const xbar::Error& error);

}  // namespace xbar::service
