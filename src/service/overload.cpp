#include "service/overload.hpp"

#include <algorithm>

namespace xbar::service {

const char* to_string(LadderRung rung) {
  switch (rung) {
    case LadderRung::kExact:
      return "exact";
    case LadderRung::kStale:
      return "stale";
    case LadderRung::kBoundOnly:
      return "bound";
    case LadderRung::kShed:
      return "shed";
  }
  return "unknown";
}

OverloadController::OverloadController(OverloadConfig config)
    : config_(config) {
  config_.min_limit = std::max<std::size_t>(1, config_.min_limit);
  config_.max_limit = std::max(config_.max_limit, config_.min_limit);
  config_.initial_limit = std::clamp(config_.initial_limit,
                                     config_.min_limit, config_.max_limit);
  config_.window = std::max<std::size_t>(1, config_.window);
  config_.smoothing = std::clamp(config_.smoothing, 0.0, 1.0);
  config_.decrease_factor = std::clamp(config_.decrease_factor, 0.1, 0.99);
  config_.priority_levels = std::max(1u, config_.priority_levels);
  limit_raw_ = static_cast<double>(config_.initial_limit);
  limit_.store(config_.initial_limit, std::memory_order_relaxed);
  window_.reserve(config_.window);
}

bool OverloadController::admit(std::size_t in_flight) {
  if (in_flight >= limit_.load(std::memory_order_relaxed)) {
    limited_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void OverloadController::on_latency(double seconds, TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_.empty()) {
    window_start_ = now;
  }
  window_.push_back(seconds);
  const double elapsed =
      std::chrono::duration<double>(now - window_start_).count();
  if (window_.size() < config_.window && elapsed < config_.window_seconds) {
    return;
  }

  // Close the window: exact p99 over the sample buffer (the buffer is
  // small, so nth_element beats maintaining a histogram).
  const std::size_t index =
      std::min(window_.size() - 1, (window_.size() * 99) / 100);
  std::nth_element(window_.begin(),
                   window_.begin() + static_cast<std::ptrdiff_t>(index),
                   window_.end());
  const double p99 = window_[index];
  window_.clear();
  window_p99_.store(p99, std::memory_order_relaxed);

  const double ratio = config_.target_p99_seconds > 0.0
                           ? p99 / config_.target_p99_seconds
                           : 0.0;
  const std::uint64_t closed =
      windows_.fetch_add(1, std::memory_order_relaxed) + 1;
  smoothed_ratio_ = closed == 1 ? ratio
                                : (1.0 - config_.smoothing) * smoothed_ratio_ +
                                      config_.smoothing * ratio;
  latency_ratio_.store(smoothed_ratio_, std::memory_order_relaxed);

  // AIMD on the *raw* window ratio: react to the spike now, let the EWMA
  // smooth only the advertised pressure.
  if (ratio > 1.0) {
    limit_raw_ = std::max(static_cast<double>(config_.min_limit),
                          limit_raw_ * config_.decrease_factor);
    limit_decreases_.fetch_add(1, std::memory_order_relaxed);
  } else {
    limit_raw_ = std::min(static_cast<double>(config_.max_limit),
                          limit_raw_ + config_.additive_step);
    limit_increases_.fetch_add(1, std::memory_order_relaxed);
  }
  limit_.store(static_cast<std::size_t>(limit_raw_),
               std::memory_order_relaxed);
  refresh_pressure();
}

void OverloadController::note_queue(std::size_t depth, std::size_t capacity) {
  const double fraction =
      capacity > 0
          ? std::min(1.0, static_cast<double>(depth) /
                              static_cast<double>(capacity))
          : 0.0;
  queue_fraction_.store(fraction, std::memory_order_relaxed);
  refresh_pressure();
}

void OverloadController::refresh_pressure() {
  const double ratio = latency_ratio_.load(std::memory_order_relaxed);
  const double latency_component = ratio <= 1.0 ? 0.0 : 1.0 - 1.0 / ratio;
  const double raw = std::max(
      latency_component, queue_fraction_.load(std::memory_order_relaxed));
  pressure_.store(std::clamp(raw, 0.0, 1.0), std::memory_order_relaxed);
}

unsigned OverloadController::rank_of(int priority) const {
  const unsigned top = config_.priority_levels - 1;
  if (priority < 0) {
    return top;  // unset priority: shed last
  }
  return std::min(static_cast<unsigned>(priority), top);
}

LadderRung OverloadController::classify(unsigned rank,
                                        double step_scale) const {
  const double p = pressure();
  const unsigned r = std::min(rank, config_.priority_levels - 1);
  const double threshold =
      config_.shed_start + static_cast<double>(r) * config_.shed_step *
                               std::max(1.0, step_scale);
  if (p >= threshold) {
    return LadderRung::kShed;
  }
  if (p >= config_.bound_at) {
    return LadderRung::kBoundOnly;
  }
  if (p >= config_.stale_at) {
    return LadderRung::kStale;
  }
  return LadderRung::kExact;
}

OverloadSnapshot OverloadController::snapshot() const {
  OverloadSnapshot s;
  s.limit = limit_.load(std::memory_order_relaxed);
  s.pressure = pressure_.load(std::memory_order_relaxed);
  s.latency_ratio = latency_ratio_.load(std::memory_order_relaxed);
  s.queue_fraction = queue_fraction_.load(std::memory_order_relaxed);
  s.window_p99_ms = window_p99_.load(std::memory_order_relaxed) * 1e3;
  s.windows = windows_.load(std::memory_order_relaxed);
  s.limit_increases = limit_increases_.load(std::memory_order_relaxed);
  s.limit_decreases = limit_decreases_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.limited = limited_.load(std::memory_order_relaxed);
  s.stale_served = stale_served_.load(std::memory_order_relaxed);
  s.bound_served = bound_served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace xbar::service
