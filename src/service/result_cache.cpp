#include "service/result_cache.hpp"

#include <algorithm>
#include <utility>

namespace xbar::service {

std::uint64_t cache_fingerprint(std::string_view key) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

ResultCache::ResultCache(std::size_t shards, std::size_t entries_per_shard)
    : shards_(std::max<std::size_t>(shards, 1)),
      per_shard_(std::max<std::size_t>(entries_per_shard, 1)) {}

std::optional<std::string> ResultCache::get(std::string_view key) {
  const std::uint64_t fp = cache_fingerprint(key);
  Shard& shard = shard_for(fp);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  for (std::size_t i = 0; i < shard.entries.size(); ++i) {
    if (shard.entries[i].fp == fp && shard.entries[i].key == key) {
      const auto it =
          shard.entries.begin() + static_cast<std::ptrdiff_t>(i);
      std::rotate(shard.entries.begin(), it, it + 1);  // move to MRU front
      ++shard.hits;
      return shard.entries.front().value;
    }
  }
  ++shard.misses;
  return std::nullopt;
}

std::optional<ResultCache::AgedValue> ResultCache::get_with_age(
    std::string_view key, Clock::time_point now) {
  const std::uint64_t fp = cache_fingerprint(key);
  Shard& shard = shard_for(fp);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  for (std::size_t i = 0; i < shard.entries.size(); ++i) {
    if (shard.entries[i].fp == fp && shard.entries[i].key == key) {
      const auto it =
          shard.entries.begin() + static_cast<std::ptrdiff_t>(i);
      std::rotate(shard.entries.begin(), it, it + 1);
      ++shard.hits;
      const Entry& front = shard.entries.front();
      const double age = std::max(
          0.0, std::chrono::duration<double>(now - front.inserted).count());
      return AgedValue{front.value, age};
    }
  }
  ++shard.misses;
  return std::nullopt;
}

void ResultCache::put(std::string_view key, std::string value,
                      Clock::time_point now) {
  const std::uint64_t fp = cache_fingerprint(key);
  Shard& shard = shard_for(fp);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  for (std::size_t i = 0; i < shard.entries.size(); ++i) {
    if (shard.entries[i].fp == fp && shard.entries[i].key == key) {
      shard.entries[i].value = std::move(value);
      shard.entries[i].inserted = now;
      const auto it =
          shard.entries.begin() + static_cast<std::ptrdiff_t>(i);
      std::rotate(shard.entries.begin(), it, it + 1);
      return;
    }
  }
  if (shard.entries.size() >= per_shard_) {
    shard.entries.pop_back();
    ++shard.evictions;
  }
  shard.entries.insert(shard.entries.begin(),
                       Entry{fp, std::string(key), std::move(value), now});
}

ResultCacheCounters ResultCache::counters() const {
  ResultCacheCounters total;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.entries += shard.entries.size();
  }
  return total;
}

}  // namespace xbar::service
