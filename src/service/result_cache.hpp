// Sharded LRU result cache — the cross-request reuse layer of xbar_serve.
//
// The per-slot `sweep::SolverCache` reuses *grids* within one worker;
// this cache reuses *finished answers* across every worker and every
// connection: the value is the rendered result JSON of a completed
// solve/revenue/sweep, keyed on the canonical request fingerprint
// (`protocol.hpp` builds it from the exact bit patterns of every model
// parameter plus the solver spec and sweep sizes, so two requests share an
// entry iff they are the same computation).  A hit turns a multi-
// millisecond solve into a string copy, which is what makes a repeated-
// scenario load run an order of magnitude faster than a cold one.
//
// Sharded to keep workers out of each other's way: the key's 64-bit FNV-1a
// fingerprint picks the shard, each shard is an independent mutex + MRU
// vector (the same exact-key-compare design as SolverCache, so fingerprint
// collisions can never alias), and counters are aggregated on read.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xbar::service {

/// Lifetime counters, aggregated over all shards.
struct ResultCacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  ///< currently resident
};

class ResultCache {
 public:
  using Clock = std::chrono::steady_clock;

  /// A cached value together with how long ago it was inserted — the
  /// overload ladder's stale-serving path needs the age to decide whether
  /// an entry is still fresh and to flag the frame honestly.
  struct AgedValue {
    std::string value;
    double age_seconds = 0.0;
  };

  /// `shards` independent LRU shards of `entries_per_shard` entries each
  /// (both clamped to at least 1).
  explicit ResultCache(std::size_t shards = 8,
                       std::size_t entries_per_shard = 64);

  /// The cached value for `key`, refreshing its recency; counts a hit or
  /// a miss.
  [[nodiscard]] std::optional<std::string> get(std::string_view key);

  /// Like get(), but also reports the entry's age at `now`.  Identical
  /// hit/miss accounting and recency behavior.
  [[nodiscard]] std::optional<AgedValue> get_with_age(
      std::string_view key, Clock::time_point now = Clock::now());

  /// Insert (or refresh) `key`; evicts the shard's least-recently-used
  /// entry when full.  Does not touch the hit/miss counters.  Refreshing
  /// resets the entry's insertion time to `now`.
  void put(std::string_view key, std::string value,
           Clock::time_point now = Clock::now());

  [[nodiscard]] ResultCacheCounters counters() const;

  /// Total entry slots across every shard (shards * entries_per_shard).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return shards_.size() * per_shard_;
  }

 private:
  struct Entry {
    std::uint64_t fp = 0;
    std::string key;
    std::string value;
    Clock::time_point inserted{};
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries;  // most-recently-used first
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(std::uint64_t fp) noexcept {
    return shards_[fp % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_;
};

/// 64-bit FNV-1a over the key bytes (exposed for tests).
[[nodiscard]] std::uint64_t cache_fingerprint(std::string_view key) noexcept;

}  // namespace xbar::service
