// Socket plumbing shared by the server, the load generator, and the tests:
// an RAII fd, blocking dial/listen helpers, and newline framing with a hard
// line-length cap.
//
// Everything here is plain blocking POSIX TCP.  Timeouts are implemented
// with SO_RCVTIMEO so a reader can wake periodically (the server uses this
// to notice a drain request while parked on an idle connection), and all
// sends use MSG_NOSIGNAL so a peer that hangs up mid-write produces an
// error return instead of SIGPIPE.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace xbar::service {

/// Move-only owning file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { reset(); }
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Connect to host:port (numeric IPv4 host).  Returns an invalid Socket on
/// failure (serving-path callers decide whether that is fatal).
[[nodiscard]] Socket dial(const std::string& host, std::uint16_t port);

/// dial() with a connect deadline: a non-blocking connect polled for up to
/// `timeout_seconds`.  On failure returns an invalid Socket and, when
/// `errno_out` is non-null, the errno that ended the attempt (ETIMEDOUT
/// when the deadline elapsed, ECONNREFUSED when the peer refused, ...).
[[nodiscard]] Socket dial_timeout(const std::string& host, std::uint16_t port,
                                  double timeout_seconds,
                                  int* errno_out = nullptr);

/// Bind + listen on host:port (port 0 = ephemeral).  Raises
/// xbar::Error(kIo) on failure; `bound_port` receives the actual port.
[[nodiscard]] Socket listen_on(const std::string& host, std::uint16_t port,
                               std::uint16_t& bound_port);

/// Set SO_RCVTIMEO (0 disables).
void set_recv_timeout(int fd, double seconds);

/// Set SO_SNDTIMEO (0 disables).  With a send timeout armed, a stalled
/// peer that never drains its receive buffer makes send() fail with
/// EAGAIN instead of blocking the worker forever.
void set_send_timeout(int fd, double seconds);

enum class SendStatus : std::uint8_t {
  kOk,       ///< every byte handed to the kernel
  kTimeout,  ///< SO_SNDTIMEO elapsed mid-send (slow reader)
  kError,    ///< any other transport error (reset, closed, ...)
};

/// Send all of `line` plus a trailing '\n'.
[[nodiscard]] SendStatus send_line(int fd, std::string_view line);

/// send_line() collapsed to a bool (timeout counts as failure).
[[nodiscard]] bool write_line(int fd, std::string_view line);

/// Incremental newline framing over a blocking socket.
class LineReader {
 public:
  /// Lines longer than `max_line` bytes report kOverflow (the connection
  /// is then unsynchronized — callers should respond and close).
  LineReader(int fd, std::size_t max_line);

  enum class Status : std::uint8_t {
    kLine,      ///< `out` holds one complete line (without the newline)
    kEof,       ///< peer closed cleanly with no buffered partial line
    kTimeout,   ///< SO_RCVTIMEO elapsed with no complete line
    kOverflow,  ///< line exceeded max_line
    kError,     ///< transport error
  };

  /// Blocks until one of the outcomes above.  A trailing '\r' (telnet
  /// convention) is stripped.
  [[nodiscard]] Status read_line(std::string& out);

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
};

}  // namespace xbar::service
