#include "service/connection.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/error.hpp"

namespace xbar::service {

namespace {

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    raise(ErrorKind::kConfig, "invalid IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.release();
  }
  return *this;
}

void Socket::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket dial(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_address(host, port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Socket();
  }
  // Request/response round trips are latency-bound; never batch them.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Socket();
  }
  return sock;
}

Socket dial_timeout(const std::string& host, std::uint16_t port,
                    double timeout_seconds, int* errno_out) {
  const auto fail = [&](int err) {
    if (errno_out != nullptr) {
      *errno_out = err;
    }
    return Socket();
  };
  sockaddr_in addr{};
  try {
    addr = make_address(host, port);
  } catch (const xbar::Error&) {
    return fail(EINVAL);
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!sock.valid()) {
    return fail(errno);
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      return fail(errno);
    }
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>(std::ceil(timeout_seconds * 1e3));
    const int ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 0);
    if (ready == 0) {
      return fail(ETIMEDOUT);
    }
    if (ready < 0) {
      return fail(errno);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return fail(errno);
    }
    if (err != 0) {
      return fail(err);
    }
  }
  // Connected: hand the caller an ordinary blocking socket.
  const int flags = ::fcntl(sock.fd(), F_GETFL);
  if (flags >= 0) {
    ::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK);
  }
  return sock;
}

Socket listen_on(const std::string& host, std::uint16_t port,
                 std::uint16_t& bound_port) {
  const sockaddr_in addr = make_address(host, port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    raise(ErrorKind::kIo,
          std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    raise(ErrorKind::kIo, "bind(" + host + ":" + std::to_string(port) +
                              "): " + std::strerror(errno));
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    raise(ErrorKind::kIo,
          std::string("listen(): ") + std::strerror(errno));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                    &len) != 0) {
    raise(ErrorKind::kIo,
          std::string("getsockname(): ") + std::strerror(errno));
  }
  bound_port = ntohs(actual.sin_port);
  return sock;
}

namespace {

timeval to_timeval(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  return tv;
}

}  // namespace

void set_recv_timeout(int fd, double seconds) {
  const timeval tv = to_timeval(seconds);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void set_send_timeout(int fd, double seconds) {
  const timeval tv = to_timeval(seconds);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

SendStatus send_line(int fd, std::string_view line) {
  std::string frame;
  frame.reserve(line.size() + 1);
  frame.append(line);
  frame.push_back('\n');
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return SendStatus::kTimeout;
      }
      return SendStatus::kError;
    }
    sent += static_cast<std::size_t>(n);
  }
  return SendStatus::kOk;
}

bool write_line(int fd, std::string_view line) {
  return send_line(fd, line) == SendStatus::kOk;
}

LineReader::LineReader(int fd, std::size_t max_line)
    : fd_(fd), max_line_(max_line) {}

LineReader::Status LineReader::read_line(std::string& out) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      // The cap is a protocol bound on the line itself, so it applies even
      // when an oversized line arrived whole in a single recv.
      if (newline > max_line_) {
        return Status::kOverflow;
      }
      out.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (!out.empty() && out.back() == '\r') {
        out.pop_back();
      }
      return Status::kLine;
    }
    if (buffer_.size() > max_line_) {
      return Status::kOverflow;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::kEof;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::kTimeout;
      }
      return Status::kError;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace xbar::service
