// Thread-safe latency histogram for the serving path.
//
// Both `xbar_serve` (per-request service time, exposed through the `stats`
// method) and `xbar_loadgen` (end-to-end client latency) need percentiles
// from many recording threads with no coordination on the hot path.  This
// is a fixed geometric histogram: buckets spaced at 2^(1/4) (four per
// octave, ~19% relative width) starting at 1 microsecond, recorded with
// relaxed atomic increments — no locks, no allocation, bounded error on
// every quantile.  128 buckets reach past an hour, far beyond any sane
// request deadline.
//
// `snapshot()` reads the buckets without stopping writers; the result is a
// consistent-enough view for operational stats (each counter is atomically
// read, the set may straddle concurrent records — fine for monitoring).

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace xbar::service {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 128;

  /// Record one observation (negative values clamp to the first bucket).
  void record(double seconds) noexcept;

  /// Point-in-time view with the common serving percentiles, in seconds.
  struct Snapshot {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

  /// Upper edge of the bucket where the cumulative count first reaches
  /// `q * count` (q in [0, 1]); 0 when empty.  Error bounded by the ~19%
  /// bucket width.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t bucket_index(double seconds) noexcept;
  static double bucket_upper_edge(std::size_t index) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace xbar::service
