#include "service/protocol.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <sstream>
#include <utility>

#include "report/json_reader.hpp"
#include "report/json_writer.hpp"

namespace xbar::service {

namespace {

using report::JsonValue;

Method parse_method(const std::string& name) {
  if (name == "ping") return Method::kPing;
  if (name == "solve") return Method::kSolve;
  if (name == "revenue") return Method::kRevenue;
  if (name == "sweep") return Method::kSweep;
  if (name == "stats") return Method::kStats;
  if (name == "health") return Method::kHealth;
  if (name == "batch") return Method::kBatch;
  if (name == "observe") return Method::kObserve;
  if (name == "advise") return Method::kAdvise;
  raise(ErrorKind::kConfig,
        "unknown method '" + name +
            "' (expected ping, solve, revenue, sweep, batch, stats, health, "
            "observe, or advise)");
}

/// A JSON number that must be a non-negative integer <= `bound`.
unsigned as_bounded_unsigned(const JsonValue& v, const char* what,
                             unsigned bound) {
  const double d = v.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > static_cast<double>(bound)) {
    raise(ErrorKind::kConfig, std::string(what) +
                                  " must be an integer in [0, " +
                                  std::to_string(bound) + "]");
  }
  return static_cast<unsigned>(d);
}

double optional_number(const JsonValue& obj, std::string_view key,
                       double fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : v->as_number();
}

core::TrafficClass parse_class(const JsonValue& v, std::size_t index) {
  const std::string fallback_name = "class" + std::to_string(index);
  std::string name = fallback_name;
  if (const JsonValue* n = v.find("name")) {
    name = n->as_string();
  }
  const std::string& shape = v.at("shape").as_string();
  unsigned bandwidth = 1;
  if (const JsonValue* b = v.find("bandwidth")) {
    bandwidth = as_bounded_unsigned(*b, "class bandwidth", kMaxSwitchSide);
  }
  const double mu = optional_number(v, "mu", 1.0);
  const double weight = optional_number(v, "weight", 1.0);
  if (shape == "poisson") {
    return core::TrafficClass::poisson(std::move(name),
                                       v.at("rho").as_number(), bandwidth, mu,
                                       weight);
  }
  if (shape == "bursty") {
    return core::TrafficClass::bursty(std::move(name),
                                      v.at("alpha").as_number(),
                                      optional_number(v, "beta", 0.0),
                                      bandwidth, mu, weight);
  }
  raise(ErrorKind::kConfig, "class \"" + name + "\": unknown shape '" +
                                shape + "' (expected poisson|bursty)");
}

core::CrossbarModel parse_scenario(const JsonValue& scenario) {
  const JsonValue& sw = scenario.at("switch");
  const unsigned n1 =
      as_bounded_unsigned(sw.at("inputs"), "switch inputs", kMaxSwitchSide);
  const unsigned n2 =
      sw.find("outputs") == nullptr
          ? n1
          : as_bounded_unsigned(sw.at("outputs"), "switch outputs",
                                kMaxSwitchSide);
  if (n1 == 0 || n2 == 0) {
    raise(ErrorKind::kConfig, "switch inputs/outputs must be positive");
  }
  const report::JsonArray& class_array = scenario.at("classes").as_array();
  if (class_array.empty()) {
    raise(ErrorKind::kConfig, "scenario needs at least one traffic class");
  }
  if (class_array.size() > kMaxClasses) {
    raise(ErrorKind::kConfig,
          "too many traffic classes (" + std::to_string(class_array.size()) +
              " > " + std::to_string(kMaxClasses) + ")");
  }
  std::vector<core::TrafficClass> classes;
  classes.reserve(class_array.size());
  for (std::size_t r = 0; r < class_array.size(); ++r) {
    classes.push_back(parse_class(class_array[r], r));
  }
  return core::CrossbarModel(core::Dims{n1, n2}, std::move(classes));
}

/// Raw JSON rendering of the request id (string or number only, so the
/// echo is unambiguous).
std::string render_id(const JsonValue& v) {
  if (v.is_string()) {
    return "\"" + report::JsonWriter::escape(v.as_string()) + "\"";
  }
  if (v.is_number()) {
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf),
                                         v.as_number());
    (void)ec;
    return std::string(buf, end);
  }
  raise(ErrorKind::kConfig, "id must be a string or a number");
}

void hex_bits(std::string& out, double v) {
  char buf[20];
  const auto [end, ec] = std::to_chars(
      buf, buf + sizeof(buf), std::bit_cast<std::uint64_t>(v), 16);
  (void)ec;
  out.append(buf, end);
  out += ',';
}

void append_model_key(std::string& key, const core::CrossbarModel& model) {
  key += std::to_string(model.dims().n1) + "x" +
         std::to_string(model.dims().n2);
  for (const core::TrafficClass& c : model.classes()) {
    key += '|';
    key += c.name;
    key += ':';
    key += std::to_string(c.bandwidth) + ",";
    hex_bits(key, c.alpha_tilde);
    hex_bits(key, c.beta_tilde);
    hex_bits(key, c.mu);
    hex_bits(key, c.weight);
  }
}

/// Canonical computation fingerprint: method | solver | per scenario its
/// dims and exact class parameters (names included — they are echoed in
/// the payload) | sizes.
std::string canonical_key(Method method, const core::SolverSpec& solver,
                          const std::vector<core::CrossbarModel>& models,
                          const std::vector<unsigned>& sizes) {
  std::string key;
  key.reserve(128);
  key += to_string(method);
  key += '|';
  key += solver.to_string();
  for (const core::CrossbarModel& model : models) {
    key += '|';
    append_model_key(key, model);
  }
  if (!sizes.empty()) {
    key += "|sizes=";
    for (const unsigned n : sizes) {
      key += std::to_string(n) + ",";
    }
  }
  return key;
}

advisor::ObservedEvent parse_event(const JsonValue& v, std::size_t index) {
  if (!v.is_object()) {
    raise(ErrorKind::kConfig,
          "events[" + std::to_string(index) + "] must be an object");
  }
  advisor::ObservedEvent e;
  e.class_name = v.at("class").as_string();
  if (e.class_name.empty() || e.class_name.size() > 128) {
    raise(ErrorKind::kConfig, "event class name must be 1..128 chars");
  }
  e.t = v.at("t").as_number();
  if (!std::isfinite(e.t) || e.t < 0.0) {
    raise(ErrorKind::kConfig,
          "event t must be a finite non-negative trace time");
  }
  e.hold = optional_number(v, "hold", 0.0);
  if (!std::isfinite(e.hold) || e.hold < 0.0) {
    raise(ErrorKind::kConfig, "event hold must be finite and non-negative");
  }
  if (const JsonValue* b = v.find("bandwidth")) {
    e.bandwidth = as_bounded_unsigned(*b, "event bandwidth", kMaxSwitchSide);
    if (e.bandwidth == 0) {
      raise(ErrorKind::kConfig, "event bandwidth must be positive");
    }
  }
  e.weight = optional_number(v, "weight", 1.0);
  if (!std::isfinite(e.weight) || e.weight < 0.0) {
    raise(ErrorKind::kConfig, "event weight must be finite and non-negative");
  }
  if (const JsonValue* blocked = v.find("blocked")) {
    e.blocked = blocked->as_bool();
  }
  return e;
}

}  // namespace

std::string_view to_string(Method method) noexcept {
  switch (method) {
    case Method::kPing: return "ping";
    case Method::kSolve: return "solve";
    case Method::kRevenue: return "revenue";
    case Method::kSweep: return "sweep";
    case Method::kStats: return "stats";
    case Method::kHealth: return "health";
    case Method::kBatch: return "batch";
    case Method::kObserve: return "observe";
    case Method::kAdvise: return "advise";
  }
  return "?";
}

Request parse_request(std::string_view line) {
  const JsonValue root = report::parse_json(line);
  if (!root.is_object()) {
    raise(ErrorKind::kConfig, "request must be a JSON object");
  }
  Request req;
  req.method = parse_method(root.at("method").as_string());
  if (const JsonValue* id = root.find("id")) {
    req.id = render_id(*id);
  }
  if (const JsonValue* deadline = root.find("deadline_ms")) {
    req.deadline_ms = deadline->as_number();
    if (!(req.deadline_ms >= 0.0) || !std::isfinite(req.deadline_ms)) {
      raise(ErrorKind::kConfig,
            "deadline_ms must be a finite non-negative number");
    }
  }
  if (const JsonValue* no_cache = root.find("no_cache")) {
    req.no_cache = no_cache->as_bool();
  }
  if (const JsonValue* priority = root.find("priority")) {
    req.priority = static_cast<int>(
        as_bounded_unsigned(*priority, "priority", 63));
  }

  if (req.method == Method::kObserve) {
    // Advisor ingestion: a bounded array of trace events, never cached.
    const report::JsonArray& events = root.at("events").as_array();
    if (events.empty() || events.size() > kMaxObserveEvents) {
      raise(ErrorKind::kConfig,
            "events must hold 1.." + std::to_string(kMaxObserveEvents) +
                " entries");
    }
    req.events.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      req.events.push_back(parse_event(events[i], i));
    }
    return req;
  }

  if (req.method == Method::kBatch) {
    const report::JsonArray& scenarios = root.at("scenarios").as_array();
    if (scenarios.empty() || scenarios.size() > kMaxBatchScenarios) {
      raise(ErrorKind::kConfig,
            "scenarios must hold 1.." + std::to_string(kMaxBatchScenarios) +
                " entries");
    }
    req.scenarios.reserve(scenarios.size());
    for (const JsonValue& scenario : scenarios) {
      req.scenarios.push_back(parse_scenario(scenario));
    }
    if (const JsonValue* solver = root.find("solver")) {
      req.solver = core::SolverSpec::parse(solver->as_string());
    }
    req.cache_key =
        canonical_key(req.method, req.solver, req.scenarios, req.sizes);
    return req;
  }

  const bool needs_model = req.method == Method::kSolve ||
                           req.method == Method::kRevenue ||
                           req.method == Method::kSweep;
  if (!needs_model) {
    return req;
  }
  req.model = parse_scenario(root.at("scenario"));
  if (const JsonValue* solver = root.find("solver")) {
    req.solver = core::SolverSpec::parse(solver->as_string());
  }
  if (req.method == Method::kSweep) {
    const report::JsonArray& sizes = root.at("sizes").as_array();
    if (sizes.empty() || sizes.size() > kMaxSweepSizes) {
      raise(ErrorKind::kConfig,
            "sizes must hold 1.." + std::to_string(kMaxSweepSizes) +
                " switch sizes");
    }
    req.sizes.reserve(sizes.size());
    for (const JsonValue& v : sizes) {
      const unsigned n =
          as_bounded_unsigned(v, "sweep size", kMaxSwitchSide);
      if (n == 0) {
        raise(ErrorKind::kConfig, "sweep sizes must be positive");
      }
      req.sizes.push_back(n);
    }
  }
  req.cache_key = canonical_key(req.method, req.solver, {*req.model},
                                req.sizes);
  return req;
}

std::string render_ok(const std::string& id, std::string_view result_json,
                      bool cached) {
  std::string out;
  out.reserve(result_json.size() + 64);
  out += "{\"id\":";
  out += id;
  out += ",\"status\":\"ok\",\"cached\":";
  out += cached ? "true" : "false";
  out += ",\"result\":";
  out += result_json;
  out += "}";
  return out;
}

std::string render_ok_degraded(const std::string& id,
                               std::string_view result_json, bool cached,
                               std::string_view degraded_json) {
  std::string out;
  out.reserve(result_json.size() + degraded_json.size() + 80);
  out += "{\"id\":";
  out += id;
  out += ",\"status\":\"ok\",\"cached\":";
  out += cached ? "true" : "false";
  out += ",\"degraded\":";
  out += degraded_json;
  out += ",\"result\":";
  out += result_json;
  out += "}";
  return out;
}

std::string render_error(const std::string& id, std::string_view kind,
                         std::string_view message) {
  std::string out;
  out += "{\"id\":";
  out += id;
  out += ",\"status\":\"error\",\"error\":{\"kind\":\"";
  out += report::JsonWriter::escape(kind);
  out += "\",\"message\":\"";
  out += report::JsonWriter::escape(message);
  out += "\"}}";
  return out;
}

std::string render_error(const std::string& id, const xbar::Error& error) {
  return render_error(id, xbar::to_string(error.kind()), error.message());
}

}  // namespace xbar::service
