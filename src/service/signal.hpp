// SIGTERM/SIGINT -> graceful drain, without signal handlers.
//
// The signals are *blocked* process-wide (install before spawning any
// threads, so every thread inherits the mask) and collected synchronously
// with sigwait() in `wait_for_drain_signal()`.  The caller then runs the
// ordinary drain sequence (stop accepting, finish in-flight requests,
// flush stats) in normal C++ — nothing ever runs in handler context, and
// no handler can be deferred or lost in a thread parked in a blocking
// call (an async handler + self-pipe is exactly the shape TSan's deferred
// signal delivery starves).

#pragma once

namespace xbar::service {

/// Block SIGTERM and SIGINT in the calling thread.  Call from main()
/// before starting the server so every spawned thread inherits the mask.
/// Raises xbar::Error(kIo) on failure.
void install_drain_signals();

/// Block in sigwait() until SIGTERM or SIGINT arrives; returns the signal
/// number.  Call after install_drain_signals(), from the same thread.
[[nodiscard]] int wait_for_drain_signal();

}  // namespace xbar::service
