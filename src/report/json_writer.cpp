#include "report/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace xbar::report {

JsonWriter::JsonWriter(std::ostream& os, Style style)
    : os_(os), style_(style) {}

void JsonWriter::newline_indent() {
  if (style_ == Style::kCompact) {
    return;
  }
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    os_ << "  ";
  }
}

void JsonWriter::begin_value() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already placed the comma and indent
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) {
      os_ << ',';
    }
    stack_.back().has_items = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  os_ << '{';
  stack_.push_back(Level{Scope::kObject, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_items = !stack_.empty() && stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    newline_indent();
  }
  os_ << '}';
  if (stack_.empty() && style_ == Style::kPretty) {
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  os_ << '[';
  stack_.push_back(Level{Scope::kArray, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_items = !stack_.empty() && stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    newline_indent();
  }
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!stack_.empty()) {
    if (stack_.back().has_items) {
      os_ << ',';
    }
    stack_.back().has_items = true;
    newline_indent();
  }
  os_ << '"' << escape(name)
      << (style_ == Style::kCompact ? "\":" : "\": ");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_value();
  os_ << '"' << escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) {
    return value_null();  // JSON has no NaN/Inf
  }
  begin_value();
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), number);
  os_.write(buf, end - buf);
  (void)ec;  // shortest round-trip always fits in 32 chars
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_value();
  os_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  begin_value();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_value();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  begin_value();
  os_ << "null";
  return *this;
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace xbar::report
