// Streaming JSON writer for machine-readable CLI output.
//
// A tiny, dependency-free emitter: containers are opened/closed explicitly
// and the writer tracks nesting to place commas, so callers never build
// intermediate DOM trees.  Doubles render with shortest round-trip
// formatting (std::to_chars); non-finite values — which JSON cannot carry —
// become null.  The default style is pretty-printed with two-space
// indentation so it is pleasant in a terminal; `Style::kCompact` emits no
// whitespace at all, which the newline-delimited serving protocol needs
// (one response per line, ever).
//
//   JsonWriter json(std::cout);
//   json.begin_object();
//   json.key("blocking").value(0.005);
//   json.key("classes").begin_array().value("voice").value("bulk").end_array();
//   json.end_object();

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace xbar::report {

class JsonWriter {
 public:
  enum class Style : std::uint8_t {
    kPretty,   ///< two-space indentation, newline-terminated document
    kCompact,  ///< no whitespace (single-line wire frames)
  };

  /// Writes to `os`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& os, Style style = Style::kPretty);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(unsigned number) {
    return value(static_cast<std::uint64_t>(number));
  }
  JsonWriter& value(int number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value_null();

  /// JSON string escaping (quotes not included).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void begin_value();  // comma/indent bookkeeping before any value/container
  void newline_indent();

  std::ostream& os_;
  Style style_;
  struct Level {
    Scope scope;
    bool has_items = false;
  };
  std::vector<Level> stack_;
  bool after_key_ = false;
};

}  // namespace xbar::report
