#include "report/args.hpp"

#include <cstdlib>

namespace xbar::report {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_.emplace(arg.substr(2), "");
        ordered_.emplace_back(arg.substr(2), "");
      } else {
        flags_.emplace(arg.substr(2, eq - 2), arg.substr(eq + 1));
        ordered_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return std::nullopt;
  }
  return it->second;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) {
    return fallback;
  }
  return std::strtod(v->c_str(), nullptr);
}

unsigned Args::get_unsigned(const std::string& key, unsigned fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) {
    return fallback;
  }
  return static_cast<unsigned>(std::strtoul(v->c_str(), nullptr, 10));
}

bool Args::has(const std::string& key) const { return flags_.contains(key); }

std::vector<std::string> Args::get_all(const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : ordered_) {
    if (k == key) {
      values.push_back(v);
    }
  }
  return values;
}

}  // namespace xbar::report
