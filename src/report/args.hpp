// Tiny command-line flag parser for the bench/example binaries.
// Accepts --key=value and --flag forms; anything else is a positional.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace xbar::report {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Value of --key=value, if present.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// --key=value parsed as double, or `fallback`.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// --key=value parsed as unsigned, or `fallback`.
  [[nodiscard]] unsigned get_unsigned(const std::string& key,
                                      unsigned fallback) const;

  /// True when --key was given (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

  /// Every value of a repeatable --key=value, in command-line order
  /// (empty when absent).  `get` sees the first occurrence.
  [[nodiscard]] std::vector<std::string> get_all(
      const std::string& key) const;

  /// Non-flag arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::pair<std::string, std::string>> ordered_;  ///< all flags
  std::vector<std::string> positional_;
};

}  // namespace xbar::report
