#include "report/solve_json.hpp"

namespace xbar::report {

void write_measures_json(JsonWriter& json, const core::CrossbarModel& model,
                         const core::Measures& measures) {
  json.begin_object();
  json.key("per_class").begin_array();
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const core::ClassMeasures& cm = measures.per_class[r];
    json.begin_object();
    json.key("name").value(model.classes()[r].name);
    json.key("bandwidth").value(model.normalized(r).bandwidth);
    json.key("blocking").value(cm.blocking);
    json.key("non_blocking").value(cm.non_blocking);
    json.key("concurrency").value(cm.concurrency);
    json.key("throughput").value(cm.throughput);
    json.key("port_usage").value(cm.port_usage);
    json.end_object();
  }
  json.end_array();
  json.key("revenue").value(measures.revenue);
  json.key("total_throughput").value(measures.total_throughput);
  json.key("utilization").value(measures.utilization);
  json.end_object();
}

void write_diagnostics_json(JsonWriter& json,
                            const core::SolveDiagnostics& d) {
  json.begin_object();
  json.key("requested").value(core::to_string(d.requested));
  json.key("algorithm").value(core::to_string(d.algorithm));
  json.key("backend").value(core::to_string(d.backend));
  json.key("fabric").value(d.fabric.to_string());
  json.key("fast_fallback").value(d.fast_fallback);
  json.key("rescales").value(d.rescales);
  json.key("grid").begin_object();
  json.key("n1").value(d.grid.n1);
  json.key("n2").value(d.grid.n2);
  json.end_object();
  json.key("evaluated_at").begin_object();
  json.key("n1").value(d.evaluated_at.n1);
  json.key("n2").value(d.evaluated_at.n2);
  json.end_object();
  json.key("cache_hit").value(d.cache_hit);
  json.key("batched").value(d.batched);
  json.key("wall_seconds").value(d.wall_seconds);
  if (!d.escalation.empty()) {
    json.key("escalation").begin_array();
    for (const core::NumericBackend backend : d.escalation) {
      json.value(core::to_string(backend));
    }
    json.end_array();
  }
  json.end_object();
}

}  // namespace xbar::report
