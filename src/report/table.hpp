// Fixed-width text tables for the benchmark harnesses, mirroring the
// paper's table layout.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xbar::report {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple column-oriented table: declare headers, append rows of cells,
/// print with automatic width computation.
class Table {
 public:
  /// Declare the columns; alignment defaults to right (numeric).
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> alignments = {});

  /// Append one row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Format a double with `precision` significant digits (general format).
  static std::string num(double value, int precision = 6);

  /// Format a double in scientific notation.
  static std::string sci(double value, int precision = 5);

  /// Format an integer.
  static std::string integer(long long value);

  /// Render with column separators and a header rule.
  void print(std::ostream& os) const;

  /// Number of data rows so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xbar::report
