#include "report/json_reader.hpp"

#include <charconv>
#include <cstdint>

#include "core/error.hpp"

namespace xbar::report {

namespace {

const char* type_name(const JsonValue& v) {
  if (v.is_null()) return "null";
  if (v.is_bool()) return "bool";
  if (v.is_number()) return "number";
  if (v.is_string()) return "string";
  if (v.is_array()) return "array";
  return "object";
}

[[noreturn]] void type_error(const char* wanted, const JsonValue& v) {
  raise(ErrorKind::kParse, std::string("JSON value is ") + type_name(v) +
                               ", expected " + wanted);
}

class Parser {
 public:
  /// Containers may nest at most this deep.  The parser recurses per
  /// nesting level, so without a cap a short hostile input ("[[[[...")
  /// converts O(bytes) into O(bytes) stack frames and crashes the process
  /// — the serving path feeds this parser untrusted sockets.
  static constexpr std::size_t kMaxDepth = 64;

  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    raise(ErrorKind::kParse,
          what + " at byte " + std::to_string(pos_) + " of JSON input");
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  /// Bumps the container depth for one recursion level (and checks the
  /// cap); restores it on every exit path, including thrown errors.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("JSON nesting exceeds depth limit of " +
                     std::to_string(kMaxDepth));
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': {
        const DepthGuard depth(*this);
        return parse_object();
      }
      case '[': {
        const DepthGuard depth(*this);
        return parse_array();
      }
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_keyword("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_keyword("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_keyword("null")) return JsonValue();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    if (peek() != '"') {
      fail("expected string");
    }
    ++pos_;
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    const std::uint32_t cp = parse_hex4();
    // The writer only emits \u00XX for control characters; decode the full
    // BMP anyway (no surrogate-pair recombination — lone surrogates fail).
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      fail("surrogate code point in \\u escape");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) {
        fail("truncated \\u escape");
      }
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("non-hex digit in \\u escape");
      }
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    // JSON forbids leading zeros ("01"); std::from_chars would accept them.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      pos_ = start;
      fail("invalid number");
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;  ///< current container nesting (see kMaxDepth)
};

}  // namespace

bool JsonValue::is_null() const noexcept {
  return std::holds_alternative<std::monostate>(data_);
}
bool JsonValue::is_bool() const noexcept {
  return std::holds_alternative<bool>(data_);
}
bool JsonValue::is_number() const noexcept {
  return std::holds_alternative<double>(data_);
}
bool JsonValue::is_string() const noexcept {
  return std::holds_alternative<std::string>(data_);
}
bool JsonValue::is_array() const noexcept {
  return std::holds_alternative<JsonArray>(data_);
}
bool JsonValue::is_object() const noexcept {
  return std::holds_alternative<JsonObject>(data_);
}

bool JsonValue::as_bool() const {
  if (!is_bool()) type_error("bool", *this);
  return std::get<bool>(data_);
}

double JsonValue::as_number() const {
  if (!is_number()) type_error("number", *this);
  return std::get<double>(data_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) type_error("string", *this);
  return std::get<std::string>(data_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) type_error("array", *this);
  return std::get<JsonArray>(data_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) type_error("object", *this);
  return std::get<JsonObject>(data_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [name, value] : std::get<JsonObject>(data_)) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (!is_object()) type_error("object", *this);
  if (const JsonValue* v = find(key)) {
    return *v;
  }
  raise(ErrorKind::kParse,
        "JSON object is missing key \"" + std::string(key) + "\"");
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace xbar::report
