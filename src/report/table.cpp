#include "report/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace xbar::report {

Table::Table(std::vector<std::string> headers, std::vector<Align> alignments)
    : headers_(std::move(headers)), alignments_(std::move(alignments)) {
  if (alignments_.empty()) {
    alignments_.assign(headers_.size(), Align::kRight);
  }
  if (alignments_.size() != headers_.size()) {
    throw std::invalid_argument("Table: alignment/header count mismatch");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return os.str();
}

std::string Table::sci(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::scientific << value;
  return os.str();
}

std::string Table::integer(long long value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      os << (c == 0 ? "" : "  ");
      if (alignments_[c] == Align::kRight) {
        os << std::string(pad, ' ') << cells[c];
      } else {
        os << cells[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = headers_.empty() ? 0 : (headers_.size() - 1) * 2;
  for (const std::size_t w : widths) {
    total += w;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace xbar::report
