// Canonical JSON shapes for solve results — shared by every machine-
// readable surface.
//
// The CLI's --json output and the serving protocol must describe measures
// and diagnostics identically (clients cache and diff them), so the
// emitters live here rather than being copied per frontend.  Callers own
// the surrounding document structure; these write exactly one value each.

#pragma once

#include "core/model.hpp"
#include "core/solver_spec.hpp"
#include "report/json_writer.hpp"

namespace xbar::report {

/// Measures object: per_class array (name, bandwidth, blocking, ...) plus
/// revenue / total_throughput / utilization.
void write_measures_json(JsonWriter& json, const core::CrossbarModel& model,
                         const core::Measures& measures);

/// Diagnostics object: requested/resolved algorithm, backend, fallback,
/// rescales, grid/eval dims, cache hit, wall time, escalation ladder.
void write_diagnostics_json(JsonWriter& json,
                            const core::SolveDiagnostics& diagnostics);

}  // namespace xbar::report
