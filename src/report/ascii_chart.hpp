// Terminal line charts: the closest a bench binary can get to "regenerating
// a figure".  Multiple named series share one canvas; linear or log-10
// vertical scale (the paper plots blocking on a linear 1e-3 scale, but the
// peaky sweeps span decades and read better in log).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xbar::report {

/// Vertical axis scaling.
enum class Scale { kLinear, kLog10 };

/// One plotted series.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Render options.
struct ChartOptions {
  unsigned width = 72;    ///< plot area columns
  unsigned height = 20;   ///< plot area rows
  Scale scale = Scale::kLinear;
  std::string x_label = "x";
  std::string y_label = "y";
  std::string title;
};

/// Scatter/line chart of the series onto `os`.  Each series is drawn with
/// its own glyph and listed in a legend.  X is always linear.
void render_chart(std::ostream& os, const std::vector<Series>& series,
                  const ChartOptions& options);

}  // namespace xbar::report
