#include "report/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace xbar::report {

namespace {

constexpr std::string_view kGlyphs = "*+xo#@%&";

// Transformed y, or NaN for anything unplottable: NaN and ±inf carry no
// position (log10(+inf) is +inf, which would swallow the whole y range),
// so both are skipped identically by the callers below.
double transform(double y, Scale scale) {
  if (!std::isfinite(y)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (scale == Scale::kLog10) {
    return y > 0.0 ? std::log10(y) : std::numeric_limits<double>::quiet_NaN();
  }
  return y;
}

std::string format_tick(double value, Scale scale) {
  std::ostringstream os;
  os.precision(3);
  if (scale == Scale::kLog10) {
    os << std::scientific << std::pow(10.0, value);
  } else {
    os << std::scientific << value;
  }
  return os.str();
}

}  // namespace

void render_chart(std::ostream& os, const std::vector<Series>& series,
                  const ChartOptions& options) {
  // Determine data ranges in transformed coordinates.
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -y_min;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double ty = transform(s.y[i], options.scale);
      if (std::isnan(ty) || !std::isfinite(s.x[i])) {
        continue;
      }
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      y_min = std::min(y_min, ty);
      y_max = std::max(y_max, ty);
    }
  }
  if (!(x_min <= x_max) || !(y_min <= y_max)) {
    os << "(no data)\n";
    return;
  }
  if (x_max == x_min) {
    x_max = x_min + 1.0;
  }
  if (y_max == y_min) {
    y_max = y_min + 1.0;
  }

  const unsigned w = options.width;
  const unsigned h = options.height;
  std::vector<std::string> canvas(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % kGlyphs.size()];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double ty = transform(s.y[i], options.scale);
      if (std::isnan(ty) || !std::isfinite(s.x[i])) {
        continue;
      }
      const auto col = static_cast<unsigned>(
          std::lround((s.x[i] - x_min) / (x_max - x_min) * (w - 1)));
      const auto row = static_cast<unsigned>(
          std::lround((ty - y_min) / (y_max - y_min) * (h - 1)));
      canvas[h - 1 - row][col] = glyph;
    }
  }

  if (!options.title.empty()) {
    os << options.title << '\n';
  }
  const std::string y_hi = format_tick(y_max, options.scale);
  const std::string y_lo = format_tick(y_min, options.scale);
  const std::size_t margin = std::max(y_hi.size(), y_lo.size());
  for (unsigned r = 0; r < h; ++r) {
    std::string label(margin, ' ');
    if (r == 0) {
      label = y_hi + std::string(margin - y_hi.size(), ' ');
    } else if (r == h - 1) {
      label = y_lo + std::string(margin - y_lo.size(), ' ');
    }
    os << label << " |" << canvas[r] << '\n';
  }
  os << std::string(margin + 1, ' ') << '+' << std::string(w, '-') << '\n';
  std::ostringstream xs;
  xs.precision(4);
  xs << x_min;
  std::ostringstream xe;
  xe.precision(4);
  xe << x_max;
  os << std::string(margin + 2, ' ') << xs.str() << " <- " << options.x_label
     << " -> " << xe.str() << '\n';
  os << "  y: " << options.y_label
     << (options.scale == Scale::kLog10 ? " (log scale)" : "") << "   legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << kGlyphs[si % kGlyphs.size()] << "=" << series[si].label;
  }
  os << '\n';
}

}  // namespace xbar::report
