// Minimal JSON parser — the read half of json_writer.
//
// Checkpoint/resume needs to load back exactly what `JsonWriter` emits, so
// this is a small recursive-descent parser over the full JSON grammar
// (objects, arrays, strings with the writer's escape set plus \uXXXX,
// numbers via std::from_chars for exact double round-trip, true/false/null).
// It builds a plain DOM (`JsonValue`) — checkpoints are small, so no
// streaming machinery.  Malformed input raises xbar::Error(kParse) with a
// byte offset; the typed accessors raise kParse on shape mismatches so
// loaders read as straight-line code.
//
// The parser is hardened for untrusted input (the serving protocol feeds
// it raw socket bytes): trailing bytes after the document and container
// nesting deeper than 64 levels both raise kParse instead of recursing
// without bound.

#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace xbar::report {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// Ordered map: iteration order is insertion order, matching the writer.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  JsonValue() = default;  // null
  explicit JsonValue(bool b) : data_(b) {}
  explicit JsonValue(double d) : data_(d) {}
  explicit JsonValue(std::string s) : data_(std::move(s)) {}
  explicit JsonValue(JsonArray a) : data_(std::move(a)) {}
  explicit JsonValue(JsonObject o) : data_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept;
  [[nodiscard]] bool is_bool() const noexcept;
  [[nodiscard]] bool is_number() const noexcept;
  [[nodiscard]] bool is_string() const noexcept;
  [[nodiscard]] bool is_array() const noexcept;
  [[nodiscard]] bool is_object() const noexcept;

  /// Checked accessors: raise xbar::Error(kParse) when the value is not of
  /// the requested type (message names the expected/actual type).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; raises kParse if not an object or key missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Object member lookup that tolerates absence (nullptr when missing).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  std::variant<std::monostate, bool, double, std::string, JsonArray,
               JsonObject>
      data_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).  Raises xbar::Error(kParse) on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace xbar::report
