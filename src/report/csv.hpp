// Minimal CSV writer: every bench also emits machine-readable data next to
// its human-readable table so results can be post-processed/plotted.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xbar::report {

/// Streams rows of cells as RFC-4180-ish CSV (quotes cells containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Write one row.
  void row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);

  std::ostream& os_;
};

}  // namespace xbar::report
