#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "numeric/combinatorics.hpp"
#include "sim/event_queue.hpp"

namespace xbar::sim {

namespace {

enum class EventKind { kArrival, kCompletion };

struct Event {
  EventKind kind = EventKind::kArrival;
  std::uint32_t cls = 0;
  fabric::CircuitId circuit;
};

// Per-batch accumulators, reset at each batch boundary.
struct BatchAccum {
  std::vector<double> kr_dt;     // integral of k_r over the batch
  std::vector<double> probe_dt;  // integral of the B_r probe
  std::vector<std::uint64_t> offered;
  std::vector<std::uint64_t> blocked;
  double port_dt = 0.0;  // integral of busy-port count
  double span = 0.0;     // batch duration actually accumulated

  explicit BatchAccum(std::size_t R)
      : kr_dt(R, 0.0), probe_dt(R, 0.0), offered(R, 0), blocked(R, 0) {}

  void reset() {
    std::fill(kr_dt.begin(), kr_dt.end(), 0.0);
    std::fill(probe_dt.begin(), probe_dt.end(), 0.0);
    std::fill(offered.begin(), offered.end(), 0);
    std::fill(blocked.begin(), blocked.end(), 0);
    port_dt = 0.0;
    span = 0.0;
  }
};

}  // namespace

struct Simulator::Impl {
  core::CrossbarModel model;
  fabric::SwitchFabric& fabric;
  SimulationConfig cfg;
  dist::Xoshiro256 rng;
  std::vector<std::unique_ptr<dist::ServiceDistribution>> services;
  std::unique_ptr<OutputSelector> output_selector = make_uniform_selector();

  // Dynamic state.
  double now = 0.0;
  std::vector<unsigned> k;        // active circuits per class
  unsigned busy_ports = 0;        // sum a_r k_r
  EventQueue<Event> queue;
  std::vector<EventId> pending_arrival;
  std::vector<bool> arrival_scheduled;
  std::uint64_t events_processed = 0;
  bool ran = false;

  // Per-class constants.
  std::vector<double> tuple_count;  // P(N1,a) P(N2,a)

  // Output analysis.
  BatchAccum accum;
  std::vector<BatchMeans> bm_concurrency;
  std::vector<BatchMeans> bm_call_congestion;
  std::vector<BatchMeans> bm_time_congestion;
  BatchMeans bm_utilization;
  std::vector<std::uint64_t> total_offered;
  std::vector<std::uint64_t> total_blocked;

  Impl(const core::CrossbarModel& m, fabric::SwitchFabric& f,
       SimulationConfig c)
      : model(m),
        fabric(f),
        cfg(c),
        rng(c.seed),
        k(m.num_classes(), 0),
        pending_arrival(m.num_classes()),
        arrival_scheduled(m.num_classes(), false),
        accum(m.num_classes()),
        bm_concurrency(m.num_classes()),
        bm_call_congestion(m.num_classes()),
        bm_time_congestion(m.num_classes()),
        total_offered(m.num_classes(), 0),
        total_blocked(m.num_classes(), 0) {
    if (fabric.num_inputs() != model.dims().n1 ||
        fabric.num_outputs() != model.dims().n2) {
      throw std::invalid_argument(
          "Simulator: fabric dimensions do not match the model");
    }
    services.reserve(model.num_classes());
    tuple_count.reserve(model.num_classes());
    for (const auto& cls : model.normalized_classes()) {
      services.push_back(dist::make_exponential(cls.mu));
      tuple_count.push_back(
          num::falling_factorial(model.dims().n1, cls.bandwidth) *
          num::falling_factorial(model.dims().n2, cls.bandwidth));
    }
  }

  // Total class-r arrival intensity in the current state.
  [[nodiscard]] double arrival_rate(std::size_t r) const {
    return tuple_count[r] * model.normalized(r).intensity(k[r]);
  }

  void schedule_arrival(std::size_t r) {
    if (arrival_scheduled[r]) {
      queue.cancel(pending_arrival[r]);
      arrival_scheduled[r] = false;
    }
    const double rate = arrival_rate(r);
    if (rate <= 0.0) {
      return;  // Bernoulli population exhausted; resumes on next completion
    }
    pending_arrival[r] = queue.schedule(
        now + rng.exponential(rate),
        Event{EventKind::kArrival, static_cast<std::uint32_t>(r), {}});
    arrival_scheduled[r] = true;
  }

  // a distinct uniform values in [0, n) — rejection is cheap for a << n.
  void sample_distinct(unsigned n, unsigned a, std::vector<unsigned>& out) {
    out.clear();
    while (out.size() < a) {
      const auto candidate = static_cast<unsigned>(rng.uniform_below(n));
      if (std::find(out.begin(), out.end(), candidate) == out.end()) {
        out.push_back(candidate);
      }
    }
  }

  // Probe value whose time average is the non-blocking probability B_r.
  [[nodiscard]] double probe(std::size_t r) const {
    const unsigned a = model.normalized(r).bandwidth;
    const core::Dims d = model.dims();
    if (busy_ports + a > d.cap()) {
      return 0.0;
    }
    return num::falling_factorial(d.n1 - busy_ports, a) *
           num::falling_factorial(d.n2 - busy_ports, a) / tuple_count[r];
  }

  // Accumulate the piecewise-constant state over [now, now + dt].
  void accumulate(double dt) {
    if (dt <= 0.0) {
      return;
    }
    for (std::size_t r = 0; r < k.size(); ++r) {
      accum.kr_dt[r] += static_cast<double>(k[r]) * dt;
      accum.probe_dt[r] += probe(r) * dt;
    }
    accum.port_dt += static_cast<double>(busy_ports) * dt;
    accum.span += dt;
  }

  void close_batch() {
    const double span = accum.span;
    if (span <= 0.0) {
      accum.reset();
      return;
    }
    for (std::size_t r = 0; r < k.size(); ++r) {
      bm_concurrency[r].add(accum.kr_dt[r] / span);
      bm_time_congestion[r].add(1.0 - accum.probe_dt[r] / span);
      if (accum.offered[r] > 0) {
        bm_call_congestion[r].add(static_cast<double>(accum.blocked[r]) /
                                  static_cast<double>(accum.offered[r]));
      }
      total_offered[r] += accum.offered[r];
      total_blocked[r] += accum.blocked[r];
    }
    bm_utilization.add(accum.port_dt /
                       (span * static_cast<double>(model.dims().cap())));
    accum.reset();
  }

  void handle_arrival(std::size_t r, bool measuring,
                      std::vector<unsigned>& in_scratch,
                      std::vector<unsigned>& out_scratch) {
    const unsigned a = model.normalized(r).bandwidth;
    if (measuring) {
      ++accum.offered[r];
    }
    sample_distinct(model.dims().n1, a, in_scratch);
    output_selector->sample(rng, model.dims().n2, a, out_scratch);
    // The class index doubles as the arbitration rank (0 = highest);
    // fabrics without an arbiter ignore it.
    const auto circuit = fabric.try_connect(in_scratch, out_scratch,
                                            static_cast<unsigned>(r));
    if (circuit) {
      ++k[r];
      busy_ports += a;
      queue.schedule(now + services[r]->sample(rng),
                     Event{EventKind::kCompletion,
                           static_cast<std::uint32_t>(r), *circuit});
    } else if (measuring) {
      ++accum.blocked[r];
    }
    // The pending arrival was consumed, and the rate may have changed.
    arrival_scheduled[r] = false;
    schedule_arrival(r);
  }

  void handle_completion(std::size_t r, fabric::CircuitId circuit) {
    fabric.release(circuit);
    const unsigned a = model.normalized(r).bandwidth;
    assert(k[r] > 0);
    --k[r];
    busy_ports -= a;
    schedule_arrival(r);  // lambda_r(k_r) changed
  }

  SimulationResult run() {
    if (ran) {
      throw std::logic_error("Simulator::run may only be called once");
    }
    ran = true;

    const double measure_start = cfg.warmup_time;
    const double measure_end = cfg.warmup_time + cfg.measurement_time;
    const double batch_len =
        cfg.measurement_time / static_cast<double>(cfg.num_batches);
    unsigned batch_idx = 0;

    for (std::size_t r = 0; r < k.size(); ++r) {
      schedule_arrival(r);
    }

    std::vector<unsigned> in_scratch;
    std::vector<unsigned> out_scratch;

    // Advance `now` to t2, splitting the span at batch boundaries.
    const auto advance_to = [&](double t2) {
      while (now < t2) {
        if (now < measure_start) {
          now = std::min(t2, measure_start);
          continue;
        }
        if (batch_idx >= cfg.num_batches) {
          now = t2;
          break;
        }
        const double boundary =
            measure_start + batch_len * static_cast<double>(batch_idx + 1);
        const double seg_end = std::min(t2, boundary);
        accumulate(seg_end - now);
        now = seg_end;
        if (now >= boundary) {
          close_batch();
          ++batch_idx;
        }
      }
    };

    while (true) {
      auto ev = queue.pop();
      if (!ev) {
        advance_to(measure_end);
        break;
      }
      const auto& [te, e] = *ev;
      if (te >= measure_end) {
        advance_to(measure_end);
        break;
      }
      advance_to(te);
      ++events_processed;
      const bool measuring = te >= measure_start && batch_idx < cfg.num_batches;
      if (e.kind == EventKind::kArrival) {
        handle_arrival(e.cls, measuring, in_scratch, out_scratch);
      } else {
        handle_completion(e.cls, e.circuit);
      }
    }
    // Close a final partial batch (possible only through float drift).
    if (accum.span > 0.0) {
      close_batch();
    }

    SimulationResult result;
    result.simulated_time = cfg.measurement_time;
    result.events = events_processed;
    result.utilization = bm_utilization.estimate();
    result.per_class.resize(k.size());
    for (std::size_t r = 0; r < k.size(); ++r) {
      ClassSimStats& s = result.per_class[r];
      s.offered = total_offered[r];
      s.blocked = total_blocked[r];
      s.call_congestion = bm_call_congestion[r].estimate();
      s.time_congestion = bm_time_congestion[r].estimate();
      s.concurrency = bm_concurrency[r].estimate();
    }
    return result;
  }
};

Simulator::Simulator(const core::CrossbarModel& model,
                     fabric::SwitchFabric& fabric, SimulationConfig config)
    : impl_(std::make_unique<Impl>(model, fabric, config)) {}

Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

void Simulator::set_service_distribution(
    std::size_t r, std::unique_ptr<dist::ServiceDistribution> d) {
  if (!d) {
    throw std::invalid_argument("null service distribution");
  }
  impl_->services.at(r) = std::move(d);
}

void Simulator::set_output_selector(std::unique_ptr<OutputSelector> selector) {
  if (!selector) {
    throw std::invalid_argument("null output selector");
  }
  impl_->output_selector = std::move(selector);
}

SimulationResult Simulator::run() { return impl_->run(); }

}  // namespace xbar::sim
