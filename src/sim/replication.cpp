#include "sim/replication.hpp"

#include <thread>

#include "fabric/crossbar.hpp"

namespace xbar::sim {

namespace {

// Combine per-replication point estimates into a Student-t interval.
Estimate combine(const std::vector<double>& values) {
  BatchMeans bm;
  for (const double v : values) {
    bm.add(v);
  }
  return bm.estimate();
}

}  // namespace

ReplicationResult run_replications(const core::CrossbarModel& model,
                                   const FabricFactory& factory,
                                   const ReplicationConfig& config) {
  const std::size_t R = model.num_classes();
  const std::size_t reps = config.replications;
  std::vector<SimulationResult> results(reps);

  unsigned threads = config.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, reps));

  // Static partition of replications over worker threads; each replication
  // owns its fabric and RNG stream, so there is no shared mutable state.
  const auto worker = [&](unsigned tid) {
    for (std::size_t rep = tid; rep < reps; rep += threads) {
      auto fabric = factory(rep);
      SimulationConfig sim_cfg = config.sim;
      sim_cfg.seed = config.sim.seed + 0x9E3779B9u * (rep + 1);
      Simulator simulator(model, *fabric, sim_cfg);
      if (config.service_factory) {
        for (std::size_t r = 0; r < R; ++r) {
          simulator.set_service_distribution(
              r, config.service_factory(r, model.normalized(r).mu));
        }
      }
      results[rep] = simulator.run();
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned tid = 0; tid < threads; ++tid) {
      pool.emplace_back(worker, tid);
    }
    for (auto& t : pool) {
      t.join();
    }
  }

  ReplicationResult agg;
  agg.replications = reps;
  agg.per_class.resize(R);
  std::vector<double> util;
  util.reserve(reps);
  for (const auto& res : results) {
    agg.total_events += res.events;
    util.push_back(res.utilization.mean);
  }
  agg.utilization = combine(util);
  for (std::size_t r = 0; r < R; ++r) {
    std::vector<double> cc;
    std::vector<double> tc;
    std::vector<double> conc;
    for (const auto& res : results) {
      const auto& c = res.per_class[r];
      if (c.offered > 0) {
        cc.push_back(static_cast<double>(c.blocked) /
                     static_cast<double>(c.offered));
      }
      tc.push_back(c.time_congestion.mean);
      conc.push_back(c.concurrency.mean);
      agg.per_class[r].offered += c.offered;
      agg.per_class[r].blocked += c.blocked;
    }
    agg.per_class[r].call_congestion = combine(cc);
    agg.per_class[r].time_congestion = combine(tc);
    agg.per_class[r].concurrency = combine(conc);
  }
  return agg;
}

ReplicationResult run_crossbar_replications(const core::CrossbarModel& model,
                                            const ReplicationConfig& config) {
  const core::Dims dims = model.dims();
  return run_replications(
      model,
      [dims](std::size_t) {
        return std::make_unique<fabric::CrossbarFabric>(dims.n1, dims.n2);
      },
      config);
}

}  // namespace xbar::sim
