#include "sim/replication.hpp"

#include "core/error.hpp"
#include "core/speedup.hpp"
#include "fabric/crossbar.hpp"
#include "fabric/priority_fabric.hpp"
#include "fabric/speedup_fabric.hpp"
#include "sweep/thread_pool.hpp"

namespace xbar::sim {

namespace {

// Combine per-replication point estimates into a Student-t interval.
Estimate combine(const std::vector<double>& values) {
  BatchMeans bm;
  for (const double v : values) {
    bm.add(v);
  }
  return bm.estimate();
}

}  // namespace

ReplicationResult run_replications(const core::CrossbarModel& model,
                                   const FabricFactory& factory,
                                   const ReplicationConfig& config) {
  const std::size_t R = model.num_classes();
  const std::size_t reps = config.replications;
  std::vector<SimulationResult> results(reps);

  // Each replication owns its fabric and RNG stream (seed derived from the
  // replication index, never from the thread), and writes only its own
  // result slot — so the outcome is identical for every thread count.  The
  // shared pool replaces the old hand-rolled std::thread spawning.
  sweep::ThreadPool::shared().parallel_for(
      reps, config.threads, [&](std::size_t rep, unsigned) {
        auto fabric = factory(rep);
        SimulationConfig sim_cfg = config.sim;
        sim_cfg.seed =
            config.sim.seed + 0x9E3779B9u * (static_cast<unsigned>(rep) + 1);
        Simulator simulator(model, *fabric, sim_cfg);
        if (config.service_factory) {
          for (std::size_t r = 0; r < R; ++r) {
            simulator.set_service_distribution(
                r, config.service_factory(r, model.normalized(r).mu));
          }
        }
        if (config.output_selector_factory) {
          simulator.set_output_selector(config.output_selector_factory(rep));
        }
        results[rep] = simulator.run();
      });

  ReplicationResult agg;
  agg.replications = reps;
  agg.per_class.resize(R);
  std::vector<double> util;
  util.reserve(reps);
  for (const auto& res : results) {
    agg.total_events += res.events;
    util.push_back(res.utilization.mean);
  }
  agg.utilization = combine(util);
  for (std::size_t r = 0; r < R; ++r) {
    std::vector<double> cc;
    std::vector<double> tc;
    std::vector<double> conc;
    for (const auto& res : results) {
      const auto& c = res.per_class[r];
      if (c.offered > 0) {
        cc.push_back(static_cast<double>(c.blocked) /
                     static_cast<double>(c.offered));
      }
      tc.push_back(c.time_congestion.mean);
      conc.push_back(c.concurrency.mean);
      agg.per_class[r].offered += c.offered;
      agg.per_class[r].blocked += c.blocked;
    }
    agg.per_class[r].call_congestion = combine(cc);
    agg.per_class[r].time_congestion = combine(tc);
    agg.per_class[r].concurrency = combine(conc);
  }
  return agg;
}

ReplicationResult run_crossbar_replications(const core::CrossbarModel& model,
                                            const ReplicationConfig& config) {
  const core::Dims dims = model.dims();
  return run_replications(
      model,
      [dims](std::size_t) {
        return std::make_unique<fabric::CrossbarFabric>(dims.n1, dims.n2);
      },
      config);
}

FabricFactory make_fabric_factory(const core::CrossbarModel& model,
                                  core::FabricModel fabric) {
  const core::Dims dims = model.dims();
  switch (fabric.kind) {
    case core::FabricKind::kCrossbar:
      return [dims](std::size_t) {
        return std::make_unique<fabric::CrossbarFabric>(dims.n1, dims.n2);
      };
    case core::FabricKind::kSpeedup: {
      // The fabric exposes s*N virtual ports, so the caller must pair it
      // with the scaled model (see run_fabric_replications).
      const unsigned s = fabric.speedup;
      return [dims, s](std::size_t) {
        return std::make_unique<fabric::SpeedupFabric>(dims.n1, dims.n2, s);
      };
    }
    case core::FabricKind::kPriority:
      return [dims](std::size_t) {
        return std::make_unique<fabric::PriorityFabric>(dims.n1, dims.n2);
      };
  }
  raise(ErrorKind::kInternal, "unreachable fabric kind");
}

ReplicationResult run_fabric_replications(const core::CrossbarModel& model,
                                          core::FabricModel fabric,
                                          const ReplicationConfig& config) {
  if (fabric.kind == core::FabricKind::kSpeedup) {
    const core::CrossbarModel scaled =
        core::speedup_scaled_model(model, fabric.speedup);
    // SpeedupFabric wants the *physical* dimensions; the scaled model
    // carries the virtual ones, so build the factory from the original.
    return run_replications(scaled, make_fabric_factory(model, fabric),
                            config);
  }
  return run_replications(model, make_fabric_factory(model, fabric), config);
}

}  // namespace xbar::sim
