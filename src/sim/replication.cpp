#include "sim/replication.hpp"

#include "fabric/crossbar.hpp"
#include "sweep/thread_pool.hpp"

namespace xbar::sim {

namespace {

// Combine per-replication point estimates into a Student-t interval.
Estimate combine(const std::vector<double>& values) {
  BatchMeans bm;
  for (const double v : values) {
    bm.add(v);
  }
  return bm.estimate();
}

}  // namespace

ReplicationResult run_replications(const core::CrossbarModel& model,
                                   const FabricFactory& factory,
                                   const ReplicationConfig& config) {
  const std::size_t R = model.num_classes();
  const std::size_t reps = config.replications;
  std::vector<SimulationResult> results(reps);

  // Each replication owns its fabric and RNG stream (seed derived from the
  // replication index, never from the thread), and writes only its own
  // result slot — so the outcome is identical for every thread count.  The
  // shared pool replaces the old hand-rolled std::thread spawning.
  sweep::ThreadPool::shared().parallel_for(
      reps, config.threads, [&](std::size_t rep, unsigned) {
        auto fabric = factory(rep);
        SimulationConfig sim_cfg = config.sim;
        sim_cfg.seed =
            config.sim.seed + 0x9E3779B9u * (static_cast<unsigned>(rep) + 1);
        Simulator simulator(model, *fabric, sim_cfg);
        if (config.service_factory) {
          for (std::size_t r = 0; r < R; ++r) {
            simulator.set_service_distribution(
                r, config.service_factory(r, model.normalized(r).mu));
          }
        }
        if (config.output_selector_factory) {
          simulator.set_output_selector(config.output_selector_factory(rep));
        }
        results[rep] = simulator.run();
      });

  ReplicationResult agg;
  agg.replications = reps;
  agg.per_class.resize(R);
  std::vector<double> util;
  util.reserve(reps);
  for (const auto& res : results) {
    agg.total_events += res.events;
    util.push_back(res.utilization.mean);
  }
  agg.utilization = combine(util);
  for (std::size_t r = 0; r < R; ++r) {
    std::vector<double> cc;
    std::vector<double> tc;
    std::vector<double> conc;
    for (const auto& res : results) {
      const auto& c = res.per_class[r];
      if (c.offered > 0) {
        cc.push_back(static_cast<double>(c.blocked) /
                     static_cast<double>(c.offered));
      }
      tc.push_back(c.time_congestion.mean);
      conc.push_back(c.concurrency.mean);
      agg.per_class[r].offered += c.offered;
      agg.per_class[r].blocked += c.blocked;
    }
    agg.per_class[r].call_congestion = combine(cc);
    agg.per_class[r].time_congestion = combine(tc);
    agg.per_class[r].concurrency = combine(conc);
  }
  return agg;
}

ReplicationResult run_crossbar_replications(const core::CrossbarModel& model,
                                            const ReplicationConfig& config) {
  const core::Dims dims = model.dims();
  return run_replications(
      model,
      [dims](std::size_t) {
        return std::make_unique<fabric::CrossbarFabric>(dims.n1, dims.n2);
      },
      config);
}

}  // namespace xbar::sim
