// Discrete-event simulator of the asynchronous multi-rate crossbar.
//
// The paper's own future work: "comparing our analytical results with
// simulation".  The simulator runs the *physical* process the product-form
// model abstracts:
//
//   * class-r requests arrive with total intensity
//       Lambda_r(k_r) = P(N1,a_r) P(N2,a_r) lambda_r(k_r)
//     — the state-dependent BPP stream summed over every (ordered) choice
//     of a_r inputs and a_r outputs;
//   * each request names a_r uniformly random distinct inputs and outputs
//     (uniform traffic); if any named port is busy — or, for a blocking
//     fabric like the banyan, no internal path exists — the request is
//     cleared (no buffering, the all-optical constraint);
//   * accepted circuits hold their ports for a generally distributed time
//     with mean 1/mu_r (insensitivity is exercised by swapping the service
//     distribution).
//
// Measured per class, with batch-means confidence intervals:
//   * concurrency  — time-average number of active circuits (model's E_r);
//   * call congestion — blocked fraction of arrivals (equals 1 - B_r for
//     Poisson classes by PASTA; differs for bursty classes);
//   * time congestion — the virtual-probe estimator
//       1 - E[ P(N1-u,a) P(N2-u,a) / (P(N1,a) P(N2,a)) ]
//     whose expectation is exactly the model's 1 - B_r for any class.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/model.hpp"
#include "dist/rng.hpp"
#include "dist/service.hpp"
#include "fabric/switch_fabric.hpp"
#include "sim/stats.hpp"
#include "sim/traffic_pattern.hpp"

namespace xbar::sim {

/// Run-length and output-analysis knobs.
struct SimulationConfig {
  double warmup_time = 1'000.0;        ///< discarded transient, model time
  double measurement_time = 10'000.0;  ///< observed window, model time
  unsigned num_batches = 20;           ///< batch count for CIs
  std::uint64_t seed = 0x5EEDu;        ///< RNG seed (replications offset it)
};

/// Per-class simulation output.
struct ClassSimStats {
  std::uint64_t offered = 0;  ///< arrivals during measurement
  std::uint64_t blocked = 0;  ///< cleared during measurement
  Estimate call_congestion;   ///< blocked / offered
  Estimate time_congestion;   ///< probe estimate of 1 - B_r
  Estimate concurrency;       ///< time-average k_r (model's E_r)
};

/// Whole-run simulation output.
struct SimulationResult {
  std::vector<ClassSimStats> per_class;
  Estimate utilization;        ///< time-average busy-port fraction
  double simulated_time = 0.0; ///< measurement window length
  std::uint64_t events = 0;    ///< events processed (incl. warmup)
};

/// One simulation run over a caller-supplied fabric.
class Simulator {
 public:
  /// The fabric must outlive the simulator and have dimensions matching the
  /// model.  Service distributions default to Exponential(mu_r).
  Simulator(const core::CrossbarModel& model, fabric::SwitchFabric& fabric,
            SimulationConfig config);
  ~Simulator();

  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Replace class r's holding-time distribution (mean should stay 1/mu_r
  /// for the analytic comparison to be meaningful — insensitivity).
  void set_service_distribution(std::size_t r,
                                std::unique_ptr<dist::ServiceDistribution> d);

  /// Replace the output-port selection pattern (default: the paper's
  /// uniform pattern, under which the analytic model is exact).
  void set_output_selector(std::unique_ptr<OutputSelector> selector);

  /// Run warmup + measurement and collect statistics.  May be called once.
  [[nodiscard]] SimulationResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xbar::sim
