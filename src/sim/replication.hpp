// Independent replications.
//
// Batch means within one run can correlate at high load; running R
// independent replications (distinct seed streams) and forming the
// Student-t interval over replication means is the standard, more robust
// alternative.  This layer also parallelizes trivially.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/model.hpp"
#include "core/solver_spec.hpp"
#include "dist/service.hpp"
#include "sim/simulator.hpp"

namespace xbar::sim {

/// How each replication builds its fabric: called with the replication
/// index, must return a fresh idle fabric of the model's dimensions.
using FabricFactory =
    std::function<std::unique_ptr<fabric::SwitchFabric>(std::size_t rep)>;

/// Optional per-replication service-distribution override for one class.
using ServiceFactory = std::function<std::unique_ptr<dist::ServiceDistribution>(
    std::size_t cls, double mu)>;

/// Optional per-replication output-selector override (non-uniform traffic,
/// e.g. hot-spot patterns).  Called with the replication index; must return
/// a fresh selector for that replication's simulator.
using SelectorFactory =
    std::function<std::unique_ptr<OutputSelector>(std::size_t rep)>;

/// Aggregated per-class statistics across replications.
struct ClassReplicationStats {
  Estimate call_congestion;
  Estimate time_congestion;
  Estimate concurrency;
  std::uint64_t offered = 0;
  std::uint64_t blocked = 0;
};

/// Aggregated result of a replication study.
struct ReplicationResult {
  std::vector<ClassReplicationStats> per_class;
  Estimate utilization;
  std::uint64_t total_events = 0;
  std::size_t replications = 0;
};

/// Options for a replication study.
struct ReplicationConfig {
  std::size_t replications = 5;
  SimulationConfig sim;  ///< per-replication run lengths; seed is offset
  ServiceFactory service_factory;  ///< nullptr => exponential
  SelectorFactory output_selector_factory;  ///< nullptr => uniform outputs
  unsigned threads = 0;  ///< 0 = hardware concurrency
};

/// Run `config.replications` independent simulations of `model` (each on a
/// fresh fabric from `factory`) and combine replication means.
[[nodiscard]] ReplicationResult run_replications(
    const core::CrossbarModel& model, const FabricFactory& factory,
    const ReplicationConfig& config);

/// Convenience: replications on fresh CrossbarFabric instances.
[[nodiscard]] ReplicationResult run_crossbar_replications(
    const core::CrossbarModel& model, const ReplicationConfig& config);

/// Factory producing fresh fabrics of the requested kind at the model's
/// dimensions (speedup fabrics expose the scaled virtual dimensions).
[[nodiscard]] FabricFactory make_fabric_factory(const core::CrossbarModel& model,
                                                core::FabricModel fabric);

/// Replications on the requested fabric.  For `speedup-<s>` the simulation
/// runs the equivalent scaled model (`core::speedup_scaled_model`) on a
/// SpeedupFabric — the form the analytical solver is exact for; crossbar
/// and priority run `model` as given.
[[nodiscard]] ReplicationResult run_fabric_replications(
    const core::CrossbarModel& model, core::FabricModel fabric,
    const ReplicationConfig& config);

}  // namespace xbar::sim
