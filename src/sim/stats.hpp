// Output analysis for steady-state simulation.
//
// The simulator uses the method of batch means: the measurement window is
// cut into B contiguous batches, each batch yields one (approximately
// independent) average, and a Student-t interval over the B batch means
// gives the confidence interval on the steady-state quantity.

#pragma once

#include <cstddef>
#include <vector>

namespace xbar::sim {

/// A point estimate with a symmetric confidence interval.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  ///< CI half width at the requested confidence
  std::size_t samples = 0;

  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }

  /// True when `value` lies inside the interval.
  [[nodiscard]] bool contains(double value) const noexcept {
    return value >= lower() && value <= upper();
  }
};

/// Collects batch means and forms the Student-t interval.
class BatchMeans {
 public:
  /// Record one batch mean.
  void add(double batch_mean);

  /// Number of batches recorded.
  [[nodiscard]] std::size_t count() const noexcept { return batches_.size(); }

  /// Point estimate + 95% CI (two-sided Student t with count-1 df).
  [[nodiscard]] Estimate estimate() const;

  /// Raw batch means (for diagnostics).
  [[nodiscard]] const std::vector<double>& batches() const noexcept {
    return batches_;
  }

  /// Lag-1 autocorrelation of the batch means (0 with fewer than three
  /// batches or zero variance).  The batch-means CI assumes independent
  /// batches; a large |r1| means batches are too short.
  [[nodiscard]] double lag1_autocorrelation() const;

  /// Diagnostic: true when |r1| exceeds the ~95% noise band 2/sqrt(B),
  /// i.e. the confidence interval should be treated as optimistic.
  [[nodiscard]] bool batches_look_correlated() const;

 private:
  std::vector<double> batches_;
};

/// Two-sided 97.5% Student-t quantile for the given degrees of freedom
/// (exact table for df <= 30, normal approximation beyond).
[[nodiscard]] double student_t_975(std::size_t df) noexcept;

}  // namespace xbar::sim
