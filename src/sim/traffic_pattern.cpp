#include "sim/traffic_pattern.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace xbar::sim {

namespace {

void sample_uniform_distinct(dist::Xoshiro256& rng, unsigned n, unsigned a,
                             std::vector<unsigned>& out) {
  while (out.size() < a) {
    const auto candidate = static_cast<unsigned>(rng.uniform_below(n));
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
}

class UniformSelector final : public OutputSelector {
 public:
  void sample(dist::Xoshiro256& rng, unsigned n, unsigned a,
              std::vector<unsigned>& out) override {
    assert(a <= n);
    out.clear();
    sample_uniform_distinct(rng, n, a, out);
  }
  std::string name() const override { return "uniform"; }
};

class HotspotSelector final : public OutputSelector {
 public:
  HotspotSelector(double hot_fraction, unsigned hot_port)
      : hot_fraction_(hot_fraction), hot_port_(hot_port) {
    if (hot_fraction < 0.0 || hot_fraction > 1.0) {
      throw std::invalid_argument("hot_fraction must be in [0, 1]");
    }
  }

  void sample(dist::Xoshiro256& rng, unsigned n, unsigned a,
              std::vector<unsigned>& out) override {
    assert(a <= n);
    assert(hot_port_ < n);
    out.clear();
    // The hot port claims the first slot with probability hot_fraction;
    // all remaining slots are uniform over the rest.
    if (hot_fraction_ > 0.0 && rng.uniform01() < hot_fraction_) {
      out.push_back(hot_port_);
    }
    sample_uniform_distinct(rng, n, a, out);
  }

  std::string name() const override {
    std::ostringstream os;
    os << "hotspot(h=" << hot_fraction_ << ", port=" << hot_port_ << ")";
    return os.str();
  }

 private:
  double hot_fraction_;
  unsigned hot_port_;
};

}  // namespace

std::unique_ptr<OutputSelector> make_uniform_selector() {
  return std::make_unique<UniformSelector>();
}

std::unique_ptr<OutputSelector> make_hotspot_selector(double hot_fraction,
                                                      unsigned hot_port) {
  return std::make_unique<HotspotSelector>(hot_fraction, hot_port);
}

}  // namespace xbar::sim
