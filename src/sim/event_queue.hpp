// Discrete-event calendar.
//
// A binary-heap future-event list with O(log n) schedule/pop and O(1)
// cancellation (lazy: cancelled entries are dropped when they surface, and
// the heap is compacted whenever dead entries outnumber live ones, so
// memory stays proportional to the live event count even under heavy
// schedule/cancel churn).  Ties in time break by schedule order, making
// runs deterministic.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

namespace xbar::sim {

/// Handle to a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Priority queue of (time, payload) with cancellation.
template <typename Payload>
class EventQueue {
 public:
  /// Schedule `payload` at absolute `time`; returns a cancellable handle.
  EventId schedule(double time, Payload payload) {
    const EventId id{next_id_++};
    heap_.push_back(Entry{time, id.value, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end());
    pending_.insert(id.value);
    return id;
  }

  /// Cancel a previously scheduled event.  Cancelling an already-fired or
  /// already-cancelled event is harmless (idempotent): only ids still in
  /// the pending set take effect, so stale handles can never corrupt the
  /// live count or accumulate in the tombstone set.
  void cancel(EventId id) {
    if (pending_.erase(id.value) == 0) {
      return;
    }
    cancelled_.insert(id.value);
    // Compact once dead entries outnumber live ones; amortized O(1) per
    // cancellation, and bounds both the heap and the tombstone set.
    if (cancelled_.size() > pending_.size() && cancelled_.size() > 16) {
      compact();
    }
  }

  /// Earliest pending event time, if any.
  [[nodiscard]] std::optional<double> peek_time() {
    skip_cancelled();
    if (heap_.empty()) {
      return std::nullopt;
    }
    return heap_.front().time;
  }

  /// Pop the earliest pending event.
  std::optional<std::pair<double, Payload>> pop() {
    skip_cancelled();
    if (heap_.empty()) {
      return std::nullopt;
    }
    std::pop_heap(heap_.begin(), heap_.end());
    Entry top = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(top.id);
    return std::make_pair(top.time, std::move(top.payload));
  }

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }

  /// Cancelled entries still occupying heap slots (test/diagnostic hook;
  /// bounded above by the live event count plus the compaction floor).
  [[nodiscard]] std::size_t cancelled_backlog() const noexcept {
    return cancelled_.size();
  }

 private:
  struct Entry {
    double time;
    std::uint64_t id;
    Payload payload;

    // Min-heap via the standard max-heap algorithms + inverted comparison;
    // id tiebreak keeps FIFO order for simultaneous events.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  void skip_cancelled() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.front().id);
      if (it == cancelled_.end()) {
        return;
      }
      cancelled_.erase(it);
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
  }

  // Drop every tombstoned entry and re-heapify: O(live + dead), paid only
  // after at least as many cancellations, so churn stays amortized O(1).
  void compact() {
    std::erase_if(heap_,
                  [&](const Entry& e) { return cancelled_.contains(e.id); });
    std::make_heap(heap_.begin(), heap_.end());
    cancelled_.clear();
  }

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 1;
};

}  // namespace xbar::sim
