// Discrete-event calendar.
//
// A binary-heap future-event list with O(log n) schedule/pop and O(1)
// cancellation (lazy: cancelled entries are dropped when they surface).
// Ties in time break by schedule order, making runs deterministic.

#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace xbar::sim {

/// Handle to a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Priority queue of (time, payload) with cancellation.
template <typename Payload>
class EventQueue {
 public:
  /// Schedule `payload` at absolute `time`; returns a cancellable handle.
  EventId schedule(double time, Payload payload) {
    const EventId id{next_id_++};
    heap_.push(Entry{time, id.value, std::move(payload)});
    ++live_;
    return id;
  }

  /// Cancel a previously scheduled event.  Cancelling an already-fired or
  /// already-cancelled event is harmless (idempotent).
  void cancel(EventId id) {
    if (cancelled_.insert(id.value).second && live_ > 0) {
      --live_;
    }
  }

  /// Earliest pending event time, if any.
  [[nodiscard]] std::optional<double> peek_time() {
    skip_cancelled();
    if (heap_.empty()) {
      return std::nullopt;
    }
    return heap_.top().time;
  }

  /// Pop the earliest pending event.
  std::optional<std::pair<double, Payload>> pop() {
    skip_cancelled();
    if (heap_.empty()) {
      return std::nullopt;
    }
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    return std::make_pair(top.time, std::move(top.payload));
  }

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

 private:
  struct Entry {
    double time;
    std::uint64_t id;
    Payload payload;

    // Min-heap via std::priority_queue's max-heap + inverted comparison;
    // id tiebreak keeps FIFO order for simultaneous events.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  void skip_cancelled() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) {
        return;
      }
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace xbar::sim
