// Output-port selection policies ("traffic patterns").
//
// The paper assumes a *uniform* pattern — every output equally likely —
// which is what makes the product form exact.  The authors' companion work
// (reference [28]) studies hot spots: a fraction of requests targeting one
// favoured output.  The simulator supports pluggable patterns so the
// uniform model's predictions can be stress-tested against non-uniform
// reality (bench/hotspot_sim): the paper's model is exact under uniformity
// and becomes an optimistic bound as a hot spot sharpens.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dist/rng.hpp"

namespace xbar::sim {

/// Chooses which `a` distinct output ports a connection request names.
class OutputSelector {
 public:
  virtual ~OutputSelector() = default;

  /// Fill `out` with `a` distinct ports in [0, n_outputs).
  virtual void sample(dist::Xoshiro256& rng, unsigned n_outputs, unsigned a,
                      std::vector<unsigned>& out) = 0;

  /// Display name.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's uniform pattern (the default).
[[nodiscard]] std::unique_ptr<OutputSelector> make_uniform_selector();

/// Hot-spot pattern: each required output is the hot port with probability
/// `hot_fraction` (falling back to uniform if the hot port is already in
/// the request), uniform otherwise.  hot_fraction = 0 degenerates to the
/// uniform pattern.
[[nodiscard]] std::unique_ptr<OutputSelector> make_hotspot_selector(
    double hot_fraction, unsigned hot_port = 0);

}  // namespace xbar::sim
