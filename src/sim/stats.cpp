#include "sim/stats.hpp"

#include <array>
#include <cmath>

namespace xbar::sim {

void BatchMeans::add(double batch_mean) { batches_.push_back(batch_mean); }

Estimate BatchMeans::estimate() const {
  Estimate e;
  e.samples = batches_.size();
  if (batches_.empty()) {
    return e;
  }
  double sum = 0.0;
  for (const double b : batches_) {
    sum += b;
  }
  e.mean = sum / static_cast<double>(batches_.size());
  if (batches_.size() < 2) {
    return e;
  }
  double ss = 0.0;
  for (const double b : batches_) {
    const double d = b - e.mean;
    ss += d * d;
  }
  const double var = ss / static_cast<double>(batches_.size() - 1);
  const double sem = std::sqrt(var / static_cast<double>(batches_.size()));
  e.half_width = student_t_975(batches_.size() - 1) * sem;
  return e;
}

double BatchMeans::lag1_autocorrelation() const {
  const std::size_t n = batches_.size();
  if (n < 3) {
    return 0.0;
  }
  double mean = 0.0;
  for (const double b : batches_) {
    mean += b;
  }
  mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = batches_[i] - mean;
    den += d * d;
    if (i + 1 < n) {
      num += d * (batches_[i + 1] - mean);
    }
  }
  if (den == 0.0) {
    return 0.0;
  }
  return num / den;
}

bool BatchMeans::batches_look_correlated() const {
  const std::size_t n = batches_.size();
  if (n < 3) {
    return false;
  }
  const double band = 2.0 / std::sqrt(static_cast<double>(n));
  return std::fabs(lag1_autocorrelation()) > band;
}

double student_t_975(std::size_t df) noexcept {
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) {
    return kTable[1];  // degenerate; be conservative
  }
  if (df < kTable.size()) {
    return kTable[df];
  }
  return 1.96;
}

}  // namespace xbar::sim
