#include "dist/empirical.hpp"

#include <cmath>

namespace xbar::dist {

void RunningMoments::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

double RunningMoments::peakedness() const noexcept {
  return mean_ != 0.0 ? variance() / mean_ : 0.0;
}

void TimeWeightedMoments::add(double value, double duration) noexcept {
  if (duration <= 0.0) {
    return;
  }
  total_time_ += duration;
  weighted_sum_ += value * duration;
  weighted_sq_sum_ += value * value * duration;
}

double TimeWeightedMoments::mean() const noexcept {
  return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0;
}

double TimeWeightedMoments::variance() const noexcept {
  if (total_time_ <= 0.0) {
    return 0.0;
  }
  const double m = mean();
  const double second = weighted_sq_sum_ / total_time_;
  const double v = second - m * m;
  return v > 0.0 ? v : 0.0;
}

double TimeWeightedMoments::peakedness() const noexcept {
  const double m = mean();
  return m != 0.0 ? variance() / m : 0.0;
}

Histogram::Histogram(std::size_t max_value) : counts_(max_value + 1, 0) {}

void Histogram::add(std::size_t value) noexcept {
  const std::size_t bucket =
      value < counts_.size() ? value : counts_.size() - 1;
  ++counts_[bucket];
  ++total_;
}

double Histogram::frequency(std::size_t k) const noexcept {
  if (total_ == 0 || k >= counts_.size()) {
    return 0.0;
  }
  return static_cast<double>(counts_[k]) / static_cast<double>(total_);
}

}  // namespace xbar::dist
