#include "dist/counting.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "numeric/combinatorics.hpp"
#include "numeric/kahan.hpp"

namespace xbar::dist {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double CountingDistribution::cdf(unsigned k) const {
  num::KahanSum sum;
  for (unsigned i = 0; i <= k; ++i) {
    sum.add(pmf(i));
  }
  const double v = sum.value();
  return v < 1.0 ? v : 1.0;
}

BinomialCounting::BinomialCounting(unsigned n, double p) : n_(n), p_(p) {
  assert(p >= 0.0 && p <= 1.0);
}

double BinomialCounting::log_pmf(unsigned k) const {
  if (k > n_) {
    return kNegInf;
  }
  if (p_ == 0.0) {
    return k == 0 ? 0.0 : kNegInf;
  }
  if (p_ == 1.0) {
    return k == n_ ? 0.0 : kNegInf;
  }
  return num::log_binomial(n_, k) + static_cast<double>(k) * std::log(p_) +
         static_cast<double>(n_ - k) * std::log1p(-p_);
}

double BinomialCounting::pmf(unsigned k) const { return std::exp(log_pmf(k)); }

double BinomialCounting::mean() const { return static_cast<double>(n_) * p_; }

double BinomialCounting::variance() const {
  return static_cast<double>(n_) * p_ * (1.0 - p_);
}

std::string BinomialCounting::name() const {
  std::ostringstream os;
  os << "Binomial(n=" << n_ << ", p=" << p_ << ")";
  return os.str();
}

PoissonCounting::PoissonCounting(double rho) : rho_(rho) {
  assert(rho >= 0.0);
}

double PoissonCounting::log_pmf(unsigned k) const {
  if (rho_ == 0.0) {
    return k == 0 ? 0.0 : kNegInf;
  }
  return static_cast<double>(k) * std::log(rho_) - rho_ -
         num::log_factorial(k);
}

double PoissonCounting::pmf(unsigned k) const { return std::exp(log_pmf(k)); }

double PoissonCounting::mean() const { return rho_; }

double PoissonCounting::variance() const { return rho_; }

std::string PoissonCounting::name() const {
  std::ostringstream os;
  os << "Poisson(rho=" << rho_ << ")";
  return os.str();
}

PascalCounting::PascalCounting(double r, double p) : r_(r), p_(p) {
  assert(r > 0.0);
  assert(p > 0.0 && p < 1.0);
}

double PascalCounting::log_pmf(unsigned k) const {
  // C(r-1+k, k) = Gamma(r+k) / (Gamma(k+1) Gamma(r)) for real r.
  const double kd = static_cast<double>(k);
  const double log_coeff =
      std::lgamma(r_ + kd) - num::log_factorial(k) - std::lgamma(r_);
  return log_coeff + kd * std::log(p_) + r_ * std::log1p(-p_);
}

double PascalCounting::pmf(unsigned k) const { return std::exp(log_pmf(k)); }

double PascalCounting::mean() const { return r_ * p_ / (1.0 - p_); }

double PascalCounting::variance() const {
  const double q = 1.0 - p_;
  return r_ * p_ / (q * q);
}

std::string PascalCounting::name() const {
  std::ostringstream os;
  os << "Pascal(r=" << r_ << ", p=" << p_ << ")";
  return os.str();
}

std::unique_ptr<CountingDistribution> infinite_server_occupancy(
    const BppParams& params) {
  if (params.beta < 0.0) {
    const double n = params.source_population();
    const double q = -params.beta / params.mu;
    return std::make_unique<BinomialCounting>(
        static_cast<unsigned>(std::llround(n)), q / (1.0 + q));
  }
  if (params.beta > 0.0) {
    return std::make_unique<PascalCounting>(params.alpha / params.beta,
                                            params.beta / params.mu);
  }
  return std::make_unique<PoissonCounting>(params.rho());
}

}  // namespace xbar::dist
