#include "dist/bpp.hpp"

#include <cmath>
#include <limits>
#include <ostream>

namespace xbar::dist {

std::string_view to_string(TrafficShape shape) noexcept {
  switch (shape) {
    case TrafficShape::kSmooth:
      return "smooth";
    case TrafficShape::kRegular:
      return "regular";
    case TrafficShape::kPeaky:
      return "peaky";
  }
  return "?";
}

TrafficShape BppParams::shape() const noexcept {
  if (beta < 0.0) {
    return TrafficShape::kSmooth;
  }
  if (beta > 0.0) {
    return TrafficShape::kPeaky;
  }
  return TrafficShape::kRegular;
}

double BppParams::intensity(unsigned k) const noexcept {
  const double v = alpha + beta * static_cast<double>(k);
  return v > 0.0 ? v : 0.0;
}

double BppParams::mean() const noexcept {
  if (beta >= mu) {
    return std::numeric_limits<double>::infinity();
  }
  return alpha / (mu - beta);
}

double BppParams::variance() const noexcept {
  if (beta >= mu) {
    return std::numeric_limits<double>::infinity();
  }
  const double d = mu - beta;
  return alpha * mu / (d * d);
}

double BppParams::peakedness() const noexcept {
  if (beta >= mu) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / (1.0 - beta / mu);
}

double BppParams::source_population() const noexcept {
  return -alpha / beta;
}

bool BppParams::is_valid(unsigned port_bound) const noexcept {
  if (!(alpha > 0.0) || !(mu > 0.0)) {
    return false;
  }
  if (beta == 0.0) {
    return true;  // Poisson
  }
  if (beta > 0.0) {
    return beta / mu < 1.0;  // Pascal
  }
  // Bernoulli: alpha/beta must be a negative integer ...
  const double ratio = alpha / beta;  // negative
  const double rounded = std::round(ratio);
  constexpr double kIntegerTol = 1e-9;
  if (std::fabs(ratio - rounded) > kIntegerTol * std::fabs(ratio)) {
    return false;
  }
  // ... and the intensity must stay non-negative over every feasible state.
  return alpha + beta * static_cast<double>(port_bound) >= -1e-15;
}

bool BppParams::is_admissible(unsigned port_bound) const noexcept {
  if (!(alpha > 0.0) || !(mu > 0.0)) {
    return false;
  }
  if (beta >= 0.0) {
    return beta / mu < 1.0;
  }
  return alpha + beta * static_cast<double>(port_bound) >= -1e-15;
}

BppParams BppParams::from_mean_peakedness(double mean, double z,
                                          double mu) noexcept {
  BppParams p;
  p.mu = mu;
  p.beta = mu * (1.0 - 1.0 / z);
  p.alpha = mean * (mu - p.beta);
  return p;
}

std::ostream& operator<<(std::ostream& os, const BppParams& p) {
  return os << "BPP{alpha=" << p.alpha << ", beta=" << p.beta
            << ", mu=" << p.mu << ", " << to_string(p.shape()) << "}";
}

}  // namespace xbar::dist
