// The Bernoulli–Poisson–Pascal (BPP) arrival family (paper §2).
//
// A BPP process is the linear state-dependent arrival process
//
//     lambda(k) = alpha + beta * k,      alpha > 0,
//
// offered to a group of servers with per-connection completion rate mu.  On
// an infinite server group the number of busy servers is distributed
//
//     Bernoulli (binomial)  for beta < 0 with alpha/beta a negative integer,
//     Poisson               for beta = 0,
//     Pascal (neg. binomial) for 0 < beta < mu,
//
// which is why the family serves as a unified approximation for smooth,
// regular and peaky traffic.  Peakedness Z = V/M = 1/(1 - beta/mu)
// classifies the three regimes (Z<1 smooth, Z=1 regular, Z>1 peaky).

#pragma once

#include <iosfwd>
#include <string_view>

namespace xbar::dist {

/// Traffic shape classification by peakedness.
enum class TrafficShape {
  kSmooth,   ///< beta < 0 (Bernoulli / binomial, Z < 1)
  kRegular,  ///< beta = 0 (Poisson, Z = 1)
  kPeaky,    ///< beta > 0 (Pascal / negative binomial, Z > 1)
};

/// Human-readable name of a shape ("smooth" / "regular" / "peaky").
[[nodiscard]] std::string_view to_string(TrafficShape shape) noexcept;

/// Parameters of one BPP arrival stream.
struct BppParams {
  double alpha = 0.0;  ///< state-independent intensity, > 0
  double beta = 0.0;   ///< state-dependent slope (sign selects the family)
  double mu = 1.0;     ///< service completion rate, > 0

  /// Shape implied by the sign of beta.
  [[nodiscard]] TrafficShape shape() const noexcept;

  /// Arrival intensity in state k (clamped at zero: for Bernoulli streams
  /// lambda is zero beyond the source population).
  [[nodiscard]] double intensity(unsigned k) const noexcept;

  /// Offered load rho = alpha / mu.
  [[nodiscard]] double rho() const noexcept { return alpha / mu; }

  /// Infinite-server mean M = alpha / (mu - beta) (the paper's
  /// alpha/(1-beta) with mu = 1).  Requires beta < mu.
  [[nodiscard]] double mean() const noexcept;

  /// Infinite-server variance V = alpha * mu / (mu - beta)^2.
  [[nodiscard]] double variance() const noexcept;

  /// Peakedness Z = V / M = 1 / (1 - beta/mu).
  [[nodiscard]] double peakedness() const noexcept;

  /// For smooth traffic, the implied source population n = -alpha/beta
  /// (only meaningful when `is_valid_bernoulli` holds).
  [[nodiscard]] double source_population() const noexcept;

  /// Paper §2 validity conditions:
  ///  * Bernoulli: alpha/beta a negative integer and alpha + beta*n >= 0 for
  ///    n <= port_bound (so the intensity never goes negative in a feasible
  ///    state);
  ///  * Poisson: beta == 0;
  ///  * Pascal: alpha >= 0 and 0 < beta/mu < 1 (geometric series converges).
  [[nodiscard]] bool is_valid(unsigned port_bound) const noexcept;

  /// Relaxed admissibility for the finite-switch model: the product form
  /// only needs lambda(k) >= 0 over feasible states and beta/mu < 1.  The
  /// integer-population requirement matters solely for the infinite-server
  /// Bernoulli interpretation (`infinite_server_occupancy`), and relaxing it
  /// lets gradients be taken with respect to beta.
  [[nodiscard]] bool is_admissible(unsigned port_bound) const noexcept;

  /// Construct a stream with a target mean M and peakedness Z (mu given):
  /// beta = mu (1 - 1/Z), alpha = M (mu - beta).  Inverse of mean()/
  /// peakedness(); handy for experiment design.
  static BppParams from_mean_peakedness(double mean, double z,
                                        double mu = 1.0) noexcept;
};

std::ostream& operator<<(std::ostream& os, const BppParams& p);

}  // namespace xbar::dist
