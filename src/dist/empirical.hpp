// Empirical moment estimation.
//
// Used to validate samplers against their analytic moments and to estimate
// the peakedness (Z-factor) of simulated occupancy processes, closing the
// loop on the paper's claim that BPP parameters control traffic burstiness.

#pragma once

#include <cstddef>
#include <vector>

namespace xbar::dist {

/// Welford online mean/variance of i.i.d. samples.
class RunningMoments {
 public:
  /// Incorporate one sample.
  void add(double x) noexcept;

  /// Number of samples seen.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Sample mean (0 when empty).
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance (0 with fewer than two samples).
  [[nodiscard]] double variance() const noexcept;

  /// Standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Peakedness estimate Var/Mean (0 when mean is 0).
  [[nodiscard]] double peakedness() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Time-weighted moments of a piecewise-constant process (e.g. the number of
/// busy ports over simulated time): feed (value, duration) segments.
class TimeWeightedMoments {
 public:
  /// Incorporate a segment during which the process held `value`.
  void add(double value, double duration) noexcept;

  /// Total observed time.
  [[nodiscard]] double total_time() const noexcept { return total_time_; }

  /// Time-average of the process.
  [[nodiscard]] double mean() const noexcept;

  /// Time-weighted variance.
  [[nodiscard]] double variance() const noexcept;

  /// Peakedness Var/Mean.
  [[nodiscard]] double peakedness() const noexcept;

 private:
  double total_time_ = 0.0;
  double weighted_sum_ = 0.0;
  double weighted_sq_sum_ = 0.0;
};

/// Frequency histogram over {0..max} for integer-valued samples; values
/// beyond `max` are clamped into the last bucket.
class Histogram {
 public:
  explicit Histogram(std::size_t max_value);

  /// Count one observation.
  void add(std::size_t value) noexcept;

  /// Observations recorded.
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Empirical probability of bucket k.
  [[nodiscard]] double frequency(std::size_t k) const noexcept;

  /// Number of buckets.
  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace xbar::dist
