// Holding-time (service) distributions.
//
// The paper's model is *insensitive*: the product form depends on the
// holding-time distribution only through its mean 1/mu (reference [7] of the
// paper).  The simulator exercises this claim by plugging in distributions
// with very different shapes but identical means; the analytic and simulated
// blocking must still agree.

#pragma once

#include <memory>
#include <string>

#include "dist/rng.hpp"

namespace xbar::dist {

/// A positive continuous distribution used for circuit holding times.
class ServiceDistribution {
 public:
  virtual ~ServiceDistribution() = default;

  /// Draw one holding time.
  [[nodiscard]] virtual double sample(Xoshiro256& rng) const = 0;

  /// E[X].
  [[nodiscard]] virtual double mean() const = 0;

  /// Squared coefficient of variation Var/Mean^2 (shape fingerprint:
  /// 0 deterministic, 1/k Erlang-k, 1 exponential, >1 hyperexponential).
  [[nodiscard]] virtual double scv() const = 0;

  /// Display name.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Exponential(mu): the paper's baseline assumption.
[[nodiscard]] std::unique_ptr<ServiceDistribution> make_exponential(double mu);

/// Point mass at `mean` (SCV = 0).
[[nodiscard]] std::unique_ptr<ServiceDistribution> make_deterministic(
    double mean);

/// Erlang-k with the given mean (SCV = 1/k).
[[nodiscard]] std::unique_ptr<ServiceDistribution> make_erlang(unsigned k,
                                                               double mean);

/// Balanced two-phase hyperexponential with the given mean and SCV > 1.
[[nodiscard]] std::unique_ptr<ServiceDistribution> make_hyperexponential(
    double mean, double scv);

/// Uniform on [0, 2*mean] (SCV = 1/3).
[[nodiscard]] std::unique_ptr<ServiceDistribution> make_uniform(double mean);

/// Log-normal with the given mean and SCV.
[[nodiscard]] std::unique_ptr<ServiceDistribution> make_lognormal(double mean,
                                                                  double scv);

}  // namespace xbar::dist
