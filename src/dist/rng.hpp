// Pseudo-random number generation for the simulator.
//
// xoshiro256** (Blackman & Vigna): fast, tiny state, excellent statistical
// quality, and `jump()` provides 2^128 non-overlapping subsequences so each
// replication / traffic class gets an independent stream from one seed.
// Satisfies std::uniform_random_bit_generator, so it plugs into <random>.

#pragma once

#include <array>
#include <cstdint>

namespace xbar::dist {

/// SplitMix64 — used to expand a single 64-bit seed into full generator
/// state (the standard seeding procedure recommended for xoshiro).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion.
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// std::uniform_random_bit_generator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Next 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as an argument to log().
  double uniform01_open_left() noexcept { return 1.0 - uniform01(); }

  /// Exponential variate with the given positive rate.
  double exponential(double rate) noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method with
  /// rejection).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Advance the state by 2^128 steps: returns a generator whose future
  /// output never overlaps this one's next 2^128 draws.
  [[nodiscard]] Xoshiro256 split() noexcept;

 private:
  void jump() noexcept;

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace xbar::dist
