#include "dist/service.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

namespace xbar::dist {

namespace {

class Exponential final : public ServiceDistribution {
 public:
  explicit Exponential(double mu) : mu_(mu) { assert(mu > 0.0); }

  double sample(Xoshiro256& rng) const override {
    return rng.exponential(mu_);
  }
  double mean() const override { return 1.0 / mu_; }
  double scv() const override { return 1.0; }
  std::string name() const override {
    std::ostringstream os;
    os << "Exponential(mu=" << mu_ << ")";
    return os.str();
  }

 private:
  double mu_;
};

class Deterministic final : public ServiceDistribution {
 public:
  explicit Deterministic(double mean) : mean_(mean) { assert(mean > 0.0); }

  double sample(Xoshiro256&) const override { return mean_; }
  double mean() const override { return mean_; }
  double scv() const override { return 0.0; }
  std::string name() const override {
    std::ostringstream os;
    os << "Deterministic(" << mean_ << ")";
    return os.str();
  }

 private:
  double mean_;
};

class Erlang final : public ServiceDistribution {
 public:
  Erlang(unsigned k, double mean) : k_(k), phase_rate_(k / mean) {
    assert(k >= 1);
    assert(mean > 0.0);
  }

  double sample(Xoshiro256& rng) const override {
    // Sum of k exponentials = -log(prod U_i)/rate; multiply first for speed.
    double prod = 1.0;
    for (unsigned i = 0; i < k_; ++i) {
      prod *= rng.uniform01_open_left();
    }
    return -std::log(prod) / phase_rate_;
  }
  double mean() const override {
    return static_cast<double>(k_) / phase_rate_;
  }
  double scv() const override { return 1.0 / static_cast<double>(k_); }
  std::string name() const override {
    std::ostringstream os;
    os << "Erlang(k=" << k_ << ", mean=" << mean() << ")";
    return os.str();
  }

 private:
  unsigned k_;
  double phase_rate_;
};

// Balanced-means two-phase hyperexponential: phase i chosen with prob p_i,
// exponential rate mu_i, with p1/mu1 == p2/mu2 (the standard H2 fit).
class Hyperexponential final : public ServiceDistribution {
 public:
  Hyperexponential(double mean, double scv) : mean_(mean), scv_(scv) {
    assert(mean > 0.0);
    assert(scv > 1.0);
    const double c2 = scv;
    p1_ = 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
    mu1_ = 2.0 * p1_ / mean;
    mu2_ = 2.0 * (1.0 - p1_) / mean;
  }

  double sample(Xoshiro256& rng) const override {
    const double rate = rng.uniform01() < p1_ ? mu1_ : mu2_;
    return rng.exponential(rate);
  }
  double mean() const override { return mean_; }
  double scv() const override { return scv_; }
  std::string name() const override {
    std::ostringstream os;
    os << "Hyperexp(mean=" << mean_ << ", scv=" << scv_ << ")";
    return os.str();
  }

 private:
  double mean_;
  double scv_;
  double p1_;
  double mu1_;
  double mu2_;
};

class UniformService final : public ServiceDistribution {
 public:
  explicit UniformService(double mean) : mean_(mean) { assert(mean > 0.0); }

  double sample(Xoshiro256& rng) const override {
    return 2.0 * mean_ * rng.uniform01();
  }
  double mean() const override { return mean_; }
  double scv() const override { return 1.0 / 3.0; }
  std::string name() const override {
    std::ostringstream os;
    os << "Uniform[0," << 2.0 * mean_ << "]";
    return os.str();
  }

 private:
  double mean_;
};

class LogNormal final : public ServiceDistribution {
 public:
  LogNormal(double mean, double scv) : mean_(mean), scv_(scv) {
    assert(mean > 0.0);
    assert(scv > 0.0);
    sigma2_ = std::log1p(scv);
    m_ = std::log(mean) - 0.5 * sigma2_;
  }

  double sample(Xoshiro256& rng) const override {
    // Box–Muller; one normal per call keeps the class stateless.
    const double u1 = rng.uniform01_open_left();
    const double u2 = rng.uniform01();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return std::exp(m_ + std::sqrt(sigma2_) * z);
  }
  double mean() const override { return mean_; }
  double scv() const override { return scv_; }
  std::string name() const override {
    std::ostringstream os;
    os << "LogNormal(mean=" << mean_ << ", scv=" << scv_ << ")";
    return os.str();
  }

 private:
  double mean_;
  double scv_;
  double m_;
  double sigma2_;
};

}  // namespace

std::unique_ptr<ServiceDistribution> make_exponential(double mu) {
  return std::make_unique<Exponential>(mu);
}

std::unique_ptr<ServiceDistribution> make_deterministic(double mean) {
  return std::make_unique<Deterministic>(mean);
}

std::unique_ptr<ServiceDistribution> make_erlang(unsigned k, double mean) {
  return std::make_unique<Erlang>(k, mean);
}

std::unique_ptr<ServiceDistribution> make_hyperexponential(double mean,
                                                           double scv) {
  return std::make_unique<Hyperexponential>(mean, scv);
}

std::unique_ptr<ServiceDistribution> make_uniform(double mean) {
  return std::make_unique<UniformService>(mean);
}

std::unique_ptr<ServiceDistribution> make_lognormal(double mean, double scv) {
  return std::make_unique<LogNormal>(mean, scv);
}

}  // namespace xbar::dist
