// Counting distributions of the BPP family.
//
// These are the stationary distributions of the number of busy servers when
// a BPP stream is offered to an *infinite* server group — binomial for the
// Bernoulli case, Poisson for the regular case, negative binomial (Pascal)
// for the peaky case.  The crossbar model truncates these by the switch
// feasibility constraint; the untruncated versions are used to validate the
// distribution layer and the simulator's arrival processes.

#pragma once

#include <memory>
#include <string>

#include "dist/bpp.hpp"

namespace xbar::dist {

/// Discrete distribution on {0, 1, 2, ...}.
class CountingDistribution {
 public:
  virtual ~CountingDistribution() = default;

  /// P(X = k).
  [[nodiscard]] virtual double pmf(unsigned k) const = 0;

  /// ln P(X = k); -inf where the pmf is zero.
  [[nodiscard]] virtual double log_pmf(unsigned k) const = 0;

  /// E[X].
  [[nodiscard]] virtual double mean() const = 0;

  /// Var[X].
  [[nodiscard]] virtual double variance() const = 0;

  /// Largest k with positive mass, or nullopt-like sentinel
  /// (unbounded support returns no bound).
  [[nodiscard]] virtual bool has_finite_support() const = 0;

  /// Upper end of the support when finite (undefined otherwise).
  [[nodiscard]] virtual unsigned support_bound() const = 0;

  /// Display name, e.g. "Binomial(n=600, p=0.001)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Peakedness Z = Var/Mean.
  [[nodiscard]] double peakedness() const { return variance() / mean(); }

  /// P(X <= k) by direct summation of the pmf.
  [[nodiscard]] double cdf(unsigned k) const;
};

/// Binomial(n, p): Bernoulli (smooth) occupancy.
class BinomialCounting final : public CountingDistribution {
 public:
  BinomialCounting(unsigned n, double p);

  [[nodiscard]] double pmf(unsigned k) const override;
  [[nodiscard]] double log_pmf(unsigned k) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] bool has_finite_support() const override { return true; }
  [[nodiscard]] unsigned support_bound() const override { return n_; }
  [[nodiscard]] std::string name() const override;

 private:
  unsigned n_;
  double p_;
};

/// Poisson(rho): regular occupancy.
class PoissonCounting final : public CountingDistribution {
 public:
  explicit PoissonCounting(double rho);

  [[nodiscard]] double pmf(unsigned k) const override;
  [[nodiscard]] double log_pmf(unsigned k) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] bool has_finite_support() const override { return false; }
  [[nodiscard]] unsigned support_bound() const override { return 0; }
  [[nodiscard]] std::string name() const override;

 private:
  double rho_;
};

/// Negative binomial with r successes and success probability p, counting
/// failures: P(X=k) = C(r-1+k, k) p^k (1-p)^r with p in (0,1).  This is the
/// Pascal (peaky) occupancy with r = alpha/beta, p = beta/mu.
class PascalCounting final : public CountingDistribution {
 public:
  PascalCounting(double r, double p);

  [[nodiscard]] double pmf(unsigned k) const override;
  [[nodiscard]] double log_pmf(unsigned k) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] bool has_finite_support() const override { return false; }
  [[nodiscard]] unsigned support_bound() const override { return 0; }
  [[nodiscard]] std::string name() const override;

 private:
  double r_;
  double p_;
};

/// Factory: the infinite-server occupancy distribution of a BPP stream.
/// Dispatches on the sign of beta per §2 of the paper.
[[nodiscard]] std::unique_ptr<CountingDistribution> infinite_server_occupancy(
    const BppParams& params);

}  // namespace xbar::dist
