#include "dist/rng.hpp"

#include <cassert>
#include <cmath>

namespace xbar::dist {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) {
    word = sm.next();
  }
  // All-zero state is the one invalid state; SplitMix64 cannot produce four
  // consecutive zeros from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::exponential(double rate) noexcept {
  assert(rate > 0.0);
  return -std::log(uniform01_open_left()) / rate;
}

std::uint64_t Xoshiro256::uniform_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> s{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s[0] ^= state_[0];
        s[1] ^= state_[1];
        s[2] ^= state_[2];
        s[3] ^= state_[3];
      }
      next();
    }
  }
  state_ = s;
}

Xoshiro256 Xoshiro256::split() noexcept {
  Xoshiro256 child = *this;
  jump();  // advance ourselves past the child's 2^128-draw window
  return child;
}

}  // namespace xbar::dist
