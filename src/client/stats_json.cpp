#include "client/stats_json.hpp"

namespace xbar::client {

void write_client_stats_json(report::JsonWriter& json,
                             const ClientStats& stats) {
  json.begin_object();
  json.key("endpoint").value(stats.endpoint);
  json.key("calls").value(stats.counters.calls);
  json.key("retries").value(stats.counters.retries);
  json.key("attempt_errors").begin_object();
  json.key("timeout").value(stats.counters.attempt_timeouts);
  json.key("refused").value(stats.counters.attempt_refused);
  json.key("reset").value(stats.counters.attempt_resets);
  json.key("overloaded").value(stats.counters.attempt_overloaded);
  json.end_object();
  json.key("breaker").begin_object();
  json.key("state").value(to_string(stats.breaker_state));
  json.key("rejections").value(stats.counters.breaker_rejections);
  json.key("opened").value(stats.breaker_opened);
  json.key("half_open").value(stats.breaker_half_open);
  json.key("reclosed").value(stats.breaker_reclosed);
  json.end_object();
  json.key("hedges").begin_object();
  json.key("won").value(stats.hedges_won);
  json.key("lost").value(stats.hedges_lost);
  json.end_object();
  json.end_object();
}

}  // namespace xbar::client
