// JSON rendering for ClientStats, shared by `xbar_client --stats` and the
// router's per-backend stats (one schema, whoever the observer is).

#pragma once

#include "client/client.hpp"
#include "report/json_writer.hpp"

namespace xbar::client {

/// Emit `stats` as one JSON object onto `json` (caller owns the writer
/// position — emits begin_object..end_object).
void write_client_stats_json(report::JsonWriter& json,
                             const ClientStats& stats);

}  // namespace xbar::client
