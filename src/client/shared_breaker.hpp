// SharedBreaker: a CircuitBreaker safe to consult from many threads.
//
// The plain CircuitBreaker is deliberately single-threaded — one
// XbarClient, one endpoint, one caller.  A connection pool inverts that:
// many router workers share one endpoint, and they must share one view of
// its health, or each worker rediscovers a dead backend on its own and the
// fleet burns a full timeout per worker instead of one.
//
// The wrapper is a monitor: one mutex around the underlying state machine,
// so the half-open contract survives concurrency — when the cooldown
// elapses and N threads race into allow(), *exactly one* wins the probe
// slot and the other N-1 are rejected until that probe reports back.  That
// single-probe guarantee is what keeps a recovering backend from being
// instantly re-buried under a thundering herd, and it is pinned by a
// dedicated multi-thread test under TSan.
//
// Time stays a parameter (every method takes `now`), so the concurrent
// tests drive the clock synthetically exactly like the single-threaded
// ones.

#pragma once

#include <cstdint>
#include <mutex>

#include "client/circuit_breaker.hpp"

namespace xbar::client {

class SharedBreaker {
 public:
  using TimePoint = CircuitBreaker::TimePoint;
  using State = CircuitBreaker::State;

  explicit SharedBreaker(BreakerConfig config = {}) : breaker_(config) {}

  /// May a call proceed at `now`?  Thread-safe; in half-open exactly one
  /// concurrent caller is admitted.
  [[nodiscard]] bool allow(TimePoint now) {
    std::lock_guard<std::mutex> lock(mutex_);
    return breaker_.allow(now);
  }

  void record_success(TimePoint now) {
    std::lock_guard<std::mutex> lock(mutex_);
    breaker_.record_success(now);
  }

  void record_failure(TimePoint now) {
    std::lock_guard<std::mutex> lock(mutex_);
    breaker_.record_failure(now);
  }

  [[nodiscard]] State state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return breaker_.state();
  }

  /// Consistent point-in-time view of the state machine's counters.
  struct Snapshot {
    State state = State::kClosed;
    double failure_rate = 0.0;
    std::uint64_t opened = 0;     ///< transitions into kOpen
    std::uint64_t half_open = 0;  ///< probes admitted after cooldown
    std::uint64_t reclosed = 0;   ///< successful probes (half-open -> closed)
  };

  [[nodiscard]] Snapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {breaker_.state(), breaker_.failure_rate(),
            breaker_.times_opened(), breaker_.times_half_open(),
            breaker_.times_reclosed()};
  }

 private:
  mutable std::mutex mutex_;
  CircuitBreaker breaker_;
};

}  // namespace xbar::client
