#include "client/backoff.hpp"

#include <algorithm>

namespace xbar::client {

Backoff::Backoff(BackoffConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

double Backoff::next_delay() {
  const double base = config_.base_seconds;
  // Decorrelated jitter: uniform in [base, 3 * previous], envelope capped.
  const double upper =
      previous_ <= 0.0 ? base : std::min(config_.cap_seconds, 3.0 * previous_);
  const double span = std::max(0.0, upper - base);
  const double delay = base + rng_.uniform01() * span;
  previous_ = delay;
  return std::min(delay, config_.cap_seconds);
}

}  // namespace xbar::client
