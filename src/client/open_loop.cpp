#include "client/open_loop.hpp"

#include <algorithm>

namespace xbar::client {

OpenLoopSample open_loop_latency(double intended_s, double sent_s,
                                 double done_s) noexcept {
  OpenLoopSample sample;
  sample.service = std::max(0.0, done_s - sent_s);
  sample.corrected = std::max(sample.service, done_s - intended_s);
  return sample;
}

std::vector<OpenLoopSample> replay_open_loop(
    const std::vector<double>& schedule,
    const std::vector<double>& service_times) {
  const std::size_t n = std::min(schedule.size(), service_times.size());
  std::vector<OpenLoopSample> samples;
  samples.reserve(n);
  double free_at = 0.0;  // when the serial sender finishes its last send
  for (std::size_t i = 0; i < n; ++i) {
    const double sent = std::max(schedule[i], free_at);
    const double done = sent + std::max(0.0, service_times[i]);
    samples.push_back(open_loop_latency(schedule[i], sent, done));
    free_at = done;
  }
  return samples;
}

}  // namespace xbar::client
