// ClientPool: one endpoint, many concurrent callers.
//
// XbarClient is deliberately single-threaded, which is the right shape for
// a load-generator sender but the wrong one for a router whose workers all
// talk to the same backend.  The pool bridges the two: it keeps a stack of
// idle XbarClients (each owning one persistent connection), hands one to
// each call, and returns it afterwards — so concurrent calls cost one TCP
// connection each at peak and reuse them when load subsides.
//
// Failure handling is split between the layers on purpose:
//
//   * the pool's SharedBreaker is the *endpoint's* health, fed by every
//     call from every thread.  One worker discovering a dead backend
//     protects all of them (and the half-open single-probe contract holds
//     across threads — see shared_breaker.hpp);
//   * pooled clients run with max_attempts = 1 and their private breaker
//     disabled: the caller (the router) owns retry policy, because its
//     retry is a *failover to a different backend*, not a re-dial of this
//     one.  Sleeping inside the pool would hold a worker hostage to a
//     backend the ring has better alternatives for.
//
// outstanding() — calls currently in flight — is the load signal the
// router's bounded-load ring and least-outstanding fallback read.
//
// Thread-safe throughout.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "client/shared_breaker.hpp"

namespace xbar::client {

struct PoolConfig {
  /// Per-connection settings.  `backoff.max_attempts` is forced to 1 and
  /// the per-client breaker is neutralized — the pool's shared breaker and
  /// the caller's failover replace them.
  ClientConfig client;
  std::size_t max_idle = 4;  ///< connections kept warm between calls
  BreakerConfig breaker;     ///< the shared, endpoint-wide breaker
};

class ClientPool {
 public:
  explicit ClientPool(PoolConfig config);

  /// One breaker-gated, single-attempt call.  Returns kBreakerOpen (zero
  /// attempts) when the shared breaker rejects; otherwise the attempt's
  /// outcome, recorded into the shared breaker.  Thread-safe.
  [[nodiscard]] CallResult call(const std::string& request_line);

  /// Calls currently in flight through this pool.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] SharedBreaker& breaker() noexcept { return breaker_; }
  [[nodiscard]] const SharedBreaker& breaker() const noexcept {
    return breaker_;
  }

  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }

  /// Aggregated stats: tallies across every client the pool ever owned
  /// (idle + retired; leased clients contribute after they return) plus
  /// the shared breaker's transition history.
  [[nodiscard]] ClientStats stats() const;

 private:
  std::unique_ptr<XbarClient> acquire();
  void release(std::unique_ptr<XbarClient> client);

  PoolConfig config_;
  std::string endpoint_;
  SharedBreaker breaker_;
  std::atomic<std::size_t> outstanding_{0};

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<XbarClient>> idle_;
  ClientCounters retired_;       ///< tallies of clients already dropped
  std::uint64_t next_seed_ = 0;  ///< distinct jitter stream per client
  std::uint64_t breaker_rejections_ = 0;
};

}  // namespace xbar::client
