// XbarClient: a resilient caller for the xbar_serve wire protocol.
//
// One client owns one endpoint (host:port) and serializes calls on a
// persistent connection, transparently redialing when the server recycles
// it.  Around each request it layers the failure handling a hostile
// network demands:
//
//   * connect + request deadlines (dial_timeout / SO_RCVTIMEO+SO_SNDTIMEO),
//   * bounded retries paced by Backoff (decorrelated jitter, seeded RNG),
//   * a CircuitBreaker so a dead endpoint fails fast instead of eating
//     the full retry budget on every call,
//   * typed outcomes — the caller learns *how* a call failed (timeout /
//     refused / reset / overloaded / breaker_open), which is what lets
//     xbar_loadgen report an error-class breakdown instead of one opaque
//     failure count.
//
// Retryable attempt failures are: connect refused/timed out, send/recv
// timeout, connection reset / EOF mid-request, a response frame that is
// not protocol JSON (desynchronized stream — the chaos proxy's garbage
// fault), and a typed "overloaded"/"shutdown" frame (the server asks for
// backoff explicitly).  A server-side *error* frame (parse/config/model/
// ...) is a successful call with outcome kOk: the transport worked; the
// payload is the caller's business.
//
// Not thread-safe: one XbarClient per thread (loadgen gives each sender
// its own, seeded distinctly, so jitter stays decorrelated across
// senders).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "client/backoff.hpp"
#include "client/circuit_breaker.hpp"
#include "service/connection.hpp"

namespace xbar::client {

/// Final disposition of one call() after retries.
enum class Outcome : std::uint8_t {
  kOk,           ///< a well-formed response frame was received
  kTimeout,      ///< connect/send/recv deadline expired on the last attempt
  kRefused,      ///< connect failed (nothing listening / unreachable)
  kReset,        ///< connection reset, EOF, or desynchronized framing
  kOverloaded,   ///< server answered overloaded/shutdown on every attempt
  kBreakerOpen,  ///< circuit breaker open; no attempt was admitted
};
inline constexpr std::size_t kOutcomeCount = 6;

[[nodiscard]] std::string_view to_string(Outcome outcome) noexcept;

/// What kind of answer an ok (or shed) frame carried — the degradation
/// ladder as the caller sees it.  Exact frames have no `degraded` field;
/// the overload-controlled server flags stale and bound-only answers
/// explicitly, and shed frames carry the "priority-shed" marker.
enum class ResponseClass : std::uint8_t {
  kNone,       ///< no usable frame (transport failure) or an error frame
  kExact,      ///< full-fidelity answer, byte-identical to unloaded serving
  kStale,      ///< served from an expired cache entry ("mode":"stale")
  kBoundOnly,  ///< knapsack bound answer with error bar ("mode":"bound")
  kShed,       ///< priority-shed by the overload ladder
};
inline constexpr std::size_t kResponseClassCount = 5;

[[nodiscard]] std::string_view to_string(ResponseClass cls) noexcept;

/// Classify a response frame by its degradation markers.  Cheap substring
/// probes over the rendered frame (the same discipline the loadgen's
/// payload accounting uses).
[[nodiscard]] ResponseClass classify_response(
    std::string_view response) noexcept;

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_timeout_seconds = 1.0;
  /// Per-attempt budget, applied to the send and to the response wait.
  double request_timeout_seconds = 5.0;
  std::size_t max_response_bytes = 1 << 20;
  BackoffConfig backoff;
  BreakerConfig breaker;
  std::uint64_t seed = 1;  ///< jitter stream (distinct per client)
};

struct CallResult {
  Outcome outcome = Outcome::kReset;
  /// The response line.  Populated for outcome kOk, and for kOverloaded
  /// when the server sent a typed shed/overloaded frame (so callers can
  /// distinguish a priority-shed from a full accept queue).
  std::string response;
  /// Degradation class of `response` (kNone when there is no frame).
  ResponseClass response_class = ResponseClass::kNone;
  unsigned attempts = 0;       ///< network attempts actually made
  double backoff_seconds = 0;  ///< total time slept between attempts
};

/// Running tallies across every call (monitoring, not control flow).
struct ClientCounters {
  std::uint64_t calls = 0;
  std::uint64_t retries = 0;  ///< attempts beyond each call's first
  std::uint64_t attempt_timeouts = 0;
  std::uint64_t attempt_refused = 0;
  std::uint64_t attempt_resets = 0;
  std::uint64_t attempt_overloaded = 0;
  std::uint64_t breaker_rejections = 0;  ///< attempts the breaker blocked

  /// Fold `other` into this tally (pool aggregation over many clients).
  void absorb(const ClientCounters& other) noexcept {
    calls += other.calls;
    retries += other.retries;
    attempt_timeouts += other.attempt_timeouts;
    attempt_refused += other.attempt_refused;
    attempt_resets += other.attempt_resets;
    attempt_overloaded += other.attempt_overloaded;
    breaker_rejections += other.breaker_rejections;
  }
};

/// Queryable per-endpoint statistics: the call tallies plus the breaker's
/// state-transition history and (when the caller hedges through a pool)
/// the hedge win/loss record.  This is what `xbar_client --stats` and the
/// router's per-backend stats render.
struct ClientStats {
  std::string endpoint;  ///< "host:port"
  ClientCounters counters;
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  std::uint64_t breaker_opened = 0;
  std::uint64_t breaker_half_open = 0;
  std::uint64_t breaker_reclosed = 0;
  std::uint64_t hedges_won = 0;   ///< hedged calls whose hedge answered first
  std::uint64_t hedges_lost = 0;  ///< hedges that lost the race (or failed)
};

class XbarClient {
 public:
  explicit XbarClient(ClientConfig config);

  /// One request line -> one response line, with retries.  Never throws on
  /// network failure; the outcome says what happened.
  [[nodiscard]] CallResult call(const std::string& request_line);

  [[nodiscard]] const ClientCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const CircuitBreaker& breaker() const noexcept {
    return breaker_;
  }

  /// Point-in-time ClientStats for this endpoint (hedge fields stay zero —
  /// hedging lives in the pooled/router layer above single clients).
  [[nodiscard]] ClientStats stats() const;

  /// Drop the persistent connection (the next call redials).
  void disconnect() noexcept;

 private:
  /// What a single network attempt produced (kOk carries the response).
  enum class AttemptClass : std::uint8_t {
    kOk, kTimeout, kRefused, kReset, kOverloaded,
  };
  AttemptClass attempt_once(const std::string& line, std::string& response);

  ClientConfig config_;
  Backoff backoff_;
  CircuitBreaker breaker_;
  service::Socket socket_;
  std::optional<service::LineReader> reader_;
  ClientCounters counters_;
};

}  // namespace xbar::client
