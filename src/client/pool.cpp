#include "client/pool.hpp"

#include <chrono>
#include <utility>

namespace xbar::client {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

ClientPool::ClientPool(PoolConfig config)
    : config_(std::move(config)), breaker_(config_.breaker) {
  endpoint_ =
      config_.client.host + ':' + std::to_string(config_.client.port);
  // The pool owns retry policy (none) and breaking (shared): each client
  // makes exactly one attempt, and its private breaker can never trip
  // (failure rates cannot exceed 1).
  config_.client.backoff.max_attempts = 1;
  config_.client.breaker.failure_threshold = 2.0;
}

std::unique_ptr<XbarClient> ClientPool::acquire() {
  std::uint64_t seed_offset = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<XbarClient> client = std::move(idle_.back());
      idle_.pop_back();
      return client;
    }
    seed_offset = ++next_seed_;
  }
  ClientConfig config = config_.client;
  config.seed = config.seed + seed_offset;
  return std::make_unique<XbarClient>(config);
}

void ClientPool::release(std::unique_ptr<XbarClient> client) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.size() < config_.max_idle) {
    idle_.push_back(std::move(client));
    return;
  }
  retired_.absorb(client->counters());  // keep the tallies, drop the socket
}

CallResult ClientPool::call(const std::string& request_line) {
  if (!breaker_.allow(Clock::now())) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++breaker_rejections_;
    }
    CallResult rejected;
    rejected.outcome = Outcome::kBreakerOpen;
    return rejected;
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<XbarClient> client = acquire();
  CallResult result = client->call(request_line);
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (result.outcome == Outcome::kOk) {
    breaker_.record_success(Clock::now());
  } else {
    breaker_.record_failure(Clock::now());
  }
  release(std::move(client));
  return result;
}

ClientStats ClientPool::stats() const {
  ClientStats s;
  s.endpoint = endpoint_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.counters = retired_;
    for (const auto& client : idle_) {
      s.counters.absorb(client->counters());
    }
    s.counters.breaker_rejections += breaker_rejections_;
  }
  const SharedBreaker::Snapshot b = breaker_.snapshot();
  s.breaker_state = b.state;
  s.breaker_opened = b.opened;
  s.breaker_half_open = b.half_open;
  s.breaker_reclosed = b.reclosed;
  return s;
}

}  // namespace xbar::client
