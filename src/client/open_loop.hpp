// Open-loop latency accounting that does not lie under backpressure.
//
// An open-loop generator *intends* to send request i at
// start + schedule[i].  When a server stalls, a serial sender cannot keep
// that appointment: it is still waiting on request i-1, so request i goes
// out late — and measuring latency from the *actual* send time silently
// drops the queueing delay the stall caused.  That is coordinated
// omission: the generator coordinates with the system under test and
// omits exactly the samples that hurt, so a 500 ms stall can vanish from
// the report entirely.
//
// The fix is bookkeeping, not machinery: latency = completion − the
// *intended* arrival time.  `open_loop_latency` packages that correction
// for one sample; `replay_open_loop` replays a whole (schedule, service
// time) trace through a serial open-loop sender, producing the corrected
// and service-only samples a regression test can pin quantiles on.
//
// Closed-loop runs (no pacing, rps = 0) have no intended arrival process,
// so there is nothing to correct: corrected == service by construction.

#pragma once

#include <cstddef>
#include <vector>

namespace xbar::client {

/// One request's two latencies, in seconds.
struct OpenLoopSample {
  double corrected = 0.0;  ///< completion - intended arrival (open loop)
  double service = 0.0;    ///< completion - actual send (what the server saw)
};

/// Correct one sample: `intended_s` is when the schedule wanted the
/// request sent, `sent_s` when the sender actually got to it, `done_s`
/// when the response landed (all on one clock, seconds).  The corrected
/// latency is clamped to at least the service latency — a sender ahead of
/// schedule earns no credit.
[[nodiscard]] OpenLoopSample open_loop_latency(double intended_s,
                                               double sent_s,
                                               double done_s) noexcept;

/// Replay a serial open-loop sender over an intended-arrival schedule and
/// per-request service times: request i is sent at
/// max(schedule[i], completion of request i-1) and completes service[i]
/// later.  Returns one sample per request (sizes must match; the shorter
/// bounds the replay).  This is the oracle the coordinated-omission
/// regression test pins: a mid-trace stall must surface in the corrected
/// quantiles even though every post-stall service time looks healthy.
[[nodiscard]] std::vector<OpenLoopSample> replay_open_loop(
    const std::vector<double>& schedule,
    const std::vector<double>& service_times);

}  // namespace xbar::client
