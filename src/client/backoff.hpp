// Retry pacing for the client: exponential backoff with decorrelated
// jitter.
//
// Synchronized retries are how a transient blip becomes a thundering herd:
// every client that saw the same reset retries at the same instant and
// knocks the server over again.  Decorrelated jitter (each delay drawn
// uniformly from [base, 3 * previous]) spreads retries across time while
// still growing the envelope exponentially, and capping at `cap` bounds
// the worst-case wait.  The RNG is a seeded Xoshiro256, so a given seed
// produces the exact same delay sequence on every run — the property the
// deterministic jitter-bounds tests pin.

#pragma once

#include <cstdint>

#include "dist/rng.hpp"

namespace xbar::client {

struct BackoffConfig {
  double base_seconds = 0.010;  ///< first delay, and the per-delay floor
  double cap_seconds = 1.0;     ///< per-delay ceiling
  unsigned max_attempts = 5;    ///< total tries (first attempt included)
};

/// One retry episode's delay sequence.  Not thread-safe: each episode (or
/// each client) owns its own Backoff.
class Backoff {
 public:
  Backoff(BackoffConfig config, std::uint64_t seed);

  /// Delay to sleep before the next retry, in seconds.  Every value is in
  /// [base, cap]; the upper envelope triples per call until it hits cap.
  [[nodiscard]] double next_delay();

  /// Start a fresh episode (the envelope collapses back to base).
  void reset() noexcept { previous_ = 0.0; }

  [[nodiscard]] const BackoffConfig& config() const noexcept {
    return config_;
  }

 private:
  BackoffConfig config_;
  dist::Xoshiro256 rng_;
  double previous_ = 0.0;  ///< last delay handed out (0 = fresh episode)
};

}  // namespace xbar::client
