// Per-endpoint circuit breaker: closed → open → half-open → closed.
//
// Retrying a dead endpoint burns the caller's latency budget and piles
// more load on whatever is struggling.  The breaker watches a sliding
// window of recent call results; once the failure rate in a full-enough
// window crosses the threshold it *opens* and fails calls instantly for
// `open_seconds`.  After that cooldown it goes *half-open* and admits a
// single probe: success closes the breaker (window reset), failure
// re-opens it for another cooldown.
//
// Time is a parameter, never an ambient read: every method takes `now`, so
// tests drive the state machine with synthetic clocks and the transitions
// are exactly reproducible.  The class is not thread-safe — the client
// serializes calls per endpoint, and each XbarClient owns its breaker.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace xbar::client {

struct BreakerConfig {
  std::size_t window = 16;        ///< sliding window of recent outcomes
  std::size_t min_samples = 4;    ///< don't trip on fewer results than this
  double failure_threshold = 0.5; ///< open when failure rate >= this
  double open_seconds = 0.5;      ///< cooldown before the half-open probe
};

class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig config = {});

  /// May a call proceed at `now`?  In kOpen this flips to kHalfOpen (and
  /// admits the probe) once the cooldown has elapsed; in kHalfOpen only
  /// the single in-flight probe is admitted.
  [[nodiscard]] bool allow(TimePoint now);

  /// Report the result of an admitted call.
  void record_success(TimePoint now);
  void record_failure(TimePoint now);

  [[nodiscard]] State state() const noexcept { return state_; }

  /// Failure rate over the current window (0 when empty).
  [[nodiscard]] double failure_rate() const noexcept;

  /// Times the breaker transitioned closed/half-open -> open.
  [[nodiscard]] std::uint64_t times_opened() const noexcept {
    return times_opened_;
  }

  /// Times the cooldown elapsed and a half-open probe was admitted.
  [[nodiscard]] std::uint64_t times_half_open() const noexcept {
    return times_half_open_;
  }

  /// Times a half-open probe succeeded and the breaker re-closed.
  [[nodiscard]] std::uint64_t times_reclosed() const noexcept {
    return times_reclosed_;
  }

 private:
  void trip(TimePoint now);
  void push(bool failure);

  BreakerConfig config_;
  State state_ = State::kClosed;
  std::vector<bool> results_;  ///< ring buffer, true = failure
  std::size_t next_ = 0;       ///< ring cursor
  std::size_t count_ = 0;      ///< valid entries (<= window)
  std::size_t failures_ = 0;   ///< failures among valid entries
  bool probe_in_flight_ = false;
  TimePoint opened_at_{};
  std::uint64_t times_opened_ = 0;
  std::uint64_t times_half_open_ = 0;
  std::uint64_t times_reclosed_ = 0;
};

[[nodiscard]] std::string_view to_string(CircuitBreaker::State state) noexcept;

}  // namespace xbar::client
