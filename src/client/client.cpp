#include "client/client.hpp"

#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

namespace xbar::client {

namespace {

using Clock = std::chrono::steady_clock;

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

}  // namespace

std::string_view to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kRefused: return "refused";
    case Outcome::kReset: return "reset";
    case Outcome::kOverloaded: return "overloaded";
    case Outcome::kBreakerOpen: return "breaker_open";
  }
  return "?";
}

std::string_view to_string(ResponseClass cls) noexcept {
  switch (cls) {
    case ResponseClass::kNone: return "none";
    case ResponseClass::kExact: return "exact";
    case ResponseClass::kStale: return "stale";
    case ResponseClass::kBoundOnly: return "bound";
    case ResponseClass::kShed: return "shed";
  }
  return "?";
}

ResponseClass classify_response(std::string_view response) noexcept {
  if (response.empty()) {
    return ResponseClass::kNone;
  }
  if (contains(response, "\"degraded\":{\"mode\":\"stale\"")) {
    return ResponseClass::kStale;
  }
  if (contains(response, "\"degraded\":{\"mode\":\"bound\"")) {
    return ResponseClass::kBoundOnly;
  }
  if (contains(response, "priority-shed")) {
    return ResponseClass::kShed;
  }
  if (contains(response, "\"status\":\"ok\"")) {
    return ResponseClass::kExact;
  }
  return ResponseClass::kNone;
}

XbarClient::XbarClient(ClientConfig config)
    : config_(std::move(config)),
      backoff_(config_.backoff, config_.seed),
      breaker_(config_.breaker) {}

ClientStats XbarClient::stats() const {
  ClientStats s;
  s.endpoint = config_.host + ':' + std::to_string(config_.port);
  s.counters = counters_;
  s.breaker_state = breaker_.state();
  s.breaker_opened = breaker_.times_opened();
  s.breaker_half_open = breaker_.times_half_open();
  s.breaker_reclosed = breaker_.times_reclosed();
  return s;
}

void XbarClient::disconnect() noexcept {
  reader_.reset();
  socket_.reset();
}

CallResult XbarClient::call(const std::string& request_line) {
  CallResult result;
  ++counters_.calls;
  backoff_.reset();
  const unsigned max_attempts =
      config_.backoff.max_attempts > 0 ? config_.backoff.max_attempts : 1;

  Outcome last = Outcome::kBreakerOpen;
  std::string overloaded_frame;
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const double delay = backoff_.next_delay();
      result.backoff_seconds += delay;
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      ++counters_.retries;
    }
    if (!breaker_.allow(Clock::now())) {
      ++counters_.breaker_rejections;
      last = Outcome::kBreakerOpen;
      continue;  // wait out the cooldown within the retry budget
    }
    ++result.attempts;
    std::string response;
    const AttemptClass cls = attempt_once(request_line, response);
    if (cls == AttemptClass::kOk) {
      breaker_.record_success(Clock::now());
      result.outcome = Outcome::kOk;
      result.response = std::move(response);
      result.response_class = classify_response(result.response);
      return result;
    }
    breaker_.record_failure(Clock::now());
    switch (cls) {
      case AttemptClass::kTimeout:
        ++counters_.attempt_timeouts;
        last = Outcome::kTimeout;
        break;
      case AttemptClass::kRefused:
        ++counters_.attempt_refused;
        last = Outcome::kRefused;
        break;
      case AttemptClass::kReset:
        ++counters_.attempt_resets;
        last = Outcome::kReset;
        break;
      case AttemptClass::kOverloaded:
        ++counters_.attempt_overloaded;
        last = Outcome::kOverloaded;
        // Keep the typed frame: a priority-shed is a *decision* the
        // caller may want to read, not just a transport symptom.
        overloaded_frame = std::move(response);
        break;
      case AttemptClass::kOk:
        break;  // unreachable
    }
  }
  result.outcome = last;
  if (last == Outcome::kOverloaded && !overloaded_frame.empty()) {
    result.response = std::move(overloaded_frame);
    result.response_class = classify_response(result.response);
  }
  return result;
}

XbarClient::AttemptClass XbarClient::attempt_once(const std::string& line,
                                                  std::string& response) {
  if (!socket_.valid()) {
    int err = 0;
    service::Socket fresh = service::dial_timeout(
        config_.host, config_.port, config_.connect_timeout_seconds, &err);
    if (!fresh.valid()) {
      return err == ETIMEDOUT ? AttemptClass::kTimeout
                              : AttemptClass::kRefused;
    }
    service::set_recv_timeout(fresh.fd(), config_.request_timeout_seconds);
    service::set_send_timeout(fresh.fd(), config_.request_timeout_seconds);
    socket_ = std::move(fresh);
    reader_.emplace(socket_.fd(), config_.max_response_bytes);
  }

  switch (service::send_line(socket_.fd(), line)) {
    case service::SendStatus::kOk:
      break;
    case service::SendStatus::kTimeout:
      disconnect();
      return AttemptClass::kTimeout;
    case service::SendStatus::kError:
      disconnect();
      return AttemptClass::kReset;
  }

  switch (reader_->read_line(response)) {
    case service::LineReader::Status::kLine:
      break;
    case service::LineReader::Status::kTimeout:
      disconnect();
      return AttemptClass::kTimeout;
    case service::LineReader::Status::kEof:
    case service::LineReader::Status::kOverflow:
    case service::LineReader::Status::kError:
      disconnect();
      return AttemptClass::kReset;
  }

  // Protocol frames are JSON objects.  Anything else means the stream is
  // desynchronized (garbage injected, response truncated upstream):
  // resynchronize by reconnecting and let the retry loop re-send.
  if (response.empty() || response.front() != '{') {
    disconnect();
    return AttemptClass::kReset;
  }
  // The server closes the connection after an admission rejection or a
  // drain notice; both are explicit "come back later" signals.
  if (contains(response, "\"kind\":\"overloaded\"") ||
      contains(response, "\"kind\":\"shutdown\"")) {
    disconnect();
    return AttemptClass::kOverloaded;
  }
  return AttemptClass::kOk;
}

}  // namespace xbar::client
