#include "client/circuit_breaker.hpp"

namespace xbar::client {

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  if (config_.window == 0) {
    config_.window = 1;
  }
  results_.assign(config_.window, false);
}

bool CircuitBreaker::allow(TimePoint now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const auto cooldown = std::chrono::duration<double>(
          config_.open_seconds);
      if (now - opened_at_ < cooldown) {
        return false;
      }
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      ++times_half_open_;
      return true;
    }
    case State::kHalfOpen:
      if (probe_in_flight_) {
        return false;  // one probe at a time
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(TimePoint /*now*/) {
  if (state_ == State::kHalfOpen) {
    // Probe succeeded: close with a clean slate so one stale window
    // cannot re-trip the breaker on the next failure.
    state_ = State::kClosed;
    probe_in_flight_ = false;
    ++times_reclosed_;
    results_.assign(config_.window, false);
    next_ = 0;
    count_ = 0;
    failures_ = 0;
    return;
  }
  push(false);
}

void CircuitBreaker::record_failure(TimePoint now) {
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    trip(now);
    return;
  }
  push(true);
  if (state_ == State::kClosed && count_ >= config_.min_samples &&
      failure_rate() >= config_.failure_threshold) {
    trip(now);
  }
}

double CircuitBreaker::failure_rate() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(failures_) /
                           static_cast<double>(count_);
}

void CircuitBreaker::trip(TimePoint now) {
  state_ = State::kOpen;
  opened_at_ = now;
  ++times_opened_;
}

void CircuitBreaker::push(bool failure) {
  if (count_ == results_.size()) {
    failures_ -= results_[next_] ? 1 : 0;  // evict the oldest
  } else {
    ++count_;
  }
  results_[next_] = failure;
  failures_ += failure ? 1 : 0;
  next_ = (next_ + 1) % results_.size();
}

std::string_view to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace xbar::client
