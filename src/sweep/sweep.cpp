#include "sweep/sweep.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "core/algorithm1.hpp"
#include "core/algorithm2.hpp"

namespace xbar::sweep {

// Resolved solver choice for one model.  kFast's degeneracy fallback is a
// property of the *grid*, not the key: both outcomes build from the same
// entry, so the key only records the user-visible mode.  (Named-namespace
// scope, not anonymous: CacheKey embeds it and has external linkage.)
enum class Mode : std::uint8_t {
  kAlg1Scaled,
  kAlg1Fast,  // dynamic-scaling double, ScaledFloat on degeneracy
  kAlg2,
};

namespace {

Mode resolve(const core::CrossbarModel& model, SweepSolver solver) {
  switch (solver) {
    case SweepSolver::kFast:
      return Mode::kAlg1Fast;
    case SweepSolver::kAlgorithm1:
      return Mode::kAlg1Scaled;
    case SweepSolver::kAlgorithm2:
      return Mode::kAlg2;
    case SweepSolver::kAuto:
      break;
  }
  // Paper §5: Algorithm 1 for small crossbars, Algorithm 2 beyond.
  return model.dims().cap() <= 32 ? Mode::kAlg1Scaled : Mode::kAlg2;
}

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  // 64-bit FNV-1a step over an 8-byte lane.
  h ^= v;
  return h * 0x100000001B3ull;
}

std::uint64_t hash_double(std::uint64_t h, double v) {
  return hash_mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

// The full cache key: exact, so a fingerprint collision can never alias
// two different models.
struct CacheKey {
  core::Dims dims;
  Mode mode = Mode::kAlg1Scaled;
  std::vector<core::NormalizedClass> classes;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    if (a.dims != b.dims || a.mode != b.mode ||
        a.classes.size() != b.classes.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a.classes.size(); ++r) {
      const core::NormalizedClass& x = a.classes[r];
      const core::NormalizedClass& y = b.classes[r];
      if (x.bandwidth != y.bandwidth || x.alpha != y.alpha ||
          x.beta != y.beta || x.mu != y.mu || x.weight != y.weight) {
        return false;
      }
    }
    return true;
  }
};

namespace {

CacheKey make_key(const core::CrossbarModel& model, Mode mode) {
  CacheKey key;
  key.dims = model.dims();
  key.mode = mode;
  key.classes.assign(model.normalized_classes().begin(),
                     model.normalized_classes().end());
  return key;
}

std::uint64_t fingerprint(const CacheKey& key) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = hash_mix(h, key.dims.n1);
  h = hash_mix(h, key.dims.n2);
  h = hash_mix(h, static_cast<std::uint64_t>(key.mode));
  for (const core::NormalizedClass& c : key.classes) {
    h = hash_mix(h, c.bandwidth);
    h = hash_double(h, c.alpha);
    h = hash_double(h, c.beta);
    h = hash_double(h, c.mu);
    h = hash_double(h, c.weight);
  }
  return h;
}

}  // namespace

struct SolverCache::Entry {
  std::uint64_t fp = 0;
  CacheKey key;
  std::unique_ptr<core::Algorithm1Solver> alg1;
  std::unique_ptr<core::Algorithm2Solver> alg2;
};

SolverCache::SolverCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

SolverCache::~SolverCache() = default;
SolverCache::SolverCache(SolverCache&&) noexcept = default;
SolverCache& SolverCache::operator=(SolverCache&&) noexcept = default;

SolverCache::Entry& SolverCache::lookup(const core::CrossbarModel& model,
                                        SweepSolver solver) {
  const Mode mode = resolve(model, solver);
  CacheKey key = make_key(model, mode);
  const std::uint64_t fp = fingerprint(key);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].fp == fp && entries_[i].key == key) {
      ++hits_;
      // Move-to-front keeps the scan short and the eviction victim last.
      if (i != 0) {
        std::rotate(entries_.begin(), entries_.begin() + static_cast<std::ptrdiff_t>(i),
                    entries_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      }
      return entries_.front();
    }
  }
  ++misses_;
  Entry entry;
  entry.fp = fp;
  entry.key = std::move(key);
  switch (mode) {
    case Mode::kAlg1Scaled:
      entry.alg1 = std::make_unique<core::Algorithm1Solver>(model);
      break;
    case Mode::kAlg1Fast: {
      core::Algorithm1Options opts;
      opts.backend = core::Algorithm1Backend::kDoubleDynamicScaling;
      entry.alg1 = std::make_unique<core::Algorithm1Solver>(model, opts);
      if (entry.alg1->degenerate()) {
        // Deterministic robustness fallback: the extended-range backend.
        entry.alg1 = std::make_unique<core::Algorithm1Solver>(model);
      }
      break;
    }
    case Mode::kAlg2:
      entry.alg2 = std::make_unique<core::Algorithm2Solver>(model);
      break;
  }
  if (entries_.size() >= capacity_) {
    entries_.pop_back();
  }
  entries_.insert(entries_.begin(), std::move(entry));
  return entries_.front();
}

core::Measures SolverCache::eval(const core::CrossbarModel& model,
                                 SweepSolver solver) {
  Entry& e = lookup(model, solver);
  return e.alg1 ? e.alg1->solve() : e.alg2->solve();
}

core::Measures SolverCache::eval_at(const core::CrossbarModel& model,
                                    core::Dims at, SweepSolver solver) {
  Entry& e = lookup(model, solver);
  return e.alg1 ? e.alg1->solve_at(at) : e.alg2->solve_at(at);
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)) {}

ThreadPool& SweepRunner::pool() const noexcept {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::shared();
}

void SweepRunner::ensure_caches() {
  unsigned slots = pool().worker_count() + 1;
  if (options_.threads != 0) {
    slots = std::min(slots, options_.threads);
  }
  while (caches_.size() < slots) {
    caches_.push_back(std::make_unique<SolverCache>(options_.cache_capacity));
  }
}

SolverCache& SweepRunner::cache(unsigned slot) {
  if (slot >= caches_.size()) {
    ensure_caches();  // single-threaded use outside parallel_for
  }
  assert(slot < caches_.size());
  return *caches_[slot];
}

std::vector<core::Measures> SweepRunner::run(
    const std::vector<ScenarioPoint>& points) {
  return map<core::Measures>(
      points.size(), [&](std::size_t i, SolverCache& cache) {
        const ScenarioPoint& pt = points[i];
        return pt.eval_at ? cache.eval_at(pt.model, *pt.eval_at,
                                          options_.solver)
                          : cache.eval(pt.model, options_.solver);
      });
}

std::vector<core::Measures> SweepRunner::dimension_sweep(
    const core::CrossbarModel& model, const std::vector<core::Dims>& sizes) {
  core::Dims max_dims = model.dims();
  for (const core::Dims& d : sizes) {
    max_dims.n1 = std::max(max_dims.n1, d.n1);
    max_dims.n2 = std::max(max_dims.n2, d.n2);
  }
  const core::CrossbarModel parent =
      model.dims() == max_dims ? model
                               : model.with_dims_same_tuple_rates(max_dims);
  std::vector<ScenarioPoint> points;
  points.reserve(sizes.size());
  for (const core::Dims& d : sizes) {
    points.push_back(ScenarioPoint{parent, d});
  }
  return run(points);
}

}  // namespace xbar::sweep
