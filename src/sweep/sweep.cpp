#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <mutex>
#include <utility>

#include "core/algorithm1.hpp"
#include "core/algorithm1_batch.hpp"
#include "core/algorithm2.hpp"
#include "core/error.hpp"
#include "core/priority.hpp"
#include "core/solver.hpp"
#include "core/speedup.hpp"
#include "sweep/checkpoint.hpp"
#include "sweep/fault_injector.hpp"

namespace xbar::sweep {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

core::Algorithm1Backend to_algorithm1_backend(core::NumericBackend backend) {
  switch (backend) {
    case core::NumericBackend::kScaledFloat:
      return core::Algorithm1Backend::kScaledFloat;
    case core::NumericBackend::kDoubleDynamicScaling:
      return core::Algorithm1Backend::kDoubleDynamicScaling;
    case core::NumericBackend::kLongDouble:
      return core::Algorithm1Backend::kLongDouble;
    case core::NumericBackend::kDoubleRaw:
      return core::Algorithm1Backend::kDoubleRaw;
    case core::NumericBackend::kLogDomain:
      return core::Algorithm1Backend::kLogDomain;
    case core::NumericBackend::kRatio:
    case core::NumericBackend::kDense:
      break;
  }
  raise(ErrorKind::kInternal, "not an Algorithm 1 grid backend");
}

// The model a grid entry is actually built on: speedup-s solves the
// paper's crossbar at the virtual dimensions (s N1, s N2), every other
// fabric solves the model as given.
core::CrossbarModel fabric_target(const core::CrossbarModel& model,
                                  core::FabricModel fabric) {
  if (fabric.kind == core::FabricKind::kSpeedup) {
    return core::speedup_scaled_model(model, fabric.speedup);
  }
  return model;
}

// Subsystem coordinates on that grid: speedup scales them too.
core::Dims fabric_eval_dims(core::Dims at, core::FabricModel fabric) {
  if (fabric.kind == core::FabricKind::kSpeedup) {
    return core::Dims{at.n1 * fabric.speedup, at.n2 * fabric.speedup};
  }
  return at;
}

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  // 64-bit FNV-1a step over an 8-byte lane.
  h ^= v;
  return h * 0x100000001B3ull;
}

std::uint64_t hash_double(std::uint64_t h, double v) {
  return hash_mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

// The full cache key: exact, so a fingerprint collision can never alias
// two different models.  The resolved solver is part of the key — kFast's
// degeneracy fallback is a property of the *grid*, not the key: both
// outcomes build from the same entry, so the key records the resolution,
// not the rescue.  (Named-namespace scope, not anonymous: the Entry embeds
// it and has external linkage.)
struct CacheKey {
  core::Dims dims;
  core::ResolvedSolver solver;
  std::vector<core::NormalizedClass> classes;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    if (a.dims != b.dims || a.solver != b.solver ||
        a.classes.size() != b.classes.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a.classes.size(); ++r) {
      const core::NormalizedClass& x = a.classes[r];
      const core::NormalizedClass& y = b.classes[r];
      if (x.bandwidth != y.bandwidth || x.alpha != y.alpha ||
          x.beta != y.beta || x.mu != y.mu || x.weight != y.weight) {
        return false;
      }
    }
    return true;
  }
};

namespace {

CacheKey make_key(const core::CrossbarModel& model,
                  core::ResolvedSolver solver) {
  CacheKey key;
  key.dims = model.dims();
  key.solver = solver;
  key.classes.assign(model.normalized_classes().begin(),
                     model.normalized_classes().end());
  return key;
}

std::uint64_t fingerprint(const CacheKey& key) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = hash_mix(h, key.dims.n1);
  h = hash_mix(h, key.dims.n2);
  h = hash_mix(h, static_cast<std::uint64_t>(key.solver.algorithm));
  h = hash_mix(h, static_cast<std::uint64_t>(key.solver.backend));
  h = hash_mix(h, key.solver.fallback_on_degenerate ? 1u : 0u);
  // The fabric contributes lanes only when it is not the default crossbar —
  // the same omission rule the canonical spec string uses, so the legacy
  // crossbar fingerprint is unchanged (pinned by a regression test).
  if (key.solver.fabric.kind != core::FabricKind::kCrossbar) {
    h = hash_mix(h, static_cast<std::uint64_t>(key.solver.fabric.kind));
    h = hash_mix(h, key.solver.fabric.speedup);
  }
  for (const core::NormalizedClass& c : key.classes) {
    h = hash_mix(h, c.bandwidth);
    h = hash_double(h, c.alpha);
    h = hash_double(h, c.beta);
    h = hash_double(h, c.mu);
    h = hash_double(h, c.weight);
  }
  return h;
}

}  // namespace

struct SolverCache::Entry {
  std::uint64_t fp = 0;
  CacheKey key;
  std::unique_ptr<core::Algorithm1Solver> alg1;
  std::unique_ptr<core::Algorithm2Solver> alg2;
  std::unique_ptr<core::PriorityCtmcSolver> prio;
  // Build-time record, copied into every SolveResult answered from this
  // entry: what actually ran, deterministic per point.
  core::SolveDiagnostics built;
};

SolverCache::SolverCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

SolverCache::~SolverCache() = default;
SolverCache::SolverCache(SolverCache&&) noexcept = default;
SolverCache& SolverCache::operator=(SolverCache&&) noexcept = default;

SolverCache::Entry& SolverCache::lookup(const core::CrossbarModel& model,
                                        const core::SolverSpec& spec,
                                        bool& was_hit) {
  const core::ResolvedSolver resolved = core::resolve(spec, model);
  CacheKey key = make_key(model, resolved);
  const std::uint64_t fp = fingerprint(key);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].fp == fp && entries_[i].key == key) {
      ++hits_;
      was_hit = true;
      // Move-to-front keeps the scan short and the eviction victim last.
      if (i != 0) {
        std::rotate(entries_.begin(),
                    entries_.begin() + static_cast<std::ptrdiff_t>(i),
                    entries_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      }
      return entries_.front();
    }
  }
  ++misses_;
  was_hit = false;
  Entry entry;
  entry.fp = fp;
  entry.key = std::move(key);
  entry.built.requested = spec.algorithm;
  entry.built.algorithm = resolved.algorithm;
  entry.built.backend = resolved.backend;
  entry.built.fabric = resolved.fabric;
  entry.built.grid = model.dims();
  switch (resolved.algorithm) {
    case core::SolverAlgorithm::kAlgorithm1: {
      const core::CrossbarModel target =
          fabric_target(model, resolved.fabric);
      entry.built.grid = target.dims();
      core::Algorithm1Options opts;
      opts.backend = to_algorithm1_backend(resolved.backend);
      entry.alg1 = std::make_unique<core::Algorithm1Solver>(target, opts);
      if (resolved.fallback_on_degenerate && entry.alg1->degenerate()) {
        // Deterministic robustness fallback: the extended-range backend.
        entry.alg1 = std::make_unique<core::Algorithm1Solver>(target);
        entry.built.backend = core::NumericBackend::kScaledFloat;
        entry.built.fast_fallback = true;
      }
      entry.built.rescales = entry.alg1->scaling_events();
      break;
    }
    case core::SolverAlgorithm::kAlgorithm2: {
      const core::CrossbarModel target =
          fabric_target(model, resolved.fabric);
      entry.built.grid = target.dims();
      entry.alg2 = std::make_unique<core::Algorithm2Solver>(target);
      break;
    }
    case core::SolverAlgorithm::kPriorityCtmc:
      entry.prio = std::make_unique<core::PriorityCtmcSolver>(model);
      break;
    case core::SolverAlgorithm::kAuto:
    case core::SolverAlgorithm::kFast:
    case core::SolverAlgorithm::kBruteForce:
      raise(ErrorKind::kInternal,
            "resolve() handed the cache an unresolved solver");
  }
  if (entries_.size() >= capacity_) {
    entries_.pop_back();
  }
  entries_.insert(entries_.begin(), std::move(entry));
  return entries_.front();
}

core::SolveResult SolverCache::eval_result(const core::CrossbarModel& model,
                                           const core::SolverSpec& spec) {
  return eval_at_result(model, model.dims(), spec);
}

core::SolveResult SolverCache::eval_at_result(const core::CrossbarModel& model,
                                              core::Dims at,
                                              const core::SolverSpec& spec) {
  const auto start = Clock::now();
  core::SolveResult result;

  if (spec.algorithm == core::SolverAlgorithm::kBruteForce) {
    // Brute force is a test oracle, not a cached grid: it stores no state
    // worth reusing, so it takes the direct path and leaves the counters
    // alone.  Subsystem evaluation re-normalizes the traffic at `at`.
    const bool full = at == model.dims();
    result = core::solve_result(
        full ? model : model.with_dims_same_tuple_rates(at),
        core::SolverSpec::brute_force().with_fabric(spec.fabric));
    result.diagnostics.evaluated_at = at;
    result.diagnostics.wall_seconds = seconds_since(start);
    return result;
  }

  if (spec.fabric.kind == core::FabricKind::kPriority &&
      at != model.dims()) {
    // The priority CTMC has no subsystem shortcut: a smaller `at` is a
    // genuinely different chain, so re-normalize and cache that model.
    return eval_at_result(model.with_dims_same_tuple_rates(at), at, spec);
  }

  bool was_hit = false;
  Entry& e = lookup(model, spec, was_hit);
  const core::Dims eval_dims = fabric_eval_dims(at, e.built.fabric);
  result.measures = e.prio ? e.prio->solve()
                   : e.alg1 ? e.alg1->solve_at(eval_dims)
                            : e.alg2->solve_at(eval_dims);
  result.diagnostics = e.built;
  result.diagnostics.evaluated_at = eval_dims;
  result.diagnostics.cache_hit = was_hit;
  result.diagnostics.wall_seconds = seconds_since(start);
  return result;
}

std::vector<core::SolveResult> SolverCache::eval_batch_result(
    const std::vector<core::CrossbarModel>& models,
    const core::SolverSpec& spec) {
  const auto start = Clock::now();
  std::vector<core::SolveResult> out(models.size());
  if (models.empty()) {
    return out;
  }

  // The batch path covers exactly what Algorithm1BatchSolver can advance in
  // lockstep: Algorithm 1 on a lane backend.  Anything else degrades to
  // sequential evaluation with identical results.
  std::vector<core::ResolvedSolver> resolved(models.size());
  bool batchable = true;
  for (std::size_t i = 0; i < models.size(); ++i) {
    resolved[i] = core::resolve(spec, models[i]);
    if (resolved[i].algorithm != core::SolverAlgorithm::kAlgorithm1 ||
        !core::Algorithm1BatchSolver::lane_backend(
            to_algorithm1_backend(resolved[i].backend))) {
      batchable = false;
    }
  }
  if (!batchable) {
    for (std::size_t i = 0; i < models.size(); ++i) {
      out[i] = eval_result(models[i], spec);
    }
    return out;
  }

  // Pass 1: the miss set — first occurrences of keys the cache does not
  // hold.  Duplicates and cached models are answered as hits in pass 3.
  std::vector<CacheKey> keys(models.size());
  std::vector<std::uint64_t> fps(models.size());
  std::vector<std::size_t> miss;
  for (std::size_t i = 0; i < models.size(); ++i) {
    keys[i] = make_key(models[i], resolved[i]);
    fps[i] = fingerprint(keys[i]);
    bool known = false;
    for (const Entry& e : entries_) {
      if (e.fp == fps[i] && e.key == keys[i]) {
        known = true;
        break;
      }
    }
    for (const std::size_t j : miss) {
      if (fps[j] == fps[i] && keys[j] == keys[i]) {
        known = true;
        break;
      }
    }
    if (!known) {
      miss.push_back(i);
    }
  }

  // Pass 2: build every miss before inserting any of them, one batch solve
  // per (dims, backend) group, so capacity eviction can never drop a grid
  // that has not answered yet.
  std::vector<Entry> built(miss.size());
  std::vector<bool> pending(miss.size(), false);
  {
    std::vector<bool> taken(miss.size(), false);
    for (std::size_t g = 0; g < miss.size(); ++g) {
      if (taken[g]) {
        continue;
      }
      std::vector<std::size_t> lanes;  // indices into `miss`
      for (std::size_t k = g; k < miss.size(); ++k) {
        if (!taken[k] &&
            models[miss[k]].dims() == models[miss[g]].dims() &&
            resolved[miss[k]] == resolved[miss[g]]) {
          taken[k] = true;
          lanes.push_back(k);
        }
      }
      std::vector<core::CrossbarModel> group;
      group.reserve(lanes.size());
      for (const std::size_t k : lanes) {
        // Speedup lanes advance the *scaled* grid through the traversal.
        group.push_back(
            fabric_target(models[miss[k]], resolved[miss[k]].fabric));
      }
      core::Algorithm1Options opts;
      opts.backend = to_algorithm1_backend(resolved[miss[g]].backend);
      core::Algorithm1BatchSolver batch(std::move(group), opts);
      for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
        const std::size_t k = lanes[lane];
        const std::size_t i = miss[k];
        Entry& e = built[k];
        e.fp = fps[i];
        e.key = keys[i];
        e.built.requested = spec.algorithm;
        e.built.algorithm = resolved[i].algorithm;
        e.built.backend = resolved[i].backend;
        e.built.fabric = resolved[i].fabric;
        e.built.grid = fabric_eval_dims(models[i].dims(), resolved[i].fabric);
        e.built.batched = batch.lane_batched(lane);
        e.alg1 = batch.extract(lane);
        if (resolved[i].fallback_on_degenerate && e.alg1->degenerate()) {
          // kFast's rescue, per scenario: the rebuilt ScaledFloat grid is a
          // single solve, so the entry honestly drops the batched flag.
          e.alg1 = std::make_unique<core::Algorithm1Solver>(
              fabric_target(models[i], resolved[i].fabric));
          e.built.backend = core::NumericBackend::kScaledFloat;
          e.built.fast_fallback = true;
          e.built.batched = false;
        }
        e.built.rescales = e.alg1->scaling_events();
        pending[k] = true;
      }
    }
  }

  // Pass 3: answer in input order.  A pending miss answers from its own
  // just-built entry (counted as a miss), then moves into the cache;
  // everything else goes through lookup() so hits stay honest.
  for (std::size_t i = 0; i < models.size(); ++i) {
    std::size_t k = miss.size();
    for (std::size_t m = 0; m < miss.size(); ++m) {
      if (pending[m] && miss[m] == i) {
        k = m;
        break;
      }
    }
    if (k == miss.size()) {
      out[i] = eval_at_result(models[i], models[i].dims(), spec);
      continue;
    }
    ++misses_;
    pending[k] = false;
    Entry& e = built[k];
    const core::Dims eval_dims =
        fabric_eval_dims(models[i].dims(), e.built.fabric);
    out[i].measures = e.alg1->solve_at(eval_dims);
    out[i].diagnostics = e.built;
    out[i].diagnostics.evaluated_at = eval_dims;
    out[i].diagnostics.cache_hit = false;
    out[i].diagnostics.wall_seconds = seconds_since(start);
    if (entries_.size() >= capacity_) {
      entries_.pop_back();
    }
    entries_.insert(entries_.begin(), std::move(e));
  }
  return out;
}

core::Measures SolverCache::eval(const core::CrossbarModel& model,
                                 const core::SolverSpec& spec) {
  return eval_result(model, spec).measures;
}

core::Measures SolverCache::eval_at(const core::CrossbarModel& model,
                                    core::Dims at,
                                    const core::SolverSpec& spec) {
  return eval_at_result(model, at, spec).measures;
}

std::string_view to_string(PointState state) noexcept {
  switch (state) {
    case PointState::kOk:
      return "ok";
    case PointState::kRetried:
      return "retried";
    case PointState::kFailed:
      return "failed";
    case PointState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::size_t SweepReport::total_hits() const noexcept {
  std::size_t total = 0;
  for (const SweepSlotCounters& s : slots) {
    total += s.hits;
  }
  return total;
}

std::size_t SweepReport::total_misses() const noexcept {
  std::size_t total = 0;
  for (const SweepSlotCounters& s : slots) {
    total += s.misses;
  }
  return total;
}

std::size_t SweepReport::count(PointState state) const noexcept {
  std::size_t total = 0;
  for (const PointStatus& s : statuses) {
    if (s.state == state) {
      ++total;
    }
  }
  return total;
}

bool SweepReport::complete() const noexcept {
  for (const PointStatus& s : statuses) {
    if (s.state != PointState::kOk && s.state != PointState::kRetried) {
      return false;
    }
  }
  return true;
}

std::vector<core::Measures> SweepReport::measures() const {
  std::vector<core::Measures> out;
  out.reserve(results.size());
  for (const core::SolveResult& r : results) {
    out.push_back(r.measures);
  }
  return out;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)) {}

ThreadPool& SweepRunner::pool() const noexcept {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::shared();
}

void SweepRunner::ensure_caches() {
  unsigned slots = pool().worker_count() + 1;
  if (options_.threads != 0) {
    slots = std::min(slots, options_.threads);
  }
  while (caches_.size() < slots) {
    caches_.push_back(std::make_unique<SolverCache>(options_.cache_capacity));
  }
}

SolverCache& SweepRunner::cache(unsigned slot) {
  if (slot >= caches_.size()) {
    ensure_caches();  // single-threaded use outside parallel_for
  }
  assert(slot < caches_.size());
  return *caches_[slot];
}

std::vector<SweepSlotCounters> SweepRunner::slot_counters() const {
  std::vector<SweepSlotCounters> counters;
  counters.reserve(caches_.size());
  for (const auto& cache : caches_) {
    counters.push_back(SweepSlotCounters{cache->hits(), cache->misses()});
  }
  return counters;
}

core::SolveResult SweepRunner::solve_point(const ScenarioPoint& pt,
                                           SolverCache& cache,
                                           const core::SolverSpec& spec,
                                           std::size_t index) {
  FaultInjector* injector = options_.fault.injector;
  if (injector != nullptr) {
    injector->apply_pre(index);
  }
  core::SolveResult result =
      pt.eval_at ? cache.eval_at_result(pt.model, *pt.eval_at, spec)
                 : cache.eval_result(pt.model, spec);
  if (injector != nullptr) {
    injector->apply_post(index, result.measures);
  }
  return result;
}

// The guarded per-point path (fault.isolate): attempt the requested spec,
// and while the post-solve numeric guard rejects the measures, climb the
// escalation ladder — requested -> algorithm1/scaled -> algorithm1/log-domain
// (identical rungs skipped, attempts capped by max_escalations).  A thrown
// xbar::Error fails the point immediately: those failures are deterministic
// properties of the input, so retrying on a bigger-range backend cannot help.
void SweepRunner::evaluate_guarded(const std::vector<ScenarioPoint>& points,
                                   std::size_t i, SolverCache& cache,
                                   core::SolveResult& result,
                                   PointStatus& status) {
  const FaultPolicy& fault = options_.fault;

  // Escalation rungs inherit the requested fabric — retrying on a different
  // fabric would answer a different question.  The priority fabric owns its
  // single exact solver, so it gets no alternate rungs.
  std::vector<core::SolverSpec> ladder = {options_.solver};
  if (options_.solver.fabric.kind != core::FabricKind::kPriority) {
    ladder.push_back(core::SolverSpec{core::SolverAlgorithm::kAlgorithm1,
                                      core::NumericBackend::kScaledFloat,
                                      options_.solver.fabric});
    ladder.push_back(core::SolverSpec{core::SolverAlgorithm::kAlgorithm1,
                                      core::NumericBackend::kLogDomain,
                                      options_.solver.fabric});
  }

  // Rungs are deduplicated on what they *resolve* to for this model, not on
  // spec spelling: `auto` on a small grid already is algorithm1/scaled, so
  // its retry budget goes straight to the log-domain rung.
  std::vector<core::ResolvedSolver> attempted;
  std::vector<core::NumericBackend> tried;
  std::string last_error;
  std::size_t a = 0;
  for (const core::SolverSpec& rung : ladder) {
    if (a > fault.max_escalations) {
      break;
    }
    core::SolveResult attempt;
    try {
      const core::ResolvedSolver resolved =
          core::resolve(rung, points[i].model);
      if (std::find(attempted.begin(), attempted.end(), resolved) !=
          attempted.end()) {
        continue;
      }
      attempted.push_back(resolved);
      attempt = solve_point(points[i], cache, rung, i);
    } catch (const Error& e) {
      status.state = PointState::kFailed;
      status.error_kind = e.kind();
      status.error = e.message();
      result = core::SolveResult{};
      result.diagnostics.escalation = std::move(tried);
      return;
    }
    tried.push_back(attempt.diagnostics.backend);
    const std::optional<std::string> violation =
        core::validate_measures(attempt.measures);
    if (!violation) {
      result = std::move(attempt);
      if (a > 0) {
        status.state = PointState::kRetried;
        result.diagnostics.escalation = std::move(tried);
      } else {
        status.state = PointState::kOk;
      }
      return;
    }
    last_error = "numeric guard rejected measures: " + *violation;
    ++a;
  }
  status.state = PointState::kFailed;
  status.error_kind = ErrorKind::kDomain;
  status.error = last_error;
  result = core::SolveResult{};
  result.diagnostics.escalation = std::move(tried);
}

// Cut the point list into parallel tasks: a task is either one point (the
// historical path) or a batch group — >= 2 not-yet-done points with the same
// dims whose resolved solver is an Algorithm-1 lane backend, evaluated at
// full dimensions, with no fault injector in play (its hooks are per-point
// pre/post contracts).  Groups share one grid traversal through the slot
// cache's batch path.  Grouping is deterministic in input order, and batch
// results are bit-identical to the single path, so the report does not
// depend on whether batching fired.
std::vector<std::vector<std::size_t>> SweepRunner::plan_tasks(
    const std::vector<ScenarioPoint>& points,
    const std::vector<std::atomic<bool>>& done) const {
  struct Group {
    core::Dims dims;
    core::ResolvedSolver solver;
    std::vector<std::size_t> members;
  };
  std::vector<Group> groups;
  std::vector<std::vector<std::size_t>> tasks;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (done[i].load(std::memory_order_relaxed)) {
      continue;  // restored from the checkpoint
    }
    bool groupable = false;
    core::ResolvedSolver resolved;
    if (!points[i].eval_at && options_.fault.injector == nullptr) {
      try {
        resolved = core::resolve(options_.solver, points[i].model);
        groupable =
            resolved.algorithm == core::SolverAlgorithm::kAlgorithm1 &&
            core::Algorithm1BatchSolver::lane_backend(
                to_algorithm1_backend(resolved.backend));
      } catch (const Error&) {
        groupable = false;  // the point path reports this properly
      }
    }
    if (!groupable) {
      tasks.push_back({i});
      continue;
    }
    Group* home = nullptr;
    for (Group& g : groups) {
      if (g.dims == points[i].model.dims() && g.solver == resolved) {
        home = &g;
        break;
      }
    }
    if (home == nullptr) {
      groups.push_back(Group{points[i].model.dims(), resolved, {}});
      home = &groups.back();
    }
    home->members.push_back(i);
  }
  for (Group& g : groups) {
    tasks.push_back(std::move(g.members));
  }
  return tasks;
}

SweepReport SweepRunner::run_impl(const std::vector<ScenarioPoint>& points,
                                  const SweepCheckpoint* checkpoint) {
  const auto start = Clock::now();
  const FaultPolicy& fault = options_.fault;
  const std::size_t n = points.size();

  SweepReport report;
  report.results.resize(n);
  report.statuses.resize(n);

  // done[i] flips (release) when results[i]/statuses[i] hold the point's
  // terminal outcome; the checkpoint snapshotter and the post-pass load it
  // with acquire before reading either.
  std::vector<std::atomic<bool>> done(n);
  if (checkpoint != nullptr) {
    if (checkpoint->total_points != n) {
      raise(ErrorKind::kConfig,
            "checkpoint covers " + std::to_string(checkpoint->total_points) +
                " points but the sweep has " + std::to_string(n));
    }
    const std::string solver = options_.solver.to_string();
    if (checkpoint->solver != solver) {
      raise(ErrorKind::kConfig, "checkpoint was written with solver '" +
                                    checkpoint->solver +
                                    "' but this sweep uses '" + solver + "'");
    }
    for (const CheckpointEntry& entry : checkpoint->completed) {
      if (entry.index >= n) {
        raise(ErrorKind::kConfig, "checkpoint entry index out of range");
      }
      report.results[entry.index] = entry.result;
      report.statuses[entry.index] = entry.status;
      done[entry.index].store(true, std::memory_order_relaxed);
    }
  }

  CancellationToken token = fault.token;
  if (fault.deadline_seconds > 0.0) {
    token.arm_deadline(fault.deadline_seconds);
  }

  const bool checkpointing =
      fault.checkpoint_every > 0 && !fault.checkpoint_path.empty();
  std::atomic<std::size_t> failures{0};
  std::mutex checkpoint_mutex;       // serializes snapshot + save
  std::size_t since_checkpoint = 0;  // guarded by checkpoint_mutex

  const auto snapshot_and_save = [&] {
    SweepCheckpoint cp;
    cp.total_points = n;
    cp.solver = options_.solver.to_string();
    for (std::size_t j = 0; j < n; ++j) {
      if (!done[j].load(std::memory_order_acquire)) {
        continue;
      }
      const PointStatus& s = report.statuses[j];
      if (s.state != PointState::kOk && s.state != PointState::kRetried) {
        continue;  // failures re-run on resume; they are not results
      }
      cp.completed.push_back(CheckpointEntry{j, s, report.results[j]});
    }
    save_checkpoint(fault.checkpoint_path, cp);
  };

  ensure_caches();
  const std::vector<std::vector<std::size_t>> tasks = plan_tasks(points, done);
  pool().parallel_for(
      tasks.size(), options_.threads,
      [&](std::size_t t, unsigned slot) {
        SolverCache& slot_cache = cache(slot);

        // Point epilogue shared by both task shapes: publish, count
        // failures toward the trip wire, tick the checkpoint cadence.
        const auto finish = [&](std::size_t i) {
          done[i].store(true, std::memory_order_release);
          if (fault.isolate &&
              report.statuses[i].state == PointState::kFailed &&
              failures.fetch_add(1, std::memory_order_relaxed) + 1 >=
                  fault.max_failures) {
            token.request_cancel();  // the caller's copy observes this too
          }
          if (checkpointing) {
            std::lock_guard<std::mutex> lk(checkpoint_mutex);
            if (++since_checkpoint >= fault.checkpoint_every) {
              since_checkpoint = 0;
              snapshot_and_save();
            }
          }
        };

        const std::vector<std::size_t>& members = tasks[t];
        if (members.size() == 1) {
          const std::size_t i = members.front();
          if (fault.isolate) {
            evaluate_guarded(points, i, slot_cache, report.results[i],
                             report.statuses[i]);
          } else {
            // Historical fail-fast contract: the first error aborts the
            // sweep (rethrown by parallel_for), no guards, no retries.
            report.results[i] =
                solve_point(points[i], slot_cache, options_.solver, i);
            report.statuses[i] = PointStatus{};  // kOk
          }
          finish(i);
          return;
        }

        // Batch group: one traversal for every member.  Under isolation a
        // batch error or a guard-rejected member degrades that member to
        // the per-point guarded path (whose first rung re-reads the grid
        // the batch just cached, then escalates as usual); without
        // isolation errors propagate fail-fast exactly like the point path.
        std::vector<core::CrossbarModel> group;
        group.reserve(members.size());
        for (const std::size_t i : members) {
          group.push_back(points[i].model);
        }
        std::vector<core::SolveResult> results;
        bool batch_ok = true;
        if (fault.isolate) {
          try {
            results = slot_cache.eval_batch_result(group, options_.solver);
          } catch (const Error&) {
            batch_ok = false;
          }
        } else {
          results = slot_cache.eval_batch_result(group, options_.solver);
        }
        for (std::size_t m = 0; m < members.size(); ++m) {
          const std::size_t i = members[m];
          if (batch_ok && fault.isolate &&
              core::validate_measures(results[m].measures)) {
            evaluate_guarded(points, i, slot_cache, report.results[i],
                             report.statuses[i]);
          } else if (batch_ok) {
            report.results[i] = std::move(results[m]);
            report.statuses[i] = PointStatus{};  // kOk
          } else {
            evaluate_guarded(points, i, slot_cache, report.results[i],
                             report.statuses[i]);
          }
          finish(i);
        }
      },
      &token);

  // Whatever was never claimed (cancellation, deadline, max_failures trip)
  // is reported as such — partial results, not a wedged process.
  for (std::size_t i = 0; i < n; ++i) {
    if (!done[i].load(std::memory_order_acquire)) {
      report.statuses[i].state = PointState::kCancelled;
      report.results[i] = core::SolveResult{};
    }
  }
  if (checkpointing) {
    std::lock_guard<std::mutex> lk(checkpoint_mutex);
    snapshot_and_save();  // final checkpoint reflects the whole run
  }

  report.slots = slot_counters();
  report.wall_seconds = seconds_since(start);
  return report;
}

SweepReport SweepRunner::run_report(const std::vector<ScenarioPoint>& points) {
  return run_impl(points, nullptr);
}

SweepReport SweepRunner::resume(const std::vector<ScenarioPoint>& points,
                                const SweepCheckpoint& checkpoint) {
  return run_impl(points, &checkpoint);
}

std::vector<core::Measures> SweepRunner::run(
    const std::vector<ScenarioPoint>& points) {
  return run_report(points).measures();
}

namespace {

std::vector<ScenarioPoint> dimension_points(
    const core::CrossbarModel& model, const std::vector<core::Dims>& sizes) {
  core::Dims max_dims = model.dims();
  for (const core::Dims& d : sizes) {
    max_dims.n1 = std::max(max_dims.n1, d.n1);
    max_dims.n2 = std::max(max_dims.n2, d.n2);
  }
  const core::CrossbarModel parent =
      model.dims() == max_dims ? model
                               : model.with_dims_same_tuple_rates(max_dims);
  std::vector<ScenarioPoint> points;
  points.reserve(sizes.size());
  for (const core::Dims& d : sizes) {
    points.push_back(ScenarioPoint{parent, d});
  }
  return points;
}

}  // namespace

SweepReport SweepRunner::dimension_sweep_report(
    const core::CrossbarModel& model, const std::vector<core::Dims>& sizes) {
  return run_report(dimension_points(model, sizes));
}

std::vector<core::Measures> SweepRunner::dimension_sweep(
    const core::CrossbarModel& model, const std::vector<core::Dims>& sizes) {
  return run(dimension_points(model, sizes));
}

}  // namespace xbar::sweep
