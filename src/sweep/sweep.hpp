// The sweep engine: deterministic parallel evaluation of scenario grids.
//
// Every figure/table reproduction and the CLI used to loop serially over
// parameter points, constructing a fresh solver — and re-running the full
// O(N1 N2 (R1+R2)) recurrence — per point.  `SweepRunner` replaces those
// loops: points are evaluated across the shared `ThreadPool` with results
// written by index (bit-identical for every thread count), and each
// participant carries a `SolverCache` so that
//
//   * repeated evaluations of the same model (serving paths, warm reruns)
//     reuse the already-built grid, and
//   * dimension sweeps with fixed per-tuple rates reuse ONE grid built at
//     the largest size, answering every smaller size via `solve_at` —
//     turning 32 solves into one.
//
// Note the tilde-unit caveat: the paper's figure sweeps hold the *aggregate*
// intensity fixed, so per-tuple rates change with N and each size is a
// genuinely different model (no grid sharing).  `dimension_sweep` is for
// fixed per-tuple-rate families (`CrossbarModel::with_dims_same_tuple_rates`).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/measures.hpp"
#include "core/model.hpp"
#include "sweep/thread_pool.hpp"

namespace xbar::core {
class Algorithm1Solver;
class Algorithm2Solver;
}  // namespace xbar::core

namespace xbar::sweep {

/// How the runner solves each scenario point.
enum class SweepSolver {
  /// Algorithm 1 on the paper's §6 dynamic-scaling double backend — the
  /// fastest robust path — falling back to the ScaledFloat backend when the
  /// double grid degenerates.  The fallback depends only on the point, so
  /// results stay deterministic.
  kFast,
  kAlgorithm1,  ///< Algorithm 1, default (ScaledFloat) backend
  kAlgorithm2,  ///< Algorithm 2 ratio recursion
  kAuto,        ///< the paper's §5 size guidance (N <= 32 -> Algorithm 1)
};

/// One point of a sweep: a model plus, optionally, the subsystem at which
/// to evaluate it (same per-tuple rates).  `eval_at` is what lets dimension
/// sweeps share a single max-N grid.
struct ScenarioPoint {
  core::CrossbarModel model;
  std::optional<core::Dims> eval_at;
};

/// A small MRU cache of solved grids keyed on a model fingerprint
/// (dimensions, resolved solver, and the exact normalized parameters of
/// every class).  Lookups compare the full key, so fingerprint collisions
/// cannot alias.  Not thread-safe: the runner keeps one per pool slot.
class SolverCache {
 public:
  explicit SolverCache(std::size_t capacity = 8);
  ~SolverCache();
  SolverCache(SolverCache&&) noexcept;
  SolverCache& operator=(SolverCache&&) noexcept;

  /// Measures of `model` at its full dimensions.
  core::Measures eval(const core::CrossbarModel& model,
                      SweepSolver solver = SweepSolver::kFast);

  /// Measures of `model`'s traffic at subsystem `at` (same per-tuple
  /// rates), reusing `model`'s cached grid when present.
  core::Measures eval_at(const core::CrossbarModel& model, core::Dims at,
                         SweepSolver solver = SweepSolver::kFast);

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry;
  Entry& lookup(const core::CrossbarModel& model, SweepSolver solver);

  std::size_t capacity_;
  std::vector<Entry> entries_;  // most-recently-used first
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

struct SweepOptions {
  /// Max participants (0 = pool workers + caller).  Results are identical
  /// for every value; this only bounds concurrency.
  unsigned threads = 0;
  SweepSolver solver = SweepSolver::kFast;
  std::size_t cache_capacity = 8;  ///< per-slot SolverCache entries
  ThreadPool* pool = nullptr;      ///< nullptr = ThreadPool::shared()
};

/// Deterministic parallel map over scenario points with per-slot solver
/// caches.  Caches persist across run()/map() calls, so re-evaluating the
/// same grid of points is nearly free — the serving hot path.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Evaluate all points; results[i] always corresponds to points[i].
  std::vector<core::Measures> run(const std::vector<ScenarioPoint>& points);

  /// Evaluate the same traffic (per-tuple rates of `model`) at every size
  /// in `sizes`, building ONE grid at the component-wise max size and
  /// answering each entry via solve_at.
  std::vector<core::Measures> dimension_sweep(
      const core::CrossbarModel& model,
      const std::vector<core::Dims>& sizes);

  /// Generic deterministic parallel map: out[i] = fn(i, cache) where
  /// `cache` is the calling slot's SolverCache.  For drivers whose per-point
  /// work is more than a single solve (revenue rows, calibrations).
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    ensure_caches();  // allocate every slot's cache before going parallel
    std::vector<R> out(n);
    pool().parallel_for(n, options_.threads,
                        [&](std::size_t i, unsigned slot) {
                          out[i] = fn(i, cache(slot));
                        });
    return out;
  }

  /// The slot's persistent cache (created on first use).
  SolverCache& cache(unsigned slot);

  [[nodiscard]] const SweepOptions& options() const noexcept {
    return options_;
  }

 private:
  ThreadPool& pool() const noexcept;
  void ensure_caches();

  SweepOptions options_;
  std::vector<std::unique_ptr<SolverCache>> caches_;  // slot-indexed
};

}  // namespace xbar::sweep
