// The sweep engine: deterministic parallel evaluation of scenario grids.
//
// Every figure/table reproduction and the CLI used to loop serially over
// parameter points, constructing a fresh solver — and re-running the full
// O(N1 N2 (R1+R2)) recurrence — per point.  `SweepRunner` replaces those
// loops: points are evaluated across the shared `ThreadPool` with results
// written by index (bit-identical for every thread count), and each
// participant carries a `SolverCache` so that
//
//   * repeated evaluations of the same model (serving paths, warm reruns)
//     reuse the already-built grid, and
//   * dimension sweeps with fixed per-tuple rates reuse ONE grid built at
//     the largest size, answering every smaller size via `solve_at` —
//     turning 32 solves into one.
//
// The engine speaks the unified solve contract: requests are
// `core::SolverSpec`, per-point answers are `core::SolveResult` (measures
// + diagnostics), and `run_report()` aggregates them — together with each
// slot's cache hit/miss counters — into a `SweepReport`.  Resolved
// algorithm, backend, and fallback flags in the diagnostics depend only on
// the point, so they are identical for every thread count; cache hits and
// wall times describe what this particular run did.
//
// Note the tilde-unit caveat: the paper's figure sweeps hold the *aggregate*
// intensity fixed, so per-tuple rates change with N and each size is a
// genuinely different model (no grid sharing).  `dimension_sweep` is for
// fixed per-tuple-rate families (`CrossbarModel::with_dims_same_tuple_rates`).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/measures.hpp"
#include "core/model.hpp"
#include "core/solver_spec.hpp"
#include "sweep/cancellation.hpp"
#include "sweep/thread_pool.hpp"

namespace xbar::core {
class Algorithm1Solver;
class Algorithm2Solver;
class BruteForceSolver;
}  // namespace xbar::core

namespace xbar::sweep {

class FaultInjector;
struct SweepCheckpoint;

/// One point of a sweep: a model plus, optionally, the subsystem at which
/// to evaluate it (same per-tuple rates).  `eval_at` is what lets dimension
/// sweeps share a single max-N grid.
struct ScenarioPoint {
  core::CrossbarModel model;
  std::optional<core::Dims> eval_at;
};

/// A small MRU cache of solved grids keyed on a model fingerprint
/// (dimensions, resolved solver, and the exact normalized parameters of
/// every class).  Lookups compare the full key, so fingerprint collisions
/// cannot alias.  Not thread-safe: the runner keeps one per pool slot.
class SolverCache {
 public:
  explicit SolverCache(std::size_t capacity = 8);
  ~SolverCache();
  SolverCache(SolverCache&&) noexcept;
  SolverCache& operator=(SolverCache&&) noexcept;

  /// Solve `model` at its full dimensions, with diagnostics (cache hit,
  /// backend/fallback of the grid that answered, wall time of this call).
  core::SolveResult eval_result(
      const core::CrossbarModel& model,
      const core::SolverSpec& spec = core::SolverSpec::fast());

  /// Solve `model`'s traffic at subsystem `at` (same per-tuple rates),
  /// reusing `model`'s cached grid when present.
  core::SolveResult eval_at_result(
      const core::CrossbarModel& model, core::Dims at,
      const core::SolverSpec& spec = core::SolverSpec::fast());

  /// Solve several scenarios in one call; results[i] <-> models[i].  Models
  /// already cached are answered as hits.  When the resolved solver is an
  /// Algorithm-1 lane backend (the kFast default resolves to one), the
  /// misses sharing dimensions advance through ONE grid traversal via
  /// `core::Algorithm1BatchSolver` — bit-identical to sequential
  /// `eval_result` calls — and their grids are cached for later hits with
  /// `diagnostics.batched` set.  Other specs fall back to sequential
  /// evaluation.  kFast's degeneracy rescue still applies per scenario.
  std::vector<core::SolveResult> eval_batch_result(
      const std::vector<core::CrossbarModel>& models,
      const core::SolverSpec& spec = core::SolverSpec::fast());

  /// Measures-only conveniences.
  core::Measures eval(const core::CrossbarModel& model,
                      const core::SolverSpec& spec = core::SolverSpec::fast());
  core::Measures eval_at(
      const core::CrossbarModel& model, core::Dims at,
      const core::SolverSpec& spec = core::SolverSpec::fast());

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry;
  Entry& lookup(const core::CrossbarModel& model, const core::SolverSpec& spec,
                bool& was_hit);

  std::size_t capacity_;
  std::vector<Entry> entries_;  // most-recently-used first
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// One slot's cumulative cache counters (the caches persist across
/// `run()`/`map()` calls, so these count the runner's lifetime).
struct SweepSlotCounters {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

/// Terminal state of one sweep point under fault isolation.
enum class PointState : std::uint8_t {
  kOk,         ///< first attempt solved and passed the numeric guards
  kRetried,    ///< a later escalation rung produced guarded-clean measures
  kFailed,     ///< every permitted attempt failed; results[i] is empty
  kCancelled,  ///< never started: sweep cancelled / past deadline first
};

/// Lowercase name ("ok", "retried", "failed", "cancelled").
[[nodiscard]] std::string_view to_string(PointState state) noexcept;

/// Per-point outcome record; `error_kind`/`error` are meaningful only for
/// kFailed (the classified kind and message of the last failing attempt).
struct PointStatus {
  PointState state = PointState::kOk;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error;
};

/// Everything one sweep produced: per-point results with diagnostics plus
/// the engine's own observability (per-slot cache counters, wall time).
struct SweepReport {
  std::vector<core::SolveResult> results;   ///< results[i] <-> points[i]
  std::vector<PointStatus> statuses;        ///< statuses[i] <-> points[i]
  std::vector<SweepSlotCounters> slots;     ///< per pool slot, cumulative
  double wall_seconds = 0.0;                ///< end-to-end sweep time

  [[nodiscard]] std::size_t total_hits() const noexcept;
  [[nodiscard]] std::size_t total_misses() const noexcept;

  /// Number of points in `state`.
  [[nodiscard]] std::size_t count(PointState state) const noexcept;

  /// True when every point produced measures (kOk or kRetried) — the
  /// CLI's exit-code-0 condition; anything else is a partial result.
  [[nodiscard]] bool complete() const noexcept;

  /// Measures-only view (for callers migrating from run()).
  [[nodiscard]] std::vector<core::Measures> measures() const;
};

/// How a sweep behaves when a point misbehaves.  The default reproduces
/// the historical contract exactly: no isolation (the first xbar::Error
/// aborts the sweep), no guards, no retries, no deadline, no checkpoints.
struct FaultPolicy {
  /// Catch per-point failures and record them in `SweepReport::statuses`
  /// instead of aborting the whole sweep.  Also enables the post-solve
  /// numeric guards (`core::validate_measures`) and backend escalation.
  bool isolate = false;

  /// Extra attempts permitted after the first when the numeric guard
  /// rejects the measures: the escalation ladder is requested spec ->
  /// algorithm1/scaled -> algorithm1/log-domain (identical rungs skipped),
  /// so 2 covers the full ladder.  A thrown xbar::Error is never retried —
  /// a parse/model/domain failure is deterministic, not numeric.
  std::size_t max_escalations = 2;

  /// Trip cancellation once this many points have failed terminally
  /// (isolate mode only).  The shared `token` is what gets tripped, so a
  /// caller-provided token observes the abort too.
  std::size_t max_failures = static_cast<std::size_t>(-1);

  /// Wall-clock budget for the whole sweep; the token is armed at run
  /// start.  0 = no deadline.
  double deadline_seconds = 0.0;

  /// Cooperative cancellation handle; copies share state, so keep a copy
  /// and `request_cancel()` from anywhere.  Points never started are
  /// reported kCancelled; in-flight solves finish.
  CancellationToken token;

  /// Write a checkpoint after every `checkpoint_every` newly completed
  /// points (0 = never) to `checkpoint_path`, atomically (tmp + rename).
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;

  /// Test/demo hook: deterministic fault injection at the solve boundary.
  /// Not owned; must outlive the run.
  FaultInjector* injector = nullptr;
};

struct SweepOptions {
  /// Max participants (0 = pool workers + caller).  Results are identical
  /// for every value; this only bounds concurrency.
  unsigned threads = 0;
  core::SolverSpec solver = core::SolverSpec::fast();
  std::size_t cache_capacity = 8;  ///< per-slot SolverCache entries
  ThreadPool* pool = nullptr;      ///< nullptr = ThreadPool::shared()
  FaultPolicy fault;               ///< fault tolerance (default: none)
};

/// Deterministic parallel map over scenario points with per-slot solver
/// caches.  Caches persist across run()/map() calls, so re-evaluating the
/// same grid of points is nearly free — the serving hot path.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Evaluate all points; results[i] always corresponds to points[i].
  std::vector<core::Measures> run(const std::vector<ScenarioPoint>& points);

  /// Evaluate all points and report diagnostics + cache counters.  With the
  /// default `FaultPolicy` the first point error propagates (fail-fast);
  /// with `fault.isolate` each point's failure is recorded in
  /// `SweepReport::statuses` and the rest of the sweep still runs.
  SweepReport run_report(const std::vector<ScenarioPoint>& points);

  /// run_report, but points recorded as completed (kOk/kRetried) in
  /// `checkpoint` are restored verbatim — bit-identically — instead of
  /// re-solved; failed points are re-attempted.  Raises kConfig when the
  /// checkpoint does not match `points` (count) or this runner's solver.
  SweepReport resume(const std::vector<ScenarioPoint>& points,
                     const SweepCheckpoint& checkpoint);

  /// Evaluate the same traffic (per-tuple rates of `model`) at every size
  /// in `sizes`, building ONE grid at the component-wise max size and
  /// answering each entry via solve_at.
  std::vector<core::Measures> dimension_sweep(
      const core::CrossbarModel& model,
      const std::vector<core::Dims>& sizes);

  /// dimension_sweep with diagnostics + cache counters.
  SweepReport dimension_sweep_report(const core::CrossbarModel& model,
                                     const std::vector<core::Dims>& sizes);

  /// Generic deterministic parallel map: out[i] = fn(i, cache) where
  /// `cache` is the calling slot's SolverCache.  For drivers whose per-point
  /// work is more than a single solve (revenue rows, calibrations).
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    ensure_caches();  // allocate every slot's cache before going parallel
    std::vector<R> out(n);
    pool().parallel_for(n, options_.threads,
                        [&](std::size_t i, unsigned slot) {
                          out[i] = fn(i, cache(slot));
                        });
    return out;
  }

  /// The slot's persistent cache (created on first use).
  SolverCache& cache(unsigned slot);

  /// Snapshot of every allocated slot's cumulative cache counters.
  [[nodiscard]] std::vector<SweepSlotCounters> slot_counters() const;

  [[nodiscard]] const SweepOptions& options() const noexcept {
    return options_;
  }

 private:
  ThreadPool& pool() const noexcept;
  void ensure_caches();
  SweepReport run_impl(const std::vector<ScenarioPoint>& points,
                       const SweepCheckpoint* checkpoint);
  core::SolveResult solve_point(const ScenarioPoint& pt, SolverCache& cache,
                                const core::SolverSpec& spec,
                                std::size_t index);
  void evaluate_guarded(const std::vector<ScenarioPoint>& points,
                        std::size_t i, SolverCache& cache,
                        core::SolveResult& result, PointStatus& status);
  std::vector<std::vector<std::size_t>> plan_tasks(
      const std::vector<ScenarioPoint>& points,
      const std::vector<std::atomic<bool>>& done) const;

  SweepOptions options_;
  std::vector<std::unique_ptr<SolverCache>> caches_;  // slot-indexed
};

}  // namespace xbar::sweep
