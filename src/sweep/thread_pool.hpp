// A small work-stealing-free thread pool built for deterministic data
// parallelism: `parallel_for(n, c, body)` runs `body(index, slot)` for every
// index in [0, n) across at most `c` participants and blocks until all of
// them finished.  Indexes are handed out through a single atomic counter, so
// the *schedule* is nondeterministic but any body that writes only
// `results[index]` produces bit-identical output for every thread count —
// the property the sweep determinism tests pin down.
//
// The calling thread always participates as slot 0, so a pool constructed
// with W workers reaches a concurrency of W + 1 and `ThreadPool(0)` degrades
// to plain serial execution with no thread traffic at all.  Nested or
// concurrent `parallel_for` calls (e.g. a sweep body that itself sweeps)
// detect the busy pool with a try-lock and run inline serially instead of
// deadlocking.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sweep/cancellation.hpp"

namespace xbar::sweep {

class ThreadPool {
 public:
  /// Starts `workers` background threads.  `workers == 0` means "one per
  /// spare hardware thread" (hardware_concurrency - 1, possibly zero).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of background workers; parallel_for's maximum concurrency is
  /// worker_count() + 1 (the caller participates).
  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs body(index, slot) for every index in [0, n).  `concurrency`
  /// bounds the number of participants (0 = use everything available);
  /// slot is a dense id in [0, concurrency) identifying the participant,
  /// suitable for indexing per-thread scratch state.  Blocks until every
  /// index has completed; rethrows the first exception thrown by any body.
  ///
  /// When `cancel` is non-null, participants stop claiming indexes as soon
  /// as the token reads cancelled: already-running bodies finish, unclaimed
  /// indexes are never started, and the call returns normally (the caller
  /// decides what unfinished indexes mean).
  void parallel_for(std::size_t n, unsigned concurrency,
                    const std::function<void(std::size_t, unsigned)>& body,
                    const CancellationToken* cancel = nullptr);

  /// Process-wide shared pool, started lazily on first use.
  static ThreadPool& shared();

  /// "One participant per hardware thread" — what a `concurrency == 0` or
  /// `workers == 0` request resolves to (never less than 1).  Exposed so
  /// other subsystems sizing their own thread counts (the serving worker
  /// pool) agree with the sweep engine about what "use the machine" means.
  [[nodiscard]] static unsigned default_concurrency() noexcept;

 private:
  void worker_main();
  void run_slot(unsigned slot,
                const std::function<void(std::size_t, unsigned)>* body,
                std::size_t n, const CancellationToken* cancel);

  std::vector<std::thread> workers_;

  std::mutex submit_mutex_;  // serializes parallel_for; try-lock => inline

  std::mutex mutex_;  // guards the job fields and both condition variables
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  bool job_open_ = false;  // guarded by mutex_; claims allowed only if set

  // Current job (valid for the current generation only).
  const std::function<void(std::size_t, unsigned)>* body_ = nullptr;
  const CancellationToken* cancel_ = nullptr;
  std::size_t n_ = 0;
  unsigned slots_ = 0;  // participants including the caller
  std::atomic<std::size_t> next_{0};
  std::atomic<unsigned> slot_claim_{1};
  unsigned active_workers_ = 0;  // guarded by mutex_
  std::atomic<bool> has_error_{false};
  std::exception_ptr error_;  // guarded by mutex_
};

}  // namespace xbar::sweep
