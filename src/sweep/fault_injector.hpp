// Deterministic fault injection at the solver boundary (test / demo only).
//
// The resilience tests — and the CLI's `--inject` flag — need repeatable
// failures: "point 2 throws", "point 5 produces NaN measures on its first
// attempt", "point 7 sleeps 50 ms".  A `FaultInjector` holds a list of such
// rules; `SweepRunner` consults it (when installed via
// `SweepOptions::fault.injector`) immediately before and after each solve
// attempt.  Each rule fires on the first `attempts` attempts for its point
// and then stands aside, which is exactly what an escalation-retry test
// needs: attempt 0 is poisoned, the retried backend succeeds.
//
// The injector is internally synchronized (attempt counters are touched from
// sweep worker threads) and contains no wall-clock or RNG state, so a given
// rule set perturbs a sweep identically on every run at every thread count.

#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "core/measures.hpp"

namespace xbar::sweep {

/// What a matching rule does to the solve attempt.
enum class FaultAction {
  kThrow,  ///< raise xbar::Error(kDomain, "injected fault") pre-solve
  kNan,    ///< poison the solved measures' revenue with quiet NaN post-solve
  kDelay,  ///< sleep `delay_seconds` pre-solve (deadline/cancellation tests)
};

class FaultInjector {
 public:
  /// Arms `action` for point `point`, affecting its first `attempts` solve
  /// attempts (default 1: poison the first try, let retries through).
  /// `delay_seconds` is only meaningful for kDelay.
  void add(std::size_t point, FaultAction action, std::size_t attempts = 1,
           double delay_seconds = 0.0);

  /// Called before a solve attempt: throws or sleeps per the armed rules.
  void apply_pre(std::size_t point);

  /// Called after a successful solve attempt: corrupts `m` per the armed
  /// rules (so the numeric guard, not the solver, detects it).
  void apply_post(std::size_t point, core::Measures& m);

  /// Forget attempt history (rules stay armed) — lets one injector replay
  /// the same perturbation over a second sweep, e.g. a resumed run.
  void reset_attempts();

 private:
  struct Rule {
    std::size_t point = 0;
    FaultAction action = FaultAction::kThrow;
    std::size_t attempts = 1;  // how many leading attempts are affected
    double delay_seconds = 0.0;
    std::size_t fired = 0;  // attempts already poisoned (guarded by mutex_)
  };

  // kThrow/kDelay fire pre-solve; kNan fires post-solve.  A rule's `fired`
  // counter is bumped exactly once per attempt, in whichever phase acts.
  std::mutex mutex_;
  std::vector<Rule> rules_;
};

}  // namespace xbar::sweep
