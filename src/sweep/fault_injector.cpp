#include "sweep/fault_injector.hpp"

#include <chrono>
#include <limits>
#include <thread>

#include "core/error.hpp"

namespace xbar::sweep {

void FaultInjector::add(std::size_t point, FaultAction action,
                        std::size_t attempts, double delay_seconds) {
  std::lock_guard<std::mutex> lk(mutex_);
  rules_.push_back(Rule{point, action, attempts, delay_seconds, 0});
}

void FaultInjector::apply_pre(std::size_t point) {
  double sleep_seconds = 0.0;
  bool should_throw = false;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    for (Rule& rule : rules_) {
      if (rule.point != point || rule.fired >= rule.attempts) {
        continue;
      }
      switch (rule.action) {
        case FaultAction::kThrow:
          ++rule.fired;
          should_throw = true;
          break;
        case FaultAction::kDelay:
          ++rule.fired;
          sleep_seconds += rule.delay_seconds;
          break;
        case FaultAction::kNan:
          break;  // fires post-solve
      }
      if (should_throw) {
        break;
      }
    }
  }
  if (sleep_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  if (should_throw) {
    raise(ErrorKind::kDomain, "injected fault at point " +
                                  std::to_string(point));
  }
}

void FaultInjector::apply_post(std::size_t point, core::Measures& m) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (Rule& rule : rules_) {
    if (rule.point != point || rule.action != FaultAction::kNan ||
        rule.fired >= rule.attempts) {
      continue;
    }
    ++rule.fired;
    m.revenue = std::numeric_limits<double>::quiet_NaN();
    return;
  }
}

void FaultInjector::reset_attempts() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (Rule& rule : rules_) {
    rule.fired = 0;
  }
}

}  // namespace xbar::sweep
