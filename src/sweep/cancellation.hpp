// Cooperative cancellation for sweeps.
//
// A `CancellationToken` is a cheap, copyable handle to shared cancellation
// state: copies observe (and trip) the same flag, so a caller can hand one
// to `SweepRunner` / `ThreadPool::parallel_for` and cancel from another
// thread — or arm a wall-clock deadline so a pathological grid yields
// partial results instead of a wedged process.  Cancellation is strictly
// cooperative: the pool stops dispensing indexes and the sweep body checks
// the token before each solve, but a solve already in flight runs to
// completion (grid builds are finite; nothing blocks indefinitely).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace xbar::sweep {

class CancellationToken {
 public:
  /// A live, not-yet-cancelled token (always carries shared state; default
  /// construction is never "null").
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// Trip the token manually.  All copies observe the cancellation.
  void request_cancel() const noexcept {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// Arm a wall-clock budget: the token reads as cancelled once `seconds`
  /// have elapsed from now.  Re-arming replaces the previous deadline.
  void arm_deadline(double seconds) const noexcept {
    const auto ns = std::chrono::steady_clock::now().time_since_epoch() +
                    std::chrono::nanoseconds(
                        static_cast<std::int64_t>(seconds * 1e9));
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(ns).count(),
        std::memory_order_relaxed);
  }

  /// True once cancelled manually or past the armed deadline.
  [[nodiscard]] bool cancelled() const noexcept {
    if (state_->cancelled.load(std::memory_order_relaxed)) {
      return true;
    }
    const std::int64_t deadline =
        state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline == 0) {
      return false;
    }
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    return now >= deadline;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> deadline_ns{0};  // 0 = no deadline armed
  };
  std::shared_ptr<State> state_;
};

}  // namespace xbar::sweep
