#include "sweep/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/error.hpp"
#include "report/json_reader.hpp"
#include "report/json_writer.hpp"

namespace xbar::sweep {

namespace {

constexpr int kCheckpointVersion = 1;

core::SolverAlgorithm algorithm_from_string(const std::string& name) {
  for (const auto algorithm :
       {core::SolverAlgorithm::kAuto, core::SolverAlgorithm::kFast,
        core::SolverAlgorithm::kAlgorithm1, core::SolverAlgorithm::kAlgorithm2,
        core::SolverAlgorithm::kBruteForce}) {
    if (name == core::to_string(algorithm)) {
      return algorithm;
    }
  }
  raise(ErrorKind::kParse, "checkpoint names unknown algorithm '" + name + "'");
}

core::NumericBackend backend_from_string(const std::string& name) {
  for (const auto backend :
       {core::NumericBackend::kScaledFloat,
        core::NumericBackend::kDoubleDynamicScaling,
        core::NumericBackend::kLongDouble, core::NumericBackend::kDoubleRaw,
        core::NumericBackend::kRatio, core::NumericBackend::kLogDomain}) {
    if (name == core::to_string(backend)) {
      return backend;
    }
  }
  raise(ErrorKind::kParse, "checkpoint names unknown backend '" + name + "'");
}

PointState point_state_from_string(const std::string& name) {
  for (const auto state : {PointState::kOk, PointState::kRetried}) {
    if (name == to_string(state)) {
      return state;
    }
  }
  raise(ErrorKind::kParse,
        "checkpoint entry has non-completed status '" + name + "'");
}

std::size_t as_index(const report::JsonValue& v) {
  const double d = v.as_number();
  const auto n = static_cast<std::size_t>(d);
  if (d < 0 || static_cast<double>(n) != d) {
    raise(ErrorKind::kParse, "checkpoint index is not a non-negative integer");
  }
  return n;
}

void write_dims(report::JsonWriter& json, core::Dims dims) {
  json.begin_object();
  json.key("n1").value(static_cast<std::uint64_t>(dims.n1));
  json.key("n2").value(static_cast<std::uint64_t>(dims.n2));
  json.end_object();
}

core::Dims read_dims(const report::JsonValue& v) {
  core::Dims dims;
  dims.n1 = static_cast<unsigned>(as_index(v.at("n1")));
  dims.n2 = static_cast<unsigned>(as_index(v.at("n2")));
  return dims;
}

void write_measures(report::JsonWriter& json, const core::Measures& m) {
  json.begin_object();
  json.key("per_class").begin_array();
  for (const core::ClassMeasures& c : m.per_class) {
    json.begin_object();
    json.key("non_blocking").value(c.non_blocking);
    json.key("blocking").value(c.blocking);
    json.key("concurrency").value(c.concurrency);
    json.key("throughput").value(c.throughput);
    json.key("port_usage").value(c.port_usage);
    json.end_object();
  }
  json.end_array();
  json.key("revenue").value(m.revenue);
  json.key("total_throughput").value(m.total_throughput);
  json.key("utilization").value(m.utilization);
  json.end_object();
}

core::Measures read_measures(const report::JsonValue& v) {
  core::Measures m;
  for (const report::JsonValue& cls : v.at("per_class").as_array()) {
    core::ClassMeasures c;
    c.non_blocking = cls.at("non_blocking").as_number();
    c.blocking = cls.at("blocking").as_number();
    c.concurrency = cls.at("concurrency").as_number();
    c.throughput = cls.at("throughput").as_number();
    c.port_usage = cls.at("port_usage").as_number();
    m.per_class.push_back(c);
  }
  m.revenue = v.at("revenue").as_number();
  m.total_throughput = v.at("total_throughput").as_number();
  m.utilization = v.at("utilization").as_number();
  return m;
}

void write_diagnostics(report::JsonWriter& json,
                       const core::SolveDiagnostics& d) {
  json.begin_object();
  json.key("requested").value(core::to_string(d.requested));
  json.key("algorithm").value(core::to_string(d.algorithm));
  json.key("backend").value(core::to_string(d.backend));
  json.key("fast_fallback").value(d.fast_fallback);
  json.key("rescales").value(d.rescales);
  json.key("grid");
  write_dims(json, d.grid);
  json.key("evaluated_at");
  write_dims(json, d.evaluated_at);
  json.key("cache_hit").value(d.cache_hit);
  json.key("batched").value(d.batched);
  json.key("wall_seconds").value(d.wall_seconds);
  json.key("escalation").begin_array();
  for (const core::NumericBackend backend : d.escalation) {
    json.value(core::to_string(backend));
  }
  json.end_array();
  json.end_object();
}

core::SolveDiagnostics read_diagnostics(const report::JsonValue& v) {
  core::SolveDiagnostics d;
  d.requested = algorithm_from_string(v.at("requested").as_string());
  d.algorithm = algorithm_from_string(v.at("algorithm").as_string());
  d.backend = backend_from_string(v.at("backend").as_string());
  d.fast_fallback = v.at("fast_fallback").as_bool();
  d.rescales = static_cast<unsigned>(as_index(v.at("rescales")));
  d.grid = read_dims(v.at("grid"));
  d.evaluated_at = read_dims(v.at("evaluated_at"));
  d.cache_hit = v.at("cache_hit").as_bool();
  // Absent in checkpoints written before the batch solver existed.
  if (const report::JsonValue* batched = v.find("batched")) {
    d.batched = batched->as_bool();
  }
  d.wall_seconds = v.at("wall_seconds").as_number();
  for (const report::JsonValue& backend : v.at("escalation").as_array()) {
    d.escalation.push_back(backend_from_string(backend.as_string()));
  }
  return d;
}

}  // namespace

void save_checkpoint(const std::string& path,
                     const SweepCheckpoint& checkpoint) {
  std::ostringstream out;
  report::JsonWriter json(out);
  json.begin_object();
  json.key("version").value(kCheckpointVersion);
  json.key("total_points")
      .value(static_cast<std::uint64_t>(checkpoint.total_points));
  json.key("solver").value(checkpoint.solver);
  json.key("completed").begin_array();
  for (const CheckpointEntry& entry : checkpoint.completed) {
    json.begin_object();
    json.key("index").value(static_cast<std::uint64_t>(entry.index));
    json.key("status").value(to_string(entry.status.state));
    json.key("measures");
    write_measures(json, entry.result.measures);
    json.key("diagnostics");
    write_diagnostics(json, entry.result.diagnostics);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  // Crash-durable write: tmp + fsync, rename, then fsync the directory.
  // rename() alone orders nothing — after a crash the directory entry can
  // point at a file whose data never reached disk, i.e. an empty or
  // partial checkpoint.  Syncing the file makes its bytes durable before
  // the rename exposes them; syncing the directory makes the rename
  // itself durable.
  const std::string tmp = path + ".tmp";
  const std::string payload = out.str();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    raise(ErrorKind::kIo, "cannot open checkpoint file '" + tmp +
                              "': " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int err = errno;
      ::close(fd);
      raise(ErrorKind::kIo, "failed writing checkpoint file '" + tmp +
                                "': " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    raise(ErrorKind::kIo, "fsync of checkpoint '" + tmp +
                              "' failed: " + std::strerror(err));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    raise(ErrorKind::kIo,
          "failed renaming checkpoint '" + tmp + "' to '" + path + "'");
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    // Best-effort: some filesystems refuse directory fsync; the file data
    // itself is already durable above.
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
}

SweepCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    raise(ErrorKind::kIo, "cannot read checkpoint file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  const report::JsonValue doc = report::parse_json(buffer.str());
  const double version = doc.at("version").as_number();
  if (version != kCheckpointVersion) {
    raise(ErrorKind::kConfig,
          "unsupported checkpoint version " + std::to_string(version));
  }

  SweepCheckpoint checkpoint;
  checkpoint.total_points = as_index(doc.at("total_points"));
  checkpoint.solver = doc.at("solver").as_string();
  for (const report::JsonValue& item : doc.at("completed").as_array()) {
    CheckpointEntry entry;
    entry.index = as_index(item.at("index"));
    if (entry.index >= checkpoint.total_points) {
      raise(ErrorKind::kParse,
            "checkpoint index " + std::to_string(entry.index) +
                " is out of range for " +
                std::to_string(checkpoint.total_points) + " points");
    }
    entry.status.state = point_state_from_string(item.at("status").as_string());
    entry.result.measures = read_measures(item.at("measures"));
    entry.result.diagnostics = read_diagnostics(item.at("diagnostics"));
    checkpoint.completed.push_back(std::move(entry));
  }
  return checkpoint;
}

}  // namespace xbar::sweep
