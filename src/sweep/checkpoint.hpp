// Sweep checkpoint persistence.
//
// Long sweeps die for boring reasons — OOM kill, preemption, ^C — and
// restarting from scratch repeats hours of solves.  A `SweepCheckpoint`
// captures every completed point (index, status, full `SolveResult`), the
// point count, and the solver spec of the run that produced it.  Files are
// JSON written by the report module's writer (doubles in shortest
// round-trip form) and loaded back with the matching reader, so resumed
// measures are bit-identical to the originals; writes go through a
// temporary + fsync + rename + directory fsync so a crash mid-write (or
// right after the rename) can neither corrupt an existing checkpoint nor
// leave an empty/partial new one.  Only kOk/kRetried points are recorded: failures are
// deterministic, so a resumed run simply re-attempts them.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/solver_spec.hpp"
#include "sweep/sweep.hpp"

namespace xbar::sweep {

/// One completed point as persisted.
struct CheckpointEntry {
  std::size_t index = 0;     ///< position in the sweep's point vector
  PointStatus status;        ///< kOk or kRetried only
  core::SolveResult result;  ///< measures + full diagnostics
};

struct SweepCheckpoint {
  std::size_t total_points = 0;  ///< size of the sweep this belongs to
  std::string solver;            ///< canonical SolverSpec string of the run
  std::vector<CheckpointEntry> completed;  ///< ascending by index
};

/// Atomically and durably write `checkpoint` to `path` (path + ".tmp",
/// fsync, rename, fsync of the containing directory).  Raises
/// ErrorKind::kIo on filesystem failure.
void save_checkpoint(const std::string& path,
                     const SweepCheckpoint& checkpoint);

/// Load a checkpoint written by save_checkpoint.  Raises kIo when the file
/// cannot be read, kParse on malformed JSON/fields, kConfig on an
/// unsupported version.
[[nodiscard]] SweepCheckpoint load_checkpoint(const std::string& path);

}  // namespace xbar::sweep
