#include "sweep/thread_pool.hpp"

#include <algorithm>

namespace xbar::sweep {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

unsigned ThreadPool::default_concurrency() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::run_slot(
    unsigned slot, const std::function<void(std::size_t, unsigned)>* body,
    std::size_t n, const CancellationToken* cancel) {
  while (!has_error_.load(std::memory_order_relaxed)) {
    if (cancel != nullptr && cancel->cancelled()) {
      break;
    }
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      break;
    }
    try {
      (*body)(i, slot);
    } catch (...) {
      if (!has_error_.exchange(true)) {
        std::lock_guard<std::mutex> lk(mutex_);
        error_ = std::current_exception();
      }
    }
  }
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lk(mutex_);
    wake_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) {
      return;
    }
    seen = generation_;
    // A straggler that wakes only after the submitter closed the job must
    // not claim it: the submitter may already have returned (its body is a
    // dangling reference) and may even have published a fresh job whose
    // counters this stale claim would corrupt.  job_open_ flips under the
    // same mutex as every claim, so the check is race-free.
    if (!job_open_) {
      continue;
    }
    const unsigned slot =
        slot_claim_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= slots_) {
      continue;  // job already has enough participants
    }
    const auto* body = body_;
    const std::size_t n = n_;
    const CancellationToken* cancel = cancel_;
    ++active_workers_;
    lk.unlock();
    run_slot(slot, body, n, cancel);
    lk.lock();
    if (--active_workers_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, unsigned concurrency,
    const std::function<void(std::size_t, unsigned)>& body,
    const CancellationToken* cancel) {
  if (n == 0) {
    return;
  }
  unsigned slots = worker_count() + 1;
  if (concurrency != 0) {
    slots = std::min(slots, concurrency);
  }
  slots = static_cast<unsigned>(
      std::min<std::size_t>(slots, n));

  // Serial path: tiny jobs, a single participant, or a pool that is
  // already mid-job (nested parallel_for).  Exceptions propagate directly.
  std::unique_lock<std::mutex> submit(submit_mutex_, std::try_to_lock);
  if (slots <= 1 || !submit.owns_lock()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        return;
      }
      body(i, 0);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lk(mutex_);
    body_ = &body;
    cancel_ = cancel;
    n_ = n;
    slots_ = slots;
    next_.store(0, std::memory_order_relaxed);
    slot_claim_.store(1, std::memory_order_relaxed);
    has_error_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    job_open_ = true;
    ++generation_;
  }
  wake_cv_.notify_all();

  run_slot(0, &body, n, cancel);  // the caller is slot 0

  // The caller's run_slot only returns once every index is claimed.  Close
  // the job so no straggler can join it, then wait for workers still
  // executing claimed indexes (a worker cannot be inside `body` without
  // having bumped active_workers_ under the lock).
  std::unique_lock<std::mutex> lk(mutex_);
  job_open_ = false;
  done_cv_.wait(lk, [&] { return active_workers_ == 0; });
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace xbar::sweep
