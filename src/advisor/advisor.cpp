#include "advisor/advisor.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/knapsack.hpp"
#include "core/revenue.hpp"

namespace xbar::advisor {

std::string_view to_string(AdvisorState state) noexcept {
  switch (state) {
    case AdvisorState::kQuiet:
      return "quiet";
    case AdvisorState::kConfident:
      return "confident";
    case AdvisorState::kRefitting:
      return "refitting";
  }
  return "quiet";
}

Advisor::Advisor(AdvisorConfig config)
    : config_(std::move(config)),
      estimator_(config_.estimator),
      cache_(/*capacity=*/2 * config_.candidate_sizes.size() + 4) {
  latest_.target_blocking = config_.target_blocking;
}

bool Advisor::observe(ObservedEvent event) {
  bool admitted = true;
  bool need_solve = false;
  {
    std::lock_guard lock(mu_);
    if (config_.enact && state_ != AdvisorState::kQuiet &&
        std::find(denied_.begin(), denied_.end(), event.class_name) !=
            denied_.end()) {
      // Enacted admission control: the connection is refused, but it was
      // offered — count it as a blocked arrival so the fit still sees it.
      event.blocked = true;
      admitted = false;
      ++denied_events_;
    }
    estimator_.observe(event);
    ++events_;
    if (state_ == AdvisorState::kConfident && estimator_.drifted()) {
      note_drift_locked();
    }
    if (events_ - last_solve_events_ >= config_.solve_every_events) {
      last_solve_events_ = events_;
      need_solve = true;
    }
  }
  if (need_solve) {
    run_solve_cycle();
  }
  return admitted;
}

std::size_t Advisor::observe_batch(std::span<const ObservedEvent> events) {
  std::size_t admitted = 0;
  for (const auto& e : events) {
    if (observe(e)) {
      ++admitted;
    }
  }
  return admitted;
}

bool Advisor::admits(const std::string& class_name) const {
  std::lock_guard lock(mu_);
  if (!config_.enact || state_ == AdvisorState::kQuiet) {
    return true;
  }
  return std::find(denied_.begin(), denied_.end(), class_name) ==
         denied_.end();
}

Recommendation Advisor::recommendation() const {
  std::lock_guard lock(rec_mu_);
  return latest_;
}

AdvisorState Advisor::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

std::uint64_t Advisor::events_observed() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::uint64_t Advisor::events_denied() const {
  std::lock_guard lock(mu_);
  return denied_events_;
}

void Advisor::note_drift_locked() {
  state_ = AdvisorState::kRefitting;
  ++refits_;
  estimator_.reset_fit();
  // Safety: a drifting advisor stops enacting stale economics — everything
  // is re-admitted until the refit converges.
  denied_.clear();
}

void Advisor::solve_now() { run_solve_cycle(); }

void Advisor::run_solve_cycle() {
  std::lock_guard solve_lock(solve_mu_);

  std::vector<FittedClass> fits;
  AdvisorState state;
  {
    std::lock_guard lock(mu_);
    fits = estimator_.fitted();
    // Prune classes with no mass yet — a class seen once contributes
    // nothing fittable and would only poison the model.
    std::erase_if(fits, [](const FittedClass& f) {
      return !(f.mean_occupancy > 0.0) || !(f.mean_hold > 0.0);
    });
    const bool confident =
        !fits.empty() && std::all_of(fits.begin(), fits.end(),
                                     [](const FittedClass& f) {
                                       return f.confident;
                                     });
    if (confident && state_ != AdvisorState::kConfident) {
      state_ = AdvisorState::kConfident;
    }
    state = state_;
  }
  const bool confident = state == AdvisorState::kConfident;

  if (fits.empty() || !confident) {
    // Stay quiet: publish the fit progress but no sizing advice.
    std::lock_guard lock(rec_mu_);
    latest_ = Recommendation{};
    latest_.state = state;
    latest_.confident = false;
    latest_.target_blocking = config_.target_blocking;
    latest_.fits = std::move(fits);
    {
      std::lock_guard mlock(mu_);
      latest_.solve_cycles = solve_cycles_;
      latest_.refits = refits_;
      latest_.fitted_at = estimator_.now();
    }
    return;
  }

  Recommendation rec = compute(std::move(fits), state, confident);
  {
    std::lock_guard lock(mu_);
    ++solve_cycles_;
    rec.solve_cycles = solve_cycles_;
    rec.refits = refits_;
    rec.fitted_at = estimator_.now();
    if (config_.enact) {
      denied_.clear();
      for (const auto& advice : rec.per_class) {
        if (!advice.admit) {
          denied_.push_back(advice.name);
        }
      }
    }
  }
  std::lock_guard lock(rec_mu_);
  latest_ = std::move(rec);
}

Recommendation Advisor::compute(std::vector<FittedClass> fits,
                                AdvisorState state, bool confident) {
  Recommendation rec;
  rec.state = state;
  rec.confident = confident;
  rec.target_blocking = config_.target_blocking;

  unsigned min_size = 1;
  for (const auto& f : fits) {
    min_size = std::max(min_size, f.bandwidth);
  }

  // Candidate grid: the configured sizes (>= the widest class), plus the
  // currently provisioned size so the revenue delta is always computable.
  std::vector<unsigned> sizes = config_.candidate_sizes;
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  std::erase_if(sizes, [&](unsigned n) { return n < min_size; });
  const auto is_candidate = [&](unsigned n) {
    return std::find(config_.candidate_sizes.begin(),
                     config_.candidate_sizes.end(),
                     n) != config_.candidate_sizes.end();
  };
  if (config_.current_size >= min_size &&
      std::find(sizes.begin(), sizes.end(), config_.current_size) ==
          sizes.end()) {
    sizes.push_back(config_.current_size);
    std::sort(sizes.begin(), sizes.end());
  }

  std::vector<unsigned> built_sizes;
  std::vector<core::CrossbarModel> models;
  for (const unsigned n : sizes) {
    std::vector<core::TrafficClass> classes;
    classes.reserve(fits.size());
    for (const auto& f : fits) {
      classes.push_back(f.traffic_class(n));
    }
    try {
      models.emplace_back(core::Dims::square(n), std::move(classes));
      built_sizes.push_back(n);
    } catch (const std::exception&) {
      // A size at which the fitted parameters are not representable (e.g.
      // a tiny switch under a smooth fit) is simply not a viable option.
    }
  }
  if (models.empty()) {
    rec.fits = std::move(fits);
    return rec;
  }

  // One batched multi-scenario solve over the whole grid: misses sharing
  // dimensions advance through a single traversal, warm sizes are hits.
  const std::vector<core::SolveResult> solved =
      cache_.eval_batch_result(models, config_.solver);

  std::size_t chosen = solved.size();
  std::size_t largest_candidate = solved.size();
  for (std::size_t i = 0; i < solved.size(); ++i) {
    const auto& per_class = solved[i].measures.per_class;
    SizingOption opt;
    opt.size = built_sizes[i];
    opt.revenue = solved[i].measures.revenue;
    opt.worst_blocking = 0.0;
    for (const auto& cm : per_class) {
      opt.worst_blocking = std::max(opt.worst_blocking, cm.blocking);
    }
    opt.meets_slo = opt.worst_blocking <= config_.target_blocking;
    rec.options.push_back(opt);
    if (is_candidate(opt.size)) {
      largest_candidate = i;
      if (opt.meets_slo && chosen == solved.size()) {
        chosen = i;  // smallest feasible candidate (sizes are ascending)
      }
    }
  }
  if (chosen == solved.size()) {
    chosen = largest_candidate != solved.size() ? largest_candidate
                                                : solved.size() - 1;
    rec.slo_met = false;
  } else {
    rec.slo_met = true;
  }
  rec.recommended_size = built_sizes[chosen];
  rec.revenue = solved[chosen].measures.revenue;

  if (config_.current_size > 0) {
    for (std::size_t i = 0; i < built_sizes.size(); ++i) {
      if (built_sizes[i] == config_.current_size) {
        rec.current_revenue = solved[i].measures.revenue;
        rec.revenue_delta = rec.revenue - rec.current_revenue;
        break;
      }
    }
  }

  // Admission economics at the recommended size (paper §4): shadow costs
  // via the revenue analyzer; admit iff w_r > DeltaW_r.
  const core::CrossbarModel& chosen_model = models[chosen];
  const core::RevenueReport report =
      core::RevenueAnalyzer(chosen_model).analyze();
  rec.per_class.reserve(fits.size());
  for (std::size_t r = 0; r < fits.size(); ++r) {
    ClassAdvice advice;
    advice.name = fits[r].name;
    advice.bandwidth = fits[r].bandwidth;
    advice.weight = fits[r].weight;
    if (r < report.per_class.size()) {
      advice.shadow_cost = report.per_class[r].shadow_cost;
      advice.admit = report.per_class[r].worth_admitting;
    }
    if (r < solved[chosen].measures.per_class.size()) {
      advice.blocking = solved[chosen].measures.per_class[r].blocking;
    }
    rec.per_class.push_back(advice);
  }

  // Trunk-reservation search: rank classes by weight (heaviest first gets
  // no reservation against it) and sweep the step size, keeping the step
  // that maximizes weighted carried revenue through the reserved knapsack.
  const std::vector<core::KnapsackClass> kn =
      core::knapsack_classes(chosen_model);
  const unsigned capacity = chosen_model.dims().cap();
  std::vector<std::size_t> rank(fits.size());
  std::iota(rank.begin(), rank.end(), std::size_t{0});
  std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    return fits[a].weight > fits[b].weight;
  });
  std::vector<unsigned> rank_of(fits.size(), 0);
  for (std::size_t i = 0; i < rank.size(); ++i) {
    rank_of[rank[i]] = static_cast<unsigned>(i);
  }
  double best_value = -1.0;
  unsigned best_step = 0;
  std::vector<unsigned> best_res(fits.size(), 0);
  for (unsigned step = 0; step <= config_.max_reservation_step; ++step) {
    std::vector<unsigned> res(fits.size());
    for (std::size_t r = 0; r < fits.size(); ++r) {
      res[r] = std::min(rank_of[r] * step, capacity);
    }
    double value = 0.0;
    try {
      const core::KnapsackResult kr = core::solve_knapsack(capacity, kn, res);
      for (std::size_t r = 0; r < fits.size(); ++r) {
        value += fits[r].weight * kr.concurrency[r];
      }
    } catch (const std::exception&) {
      continue;  // infeasible reservation vector at this step
    }
    if (value > best_value) {
      best_value = value;
      best_step = step;
      best_res = res;
    }
  }
  rec.reservation_step = best_step;
  for (std::size_t r = 0; r < rec.per_class.size(); ++r) {
    rec.per_class[r].reservation = best_res[r];
  }

  rec.fits = std::move(fits);
  return rec;
}

}  // namespace xbar::advisor
