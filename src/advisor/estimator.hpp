// Online per-class BPP parameter estimation from a live connection trace.
//
// The paper's planning machinery (revenue gradients, shadow costs, the
// knapsack admission gate) consumes a `CrossbarModel` — offered classes as
// (lambda_r, peakedness z_r, mean holding 1/mu_r).  Batch studies fit those
// from a complete trace; the serving tier needs the same fit *online*, from
// a stream of connection events, tracking the current traffic rather than
// the all-time average.
//
// The estimator keeps, per class, exponentially decayed counters at two
// timescales:
//
//   * a slow window (`window_seconds`, the fit window) accumulating the
//     decayed arrival count, observed time, hold moments, and the
//     time-weighted occupancy moments from which the BPP parameters are
//     moment-matched:  M = E[k], z = Var[k]/E[k] (the paper's peakedness),
//     mu = 1/mean-hold, i.e. exactly `BppParams::from_mean_peakedness`;
//   * a fast window (`drift_window_seconds`) tracking only the arrival
//     rate, used to *detect* regime shifts: when the fast-window rate
//     diverges from the slow-window rate by more than `drift_threshold`,
//     the fit is stale and the owner should `reset_fit()` and re-learn.
//
// Occupancy is reconstructed from the event stream itself: every admitted
// arrival pushes its departure time (arrival + hold) onto a min-heap, and
// moments are integrated piecewise between events with the heap supplying
// the departure instants in order.  Blocked arrivals count toward the
// offered arrival rate but not toward occupancy or holding time — the fit
// therefore measures *carried* occupancy, a faithful stand-in for offered
// occupancy while blocking is small (the regime in which capacity advice
// is actionable at all; DESIGN.md §13 discusses the bias).
//
// Everything is driven by explicit event timestamps (trace seconds), never
// the wall clock, so tests are exactly reproducible.

#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "dist/bpp.hpp"

namespace xbar::advisor {

/// One observed connection event: a class-r arrival at trace time `t`
/// holding `bandwidth` input/output ports for `hold` seconds.  `blocked`
/// marks arrivals the switch (or the admission gate) turned away.
struct ObservedEvent {
  std::string class_name;
  double t = 0.0;          ///< arrival time, trace seconds (monotone-ish)
  double hold = 0.0;       ///< holding time; ignored when blocked
  unsigned bandwidth = 1;  ///< a_r, ports per connection
  double weight = 1.0;     ///< revenue weight w_r
  bool blocked = false;    ///< offered but not carried
};

/// Estimator tuning.  Defaults suit traces with per-class arrival rates in
/// the 1..1000 /s range and holds around a second.
struct EstimatorConfig {
  double window_seconds = 60.0;       ///< slow (fit) decay timescale tau
  double drift_window_seconds = 5.0;  ///< fast (drift) decay timescale
  /// Confidence gate: the fit is advertised only after this many arrivals
  /// since the fit window last reset (an undecayed count — the decayed
  /// arrival mass saturates at rate*tau, which would lock low-rate classes
  /// out forever) AND `min_observe_seconds` of observed time.
  double min_events = 50.0;
  double min_observe_seconds = 5.0;
  /// Relative fast-vs-slow arrival-rate divergence that flags drift.
  double drift_threshold = 0.35;
  /// Peakedness is clamped into [1/z_cap, z_cap] before model building —
  /// tiny samples can put the raw moment ratio anywhere.
  double peakedness_cap = 16.0;
};

/// The fitted view of one class, in estimator-native units (aggregate
/// arrivals per second over the whole switch — the paper's tilde units).
struct FittedClass {
  std::string name;
  unsigned bandwidth = 1;
  double weight = 1.0;
  double arrival_rate = 0.0;    ///< decayed offered arrivals / second
  double mean_hold = 0.0;       ///< decayed mean holding time (1/mu)
  double mean_occupancy = 0.0;  ///< decayed time-average concurrent calls M
  double peakedness = 1.0;      ///< decayed Var[k]/E[k] (z)
  double events = 0.0;          ///< arrivals since the fit last reset
  bool confident = false;       ///< past the confidence gate

  /// Completion rate mu = 1/mean_hold.
  [[nodiscard]] double mu() const noexcept {
    return mean_hold > 0.0 ? 1.0 / mean_hold : 1.0;
  }

  /// The fitted BPP parameters via moment matching (mean = M, Z = z).
  [[nodiscard]] dist::BppParams bpp() const noexcept {
    return dist::BppParams::from_mean_peakedness(mean_occupancy, peakedness,
                                                 mu());
  }

  /// This class as a `TrafficClass` for a switch with `max_side` ports on
  /// its larger side.  Smooth fits (z < 1) imply a finite source population
  /// M/(1-z); when that population is smaller than `max_side` the model's
  /// admissibility rule (lambda(k) >= 0 across feasible states) would
  /// reject it, so z is clamped up just far enough — the fit stays smooth
  /// but representable.  Peaky fits pass through unchanged.
  [[nodiscard]] core::TrafficClass traffic_class(unsigned max_side) const;
};

/// Decayed accumulators for one class at one timescale.
struct DecayedScale {
  double tau = 60.0;      ///< decay timescale, seconds
  double arrivals = 0.0;  ///< decayed offered-arrival count
  double observed = 0.0;  ///< decayed observed time (normalizer for rate)
  double holds = 0.0;     ///< decayed sum of holding times (admitted only)
  double hold_count = 0.0;
  double occ_time = 0.0;  ///< decayed time integral weight W
  double occ_s1 = 0.0;    ///< decayed integral of k dt
  double occ_s2 = 0.0;    ///< decayed integral of k^2 dt

  /// Advance all accumulators over [t, t + dt) with occupancy `k`.
  void advance(double dt, double k) noexcept;

  [[nodiscard]] double arrival_rate() const noexcept {
    return observed > 0.0 ? arrivals / observed : 0.0;
  }
};

/// Per-class online estimator: dual-timescale decayed counters plus the
/// departure heap that reconstructs occupancy.
class ClassEstimator {
 public:
  ClassEstimator(std::string name, EstimatorConfig config);

  /// Ingest one event.  Time runs forward; an event timestamped earlier
  /// than the current clock is treated as simultaneous (dt = 0) rather
  /// than rewinding.
  void observe(const ObservedEvent& event);

  /// Advance the clock to `now` (process departures, decay) without an
  /// arrival — call before reading a fit so idle time is accounted.
  void advance_to(double now);

  /// Current fitted parameters.  `confident` reflects the gate.
  [[nodiscard]] FittedClass fitted() const;

  /// True when the fast window's arrival rate has diverged from the slow
  /// window's by more than `drift_threshold` (both windows past a minimal
  /// event count, so startup is not flagged).
  [[nodiscard]] bool drifted() const noexcept;

  /// Forget the slow-window fit (drift response).  In-flight connections
  /// (the departure heap and current occupancy) are kept — they are
  /// ground truth, not estimate — so the re-fit warms up fast.
  void reset_fit();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] unsigned current_occupancy() const noexcept {
    return occupancy_;
  }
  [[nodiscard]] std::uint64_t total_events() const noexcept {
    return total_events_;
  }
  [[nodiscard]] std::uint64_t total_blocked() const noexcept {
    return total_blocked_;
  }
  [[nodiscard]] std::uint64_t events_since_fit() const noexcept {
    return events_since_fit_;
  }

 private:
  void integrate_to(double now);

  std::string name_;
  EstimatorConfig config_;
  DecayedScale slow_;
  DecayedScale fast_;
  double now_ = 0.0;
  bool started_ = false;
  unsigned occupancy_ = 0;
  unsigned bandwidth_ = 1;
  double weight_ = 1.0;
  std::uint64_t total_events_ = 0;
  std::uint64_t total_blocked_ = 0;
  std::uint64_t events_since_fit_ = 0;  ///< undecayed; confidence gate
  /// Departure instants of in-flight connections (min-heap).
  std::priority_queue<double, std::vector<double>, std::greater<>> departures_;
};

/// Registry of per-class estimators keyed by class name.
class TrafficEstimator {
 public:
  explicit TrafficEstimator(EstimatorConfig config = {});

  /// Route one event to its class estimator (created on first sight).
  void observe(const ObservedEvent& event);

  /// Advance every class to `now`.
  void advance_to(double now);

  /// Fits for every known class, in first-seen order.
  [[nodiscard]] std::vector<FittedClass> fitted() const;

  /// True when any class reports drift.
  [[nodiscard]] bool drifted() const noexcept;

  /// Reset every class's slow-window fit (keep in-flight state).
  void reset_fit();

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t total_events() const noexcept {
    return total_events_;
  }

  [[nodiscard]] const EstimatorConfig& config() const noexcept {
    return config_;
  }

 private:
  EstimatorConfig config_;
  std::vector<ClassEstimator> classes_;  // first-seen order; small R
  double now_ = 0.0;
  std::uint64_t total_events_ = 0;
};

}  // namespace xbar::advisor
