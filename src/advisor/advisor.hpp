// The online capacity-planning advisor (ROADMAP item 2; paper §4 served
// live).
//
// The advisor closes the loop between the estimator and the paper's
// planning machinery.  It ingests `ObservedEvent`s, and — once every class
// fit passes the confidence gate — periodically re-solves the *fitted*
// model through the standard `SolverSpec` pipeline:
//
//   1. build one `CrossbarModel` per candidate square size N from the
//      fitted classes (tilde units: the estimator's aggregate rates are
//      exactly the model's aggregate units) and solve them all in one
//      `SolverCache::eval_batch_result` call (the Algorithm-1 batch lane);
//   2. recommend the smallest size whose worst-class blocking meets the
//      target (else the largest candidate, flagged `slo_met = false`);
//   3. at the recommended size, run `RevenueAnalyzer` for shadow costs —
//      a class is worth admitting iff w_r > DeltaW_r (paper §4) — and
//      search trunk-reservation steps through the reserved knapsack,
//      keeping the step that maximizes weighted carried revenue;
//   4. publish a typed `Recommendation` {sizing, per-class admission,
//      expected revenue delta vs. the configured current size, confidence}.
//
// State machine: kQuiet (estimates not yet confident) -> kConfident
// (recommendations flowing) -> kRefitting on detected drift (the slow
// window is reset and relearned; recommendations keep streaming from the
// last solve but are marked unconfident until the refit converges).
//
// Enactment: with `enact` set, classes the economics mark not-worth-
// admitting are *denied* — `admits()` gates the caller's admission path.
// Safety: enactment only ever acts on a confident recommendation, and a
// drifting advisor re-admits everything until it is confident again.
//
// Thread safety: `observe*`, `admits`, and `recommendation` may be called
// from any thread.  Solve cycles run inline on the observing thread that
// crosses the cadence threshold, serialized by a dedicated solve mutex so
// ingestion from other threads continues meanwhile.

#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "advisor/estimator.hpp"
#include "core/solver_spec.hpp"
#include "sweep/sweep.hpp"

namespace xbar::advisor {

/// Advisor tuning.
struct AdvisorConfig {
  /// Candidate square switch sizes to evaluate (sorted ascending at use).
  std::vector<unsigned> candidate_sizes = {4, 8, 12, 16, 24, 32};
  /// Per-class call-blocking SLO the sizing must meet.
  double target_blocking = 0.005;
  /// The currently provisioned square size; 0 = unknown (no delta).
  unsigned current_size = 0;
  /// Trunk-reservation steps searched: 0..max (0 = no reservation).
  unsigned max_reservation_step = 4;
  /// Re-solve after this many newly observed events.
  std::uint64_t solve_every_events = 256;
  core::SolverSpec solver = core::SolverSpec::fast();
  EstimatorConfig estimator;
  /// Deny admission to classes not worth admitting (paper §4 economics).
  bool enact = false;
};

/// Advisor lifecycle state.
enum class AdvisorState : std::uint8_t {
  kQuiet,      ///< estimates below the confidence gate; no advice yet
  kConfident,  ///< fits stable, recommendations current
  kRefitting,  ///< drift detected; relearning the slow window
};

[[nodiscard]] std::string_view to_string(AdvisorState state) noexcept;

/// Per-class admission advice at the recommended configuration.
struct ClassAdvice {
  std::string name;
  unsigned bandwidth = 1;
  double weight = 0.0;
  double shadow_cost = 0.0;  ///< DeltaW_r at the recommended size
  bool admit = true;         ///< w_r > DeltaW_r (paper §4)
  double blocking = 0.0;     ///< call congestion at the recommended size
  unsigned reservation = 0;  ///< trunks reserved against this class
};

/// One evaluated candidate size.
struct SizingOption {
  unsigned size = 0;
  double worst_blocking = 1.0;
  double revenue = 0.0;
  bool meets_slo = false;
};

/// A full recommendation snapshot.
struct Recommendation {
  AdvisorState state = AdvisorState::kQuiet;
  bool confident = false;     ///< advice backed by confident fits
  unsigned recommended_size = 0;
  bool slo_met = false;
  double revenue = 0.0;          ///< W at the recommended size
  double current_revenue = 0.0;  ///< W at the configured current size
  double revenue_delta = 0.0;    ///< recommended minus current
  double target_blocking = 0.0;
  unsigned reservation_step = 0;  ///< chosen trunk-reservation step
  std::vector<ClassAdvice> per_class;
  std::vector<SizingOption> options;  ///< every candidate evaluated
  std::vector<FittedClass> fits;      ///< estimator snapshot behind it
  std::uint64_t solve_cycles = 0;     ///< completed re-solves so far
  std::uint64_t refits = 0;           ///< drift-triggered fit resets
  double fitted_at = 0.0;             ///< trace time of the snapshot
};

/// The streaming advisor.
class Advisor {
 public:
  explicit Advisor(AdvisorConfig config);

  /// Ingest one event.  Returns false when enactment denies this class:
  /// the caller should refuse the connection and the event is recorded as
  /// blocked regardless of its own flag.
  bool observe(ObservedEvent event);

  /// Ingest a batch (one NDJSON `observe` frame).  Returns the number of
  /// events *admitted* (not denied by enactment).
  std::size_t observe_batch(std::span<const ObservedEvent> events);

  /// True when the enactment gate currently admits `class_name` (always
  /// true when enactment is off or the advisor is not confident).
  [[nodiscard]] bool admits(const std::string& class_name) const;

  /// Latest published recommendation (copy; cheap R, small options list).
  [[nodiscard]] Recommendation recommendation() const;

  /// Current lifecycle state.
  [[nodiscard]] AdvisorState state() const;

  /// Force a solve cycle now (tests, advise-on-demand).  No-op while no
  /// class fit is confident.
  void solve_now();

  [[nodiscard]] const AdvisorConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t events_observed() const;
  [[nodiscard]] std::uint64_t events_denied() const;

 private:
  void note_drift_locked();
  void run_solve_cycle();
  [[nodiscard]] Recommendation compute(std::vector<FittedClass> fits,
                                       AdvisorState state, bool confident);

  AdvisorConfig config_;

  mutable std::mutex mu_;  ///< estimator + state + deny set + counters
  TrafficEstimator estimator_;
  AdvisorState state_ = AdvisorState::kQuiet;
  std::vector<std::string> denied_;  ///< enactment deny set (small R)
  std::uint64_t events_ = 0;
  std::uint64_t denied_events_ = 0;
  std::uint64_t refits_ = 0;
  std::uint64_t solve_cycles_ = 0;
  std::uint64_t last_solve_events_ = 0;

  std::mutex solve_mu_;        ///< serializes solve cycles
  sweep::SolverCache cache_;   ///< guarded by solve_mu_
  mutable std::mutex rec_mu_;  ///< guards latest_
  Recommendation latest_;
};

}  // namespace xbar::advisor
