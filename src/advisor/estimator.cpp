#include "advisor/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace xbar::advisor {

namespace {

/// Clamp z into the representable band for a switch whose larger side has
/// `max_side` ports: a smooth class needs source population M/(1-z) >=
/// max_side, i.e. z >= 1 - M/max_side (with a hair of slack so the
/// admissibility check never sits exactly on the boundary).
double representable_peakedness(double z, double mean_occupancy,
                                unsigned max_side) {
  if (z >= 1.0 || max_side == 0) {
    return z;
  }
  const double floor_z =
      1.0 - mean_occupancy / static_cast<double>(max_side) + 1e-9;
  return std::max(z, floor_z);
}

}  // namespace

core::TrafficClass FittedClass::traffic_class(unsigned max_side) const {
  const double z = representable_peakedness(peakedness, mean_occupancy,
                                            max_side);
  const dist::BppParams p =
      dist::BppParams::from_mean_peakedness(mean_occupancy, z, mu());
  core::TrafficClass tc;
  tc.name = name;
  tc.bandwidth = bandwidth;
  tc.alpha_tilde = p.alpha;
  tc.beta_tilde = p.beta;
  tc.mu = p.mu;
  tc.weight = weight;
  return tc;
}

void DecayedScale::advance(double dt, double k) noexcept {
  if (dt <= 0.0) {
    return;
  }
  // Exact piecewise integration of e^{-(now-s)/tau} over a span with
  // constant occupancy k: existing mass decays by d = e^{-dt/tau}, the new
  // span contributes tau (1 - d) of weighted time.
  const double d = std::exp(-dt / tau);
  const double span = tau * (1.0 - d);
  arrivals *= d;
  observed = observed * d + span;
  holds *= d;
  hold_count *= d;
  occ_time = occ_time * d + span;
  occ_s1 = occ_s1 * d + k * span;
  occ_s2 = occ_s2 * d + k * k * span;
}

ClassEstimator::ClassEstimator(std::string name, EstimatorConfig config)
    : name_(std::move(name)), config_(config) {
  slow_.tau = config_.window_seconds;
  fast_.tau = config_.drift_window_seconds;
}

void ClassEstimator::integrate_to(double now) {
  if (!started_) {
    now_ = now;
    started_ = true;
    return;
  }
  if (now <= now_) {
    return;  // simultaneous / out-of-order: clamp, never rewind
  }
  // Step through departures in order so each inter-event span integrates
  // with the occupancy that actually prevailed over it.
  while (!departures_.empty() && departures_.top() <= now) {
    const double td = departures_.top();
    departures_.pop();
    if (td > now_) {
      const double k = static_cast<double>(occupancy_);
      slow_.advance(td - now_, k);
      fast_.advance(td - now_, k);
      now_ = td;
    }
    if (occupancy_ > 0) {
      --occupancy_;
    }
  }
  if (now > now_) {
    const double k = static_cast<double>(occupancy_);
    slow_.advance(now - now_, k);
    fast_.advance(now - now_, k);
    now_ = now;
  }
}

void ClassEstimator::observe(const ObservedEvent& event) {
  integrate_to(event.t);
  bandwidth_ = event.bandwidth;
  weight_ = event.weight;
  ++total_events_;
  ++events_since_fit_;
  slow_.arrivals += 1.0;
  fast_.arrivals += 1.0;
  if (event.blocked) {
    ++total_blocked_;
    return;
  }
  if (event.hold > 0.0) {
    slow_.holds += event.hold;
    slow_.hold_count += 1.0;
    ++occupancy_;
    departures_.push(now_ + event.hold);
  }
}

void ClassEstimator::advance_to(double now) { integrate_to(now); }

FittedClass ClassEstimator::fitted() const {
  FittedClass f;
  f.name = name_;
  f.bandwidth = bandwidth_;
  f.weight = weight_;
  f.events = static_cast<double>(events_since_fit_);
  f.arrival_rate = slow_.arrival_rate();
  f.mean_hold =
      slow_.hold_count > 0.0 ? slow_.holds / slow_.hold_count : 0.0;
  if (slow_.occ_time > 0.0) {
    f.mean_occupancy = slow_.occ_s1 / slow_.occ_time;
    const double var =
        slow_.occ_s2 / slow_.occ_time - f.mean_occupancy * f.mean_occupancy;
    f.peakedness = f.mean_occupancy > 1e-12
                       ? std::clamp(var / f.mean_occupancy,
                                    1.0 / config_.peakedness_cap,
                                    config_.peakedness_cap)
                       : 1.0;
  }
  const double observed_span =
      started_ ? slow_.observed : 0.0;  // decayed seconds in window
  f.confident = f.events >= config_.min_events &&
                observed_span >= std::min(config_.min_observe_seconds,
                                          0.95 * slow_.tau) &&
                f.mean_hold > 0.0 && f.mean_occupancy > 0.0;
  return f;
}

bool ClassEstimator::drifted() const noexcept {
  // Need both windows warm, else startup transients flag forever.
  if (fast_.arrivals < 8.0 ||
      static_cast<double>(events_since_fit_) < config_.min_events) {
    return false;
  }
  const double slow_rate = slow_.arrival_rate();
  const double fast_rate = fast_.arrival_rate();
  if (slow_rate <= 0.0) {
    return fast_rate > 0.0;
  }
  return std::abs(fast_rate - slow_rate) / slow_rate >
         config_.drift_threshold;
}

void ClassEstimator::reset_fit() {
  const double tau = slow_.tau;
  slow_ = DecayedScale{};
  slow_.tau = tau;
  events_since_fit_ = 0;
  // The fast window keeps running: it is the post-shift rate reference the
  // new fit converges toward.  In-flight departures and occupancy_ stay —
  // they are observed state, and dropping them would corrupt the integral.
}

TrafficEstimator::TrafficEstimator(EstimatorConfig config)
    : config_(config) {}

void TrafficEstimator::observe(const ObservedEvent& event) {
  now_ = std::max(now_, event.t);
  ++total_events_;
  for (auto& c : classes_) {
    if (c.name() == event.class_name) {
      c.observe(event);
      return;
    }
  }
  classes_.emplace_back(event.class_name, config_);
  classes_.back().observe(event);
}

void TrafficEstimator::advance_to(double now) {
  now_ = std::max(now_, now);
  for (auto& c : classes_) {
    c.advance_to(now);
  }
}

std::vector<FittedClass> TrafficEstimator::fitted() const {
  std::vector<FittedClass> out;
  out.reserve(classes_.size());
  for (const auto& c : classes_) {
    out.push_back(c.fitted());
  }
  return out;
}

bool TrafficEstimator::drifted() const noexcept {
  for (const auto& c : classes_) {
    if (c.drifted()) {
      return true;
    }
  }
  return false;
}

void TrafficEstimator::reset_fit() {
  for (auto& c : classes_) {
    c.reset_fit();
  }
}

}  // namespace xbar::advisor
