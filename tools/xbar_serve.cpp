// xbar_serve — long-running evaluation daemon.
//
//   xbar_serve [--host=127.0.0.1] [--port=0] [--threads=N] [--queue=N]
//              [--cache-shards=N] [--cache-entries=N] [--deadline-ms=MS]
//              [--max-line-bytes=N] [--port-file=PATH]
//              [--send-timeout-ms=MS] [--idle-timeout-ms=MS]
//              [--max-conn-requests=N] [--max-conn-bytes=N]
//              [--send-buffer=BYTES]
//              [--advise] [--advisor-sizes=4,8,16,...]
//              [--advisor-target=0.005] [--advisor-current=N]
//              [--advisor-window-s=S] [--advisor-min-events=N]
//              [--advisor-every=N] [--advisor-max-reservation=N]
//              [--advisor-solver=SPEC] [--advisor-enact]
//              [--overload] [--overload-target-ms=MS]
//              [--overload-min-limit=N] [--overload-max-limit=N]
//              [--overload-initial-limit=N] [--overload-window=N]
//              [--overload-stale-ttl-s=S] [--overload-stale-at=P]
//              [--overload-bound-at=P] [--overload-shed-start=P]
//              [--overload-shed-step=P] [--overload-levels=N]
//
// Speaks the newline-delimited JSON protocol documented in
// src/service/protocol.hpp: methods solve / revenue / sweep / stats /
// health / ping, one request per line, one response line per request.
//
// --advise enables the streaming capacity advisor: the `observe` method
// ingests connection-trace events, the advisor fits per-class BPP
// parameters online, periodically re-solves the fitted model over the
// --advisor-sizes candidate grid against the --advisor-target blocking
// SLO, and the `advise` method returns the current recommendation
// (sizing, per-class admission, revenue delta vs. --advisor-current).
// --advisor-enact turns the per-class admission advice into an enforced
// gate on observed connections.
//
// --overload enables adaptive overload control: an AIMD concurrency
// limit tracks the observed p99 against --overload-target-ms, and the
// degradation ladder (serve-stale within --overload-stale-ttl-s, then
// bound-only knapsack answers, then priority-aware shedding above
// --overload-shed-start) keeps answering *something* typed while the
// limiter converges.  Advertised pressure rides the stats/health frames.
// --port=0 binds an ephemeral port; the listening line on stdout (and
// --port-file, written atomically) tell scripts where to connect.
// --deadline-ms sets the default per-request budget for requests that
// carry none.
//
// Connection hardening: --send-timeout-ms disconnects readers that stop
// draining responses (counted as slow_reader_disconnects in stats);
// --idle-timeout-ms reaps connections with no traffic; the per-connection
// budgets --max-conn-requests / --max-conn-bytes bound what one peer can
// consume before being recycled.  --send-buffer clamps SO_SNDBUF so the
// slow-reader path triggers deterministically in tests.
//
// SIGTERM/SIGINT begin a graceful drain: stop accepting, finish every
// accepted connection's in-flight requests, print a final stats line to
// stderr, exit 0.  Fatal setup failures (unbindable port, bad flags)
// exit 1 with a typed diagnostic.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "report/args.hpp"
#include "service/connection.hpp"
#include "service/server.hpp"
#include "service/signal.hpp"

namespace {

using namespace xbar;

int usage() {
  std::cerr
      << "usage: xbar_serve [--host=ADDR] [--port=N] [--threads=N]\n"
         "                  [--queue=N] [--cache-shards=N]\n"
         "                  [--cache-entries=N] [--deadline-ms=MS]\n"
         "                  [--max-line-bytes=N] [--port-file=PATH]\n"
         "                  [--send-timeout-ms=MS] [--idle-timeout-ms=MS]\n"
         "                  [--max-conn-requests=N] [--max-conn-bytes=N]\n"
         "                  [--send-buffer=BYTES]\n"
         "                  [--advise] [--advisor-sizes=4,8,16]\n"
         "                  [--advisor-target=B] [--advisor-current=N]\n"
         "                  [--advisor-window-s=S] [--advisor-min-events=N]\n"
         "                  [--advisor-every=N] [--advisor-max-reservation=N]\n"
         "                  [--advisor-solver=SPEC] [--advisor-enact]\n"
         "                  [--overload] [--overload-target-ms=MS]\n"
         "                  [--overload-min-limit=N] [--overload-max-limit=N]\n"
         "                  [--overload-initial-limit=N]\n"
         "                  [--overload-window=N] [--overload-stale-ttl-s=S]\n"
         "                  [--overload-stale-at=P] [--overload-bound-at=P]\n"
         "                  [--overload-shed-start=P]\n"
         "                  [--overload-shed-step=P] [--overload-levels=N]\n"
         "Newline-delimited JSON over TCP; methods: ping, solve, revenue,\n"
         "sweep, stats, health (+ observe, advise with --advise).\n"
         "SIGTERM/SIGINT drain gracefully.\n";
  return 1;
}

/// Write the bound port where pollers can read it, atomically (tmp +
/// rename) so a reader never sees a partial file.
void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      raise(ErrorKind::kIo, "cannot write port file '" + tmp + "'");
    }
    out << port << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    raise(ErrorKind::kIo, "cannot rename port file into '" + path + "'");
  }
}

/// Parse "4,8,16" into candidate sizes (kConfig on junk).
std::vector<unsigned> parse_sizes(const std::string& spec) {
  std::vector<unsigned> sizes;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string token = spec.substr(pos, end - pos);
    try {
      const unsigned long n = std::stoul(token);
      if (n == 0 || n > 4096) {
        throw std::out_of_range("size");
      }
      sizes.push_back(static_cast<unsigned>(n));
    } catch (const std::exception&) {
      raise(ErrorKind::kConfig,
            "--advisor-sizes: bad size '" + token + "'");
    }
    pos = end + 1;
  }
  if (sizes.empty()) {
    raise(ErrorKind::kConfig, "--advisor-sizes: no sizes given");
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  const report::Args args(argc, argv);
  if (args.has("help")) {
    return usage();
  }
  try {
    service::ServerConfig config;
    if (const auto host = args.get("host")) {
      config.host = *host;
    }
    config.port = static_cast<std::uint16_t>(args.get_unsigned("port", 0));
    config.workers = args.get_unsigned("threads", 0);
    config.queue_capacity = args.get_unsigned("queue", 128);
    config.cache_shards = args.get_unsigned("cache-shards", 8);
    config.cache_entries_per_shard = args.get_unsigned("cache-entries", 64);
    config.default_deadline_ms = args.get_double("deadline-ms", 0.0);
    config.max_line_bytes =
        args.get_unsigned("max-line-bytes", 1u << 20);
    config.send_timeout_seconds =
        args.get_double("send-timeout-ms", 5000.0) * 1e-3;
    config.idle_timeout_seconds =
        args.get_double("idle-timeout-ms", 0.0) * 1e-3;
    config.max_requests_per_connection =
        args.get_unsigned("max-conn-requests", 0);
    config.max_bytes_per_connection =
        args.get_unsigned("max-conn-bytes", 0);
    config.send_buffer_bytes =
        static_cast<int>(args.get_unsigned("send-buffer", 0));

    if (args.has("advise") || args.has("advisor-enact")) {
      advisor::AdvisorConfig advisor;
      if (const auto sizes = args.get("advisor-sizes")) {
        advisor.candidate_sizes = parse_sizes(*sizes);
      }
      advisor.target_blocking = args.get_double("advisor-target", 0.005);
      advisor.current_size = args.get_unsigned("advisor-current", 0);
      advisor.max_reservation_step =
          args.get_unsigned("advisor-max-reservation", 4);
      advisor.solve_every_events = args.get_unsigned("advisor-every", 256);
      advisor.estimator.window_seconds =
          args.get_double("advisor-window-s", 60.0);
      advisor.estimator.min_events =
          static_cast<double>(args.get_unsigned("advisor-min-events", 50));
      if (const auto spec = args.get("advisor-solver")) {
        advisor.solver = core::SolverSpec::parse(*spec);
      }
      advisor.enact = args.has("advisor-enact");
      config.advisor = std::move(advisor);
    }

    if (args.has("overload")) {
      service::OverloadConfig overload;
      overload.target_p99_seconds =
          args.get_double("overload-target-ms", 50.0) * 1e-3;
      overload.min_limit = args.get_unsigned("overload-min-limit", 4);
      overload.max_limit = args.get_unsigned("overload-max-limit", 1024);
      overload.initial_limit =
          args.get_unsigned("overload-initial-limit", 64);
      overload.window = args.get_unsigned("overload-window", 64);
      overload.stale_ttl_seconds =
          args.get_double("overload-stale-ttl-s", 5.0);
      overload.stale_at = args.get_double("overload-stale-at", 0.50);
      overload.bound_at = args.get_double("overload-bound-at", 0.70);
      overload.shed_start = args.get_double("overload-shed-start", 0.85);
      overload.shed_step = args.get_double("overload-shed-step", 0.05);
      overload.priority_levels =
          static_cast<unsigned>(args.get_unsigned("overload-levels", 4));
      config.overload = overload;
    }

    // The mask must be in place before any thread exists so every thread
    // inherits it and the drain signal only ever reaches sigwait() below.
    service::install_drain_signals();

    service::Server server(std::move(config));
    server.start();
    if (const auto path = args.get("port-file")) {
      write_port_file(*path, server.port());
    }
    std::cout << "xbar_serve listening on "
              << args.get("host").value_or("127.0.0.1") << ':'
              << server.port() << std::endl;

    const int signo = service::wait_for_drain_signal();
    std::cerr << "xbar_serve: signal " << signo << ", draining\n";
    server.request_drain();
    server.wait();

    const service::StatsSnapshot s = server.stats();
    std::cerr << "xbar_serve: drained, uptime " << s.uptime_seconds
              << "s — requests=" << s.requests_total << " ok=" << s.ok
              << " errors=" << s.errors << " deadlines=" << s.deadlines
              << " overloaded=" << s.overload_rejections
              << " slow_readers=" << s.slow_reader_disconnects
              << " idle_disconnects=" << s.idle_disconnects
              << " budget_disconnects=" << s.budget_disconnects
              << " cache_hits=" << s.cache.hits
              << " cache_misses=" << s.cache.misses;
    if (s.advisor_enabled) {
      std::cerr << " advisor_events=" << s.advisor_events
                << " advisor_denied=" << s.advisor_denied;
    }
    if (s.overload_enabled) {
      std::cerr << " pressure=" << s.overload.pressure
                << " limit=" << s.overload.limit
                << " limited=" << s.overload.limited
                << " stale_served=" << s.overload.stale_served
                << " bound_served=" << s.overload.bound_served
                << " shed=" << s.overload.shed;
    }
    std::cerr << "\n";
    return 0;
  } catch (const xbar::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
