// xbar_chaosproxy — deterministic TCP fault injection for xbar_serve.
//
//   xbar_chaosproxy --upstream-port=N [--upstream-host=127.0.0.1]
//                   [--port=0] [--host=127.0.0.1]
//                   [--faults=CONN:action[:arg][,...]] [--port-file=PATH]
//                   [--stall-max-s=S]
//
// Sits between a client and xbar_serve and injects faults on a scriptable
// per-connection schedule (grammar in src/chaos/proxy.hpp):
//
//   xbar_chaosproxy --upstream-port=7411 --port=7412 \
//       --faults=0:delay:100,2:reset,4:truncate:10,6:garbage,8:stall
//
// Connections without a rule are proxied faithfully, so the same
// loadgen/client run works with or without the proxy in the path.
// --port=0 binds an ephemeral port; the listening line on stdout and
// --port-file (written atomically) tell scripts where to connect.
// SIGTERM/SIGINT stop the proxy; the fault/byte counters go to stderr on
// exit, and the exit code is 0 after a clean stop.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "chaos/proxy.hpp"
#include "core/error.hpp"
#include "report/args.hpp"
#include "service/signal.hpp"

namespace {

using namespace xbar;

int usage() {
  std::cerr
      << "usage: xbar_chaosproxy --upstream-port=N [--upstream-host=ADDR]\n"
         "                       [--port=N] [--host=ADDR]\n"
         "                       [--faults=CONN:action[:arg][,...]]\n"
         "                       [--port-file=PATH] [--stall-max-s=S]\n"
         "actions: delay:MS drop reset[:BYTES] truncate[:BYTES] garbage "
         "stall\n";
  return 1;
}

/// Atomic tmp + rename, same contract as xbar_serve's port file.
void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      raise(ErrorKind::kIo, "cannot write port file '" + tmp + "'");
    }
    out << port << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    raise(ErrorKind::kIo, "cannot rename port file into '" + path + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const report::Args args(argc, argv);
  if (args.has("help") || !args.get("upstream-port")) {
    return usage();
  }
  try {
    chaos::ProxyConfig config;
    config.listen_host = args.get("host").value_or("127.0.0.1");
    config.listen_port =
        static_cast<std::uint16_t>(args.get_unsigned("port", 0));
    config.upstream_host = args.get("upstream-host").value_or("127.0.0.1");
    config.upstream_port =
        static_cast<std::uint16_t>(args.get_unsigned("upstream-port", 0));
    config.stall_max_seconds = args.get_double("stall-max-s", 30.0);
    if (const auto spec = args.get("faults")) {
      config.faults = chaos::parse_fault_spec(*spec);
    }

    service::install_drain_signals();

    chaos::ChaosProxy proxy(std::move(config));
    proxy.start();
    if (const auto path = args.get("port-file")) {
      write_port_file(*path, proxy.port());
    }
    std::cout << "xbar_chaosproxy listening on "
              << args.get("host").value_or("127.0.0.1") << ':'
              << proxy.port() << " -> "
              << args.get("upstream-host").value_or("127.0.0.1") << ':'
              << *args.get("upstream-port") << std::endl;

    const int signo = service::wait_for_drain_signal();
    std::cerr << "xbar_chaosproxy: signal " << signo << ", stopping\n";
    proxy.stop();

    const chaos::ProxyCounters c = proxy.counters();
    std::cerr << "xbar_chaosproxy: accepted=" << c.accepted
              << " faulted=" << c.faulted
              << " upstream_dial_failures=" << c.upstream_dial_failures
              << " bytes_up=" << c.bytes_to_upstream
              << " bytes_down=" << c.bytes_to_client << "\n";
    return 0;
  } catch (const xbar::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
