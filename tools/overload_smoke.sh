#!/bin/sh
# Overload-ladder smoke: two xbar_serve backends running adaptive overload
# control behind an xbar_router, pushed an order of magnitude past the
# load the tiny latency target calls sustainable.
#
#   xbar_loadgen -> xbar_router -> { serve1 (overload), serve2 (overload) }
#
# The backends' p99 target is set to 0.1us, so the very first closed
# latency window drives the pressure signal toward 1.0 and the whole
# degradation ladder becomes reachable deterministically:
#
#   W  warm      — a --unique run *below* the window size (60 requests
#                  across 2 backends never closes a 64-sample window), so
#                  pressure stays 0 and every answer is exact + cached.
#   H  heat      — 10x the warm load, cold keys: the first windows close,
#                  pressure jumps past bound_at, and the tail of the run
#                  must come back as bound-only knapsack answers
#                  (--min-bound) while staying >=99% typed.
#   S  stale     — the warm keys again after their 0.2s TTL expired:
#                  expired cache entries under pressure must be served
#                  stale with an age stamp (--min-stale).
#   P  shed      — a 4-request --priority=0 probe straight at backend 1:
#                  rank 0 sheds first (threshold 0.7 < pressure), every
#                  refusal is a typed frame, and the backend's own
#                  stale/bound/shed counters must all have moved.
#   D  drain     — SIGTERM backend 2 in the middle of a paced overload
#                  run: it must drain and exit 0 while the run rides
#                  through on the surviving backend at >=99% success.
#
# usage: overload_smoke.sh <xbar_serve> <xbar_router> <xbar_loadgen> \
#                          <xbar_client> <workdir>
set -e

SERVE="$1"
ROUTER="$2"
LOADGEN="$3"
CLIENT="$4"
DIR="$5"

SMOKE_NAME=overload_smoke
. "$(dirname "$0")/smoke_lib.sh"

mkdir -p "$DIR"
B1_PORT_FILE="$DIR/overload_b1_port.$$"
B2_PORT_FILE="$DIR/overload_b2_port.$$"
ROUTER_PORT_FILE="$DIR/overload_router_port.$$"
rm -f "$B1_PORT_FILE" "$B2_PORT_FILE" "$ROUTER_PORT_FILE"

# --- the fleet -------------------------------------------------------------
# 0.1us p99 target: any real handling latency is ~40-5000x over it, so
# pressure = 1 - 1/ratio lands in [0.95, 1) as soon as a window closes.
# Thresholds are spread under that: stale at 0.2, bound at 0.4, shedding
# from 0.7 (rank 0) stepping to 1.0 (default rank 3, unreachable — the
# latency component is strictly < 1).  min-limit 16 keeps the AIMD
# limiter, which slams to its floor under this target, above the senders'
# concurrency so admission never masks the ladder.
OVERLOAD_FLAGS="--overload --overload-target-ms=0.0001 \
  --overload-min-limit=16 --overload-max-limit=64 \
  --overload-initial-limit=32 --overload-window=64 \
  --overload-stale-ttl-s=0.2 --overload-stale-at=0.2 \
  --overload-bound-at=0.4 --overload-shed-start=0.7 \
  --overload-shed-step=0.1 --overload-levels=4"

"$SERVE" --port=0 --threads=6 --queue=64 $OVERLOAD_FLAGS \
  --port-file="$B1_PORT_FILE" &
B1_PID=$!
smoke_track "$B1_PID"
"$SERVE" --port=0 --threads=6 --queue=64 $OVERLOAD_FLAGS \
  --port-file="$B2_PORT_FILE" &
B2_PID=$!
smoke_track "$B2_PID"
wait_for_file "$B1_PORT_FILE" || fail "backend 1 never wrote its port file"
wait_for_file "$B2_PORT_FILE" || fail "backend 2 never wrote its port file"
B1_PORT=$(cat "$B1_PORT_FILE")
B2_PORT=$(cat "$B2_PORT_FILE")

"$ROUTER" --port=0 --threads=4 --queue=64 \
  --backend=127.0.0.1:"$B1_PORT" --backend=127.0.0.1:"$B2_PORT" \
  --probe-interval-ms=100 --probe-timeout-ms=250 \
  --connect-timeout-ms=500 --request-timeout-ms=1000 \
  --hedge-cold-ms=50 --pool-idle=2 \
  --port-file="$ROUTER_PORT_FILE" 2> "$DIR/overload_router_stderr.$$" &
ROUTER_PID=$!
smoke_track "$ROUTER_PID"
wait_for_file "$ROUTER_PORT_FILE" || fail "router never wrote its port file"
ROUTER_PORT=$(cat "$ROUTER_PORT_FILE")

backend_counter() {
  # backend_counter <port> <key> — one integer from the stats frame's
  # overload object (0 when the key is absent or the backend is gone).
  _v=$("$CLIENT" --port="$1" --method=stats 2>/dev/null |
    sed -n 's/.*"'"$2"'":\([0-9]*\).*/\1/p')
  echo "${_v:-0}"
}

# --- phase W: sustainable load is exact and cached ------------------------
# 60 unique keys split across 2 backends stay under the 64-sample window,
# so no window ever closes: pressure 0, exact answers, caches seeded.
"$LOADGEN" --port="$ROUTER_PORT" --requests=60 --senders=2 \
  --unique --seed=21 || fail "warm run failed"

# --- phase H: 10x load trips the ladder into bound-only answers -----------
"$LOADGEN" --port="$ROUTER_PORT" --requests=600 --senders=8 \
  --unique --seed=99 --min-success-rate=0.99 \
  --overload --min-typed-rate=0.99 --min-bound=20 --max-ok-p99-ms=2000 ||
  fail "heat run: typed rate, bound-only floor, or admitted p99 violated"

# --- phase S: expired cache entries are served stale under pressure -------
# Same seed/senders/count as W => byte-identical key stream, routed to the
# same backends by the ring.  The TTL (0.2s) has lapsed; pressure is still
# hot from H (it holds until the next window closes), so the ladder must
# serve the expired entries with an age stamp instead of recomputing.
sleep 0.5
"$LOADGEN" --port="$ROUTER_PORT" --requests=60 --senders=2 \
  --unique --seed=21 --min-success-rate=0.99 \
  --overload --min-typed-rate=0.99 --min-stale=30 ||
  fail "stale run: expired entries were not served stale under pressure"

# --- phase P: rank 0 is shed first, as typed frames -----------------------
# 4 requests from 1 sender stay under the breaker's 4-sample minimum, so
# every refusal reaches the wire as a typed overloaded frame (a 5th
# request would be eaten by the client's own breaker instead).
"$LOADGEN" --port="$B1_PORT" --requests=4 --senders=1 --retries=1 \
  --unique --seed=777 --priority=0 --min-success-rate=0.0 \
  --overload --min-typed-rate=0.99 ||
  fail "shed probe: priority-0 requests were not answered with typed sheds"

SHED=$(backend_counter "$B1_PORT" shed)
[ "$SHED" -ge 1 ] ||
  fail "backend 1 stats reported no shed requests (shed=$SHED)"
STALE=$(( $(backend_counter "$B1_PORT" stale_served) \
        + $(backend_counter "$B2_PORT" stale_served) ))
BOUND=$(( $(backend_counter "$B1_PORT" bound_served) \
        + $(backend_counter "$B2_PORT" bound_served) ))
[ "$STALE" -ge 1 ] || fail "backends reported stale_served=0"
[ "$BOUND" -ge 1 ] || fail "backends reported bound_served=0"

# --- phase D: one backend drains cleanly mid-overload ---------------------
# A paced 3s overload run; backend 2 gets SIGTERM ~0.7s in.  Its in-flight
# work must finish (exit 0) and the router must carry the rest of the run
# on backend 1 at >=99% success.
"$LOADGEN" --port="$ROUTER_PORT" --requests=900 --senders=8 --rps=300 \
  --unique --seed=31 --min-success-rate=0.99 \
  --overload --min-typed-rate=0.99 > "$DIR/overload_drain_out.$$" 2>&1 &
LG_PID=$!
smoke_track "$LG_PID"
sleep 0.7

kill -TERM "$B2_PID"
B2_STATUS=0
wait "$B2_PID" || B2_STATUS=$?
smoke_untrack "$B2_PID"
[ "$B2_STATUS" -eq 0 ] ||
  fail "backend 2 exited $B2_STATUS on SIGTERM mid-overload"

LG_STATUS=0
wait "$LG_PID" || LG_STATUS=$?
smoke_untrack "$LG_PID"
[ "$LG_STATUS" -eq 0 ] || {
  cat "$DIR/overload_drain_out.$$" >&2
  fail "drain run exited $LG_STATUS (success/typed-rate floor violated)"
}

# --- clean drain -----------------------------------------------------------
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || fail "router exited nonzero after SIGTERM"
smoke_untrack "$ROUTER_PID"
kill -TERM "$B1_PID"
wait "$B1_PID" || fail "backend 1 exited nonzero after SIGTERM"
smoke_untrack "$B1_PID"
rm -f "$B1_PORT_FILE" "$B2_PORT_FILE" "$ROUTER_PORT_FILE" \
  "$DIR/overload_router_stderr.$$" "$DIR/overload_drain_out.$$"

echo "overload_smoke: ok (ladder walked exact->bound->stale->shed," \
  "stale=$STALE bound=$BOUND shed=$SHED, mid-overload drain clean)"
