// xbar_router — fault-tolerant front tier over an xbar_serve fleet.
//
//   xbar_router --backend=HOST:PORT [--backend=HOST:PORT ...]
//               [--host=127.0.0.1] [--port=0] [--threads=N] [--queue=N]
//               [--port-file=PATH] [--vnodes=N] [--load-factor=C]
//               [--probe-interval-ms=MS] [--probe-timeout-ms=MS]
//               [--suspect-after=N] [--eject-after=N] [--readmit-after=N]
//               [--hedge-quantile=Q] [--hedge-cold-ms=MS] [--no-hedge]
//               [--connect-timeout-ms=MS] [--request-timeout-ms=MS]
//               [--pool-idle=N] [--seed=N]
//
// Speaks the exact NDJSON protocol of xbar_serve on both sides, so
// xbar_client and xbar_loadgen work against it unchanged.  Cacheable
// methods (solve/revenue/sweep/batch) are placed by consistent hashing
// with bounded loads on the request's canonical fingerprint, so each
// backend's caches stay hot on a stable key range; ping/stats/health are
// answered locally (the router's own stats/health — probe a backend
// directly for its view).  Backends are health-probed on a jittered
// schedule and move healthy -> suspect -> ejected on consecutive
// failures, readmitted after consecutive probe successes.  Slow primaries
// are hedged after the observed latency quantile; failures fail over down
// the placement plan; exhaustion sheds a typed "overloaded" frame.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish accepted
// connections (including hedge stragglers), print a final stats line to
// stderr, exit 0.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/error.hpp"
#include "report/args.hpp"
#include "router/router.hpp"
#include "service/signal.hpp"

namespace {

using namespace xbar;

int usage() {
  std::cerr
      << "usage: xbar_router --backend=HOST:PORT [--backend=... ...]\n"
         "                   [--host=ADDR] [--port=N] [--threads=N]\n"
         "                   [--queue=N] [--port-file=PATH]\n"
         "                   [--vnodes=N] [--load-factor=C]\n"
         "                   [--probe-interval-ms=MS] "
         "[--probe-timeout-ms=MS]\n"
         "                   [--suspect-after=N] [--eject-after=N]\n"
         "                   [--readmit-after=N] [--hedge-quantile=Q]\n"
         "                   [--hedge-cold-ms=MS] [--no-hedge]\n"
         "                   [--connect-timeout-ms=MS]\n"
         "                   [--request-timeout-ms=MS] [--pool-idle=N]\n"
         "                   [--seed=N]\n"
         "Routes the xbar_serve NDJSON protocol across a fleet: consistent\n"
         "hashing on the request fingerprint, health-probe ejection and\n"
         "readmission, hedged requests, failover, typed overload shedding.\n"
         "SIGTERM/SIGINT drain gracefully.\n";
  return 1;
}

/// Write the bound port atomically (tmp + rename), matching xbar_serve.
void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      raise(ErrorKind::kIo, "cannot write port file '" + tmp + "'");
    }
    out << port << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    raise(ErrorKind::kIo, "cannot rename port file into '" + path + "'");
  }
}

router::BackendAddress parse_backend(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    raise(ErrorKind::kUsage,
          "--backend expects HOST:PORT, got '" + spec + "'");
  }
  router::BackendAddress address;
  address.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long value = std::strtoul(port.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    raise(ErrorKind::kUsage,
          "--backend port must be 1..65535, got '" + port + "'");
  }
  address.port = static_cast<std::uint16_t>(value);
  return address;
}

}  // namespace

int main(int argc, char** argv) {
  const report::Args args(argc, argv);
  if (args.has("help")) {
    return usage();
  }
  try {
    router::RouterConfig config;
    for (const std::string& spec : args.get_all("backend")) {
      config.backends.push_back(parse_backend(spec));
    }
    if (config.backends.empty()) {
      std::cerr << "error: at least one --backend=HOST:PORT is required\n";
      return usage();
    }
    if (const auto host = args.get("host")) {
      config.host = *host;
    }
    config.port = static_cast<std::uint16_t>(args.get_unsigned("port", 0));
    config.workers = args.get_unsigned("threads", 0);
    config.queue_capacity = args.get_unsigned("queue", 128);
    config.ring.vnodes = args.get_unsigned("vnodes", 64);
    config.ring.load_factor = args.get_double("load-factor", 1.25);
    config.membership.probe_interval_seconds =
        args.get_double("probe-interval-ms", 250.0) * 1e-3;
    config.probe_timeout_seconds =
        args.get_double("probe-timeout-ms", 250.0) * 1e-3;
    config.membership.suspect_after =
        static_cast<unsigned>(args.get_unsigned("suspect-after", 1));
    config.membership.eject_after =
        static_cast<unsigned>(args.get_unsigned("eject-after", 3));
    config.membership.readmit_after =
        static_cast<unsigned>(args.get_unsigned("readmit-after", 2));
    config.hedge.enabled = !args.has("no-hedge");
    config.hedge.quantile = args.get_double("hedge-quantile", 0.9);
    config.hedge.cold_delay_seconds =
        args.get_double("hedge-cold-ms", 50.0) * 1e-3;
    config.backend_client.connect_timeout_seconds =
        args.get_double("connect-timeout-ms", 1000.0) * 1e-3;
    config.backend_client.request_timeout_seconds =
        args.get_double("request-timeout-ms", 5000.0) * 1e-3;
    config.pool_max_idle = args.get_unsigned("pool-idle", 2);
    config.seed = args.get_unsigned("seed", 1);

    service::install_drain_signals();

    router::Router router(std::move(config));
    router.start();
    if (const auto path = args.get("port-file")) {
      write_port_file(*path, router.port());
    }
    std::cout << "xbar_router listening on "
              << args.get("host").value_or("127.0.0.1") << ':'
              << router.port() << std::endl;

    const int signo = service::wait_for_drain_signal();
    std::cerr << "xbar_router: signal " << signo << ", draining\n";
    router.request_drain();
    router.wait();

    const router::RouterStatsSnapshot s = router.stats();
    std::cerr << "xbar_router: drained, uptime " << s.uptime_seconds
              << "s — requests=" << s.requests_total
              << " routed_ok=" << s.routed_ok
              << " local_ok=" << s.local_ok
              << " local_errors=" << s.local_errors
              << " relay_rejections=" << s.relay_rejections
              << " failovers=" << s.failovers << " shed=" << s.shed
              << " hedges=" << s.hedges_launched << "/" << s.hedges_won
              << "w/" << s.hedges_lost << "l"
              << " ejections=" << s.ejections
              << " readmissions=" << s.readmissions << "\n";
    return 0;
  } catch (const xbar::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
