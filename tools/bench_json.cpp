// Writes BENCH_algorithms.json — the repo's committed perf record for the
// sweep engine and the Algorithm 1 kernel.
//
//   build/tools/bench_json [output-path]        (default BENCH_algorithms.json)
//
// Two claims are recorded:
//   1. Multi-point sweeps: the 32-point load sweep at N = 128 through the
//      sweep engine vs the pre-engine serial idiom (fresh kAuto solve per
//      point), cold and warm.
//   2. Single solves: BM_Algorithm1_SizeSweep's model family on the default
//      backend, compared against the seed-commit numbers measured on the
//      same machine before the kernel rewrite.
//   3. Roofline: the dynamic-scaling lane kernel per N — cells/s, bytes per
//      cell, effective GFLOP/s and GB/s, from the kernel's per-cell op
//      counts (see bench/perf_algorithms.cpp).
//   4. Batched multi-scenario solves: 16 same-dims scenarios through one
//      lane-interleaved traversal vs 16 sequential solver builds.
//   5. Fabric models: the speedup-2 scaled solve vs the plain solve at the
//      same physical size, and the priority CTMC at brute-force scale.
//   6. Advisor fit: streaming-estimator ingest throughput over a synthetic
//      Poisson trace, plus the fit + candidate-solve recommendation cycle
//      cold (fresh advisor) and warm (unchanged fit, solver-cache hit).
//   7. Overload ladder: an in-process server on the loopback driven at
//      1x/3x/10x its sustainable solve rate, with and without the adaptive
//      overload controller — admitted RPS and the CO-corrected p99 of
//      admitted requests per cell.
//
// Medians of repeated runs, monotonic clock.  Every baseline is re-measured
// in the same process as the number it is compared against, so each
// comparison is same-machine, same-load, same-flags.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.hpp"
#include "client/open_loop.hpp"
#include "core/algorithm1.hpp"
#include "core/algorithm1_batch.hpp"
#include "core/model.hpp"
#include "core/priority.hpp"
#include "core/solver.hpp"
#include "dist/rng.hpp"
#include "service/connection.hpp"
#include "service/server.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace xbar;

double median_ms(const std::vector<double>& samples) {
  std::vector<double> s = samples;
  std::sort(s.begin(), s.end());
  const std::size_t m = s.size() / 2;
  return s.size() % 2 == 1 ? s[m] : 0.5 * (s[m - 1] + s[m]);
}

template <typename Fn>
double time_ms(Fn&& fn, int repetitions) {
  std::vector<double> samples;
  fn();  // warmup
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return median_ms(samples);
}

std::vector<sweep::ScenarioPoint> load_sweep_points(unsigned n,
                                                    std::size_t count) {
  std::vector<sweep::ScenarioPoint> points;
  for (std::size_t i = 0; i < count; ++i) {
    const double beta = 0.0001 * static_cast<double>(i);
    points.push_back(
        {core::CrossbarModel(core::Dims::square(n),
                             {core::TrafficClass::bursty("b", 0.0024, beta)}),
         std::nullopt});
  }
  return points;
}

// Same family as BM_Algorithm1_SizeSweep (two classes, Poisson + bursty).
core::CrossbarModel size_sweep_model(unsigned n) {
  std::vector<core::TrafficClass> classes;
  classes.push_back(core::TrafficClass::poisson("p0", 0.01, 1));
  classes.push_back(core::TrafficClass::bursty("b1", 0.012, 0.005, 2));
  return core::CrossbarModel(core::Dims::square(n), std::move(classes));
}

// --- Overload ladder (section 7) -----------------------------------------

struct LadderRow {
  double load_x = 0.0;
  bool controller = false;
  double offered_rps = 0.0;
  double admitted_rps = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t degraded = 0;  // bound-only/stale among the admitted
  std::uint64_t refused = 0;   // typed shed/limited (or lost) answers
  double corrected_p50_ms = 0.0;
  double corrected_p99_ms = 0.0;
};

// Every request is a distinct cold solve (rho keyed off a global request
// index), so the result cache never flattens the load.
std::string ladder_request(std::uint64_t id, double rho) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                R"({"method":"solve","id":%llu,"scenario":{"switch":)"
                R"({"inputs":64},"classes":[{"name":"voice","shape":)"
                R"("poisson","rho":%.6f}]}})",
                static_cast<unsigned long long>(id), rho);
  return std::string(buffer);
}

double quantile_ms(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  const std::size_t k = std::min(
      v.size() - 1,
      static_cast<std::size_t>(static_cast<double>(v.size()) * q));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k] * 1e3;
}

// Drives one (load, controller) cell: 64 paced open-loop senders against a
// fresh in-process server, one connection per request (the server is
// thread-per-connection, so its bounded accept queue and the adaptive
// admission limit only see load that arrives as connections).  Latency is
// CO-corrected from each request's *intended* arrival on the schedule
// (client/open_loop.hpp) — a sender stuck behind a slow answer books the
// backlog it suffered, not just the service time.
LadderRow drive_ladder_cell(double load_x, bool with_controller,
                            double offered_rps, double target_seconds,
                            std::uint64_t key_base) {
  service::ServerConfig config;
  config.workers = 4;
  config.queue_capacity = 64;
  config.idle_poll_seconds = 0.05;
  if (with_controller) {
    service::OverloadConfig overload;
    overload.target_p99_seconds = target_seconds;
    overload.window = 32;
    overload.min_limit = 16;
    // Start the concurrency limit at the queue bound: the ladder (pressure
    // from queue occupancy) gets first crack at overload, and the AIMD
    // loop then trims the limit only if degraded serving still misses the
    // latency target.
    overload.initial_limit = 64;
    overload.max_limit = 256;
    config.overload = overload;
  }
  service::Server server(config);
  server.start();

  // Enough senders that an overloaded cell can actually pile connections
  // into the accept queue (closed-loop senders cap in-flight at the
  // sender count, so 8 senders could never fill a 64-slot queue).
  constexpr std::uint64_t kSenders = 64;
  constexpr std::uint64_t kTotal = 2000;
  std::vector<std::vector<double>> corrected(kSenders);
  std::vector<std::uint64_t> admitted(kSenders, 0);
  std::vector<std::uint64_t> degraded(kSenders, 0);
  std::vector<std::uint64_t> refused(kSenders, 0);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (std::uint64_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (std::uint64_t i = s; i < kTotal; i += kSenders) {
        const double intended =
            static_cast<double>(i) / offered_rps;
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(intended)));
        const std::uint64_t key = key_base + i;
        const std::string line = ladder_request(
            key, 0.05 + 1e-6 * static_cast<double>(key));
        const double sent =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        service::Socket socket = service::dial("127.0.0.1", server.port());
        std::string response;
        if (!socket.valid()) {
          ++refused[s];
          continue;
        }
        service::LineReader reader(socket.fd(), 1 << 20);
        if (!service::write_line(socket.fd(), line) ||
            reader.read_line(response) !=
                service::LineReader::Status::kLine) {
          ++refused[s];
          continue;
        }
        const double done =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (response.find("\"status\":\"ok\"") != std::string::npos) {
          ++admitted[s];
          if (response.find("\"degraded\"") != std::string::npos) {
            ++degraded[s];
          }
          corrected[s].push_back(
              client::open_loop_latency(intended, sent, done).corrected);
        } else {
          ++refused[s];
        }
      }
    });
  }
  for (std::thread& t : senders) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.stop();

  LadderRow row;
  row.load_x = load_x;
  row.controller = with_controller;
  row.offered_rps = offered_rps;
  std::vector<double> all;
  for (std::uint64_t s = 0; s < kSenders; ++s) {
    row.admitted += admitted[s];
    row.degraded += degraded[s];
    row.refused += refused[s];
    all.insert(all.end(), corrected[s].begin(), corrected[s].end());
  }
  row.admitted_rps =
      wall > 0.0 ? static_cast<double>(row.admitted) / wall : 0.0;
  row.corrected_p50_ms = quantile_ms(all, 0.50);
  row.corrected_p99_ms = quantile_ms(all, 0.99);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_algorithms.json";

  // --- 1. 32-point load sweep at N = 128. ---
  const auto points = load_sweep_points(128, 32);
  const double serial_ms = time_ms(
      [&] {
        for (const auto& p : points) {
          volatile double sink = core::solve(p.model).per_class[0].blocking;
          (void)sink;
        }
      },
      5);
  const double cold_ms = time_ms(
      [&] {
        sweep::SweepRunner runner;
        volatile double sink = runner.run(points)[0].per_class[0].blocking;
        (void)sink;
      },
      5);
  sweep::SweepOptions warm_options;
  warm_options.cache_capacity = 64;
  sweep::SweepRunner warm_runner(warm_options);
  (void)warm_runner.run(points);
  const double warm_ms = time_ms(
      [&] {
        volatile double sink =
            warm_runner.run(points)[0].per_class[0].blocking;
        (void)sink;
      },
      9);

  // --- 2. Dimension sweep: 32 sizes, one shared grid vs grid-per-size. ---
  const core::CrossbarModel dim_model(
      core::Dims::square(128),
      {core::TrafficClass::bursty("b", 0.0024, 0.0012)});
  std::vector<core::Dims> sizes;
  for (unsigned n = 4; n <= 128; n += 4) {
    sizes.push_back(core::Dims::square(n));
  }
  const double dim_serial_ms = time_ms(
      [&] {
        for (const auto d : sizes) {
          volatile double sink =
              core::solve(dim_model.with_dims_same_tuple_rates(d))
                  .per_class[0]
                  .blocking;
          (void)sink;
        }
      },
      5);
  const double dim_reuse_ms = time_ms(
      [&] {
        sweep::SweepRunner runner;
        volatile double sink =
            runner.dimension_sweep(dim_model, sizes)[0].per_class[0].blocking;
        (void)sink;
      },
      5);

  // --- 3. Single solves vs the seed commit (same machine, same family). ---
  struct SeedRow {
    unsigned n;
    double seed_ns;  // BM_Algorithm1_SizeSweep at commit 22b8eae
  };
  const SeedRow seed_rows[] = {{8, 6494.0},     {16, 21582.0},
                               {32, 92813.0},   {64, 458472.0},
                               {128, 1877914.0}, {256, 7792334.0}};
  struct SolveRow {
    unsigned n;
    double seed_ns;
    double now_ns;
  };
  std::vector<SolveRow> solve_rows;
  for (const auto& row : seed_rows) {
    const auto model = size_sweep_model(row.n);
    const int reps = row.n >= 128 ? 5 : 9;
    const double ms = time_ms(
        [&] {
          core::Algorithm1Solver solver(model);
          volatile double sink = solver.solve().per_class[0].blocking;
          (void)sink;
        },
        reps);
    solve_rows.push_back({row.n, row.seed_ns, ms * 1e6});
  }

  // --- 4. Roofline: dynamic-scaling lane kernel per N. ---
  //
  // Per interior cell of the two-class family (R1 = 1 Poisson a=1, R2 = 1
  // bursty a=2): phase V does 3 flops / 3 double accesses per bursty class,
  // phase A 2 flops / 3 accesses per class, phase B 2 flops / 2 accesses,
  // plus the acc clear — flops = 2 + 2 R1 + 5 R2 = 9, accesses =
  // 3 + 3 R1 + 6 R2 = 12 doubles (96 bytes).
  constexpr double kFlopsPerCell = 9.0;
  constexpr double kBytesPerCell = 96.0;
  const core::Algorithm1Options fast_opts{
      core::Algorithm1Backend::kDoubleDynamicScaling};
  struct RooflineRow {
    unsigned n;
    double ns;
    double cells;
  };
  std::vector<RooflineRow> roofline_rows;
  for (const unsigned n : {32u, 64u, 128u, 256u}) {
    const auto model = size_sweep_model(n);
    const int reps = n >= 128 ? 5 : 9;
    const double ms = time_ms(
        [&] {
          core::Algorithm1Solver solver(model, fast_opts);
          volatile double sink = solver.solve().per_class[0].blocking;
          (void)sink;
        },
        reps);
    roofline_rows.push_back(
        {n, ms * 1e6, static_cast<double>(n + 1) * (n + 1)});
  }

  // --- 5. Batched multi-scenario solves: 16 lanes at N = 128. ---
  //
  // Two baselines.  `sequential_16_default_ms` is what the serving and
  // sweep paths did before the batch API existed: one default-spec solve
  // per scenario (kAuto backend).  `sequential_16_fast_ms` holds the
  // backend fixed at the batch kernel's own dynamic-scaling flavor, so it
  // isolates what the shared traversal alone buys over a loop of
  // identical single solves.
  std::vector<core::CrossbarModel> lanes;
  for (std::size_t s = 0; s < 16; ++s) {
    const double bump = 0.0004 * static_cast<double>(s);
    lanes.push_back(core::CrossbarModel(
        core::Dims::square(128),
        {core::TrafficClass::poisson("p0", 0.01 + bump, 1),
         core::TrafficClass::bursty("b1", 0.012 + bump, 0.005, 2)}));
  }
  const double batch_seq_default_ms = time_ms(
      [&] {
        for (const auto& m : lanes) {
          core::Algorithm1Solver solver(m);
          volatile double sink = solver.solve().per_class[0].blocking;
          (void)sink;
        }
      },
      7);
  const double batch_seq_fast_ms = time_ms(
      [&] {
        for (const auto& m : lanes) {
          core::Algorithm1Solver solver(m, fast_opts);
          volatile double sink = solver.solve().per_class[0].blocking;
          (void)sink;
        }
      },
      7);
  const double batch_ms = time_ms(
      [&] {
        core::Algorithm1BatchSolver batch(lanes, fast_opts);
        volatile double sink = 0.0;
        for (std::size_t s = 0; s < batch.batch_size(); ++s) {
          sink = batch.solve(s).per_class[0].blocking;
        }
        (void)sink;
      },
      7);

  // --- 6. Fabric models: speedup-s scaled solve and the priority CTMC. ---
  //
  // speedup-2 at N = 64 runs the same kernel on the 128x128 virtual grid,
  // so its cost should track the plain N = 128 solve; the priority CTMC is
  // exact over Γ(N) and only feasible at brute-force scales.
  const auto fabric_model = size_sweep_model(64);
  const core::SolverSpec speedup_spec =
      core::SolverSpec::parse("algorithm1/double-dynamic@speedup-2");
  const double plain_n64_ms = time_ms(
      [&] {
        core::Algorithm1Solver solver(fabric_model, fast_opts);
        volatile double sink = solver.solve().per_class[0].blocking;
        (void)sink;
      },
      7);
  const double speedup2_n64_ms = time_ms(
      [&] {
        volatile double sink = core::solve_result(fabric_model, speedup_spec)
                                   .measures.per_class[0]
                                   .blocking;
        (void)sink;
      },
      7);
  const auto priority_model = size_sweep_model(6);
  std::size_t priority_states = 0;
  const double priority_n6_ms = time_ms(
      [&] {
        core::PriorityCtmcSolver solver(priority_model);
        priority_states = solver.num_states();
        volatile double sink = solver.solve().per_class[0].blocking;
        (void)sink;
      },
      7);

  // --- 7. Advisor: estimator ingest + recommendation cycle. ---
  //
  // A 50k-event Poisson trace (lambda = 20, mu = 1) pre-generated once;
  // ingest is re-run on a fresh estimator per rep.  The cold cycle is what
  // a drift refit costs end to end (fresh advisor, full ingest + fit +
  // candidate solves over {8, 16, 32, 64}); the warm cycle repeats
  // solve_now() with an unchanged fit, so every candidate hits the
  // advisor's solver cache — the steady-state advise cost.
  std::vector<advisor::ObservedEvent> trace;
  {
    dist::Xoshiro256 rng(2026);
    double t = 0.0;
    trace.reserve(50000);
    for (std::size_t i = 0; i < 50000; ++i) {
      t += rng.exponential(20.0);
      advisor::ObservedEvent e;
      e.class_name = "bench";
      e.t = t;
      e.hold = rng.exponential(1.0);
      trace.push_back(e);
    }
  }
  advisor::AdvisorConfig advisor_config;
  advisor_config.candidate_sizes = {8, 16, 32, 64};
  const double ingest_ms = time_ms(
      [&] {
        advisor::TrafficEstimator est(advisor_config.estimator);
        for (const auto& e : trace) {
          est.observe(e);
        }
        volatile double sink = est.fitted()[0].arrival_rate;
        (void)sink;
      },
      7);
  const double advisor_cold_ms = time_ms(
      [&] {
        advisor::Advisor adv(advisor_config);
        (void)adv.observe_batch(trace);
        adv.solve_now();
        volatile double sink =
            static_cast<double>(adv.recommendation().recommended_size);
        (void)sink;
      },
      7);
  advisor::Advisor warm_advisor(advisor_config);
  (void)warm_advisor.observe_batch(trace);
  warm_advisor.solve_now();
  const double advisor_warm_ms = time_ms(
      [&] {
        warm_advisor.solve_now();
        volatile double sink =
            static_cast<double>(warm_advisor.recommendation().recommended_size);
        (void)sink;
      },
      9);

  // --- 8. Overload ladder: admitted RPS / p99 at 1x/3x/10x load. ---
  //
  // The sustainable rate is calibrated in-process: one warm connection
  // measures the round-trip of a cold solve, and 1x is set to one core's
  // worth of that work (1/rtt).  10x is then structurally unsustainable
  // for 8 closed-loop senders unless the controller degrades answers, so
  // the with/without comparison is machine-independent in shape: without
  // the controller the CO-corrected p99 books the schedule backlog;
  // with it the ladder's bound-only answers keep the senders on schedule.
  double ladder_rtt_seconds = 0.0;
  {
    service::ServerConfig calibration_config;
    calibration_config.workers = 4;
    calibration_config.idle_poll_seconds = 0.05;
    service::Server calibration(calibration_config);
    calibration.start();
    std::vector<double> rtts;
    for (std::uint64_t i = 0; i < 9; ++i) {
      // Connection per request, like the cells: the calibrated unit of
      // work is connect + cold solve + response.
      const std::string line =
          ladder_request(900000 + i, 0.9 + 1e-6 * static_cast<double>(i));
      const auto t0 = std::chrono::steady_clock::now();
      service::Socket socket =
          service::dial("127.0.0.1", calibration.port());
      service::LineReader reader(socket.fd(), 1 << 20);
      std::string response;
      if (!socket.valid() || !service::write_line(socket.fd(), line) ||
          reader.read_line(response) != service::LineReader::Status::kLine) {
        break;
      }
      rtts.push_back(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
    }
    calibration.stop();
    ladder_rtt_seconds = rtts.empty() ? 1e-4 : median_ms(rtts);
  }
  const double ladder_base_rps = 1.0 / ladder_rtt_seconds;
  const double ladder_target_seconds = 4.0 * ladder_rtt_seconds;
  std::vector<LadderRow> ladder_rows;
  {
    std::uint64_t key_base = 0;
    for (const double load : {1.0, 3.0, 10.0}) {
      for (const bool controller : {false, true}) {
        ladder_rows.push_back(drive_ladder_cell(load, controller,
                                                load * ladder_base_rps,
                                                ladder_target_seconds,
                                                key_base));
        key_base += 10000;
      }
    }
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::perror("bench_json: fopen");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"description\": \"Committed perf record: sweep engine + "
               "Algorithm 1 kernel; medians, steady_clock, same process\",\n");
  std::fprintf(out, "  \"load_sweep_n128_32pt\": {\n");
  std::fprintf(out, "    \"serial_kauto_ms\": %.3f,\n", serial_ms);
  std::fprintf(out, "    \"runner_cold_ms\": %.3f,\n", cold_ms);
  std::fprintf(out, "    \"runner_warm_ms\": %.3f,\n", warm_ms);
  std::fprintf(out, "    \"speedup_cold\": %.2f,\n", serial_ms / cold_ms);
  std::fprintf(out, "    \"speedup_warm\": %.2f\n", serial_ms / warm_ms);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"dimension_sweep_n128_32sizes\": {\n");
  std::fprintf(out, "    \"serial_grid_per_size_ms\": %.3f,\n", dim_serial_ms);
  std::fprintf(out, "    \"shared_grid_ms\": %.3f,\n", dim_reuse_ms);
  std::fprintf(out, "    \"speedup\": %.2f\n", dim_serial_ms / dim_reuse_ms);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"algorithm1_single_solve\": [\n");
  for (std::size_t i = 0; i < solve_rows.size(); ++i) {
    const auto& row = solve_rows[i];
    std::fprintf(out,
                 "    {\"n\": %u, \"seed_ns\": %.0f, \"now_ns\": %.0f, "
                 "\"ratio_seed_over_now\": %.2f}%s\n",
                 row.n, row.seed_ns, row.now_ns, row.seed_ns / row.now_ns,
                 i + 1 < solve_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"algorithm1_roofline_dynamic_scaling\": [\n");
  for (std::size_t i = 0; i < roofline_rows.size(); ++i) {
    const auto& row = roofline_rows[i];
    const double secs = row.ns * 1e-9;
    std::fprintf(out,
                 "    {\"n\": %u, \"now_ns\": %.0f, \"cells\": %.0f, "
                 "\"cells_per_s\": %.3e, \"flops_per_cell\": %.0f, "
                 "\"bytes_per_cell\": %.0f, \"gflops\": %.2f, "
                 "\"gbytes_per_s\": %.2f}%s\n",
                 row.n, row.ns, row.cells, row.cells / secs, kFlopsPerCell,
                 kBytesPerCell, row.cells * kFlopsPerCell / secs * 1e-9,
                 row.cells * kBytesPerCell / secs * 1e-9,
                 i + 1 < roofline_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"batch_16_scenarios_n128\": {\n");
  std::fprintf(out, "    \"sequential_16_default_ms\": %.3f,\n",
               batch_seq_default_ms);
  std::fprintf(out, "    \"sequential_16_fast_ms\": %.3f,\n",
               batch_seq_fast_ms);
  std::fprintf(out, "    \"batched_one_traversal_ms\": %.3f,\n", batch_ms);
  std::fprintf(out, "    \"per_scenario_speedup\": %.2f,\n",
               batch_seq_default_ms / batch_ms);
  std::fprintf(out, "    \"same_backend_speedup\": %.2f\n",
               batch_seq_fast_ms / batch_ms);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"fabric_models\": {\n");
  std::fprintf(out, "    \"plain_n64_ms\": %.3f,\n", plain_n64_ms);
  std::fprintf(out, "    \"speedup2_n64_ms\": %.3f,\n", speedup2_n64_ms);
  std::fprintf(out, "    \"scaled_grid_cost_ratio\": %.2f,\n",
               speedup2_n64_ms / plain_n64_ms);
  std::fprintf(out, "    \"priority_ctmc_n6_ms\": %.3f,\n", priority_n6_ms);
  std::fprintf(out, "    \"priority_ctmc_n6_states\": %zu\n",
               priority_states);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"advisor_fit\": {\n");
  std::fprintf(out, "    \"trace_events\": %zu,\n", trace.size());
  std::fprintf(out, "    \"ingest_ms\": %.3f,\n", ingest_ms);
  std::fprintf(out, "    \"ingest_events_per_s\": %.3e,\n",
               static_cast<double>(trace.size()) / (ingest_ms * 1e-3));
  std::fprintf(out, "    \"cold_fit_solve_cycle_ms\": %.3f,\n",
               advisor_cold_ms);
  std::fprintf(out, "    \"warm_advise_cycle_ms\": %.3f\n", advisor_warm_ms);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"overload_ladder\": {\n");
  std::fprintf(out, "    \"calibrated_solve_rtt_ms\": %.3f,\n",
               ladder_rtt_seconds * 1e3);
  std::fprintf(out, "    \"base_rps\": %.0f,\n", ladder_base_rps);
  std::fprintf(out, "    \"target_p99_ms\": %.3f,\n",
               ladder_target_seconds * 1e3);
  std::fprintf(out, "    \"rows\": [\n");
  for (std::size_t i = 0; i < ladder_rows.size(); ++i) {
    const auto& row = ladder_rows[i];
    std::fprintf(out,
                 "      {\"load_x\": %.0f, \"controller\": %s, "
                 "\"offered_rps\": %.0f, \"admitted_rps\": %.0f, "
                 "\"admitted\": %llu, \"degraded\": %llu, "
                 "\"refused\": %llu, \"corrected_p50_ms\": %.3f, "
                 "\"corrected_p99_ms\": %.3f}%s\n",
                 row.load_x, row.controller ? "true" : "false",
                 row.offered_rps, row.admitted_rps,
                 static_cast<unsigned long long>(row.admitted),
                 static_cast<unsigned long long>(row.degraded),
                 static_cast<unsigned long long>(row.refused),
                 row.corrected_p50_ms, row.corrected_p99_ms,
                 i + 1 < ladder_rows.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s (load sweep: %.2fx cold, %.2fx warm; dim sweep: "
              "%.2fx; 16-lane batch: %.2fx vs default, %.2fx same-backend)\n",
              path.c_str(), serial_ms / cold_ms, serial_ms / warm_ms,
              dim_serial_ms / dim_reuse_ms, batch_seq_default_ms / batch_ms,
              batch_seq_fast_ms / batch_ms);
  return 0;
}
