#!/bin/sh
# Advisor smoke for xbar_serve --advise + xbar_loadgen --method=observe:
#   * start the server with the streaming capacity advisor enabled on an
#     ephemeral port (discovered via --port-file),
#   * stream a scripted two-phase connection trace (6x load shift at
#     t=120s of trace time) through the `observe` method,
#   * require the final `advise` frame to be confident, to have counted at
#     least one drift-triggered refit, and to recommend the largest
#     candidate size (the shifted load saturates the blocking SLO, so the
#     16x16 recommendation is the deterministic batch answer),
#   * SIGTERM the server and require a clean drain with exit 0.
#
# usage: advisor_smoke.sh <xbar_serve> <xbar_loadgen> <workdir>
# Any failure exits nonzero; the caller (ctest / CI) owns the timeout.
set -e

SERVE="$1"
LOADGEN="$2"
DIR="$3"

SMOKE_NAME=advisor_smoke
. "$(dirname "$0")/smoke_lib.sh"

mkdir -p "$DIR"
PORT_FILE="$DIR/advisor_port.$$"
rm -f "$PORT_FILE"

"$SERVE" --port=0 --threads=2 --port-file="$PORT_FILE" \
  --advise --advisor-sizes=4,8,12,16 --advisor-every=128 \
  --advisor-window-s=30 --advisor-min-events=40 &
PID=$!
smoke_track "$PID"

wait_for_file "$PORT_FILE" || fail "server never wrote $PORT_FILE"
PORT=$(cat "$PORT_FILE")

LG_STATUS=0
"$LOADGEN" --port="$PORT" --method=observe --observe-batch=64 --seed=7 \
  --phases="120:scale=1;240:scale=6" \
  --assert-min-refits=1 --assert-recommended=16 || LG_STATUS=$?

kill -TERM "$PID"
SERVE_STATUS=0
wait "$PID" || SERVE_STATUS=$?
smoke_untrack "$PID"
rm -f "$PORT_FILE"

[ "$LG_STATUS" -eq 0 ] || fail "loadgen exited $LG_STATUS"
[ "$SERVE_STATUS" -eq 0 ] || fail "server exited $SERVE_STATUS after SIGTERM"
echo "advisor_smoke: ok (scripted shift, refit counted, clean drain)"
