// xbar — command-line front end.
//
//   xbar solve    <scenario.ini>            exact measures
//   xbar revenue  <scenario.ini>            W(N), shadow costs, gradients
//   xbar simulate <scenario.ini>            discrete-event run vs analysis
//   xbar sweep    <scenario.ini> --sizes=4,8,16,...   blocking vs N (square)
//
// Scenario format: see src/config/scenario_file.hpp or examples/scenarios/.

#include <iostream>
#include <sstream>
#include <string>

#include "config/scenario_file.hpp"
#include "fabric/crossbar.hpp"
#include "core/revenue.hpp"
#include "core/solver.hpp"
#include "report/args.hpp"
#include "report/table.hpp"
#include "sim/replication.hpp"
#include "sim/traffic_pattern.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"

namespace {

using namespace xbar;

int usage() {
  std::cerr << "usage: xbar <solve|revenue|simulate|sweep> <scenario.ini> "
               "[--sizes=4,8,16]\n";
  return 2;
}

void print_measures(const core::CrossbarModel& model,
                    const core::Measures& measures) {
  report::Table table({"class", "shape", "a", "blocking", "concurrency",
                       "throughput"});
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const auto& cm = measures.per_class[r];
    table.add_row({model.classes()[r].name,
                   std::string(dist::to_string(
                       model.normalized(r).bpp().shape())),
                   report::Table::integer(model.normalized(r).bandwidth),
                   report::Table::num(cm.blocking, 6),
                   report::Table::num(cm.concurrency, 6),
                   report::Table::num(cm.throughput, 6)});
  }
  table.print(std::cout);
  std::cout << "utilization " << report::Table::num(measures.utilization, 4)
            << "   revenue W(N) " << report::Table::num(measures.revenue, 6)
            << "\n";
}

int cmd_solve(const config::Scenario& scenario) {
  print_measures(scenario.model, core::solve(scenario.model, scenario.solver));
  return 0;
}

int cmd_revenue(const config::Scenario& scenario) {
  const core::RevenueAnalyzer analyzer(scenario.model);
  const auto report = analyzer.analyze();
  print_measures(scenario.model, report.measures);
  std::cout << "\n";
  report::Table table({"class", "weight", "shadow cost", "dW/drho", "dW/dx",
                       "verdict"});
  for (std::size_t r = 0; r < scenario.model.num_classes(); ++r) {
    const auto& s = report.per_class[r];
    table.add_row({scenario.model.classes()[r].name,
                   report::Table::num(scenario.model.normalized(r).weight, 4),
                   report::Table::num(s.shadow_cost, 5),
                   report::Table::num(s.d_revenue_d_rho, 5),
                   report::Table::num(s.d_revenue_d_x, 5),
                   s.worth_admitting ? "admit more" : "cap it"});
  }
  table.print(std::cout);
  return 0;
}

int cmd_simulate(const config::Scenario& scenario) {
  const auto analytic = core::solve(scenario.model, scenario.solver);
  sim::ReplicationConfig cfg;
  cfg.replications = scenario.replications;
  cfg.sim = scenario.sim;
  const double hotspot = scenario.hotspot_fraction;

  sim::ReplicationResult result;
  if (hotspot > 0.0) {
    // Hot-spot runs need a per-simulator selector the replication layer
    // doesn't model; run the replications through the shared pool with
    // per-index result slots (deterministic for any thread count) and
    // aggregate afterwards.
    result.per_class.resize(scenario.model.num_classes());
    std::vector<sim::SimulationResult> runs(cfg.replications);
    sweep::ThreadPool::shared().parallel_for(
        cfg.replications, 0, [&](std::size_t rep, unsigned) {
          fabric::CrossbarFabric xbar_fabric(scenario.model.dims().n1,
                                             scenario.model.dims().n2);
          auto sim_cfg = cfg.sim;
          sim_cfg.seed =
              cfg.sim.seed + 0x9E3779B9u * (static_cast<unsigned>(rep) + 1);
          sim::Simulator simulator(scenario.model, xbar_fabric, sim_cfg);
          simulator.set_output_selector(
              sim::make_hotspot_selector(hotspot, 0));
          runs[rep] = simulator.run();
        });
    for (std::size_t r = 0; r < result.per_class.size(); ++r) {
      sim::BatchMeans bm;
      for (const auto& run : runs) {
        if (run.per_class[r].offered > 0) {
          bm.add(static_cast<double>(run.per_class[r].blocked) /
                 static_cast<double>(run.per_class[r].offered));
        }
      }
      result.per_class[r].call_congestion = bm.estimate();
    }
    for (const auto& run : runs) {
      result.total_events += run.events;
    }
    result.replications = cfg.replications;
  } else {
    result = sim::run_crossbar_replications(scenario.model, cfg);
  }

  report::Table table({"class", "analytic blocking", "sim call-cong", "CI"});
  for (std::size_t r = 0; r < scenario.model.num_classes(); ++r) {
    table.add_row(
        {scenario.model.classes()[r].name,
         report::Table::num(analytic.per_class[r].blocking, 5),
         report::Table::num(result.per_class[r].call_congestion.mean, 5),
         report::Table::num(result.per_class[r].call_congestion.half_width,
                            2)});
  }
  table.print(std::cout);
  std::cout << result.replications << " replications, "
            << result.total_events << " events"
            << (hotspot > 0.0
                    ? ", hotspot=" + report::Table::num(hotspot, 2) +
                          " (analytic column assumes uniform traffic)"
                    : "")
            << "\n";
  return 0;
}

int cmd_sweep(const config::Scenario& scenario, const report::Args& args) {
  const auto sizes_arg = args.get("sizes").value_or("4,8,16,32,64,128");
  std::vector<unsigned> sizes;
  std::stringstream ss(sizes_arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    sizes.push_back(static_cast<unsigned>(std::stoul(tok)));
  }

  std::vector<std::string> headers = {"N"};
  for (const auto& c : scenario.model.classes()) {
    headers.push_back(c.name);
  }
  report::Table table(headers);

  // Evaluate every size through the sweep engine, honoring the scenario's
  // solver choice (brute force stays on the direct path: it is a test
  // oracle, not a cached grid).
  std::vector<sweep::ScenarioPoint> points;
  points.reserve(sizes.size());
  for (const unsigned n : sizes) {
    std::vector<core::TrafficClass> classes(
        scenario.model.classes().begin(), scenario.model.classes().end());
    points.push_back({core::CrossbarModel(core::Dims::square(n),
                                          std::move(classes)),
                      std::nullopt});
  }
  sweep::SweepOptions options;
  switch (scenario.solver) {
    case core::SolverKind::kAlgorithm1:
      options.solver = sweep::SweepSolver::kAlgorithm1;
      break;
    case core::SolverKind::kAlgorithm2:
      options.solver = sweep::SweepSolver::kAlgorithm2;
      break;
    case core::SolverKind::kAuto:
      options.solver = sweep::SweepSolver::kAuto;
      break;
    case core::SolverKind::kBruteForce:
      options.solver = sweep::SweepSolver::kFast;  // overridden below
      break;
  }
  sweep::SweepRunner runner(options);
  std::vector<core::Measures> results;
  if (scenario.solver == core::SolverKind::kBruteForce) {
    results = runner.map<core::Measures>(
        points.size(), [&](std::size_t i, sweep::SolverCache&) {
          return core::solve(points[i].model, core::SolverKind::kBruteForce);
        });
  } else {
    results = runner.run(points);
  }

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row = {report::Table::integer(sizes[i])};
    for (const auto& cm : results[i].per_class) {
      row.push_back(report::Table::num(cm.blocking, 6));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  const xbar::report::Args args(argc, argv);
  try {
    const auto scenario = xbar::config::load_scenario(path);
    if (command == "solve") {
      return cmd_solve(scenario);
    }
    if (command == "revenue") {
      return cmd_revenue(scenario);
    }
    if (command == "simulate") {
      return cmd_simulate(scenario);
    }
    if (command == "sweep") {
      return cmd_sweep(scenario, args);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
