// xbar — command-line front end.
//
//   xbar solve    <scenario.ini>            exact measures
//   xbar revenue  <scenario.ini>            W(N), shadow costs, gradients
//   xbar simulate <scenario.ini>            discrete-event run vs analysis
//   xbar sweep    <scenario.ini> --sizes=4,8,16,...   blocking vs N (square)
//   xbar batch    <s1.ini> <s2.ini> ...     solve many scenarios in one go:
//                 scenarios sharing dimensions advance through a single
//                 batched grid traversal (one --solver spec for all;
//                 per-scenario timing with --verbose)
//
// Discovery:
//   xbar --list-solvers                      enumerate every valid --solver
//                 token: algorithms, algorithm1 backends, and fabrics
//
// Common flags:
//   --solver=SPEC   override the scenario's [solve] algorithm
//                   (auto|fast|algorithm1[/backend]|algorithm2|brute,
//                   optionally @crossbar|@speedup-<s>|@priority)
//   --verbose       print solve diagnostics (backend, fallback, rescales,
//                   cache hits, wall time)
//   --json          machine-readable output (solve and sweep)
//
// Sweep execution (sweep only):
//   --threads=N     bound sweep concurrency (results are bit-identical for
//                   every value; 1 = serial)
//
// Sweep fault tolerance (sweep only):
//   --max-failures=N    cancel the sweep once N points fail terminally
//   --deadline=SECONDS  wall-clock budget; unfinished points report cancelled
//   --checkpoint=FILE   write a resumable JSON checkpoint as points complete
//   --resume=FILE       skip points already completed in FILE (bit-identical)
//   --inject=SPEC       deterministic fault injection for testing/demos:
//                       comma-separated POINT:ACTION[:SECONDS], ACTION in
//                       throw|nan|delay (e.g. --inject=2:throw,5:nan)
//
// Exit codes: 0 = every requested point produced measures; 2 = the sweep
// degraded gracefully (some points failed or were cancelled — output and
// checkpoint still cover the rest); 1 = fatal (bad usage, unreadable
// scenario, or any error outside per-point isolation).
//
// All failures surface as typed xbar::Error diagnostics naming the raising
// source file:line.
//
// Scenario format: see src/config/scenario_file.hpp or examples/scenarios/.

#include <algorithm>
#include <charconv>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "config/scenario_file.hpp"
#include "core/error.hpp"
#include "core/revenue.hpp"
#include "core/solver.hpp"
#include "report/args.hpp"
#include "report/json_writer.hpp"
#include "report/solve_json.hpp"
#include "report/table.hpp"
#include "sim/replication.hpp"
#include "sim/traffic_pattern.hpp"
#include "sweep/checkpoint.hpp"
#include "sweep/fault_injector.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace xbar;

int usage() {
  std::cerr << "usage: xbar <solve|revenue|simulate|sweep> <scenario.ini>\n"
               "       xbar batch <s1.ini> <s2.ini> ... [--solver=SPEC] "
               "[--verbose] [--json]\n"
               "       xbar --list-solvers\n"
               "            [--solver=SPEC] [--verbose] [--json]\n"
               "            [--sizes=4,8,16] [--threads=N]   (sweep only)\n"
               "            [--max-failures=N] [--deadline=SECONDS]\n"
               "            [--checkpoint=FILE] [--resume=FILE]\n"
               "            [--inject=POINT:throw|nan|delay[:SECONDS],...]\n"
               "SPEC: auto|fast|algorithm1[/scaled|/double-dynamic|"
               "/long-double|/double-raw|/log-domain]|algorithm2|brute\n"
               "      optionally @crossbar|@speedup-<s>|@priority "
               "(s in [2, 16])\n"
               "exit: 0 complete, 2 partial (failed/cancelled points), "
               "1 fatal\n";
  return 1;
}

// `xbar --list-solvers`: enumerate every token SolverSpec::parse accepts so
// scripts can discover the spec grammar without scraping usage text.  Tokens
// come from the same to_string/registry functions the parser round-trips
// through, so this listing cannot drift from the grammar.
int cmd_list_solvers() {
  std::cout << "solver spec: ALGORITHM[/BACKEND][@FABRIC]\n\n";
  report::Table algorithms({"algorithm", "notes"});
  algorithms.add_row({std::string(core::to_string(
                          core::SolverAlgorithm::kAuto)),
                      "pick per model size (default)"});
  algorithms.add_row({std::string(core::to_string(
                          core::SolverAlgorithm::kFast)),
                      "auto with double-dynamic fast path"});
  algorithms.add_row({std::string(core::to_string(
                          core::SolverAlgorithm::kAlgorithm1)),
                      "Q-grid convolution (takes /BACKEND)"});
  algorithms.add_row({std::string(core::to_string(
                          core::SolverAlgorithm::kAlgorithm2)),
                      "ratio recursion"});
  algorithms.add_row({std::string(core::to_string(
                          core::SolverAlgorithm::kBruteForce)),
                      "direct state-space sum (small models)"});
  algorithms.print(std::cout);
  std::cout << "\n";
  report::Table backends({"algorithm1 backend", "notes"});
  backends.add_row({std::string(core::to_string(
                        core::NumericBackend::kScaledFloat)),
                    "scaled fixed-point grid (default)"});
  backends.add_row({std::string(core::to_string(
                        core::NumericBackend::kDoubleDynamicScaling)),
                    "double with dynamic rescaling"});
  backends.add_row({std::string(core::to_string(
                        core::NumericBackend::kLongDouble)),
                    "extended precision"});
  backends.add_row({std::string(core::to_string(
                        core::NumericBackend::kDoubleRaw)),
                    "raw double (overflow-prone; testing)"});
  backends.add_row({std::string(core::to_string(
                        core::NumericBackend::kLogDomain)),
                    "log-domain accumulation"});
  backends.print(std::cout);
  std::cout << "\n";
  report::Table fabrics({"fabric", "example", "notes"});
  for (const core::FabricInfo& info : core::fabric_registry()) {
    fabrics.add_row({std::string(info.grammar), std::string(info.example),
                     std::string(info.summary)});
  }
  fabrics.print(std::cout);
  std::cout << "\nexamples: --solver=auto  --solver=algorithm1/log-domain"
               "  --solver=fast@speedup-2  --solver=auto@priority\n";
  return 0;
}

/// The scenario's solver, unless --solver overrides it.
core::SolverSpec effective_solver(const config::Scenario& scenario,
                                  const report::Args& args) {
  if (const auto text = args.get("solver")) {
    return core::SolverSpec::parse(*text);
  }
  return scenario.solver;
}

std::string dims_text(core::Dims d) {
  return std::to_string(d.n1) + "x" + std::to_string(d.n2);
}

void print_diagnostics(const core::SolveDiagnostics& d, std::ostream& os) {
  os << "solver: requested=" << core::to_string(d.requested)
     << " resolved=" << core::to_string(d.algorithm)
     << " backend=" << core::to_string(d.backend)
     << " fabric=" << d.fabric.to_string()
     << " fallback=" << (d.fast_fallback ? "yes" : "no")
     << " rescales=" << d.rescales << " grid=" << dims_text(d.grid)
     << " eval=" << dims_text(d.evaluated_at)
     << " cache=" << (d.cache_hit ? "hit" : "miss") << " wall="
     << report::Table::num(d.wall_seconds * 1e3, 3) << "ms";
  if (!d.escalation.empty()) {
    os << " escalation=";
    for (std::size_t i = 0; i < d.escalation.size(); ++i) {
      os << (i == 0 ? "" : "->") << core::to_string(d.escalation[i]);
    }
  }
  os << "\n";
}

void print_measures(const core::CrossbarModel& model,
                    const core::Measures& measures) {
  report::Table table({"class", "shape", "a", "blocking", "concurrency",
                       "throughput"});
  for (std::size_t r = 0; r < model.num_classes(); ++r) {
    const auto& cm = measures.per_class[r];
    table.add_row({model.classes()[r].name,
                   std::string(dist::to_string(
                       model.normalized(r).bpp().shape())),
                   report::Table::integer(model.normalized(r).bandwidth),
                   report::Table::num(cm.blocking, 6),
                   report::Table::num(cm.concurrency, 6),
                   report::Table::num(cm.throughput, 6)});
  }
  table.print(std::cout);
  std::cout << "utilization " << report::Table::num(measures.utilization, 4)
            << "   revenue W(N) " << report::Table::num(measures.revenue, 6)
            << "\n";
}

// JSON shapes for measures/diagnostics are shared with the serving
// protocol via report/solve_json — the CLI must emit byte-identical
// structures so clients can diff the two surfaces.
using report::write_diagnostics_json;
using report::write_measures_json;

int cmd_solve(const config::Scenario& scenario, const report::Args& args) {
  const core::SolverSpec spec = effective_solver(scenario, args);
  const core::SolveResult result = core::solve_result(scenario.model, spec);
  if (args.has("json")) {
    report::JsonWriter json(std::cout);
    json.begin_object();
    json.key("command").value("solve");
    json.key("solver").value(spec.to_string());
    json.key("measures");
    write_measures_json(json, scenario.model, result.measures);
    json.key("diagnostics");
    write_diagnostics_json(json, result.diagnostics);
    json.end_object();
    return 0;
  }
  print_measures(scenario.model, result.measures);
  if (args.has("verbose")) {
    print_diagnostics(result.diagnostics, std::cout);
  }
  return 0;
}

int cmd_revenue(const config::Scenario& scenario, const report::Args& args) {
  const core::RevenueAnalyzer analyzer(scenario.model);
  const auto report = analyzer.analyze();
  print_measures(scenario.model, report.measures);
  std::cout << "\n";
  report::Table table({"class", "weight", "shadow cost", "dW/drho", "dW/dx",
                       "verdict"});
  for (std::size_t r = 0; r < scenario.model.num_classes(); ++r) {
    const auto& s = report.per_class[r];
    table.add_row({scenario.model.classes()[r].name,
                   report::Table::num(scenario.model.normalized(r).weight, 4),
                   report::Table::num(s.shadow_cost, 5),
                   report::Table::num(s.d_revenue_d_rho, 5),
                   report::Table::num(s.d_revenue_d_x, 5),
                   s.worth_admitting ? "admit more" : "cap it"});
  }
  table.print(std::cout);
  (void)args;
  return 0;
}

int cmd_simulate(const config::Scenario& scenario, const report::Args& args) {
  const core::SolverSpec spec = effective_solver(scenario, args);
  const core::SolveResult analytic = core::solve_result(scenario.model, spec);

  // The replication layer owns the whole study — fabric construction, seed
  // derivation, pooling, aggregation; non-uniform traffic plugs in through
  // the output-selector factory, so the CLI holds no simulation logic.
  sim::ReplicationConfig cfg;
  cfg.replications = scenario.replications;
  cfg.sim = scenario.sim;
  const double hotspot = scenario.hotspot_fraction;
  if (hotspot > 0.0) {
    cfg.output_selector_factory = [hotspot](std::size_t) {
      return sim::make_hotspot_selector(hotspot, 0);
    };
  }
  // The fabric under test follows the solver spec, so `simulate` always
  // cross-checks the analytical model against its own structural switch.
  const sim::ReplicationResult result =
      sim::run_fabric_replications(scenario.model, spec.fabric, cfg);

  report::Table table({"class", "analytic blocking", "sim call-cong", "CI"});
  for (std::size_t r = 0; r < scenario.model.num_classes(); ++r) {
    table.add_row(
        {scenario.model.classes()[r].name,
         report::Table::num(analytic.measures.per_class[r].blocking, 5),
         report::Table::num(result.per_class[r].call_congestion.mean, 5),
         report::Table::num(result.per_class[r].call_congestion.half_width,
                            2)});
  }
  table.print(std::cout);
  std::cout << result.replications << " replications, "
            << result.total_events << " events"
            << (hotspot > 0.0
                    ? ", hotspot=" + report::Table::num(hotspot, 2) +
                          " (analytic column assumes uniform traffic)"
                    : "")
            << "\n";
  if (args.has("verbose")) {
    print_diagnostics(analytic.diagnostics, std::cout);
  }
  return 0;
}

/// Parse --sizes: comma-separated positive switch sizes.  Raises a usage
/// error naming the offending token instead of letting std::stoul garbage
/// escape as a raw exception (or a size of 0 build a bogus model).
std::vector<unsigned> parse_sizes(const std::string& arg) {
  constexpr unsigned kMaxSize = 65536;
  std::vector<unsigned> sizes;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string token =
        arg.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    start = comma == std::string::npos ? arg.size() + 1 : comma + 1;
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        token.empty()) {
      raise(ErrorKind::kUsage,
            "--sizes: invalid size '" + token +
                "' (expected comma-separated positive integers, e.g. "
                "--sizes=4,8,16)");
    }
    if (value == 0 || value > kMaxSize) {
      raise(ErrorKind::kUsage,
            "--sizes: size " + token + " out of range [1, " +
                std::to_string(kMaxSize) + "]");
    }
    sizes.push_back(value);
  }
  return sizes;
}

/// Parse a --flag=value as a non-negative number; raises kUsage on garbage.
double parse_flag_number(const char* flag, const std::string& text) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() ||
      !(value >= 0.0)) {
    raise(ErrorKind::kUsage, std::string("--") + flag +
                                 ": expected a non-negative number, got '" +
                                 text + "'");
  }
  return value;
}

/// Parse --inject=POINT:ACTION[:SECONDS],... into armed injector rules.
void parse_inject(const std::string& arg, sweep::FaultInjector& injector) {
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string token =
        arg.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    start = comma == std::string::npos ? arg.size() + 1 : comma + 1;
    const std::size_t c1 = token.find(':');
    if (c1 == std::string::npos) {
      raise(ErrorKind::kUsage,
            "--inject: expected POINT:ACTION[:SECONDS], got '" + token + "'");
    }
    const std::size_t point = static_cast<std::size_t>(
        parse_flag_number("inject", token.substr(0, c1)));
    const std::size_t c2 = token.find(':', c1 + 1);
    const std::string action = token.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
    if (action == "throw") {
      injector.add(point, sweep::FaultAction::kThrow);
    } else if (action == "nan") {
      injector.add(point, sweep::FaultAction::kNan);
    } else if (action == "delay") {
      const double seconds =
          c2 == std::string::npos
              ? 0.05
              : parse_flag_number("inject", token.substr(c2 + 1));
      injector.add(point, sweep::FaultAction::kDelay, 1, seconds);
    } else {
      raise(ErrorKind::kUsage,
            "--inject: unknown action '" + action +
                "' (expected throw, nan, or delay)");
    }
  }
}

int cmd_sweep(const config::Scenario& scenario, const report::Args& args) {
  const std::vector<unsigned> sizes =
      parse_sizes(args.get("sizes").value_or("4,8,16,32,64,128"));
  const core::SolverSpec spec = effective_solver(scenario, args);

  // Every size through the sweep engine — one spec, no enum mapping; the
  // engine routes brute force to the direct oracle path itself.
  std::vector<sweep::ScenarioPoint> points;
  points.reserve(sizes.size());
  for (const unsigned n : sizes) {
    std::vector<core::TrafficClass> classes(
        scenario.model.classes().begin(), scenario.model.classes().end());
    points.push_back({core::CrossbarModel(core::Dims::square(n),
                                          std::move(classes)),
                      std::nullopt});
  }
  // Sweeps degrade gracefully: each point is isolated, guarded, and
  // escalated by the engine; the exit code reports partial completion.
  sweep::SweepOptions options;
  options.solver = spec;
  options.fault.isolate = true;
  if (const auto text = args.get("threads")) {
    options.threads =
        static_cast<unsigned>(parse_flag_number("threads", *text));
  }
  sweep::FaultInjector injector;
  if (const auto inject = args.get("inject")) {
    parse_inject(*inject, injector);
    options.fault.injector = &injector;
  }
  if (const auto text = args.get("max-failures")) {
    options.fault.max_failures =
        static_cast<std::size_t>(parse_flag_number("max-failures", *text));
  }
  if (const auto text = args.get("deadline")) {
    options.fault.deadline_seconds = parse_flag_number("deadline", *text);
  }
  if (const auto path = args.get("checkpoint")) {
    options.fault.checkpoint_path = *path;
    options.fault.checkpoint_every = 1;
  }
  sweep::SweepRunner runner(options);
  const sweep::SweepReport report = [&] {
    if (const auto resume_path = args.get("resume")) {
      return runner.resume(points, sweep::load_checkpoint(*resume_path));
    }
    return runner.run_report(points);
  }();
  const int exit_code = report.complete() ? 0 : 2;

  if (args.has("json")) {
    report::JsonWriter json(std::cout);
    json.begin_object();
    json.key("command").value("sweep");
    json.key("solver").value(spec.to_string());
    json.key("points").begin_array();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const sweep::PointStatus& status = report.statuses[i];
      const bool solved = status.state == sweep::PointState::kOk ||
                          status.state == sweep::PointState::kRetried;
      json.begin_object();
      json.key("n").value(sizes[i]);
      json.key("status").value(sweep::to_string(status.state));
      if (!status.error.empty()) {
        json.key("error_kind").value(to_string(status.error_kind));
        json.key("error").value(status.error);
      }
      json.key("measures");
      if (solved) {
        write_measures_json(json, points[i].model,
                            report.results[i].measures);
      } else {
        json.value_null();
      }
      json.key("diagnostics");
      if (solved) {
        write_diagnostics_json(json, report.results[i].diagnostics);
      } else {
        json.value_null();
      }
      json.end_object();
    }
    json.end_array();
    json.key("summary").begin_object();
    json.key("ok").value(
        static_cast<std::uint64_t>(report.count(sweep::PointState::kOk)));
    json.key("retried").value(static_cast<std::uint64_t>(
        report.count(sweep::PointState::kRetried)));
    json.key("failed").value(
        static_cast<std::uint64_t>(report.count(sweep::PointState::kFailed)));
    json.key("cancelled").value(static_cast<std::uint64_t>(
        report.count(sweep::PointState::kCancelled)));
    json.key("complete").value(report.complete());
    json.end_object();
    json.key("cache").begin_object();
    json.key("slots").begin_array();
    for (const sweep::SweepSlotCounters& slot : report.slots) {
      json.begin_object();
      json.key("hits").value(static_cast<std::uint64_t>(slot.hits));
      json.key("misses").value(static_cast<std::uint64_t>(slot.misses));
      json.end_object();
    }
    json.end_array();
    json.key("hits").value(static_cast<std::uint64_t>(report.total_hits()));
    json.key("misses")
        .value(static_cast<std::uint64_t>(report.total_misses()));
    json.end_object();
    json.key("wall_seconds").value(report.wall_seconds);
    json.end_object();
    return exit_code;
  }

  const bool degraded = !report.complete();
  std::vector<std::string> headers = {"N"};
  for (const auto& c : scenario.model.classes()) {
    headers.push_back(c.name);
  }
  if (degraded) {
    headers.push_back("status");
  }
  report::Table table(headers);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const sweep::PointStatus& status = report.statuses[i];
    const bool solved = status.state == sweep::PointState::kOk ||
                        status.state == sweep::PointState::kRetried;
    std::vector<std::string> row = {report::Table::integer(sizes[i])};
    const auto& per_class = report.results[i].measures.per_class;
    for (std::size_t r = 0; r < scenario.model.num_classes(); ++r) {
      row.push_back(solved && r < per_class.size()
                        ? report::Table::num(per_class[r].blocking, 6)
                        : "-");
    }
    if (degraded) {
      row.push_back(std::string(sweep::to_string(status.state)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  if (degraded) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const sweep::PointStatus& status = report.statuses[i];
      if (status.state == sweep::PointState::kFailed) {
        std::cerr << "point N=" << sizes[i] << " failed ("
                  << to_string(status.error_kind) << "): " << status.error
                  << "\n";
      }
    }
    std::cerr << "sweep incomplete: " << report.count(sweep::PointState::kOk)
              << " ok, " << report.count(sweep::PointState::kRetried)
              << " retried, " << report.count(sweep::PointState::kFailed)
              << " failed, " << report.count(sweep::PointState::kCancelled)
              << " cancelled\n";
  }

  if (args.has("verbose")) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::cout << "N=" << sizes[i] << " ";
      print_diagnostics(report.results[i].diagnostics, std::cout);
    }
    std::size_t slot = 0;
    for (const sweep::SweepSlotCounters& counters : report.slots) {
      std::cout << "cache slot " << slot++ << ": hits=" << counters.hits
                << " misses=" << counters.misses << "\n";
    }
    std::cout << "cache total: hits=" << report.total_hits()
              << " misses=" << report.total_misses() << "   wall="
              << report::Table::num(report.wall_seconds * 1e3, 3) << "ms\n";
  }
  return exit_code;
}

// `xbar batch`: many scenario files, one call through the solver cache —
// scenarios sharing dimensions (and the resolved lane backend) advance
// through a single batched grid traversal, bit-identical to solving each
// file alone.  One solver spec governs the whole batch: --solver if given,
// otherwise the first scenario's [solve] section.
int cmd_batch(const std::vector<std::string>& files,
              const report::Args& args) {
  using Clock = std::chrono::steady_clock;
  std::vector<config::Scenario> scenarios;
  scenarios.reserve(files.size());
  std::vector<core::CrossbarModel> models;
  models.reserve(files.size());
  for (const std::string& file : files) {
    scenarios.push_back(config::load_scenario(file));
    models.push_back(scenarios.back().model);
  }
  const core::SolverSpec spec = [&] {
    if (const auto text = args.get("solver")) {
      return core::SolverSpec::parse(*text);
    }
    return scenarios.front().solver;
  }();

  sweep::SolverCache cache(std::max<std::size_t>(models.size(), 8));
  const Clock::time_point start = Clock::now();
  const std::vector<core::SolveResult> results =
      cache.eval_batch_result(models, spec);
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (args.has("json")) {
    report::JsonWriter json(std::cout);
    json.begin_object();
    json.key("command").value("batch");
    json.key("solver").value(spec.to_string());
    json.key("scenarios").begin_array();
    for (std::size_t i = 0; i < results.size(); ++i) {
      json.begin_object();
      json.key("file").value(files[i]);
      json.key("measures");
      write_measures_json(json, models[i], results[i].measures);
      json.key("diagnostics");
      write_diagnostics_json(json, results[i].diagnostics);
      json.end_object();
    }
    json.end_array();
    json.key("wall_seconds").value(wall_seconds);
    json.end_object();
    return 0;
  }

  report::Table table({"scenario", "grid", "utilization", "revenue W(N)",
                       "batched", "wall ms"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Per-scenario wall time is cumulative from batch start to this
    // scenario's answer (the traversal is shared, not divisible).
    table.add_row(
        {files[i], dims_text(results[i].diagnostics.grid),
         report::Table::num(results[i].measures.utilization, 4),
         report::Table::num(results[i].measures.revenue, 6),
         results[i].diagnostics.batched ? "yes" : "no",
         report::Table::num(results[i].diagnostics.wall_seconds * 1e3, 3)});
  }
  table.print(std::cout);
  std::cout << files.size() << " scenarios in "
            << report::Table::num(wall_seconds * 1e3, 3) << "ms ("
            << cache.hits() << " cache hits, " << cache.misses()
            << " solves)\n";
  if (args.has("verbose")) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::cout << files[i] << " ";
      print_diagnostics(results[i].diagnostics, std::cout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && (std::string(argv[1]) == "--list-solvers" ||
                    std::string(argv[1]) == "list-solvers")) {
    return cmd_list_solvers();
  }
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  const xbar::report::Args args(argc, argv);
  try {
    if (command == "batch") {
      // Positionals: "batch" itself, then the scenario files.
      const auto& positional = args.positional();
      const std::vector<std::string> files(positional.begin() + 1,
                                           positional.end());
      if (files.empty()) {
        return usage();
      }
      return cmd_batch(files, args);
    }
    const auto scenario = xbar::config::load_scenario(path);
    if (command == "solve") {
      return cmd_solve(scenario, args);
    }
    if (command == "revenue") {
      return cmd_revenue(scenario, args);
    }
    if (command == "simulate") {
      return cmd_simulate(scenario, args);
    }
    if (command == "sweep") {
      return cmd_sweep(scenario, args);
    }
    return usage();
  } catch (const xbar::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
