// xbar_client — resilient command-line client for xbar_serve.
//
//   xbar_client --port=N [--host=127.0.0.1]
//               [--method=ping|stats|health|advise] [--request=JSON]
//               [--connect-timeout-ms=MS] [--timeout-ms=MS]
//               [--retries=N] [--backoff-base-ms=MS] [--backoff-cap-ms=MS]
//               [--breaker-window=N] [--breaker-open-ms=MS] [--seed=N]
//               [--stats]
//
// One-shot requests come from --method (the body-less methods) or
// --request (a raw protocol line, any method); with neither, every line
// on stdin is sent in order (a scriptable pipeline mode).  All traffic
// goes through client::XbarClient, so connect/request deadlines, retries
// with decorrelated jitter, and the circuit breaker apply exactly as they
// do for xbar_loadgen — this tool doubles as the way to poke a server (or
// a chaos proxy) from a shell and see the typed outcome.
//
// Responses are printed one per line on stdout.  A call that exhausts its
// retry budget prints `outcome=<class> attempts=<n>` on stderr.  --stats
// prints the endpoint's ClientStats (attempts, retries, breaker state and
// transition counts) as one JSON line on stdout after the responses — the
// queryable form of what the client library tracked for the run.  Exit 0
// when every call produced a response, 2 when any call failed at the
// transport level, 1 on usage or fatal errors.

#include <iostream>
#include <string>

#include "client/client.hpp"
#include "client/stats_json.hpp"
#include "core/error.hpp"
#include "report/args.hpp"
#include "report/json_writer.hpp"

namespace {

using namespace xbar;

int usage() {
  std::cerr
      << "usage: xbar_client --port=N [--host=ADDR]\n"
         "                   [--method=ping|stats|health|advise]\n"
         "                   [--request=JSON]\n"
         "                   [--connect-timeout-ms=MS] [--timeout-ms=MS]\n"
         "                   [--retries=N] [--backoff-base-ms=MS]\n"
         "                   [--backoff-cap-ms=MS] [--breaker-window=N]\n"
         "                   [--breaker-open-ms=MS] [--seed=N] [--stats]\n"
         "With neither --method nor --request, request lines are read\n"
         "from stdin and sent in order.  --stats appends the endpoint's\n"
         "client-side stats (attempts, retries, breaker transitions) as\n"
         "one JSON line.\n";
  return 1;
}

/// Send one line; print the response or the typed failure.  Returns true
/// when a response came back.
bool run_one(client::XbarClient& cli, const std::string& line) {
  const client::CallResult result = cli.call(line);
  if (result.outcome == client::Outcome::kOk) {
    std::cout << result.response << "\n";
    return true;
  }
  std::cerr << "outcome=" << client::to_string(result.outcome)
            << " attempts=" << result.attempts << "\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const report::Args args(argc, argv);
  if (args.has("help") || !args.get("port")) {
    return usage();
  }
  try {
    client::ClientConfig config;
    config.host = args.get("host").value_or("127.0.0.1");
    config.port = static_cast<std::uint16_t>(args.get_unsigned("port", 0));
    config.connect_timeout_seconds =
        args.get_double("connect-timeout-ms", 1000.0) * 1e-3;
    config.request_timeout_seconds =
        args.get_double("timeout-ms", 5000.0) * 1e-3;
    config.backoff.max_attempts = args.get_unsigned("retries", 5);
    config.backoff.base_seconds =
        args.get_double("backoff-base-ms", 10.0) * 1e-3;
    config.backoff.cap_seconds =
        args.get_double("backoff-cap-ms", 1000.0) * 1e-3;
    config.breaker.window = args.get_unsigned("breaker-window", 16);
    config.breaker.open_seconds =
        args.get_double("breaker-open-ms", 500.0) * 1e-3;
    config.seed = args.get_unsigned("seed", 1);
    client::XbarClient cli(config);

    bool all_ok = true;
    if (const auto request = args.get("request")) {
      all_ok = run_one(cli, *request);
    } else if (const auto method = args.get("method")) {
      if (*method != "ping" && *method != "stats" && *method != "health" &&
          *method != "advise") {
        raise(ErrorKind::kUsage,
              "--method must be ping|stats|health|advise (use --request for "
              "methods that need a scenario)");
      }
      all_ok = run_one(cli, "{\"method\":\"" + *method + "\"}");
    } else {
      std::string line;
      while (std::getline(std::cin, line)) {
        if (line.empty()) {
          continue;
        }
        all_ok = run_one(cli, line) && all_ok;
      }
    }
    if (args.has("stats")) {
      report::JsonWriter json(std::cout, report::JsonWriter::Style::kCompact);
      client::write_client_stats_json(json, cli.stats());
      std::cout << "\n";
    }
    return all_ok ? 0 : 2;
  } catch (const xbar::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
