// xbar_loadgen — open-loop load generator for xbar_serve.
//
//   xbar_loadgen --port=N [--host=127.0.0.1] [--proxy=HOST:PORT|PORT]
//                [--requests=1000] [--rps=R] [--process=poisson|bpp]
//                [--peakedness=Z] [--mu=MU] [--senders=S]
//                [--method=ping|solve|revenue|sweep|observe]
//                [--scenario=FILE.ini] [--solver=SPEC] [--sizes=4,8]
//                [--unique] [--no-cache] [--deadline-ms=MS] [--seed=N]
//                [--timeout-ms=MS] [--connect-timeout-ms=MS] [--retries=N]
//                [--backoff-base-ms=MS] [--backoff-cap-ms=MS]
//                [--malformed=K] [--min-cached=N] [--min-success-rate=R]
//                [--min-breaker-opens=N] [--json]
//                [--phases=SPEC] [--observe-batch=K]
//                [--assert-recommended=N] [--assert-min-refits=N]
//                [--priority=N] [--overload] [--min-typed-rate=R]
//                [--min-stale=N] [--min-bound=N] [--max-ok-p99-ms=MS]
//
// Latency accounting is coordinated-omission-corrected: under pacing
// (rps > 0 or --phases) the headline latency of request i is measured
// from its *intended* arrival time start + schedule[i], not from the
// moment a backpressured sender finally got to send it — a stalled
// server shows up in the quantiles instead of silently thinning them
// (see src/client/open_loop.hpp).  The uncorrected service time is
// reported alongside as service_latency.  Unpaced runs (rps = 0) have
// no intended arrival process, so corrected == service there.
//
// --priority=N stamps every request with a shed rank (0 = shed first)
// for servers running --overload.  --overload prints the degraded-mode
// breakdown (exact / stale / bound / shed response classes), and the
// paired assertions gate on it: --min-typed-rate=R requires the
// fraction of requests answered with a *typed* frame (ok or a typed
// overloaded/shed decision) to reach R; --min-stale / --min-bound
// require the degradation ladder's stale and bound-only rungs to have
// actually served; --max-ok-p99-ms bounds the service-time p99 of
// admitted (ok) requests.
//
// --phases scripts piecewise load shifts: "DUR:key=val,...;DUR:..." where
// DUR is the phase length in seconds and keys are rps, scale (multiplies
// every class's alpha~/beta~), peakedness, mu, and class<i>=S (scale one
// class — a mix shift).  Request modes allocate requests across phases in
// proportion to rps*DUR and pace each phase at its own rate; stats are
// reported per phase.
//
// --method=observe drives xbar_serve's streaming capacity advisor: instead
// of solve requests, the workload's classes are simulated as BPP
// birth-death connection processes (lambda_r(k) = alpha~_r + beta~_r k,
// holds ~ exp(mu_r)) over the scripted phases in *virtual trace time*
// (DUR = trace seconds, sent as fast as the socket allows), batched
// --observe-batch events per `observe` frame.  Senders are forced to 1 —
// the advisor reconstructs occupancy from event order.  After the trace, a
// final `advise` request prints the server's recommendation;
// --assert-recommended=N requires a confident recommendation of an NxN
// switch and --assert-min-refits=K requires at least K drift-triggered
// refits (the convergence assertions the advisor smoke runs on).
//
// Arrival times are drawn from the same BPP family the paper models as
// offered traffic: --process=poisson paces requests as a Poisson stream at
// --rps; --process=bpp simulates the linear birth-death modulating process
// lambda(k) = alpha + beta k (dist::BppParams::from_mean_peakedness with
// mean rps/mu and the requested peakedness), so request arrivals cluster
// into the bursts whose effect on a shared service the paper is about.
// --rps=0 disables pacing (send as fast as the connections allow).
//
// Every sender drives one client::XbarClient (seeded seed+s, so jitter is
// decorrelated across senders): connect/request deadlines, bounded retries
// with backoff, and a per-endpoint circuit breaker all apply.  --proxy
// routes the traffic through an xbar_chaosproxy instead of dialing the
// server directly — passthrough mode for chaos runs; every assertion
// below still applies to what comes out the other side.
//
// --unique perturbs the scenario per request so every request is a
// distinct computation (cold cache); the default repeats one scenario,
// the result-cache hot path.  --malformed=K injects K syntactically
// invalid frames and requires a typed parse error back.  --min-cached=N
// asserts at least N cached responses.  --min-success-rate=R relaxes the
// default zero-transport-failures assertion to "fraction of requests with
// a response >= R" (chaos schedules push faults past any retry budget).
// --min-breaker-opens=N asserts the circuit breaker tripped at least N
// times across senders (CI pins that the breaker actually engages).
//
// Output: achieved RPS, an error-class breakdown (final client outcome:
// ok / timeout / refused / reset / overloaded / breaker_open), per-class
// latency quantiles from the lock-free Histogram, retry/attempt counters,
// and breaker-open totals.  Exit 0 when every assertion holds; 2
// otherwise; 1 fatal.

#include <algorithm>
#include <array>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cmath>
#include <deque>
#include <functional>
#include <iostream>
#include <limits>
#include <queue>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "client/open_loop.hpp"
#include "config/scenario_file.hpp"
#include "core/error.hpp"
#include "core/model.hpp"
#include "core/solver_spec.hpp"
#include "dist/bpp.hpp"
#include "dist/rng.hpp"
#include "report/args.hpp"
#include "report/json_writer.hpp"
#include "service/histogram.hpp"

namespace {

using namespace xbar;
using Clock = std::chrono::steady_clock;

int usage() {
  std::cerr
      << "usage: xbar_loadgen --port=N [--host=ADDR] [--proxy=HOST:PORT]\n"
         "                    [--requests=N] [--rps=R]\n"
         "                    [--process=poisson|bpp] [--peakedness=Z]\n"
         "                    [--mu=MU] [--senders=S]\n"
         "                    [--method=ping|solve|revenue|sweep]\n"
         "                    [--scenario=FILE.ini] [--solver=SPEC]\n"
         "                    [--sizes=4,8] [--unique] [--no-cache]\n"
         "                    [--deadline-ms=MS] [--seed=N]\n"
         "                    [--timeout-ms=MS] [--connect-timeout-ms=MS]\n"
         "                    [--retries=N] [--backoff-base-ms=MS]\n"
         "                    [--backoff-cap-ms=MS] [--malformed=K]\n"
         "                    [--min-cached=N] [--min-success-rate=R]\n"
         "                    [--min-breaker-opens=N] [--json]\n"
         "                    [--phases=\"DUR:rps=R,scale=S;...\"]\n"
         "                    [--observe-batch=K] [--assert-recommended=N]\n"
         "                    [--assert-min-refits=N]\n"
         "                    [--priority=N] [--overload]\n"
         "                    [--min-typed-rate=R] [--min-stale=N]\n"
         "                    [--min-bound=N] [--max-ok-p99-ms=MS]\n";
  return 1;
}

/// The workload description shared by every request: the traffic classes
/// in tilde units plus the switch dims, rendered to protocol scenario JSON.
struct Workload {
  core::Dims dims{16, 16};
  std::vector<core::TrafficClass> classes;
};

Workload default_workload() {
  Workload w;
  w.classes.push_back(core::TrafficClass::poisson("voice", 0.45));
  w.classes.push_back(
      core::TrafficClass::bursty("bulk", 0.1, 0.05, 1, 2.0, 0.2));
  return w;
}

Workload load_workload(const std::string& path) {
  const config::Scenario scenario = config::load_scenario(path);
  Workload w;
  w.dims = scenario.model.dims();
  w.classes.assign(scenario.model.classes().begin(),
                   scenario.model.classes().end());
  return w;
}

void append_number(std::string& out, double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, end);
}

/// Render one request line.  `scale` multiplies every class's alpha~ and
/// beta~ (scaling both preserves Bernoulli validity: -alpha/beta is
/// unchanged), which is how --unique makes each request a distinct model.
std::string render_request(const Workload& w, const std::string& method,
                           std::size_t id, double scale,
                           const std::string& solver,
                           const std::vector<unsigned>& sizes,
                           double deadline_ms, bool no_cache,
                           int priority) {
  std::string out = "{\"method\":\"" + method + "\",\"id\":";
  out += std::to_string(id);
  if (method != "ping" && method != "stats") {
    out += ",\"scenario\":{\"switch\":{\"inputs\":";
    out += std::to_string(w.dims.n1);
    out += ",\"outputs\":";
    out += std::to_string(w.dims.n2);
    out += "},\"classes\":[";
    for (std::size_t r = 0; r < w.classes.size(); ++r) {
      const core::TrafficClass& c = w.classes[r];
      if (r != 0) {
        out += ',';
      }
      out += "{\"name\":\"" + report::JsonWriter::escape(c.name) + "\",";
      if (c.beta_tilde == 0.0) {
        out += "\"shape\":\"poisson\",\"rho\":";
        append_number(out, c.alpha_tilde * scale / c.mu);
      } else {
        out += "\"shape\":\"bursty\",\"alpha\":";
        append_number(out, c.alpha_tilde * scale);
        out += ",\"beta\":";
        append_number(out, c.beta_tilde * scale);
      }
      out += ",\"bandwidth\":" + std::to_string(c.bandwidth);
      out += ",\"mu\":";
      append_number(out, c.mu);
      out += ",\"weight\":";
      append_number(out, c.weight);
      out += '}';
    }
    out += "]}";
    if (!solver.empty()) {
      out += ",\"solver\":\"" + solver + "\"";
    }
    if (method == "sweep") {
      out += ",\"sizes\":[";
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        out += (i == 0 ? "" : ",") + std::to_string(sizes[i]);
      }
      out += ']';
    }
  }
  if (deadline_ms > 0.0) {
    out += ",\"deadline_ms\":";
    append_number(out, deadline_ms);
  }
  if (no_cache) {
    out += ",\"no_cache\":true";
  }
  if (priority >= 0) {
    out += ",\"priority\":" + std::to_string(priority);
  }
  out += '}';
  return out;
}

/// Arrival-time offsets (seconds) for `n` requests.  rps == 0 -> all zero.
/// Poisson is the peakedness-1 case of the BPP modulator, so both
/// processes share one simulation: a birth at state k fires at rate
/// alpha + beta k and is one request; deaths at rate k mu end sessions.
std::vector<double> arrival_schedule(std::size_t n, double rps, double z,
                                     double mu, std::uint64_t seed) {
  std::vector<double> times(n, 0.0);
  if (rps <= 0.0) {
    return times;
  }
  const dist::BppParams params =
      dist::BppParams::from_mean_peakedness(rps / mu, z, mu);
  dist::Xoshiro256 rng(seed);
  double t = 0.0;
  unsigned k = static_cast<unsigned>(std::lround(params.mean()));
  for (std::size_t i = 0; i < n;) {
    const double birth = params.intensity(k);
    const double death = static_cast<double>(k) * mu;
    const double total = birth + death;
    if (total <= 0.0) {
      k = 1;  // absorbed (can only happen with degenerate parameters)
      continue;
    }
    t += rng.exponential(total);
    if (rng.uniform01() * total < birth) {
      times[i++] = t;
      ++k;
    } else {
      --k;
    }
  }
  return times;
}

/// One scripted load phase.
struct Phase {
  double duration = 0.0;    ///< seconds (virtual trace seconds for observe)
  double rps = 0.0;         ///< request modes: pacing rate this phase
  double scale = 1.0;       ///< multiplies every class's alpha~/beta~
  double peakedness = 1.0;  ///< request-mode pacing burstiness
  double mu = 1.0;          ///< request-mode pacing session rate
  std::vector<std::pair<std::size_t, double>> class_scale;  ///< mix shifts
};

/// Parse "DUR:key=val,...;DUR:..." (see the header comment).  Defaults for
/// per-phase keys come from the global flags.
std::vector<Phase> parse_phases(const std::string& spec, double rps,
                                double peakedness, double mu) {
  std::vector<Phase> phases;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) {
      continue;
    }
    Phase phase;
    phase.rps = rps;
    phase.peakedness = peakedness;
    phase.mu = mu;
    const std::size_t colon = token.find(':');
    const std::string dur = token.substr(0, colon);
    try {
      phase.duration = std::stod(dur);
    } catch (const std::exception&) {
      raise(ErrorKind::kUsage, "--phases: bad duration '" + dur + "'");
    }
    if (!(phase.duration > 0.0)) {
      raise(ErrorKind::kUsage, "--phases: duration must be positive");
    }
    std::size_t kpos = colon == std::string::npos ? token.size() : colon + 1;
    while (kpos < token.size()) {
      std::size_t kend = token.find(',', kpos);
      if (kend == std::string::npos) {
        kend = token.size();
      }
      const std::string kv = token.substr(kpos, kend - kpos);
      kpos = kend + 1;
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        raise(ErrorKind::kUsage, "--phases: expected key=val, got '" + kv +
                                     "'");
      }
      const std::string key = kv.substr(0, eq);
      double value = 0.0;
      try {
        value = std::stod(kv.substr(eq + 1));
      } catch (const std::exception&) {
        raise(ErrorKind::kUsage, "--phases: bad value in '" + kv + "'");
      }
      if (key == "rps") {
        phase.rps = value;
      } else if (key == "scale") {
        phase.scale = value;
      } else if (key == "peakedness") {
        phase.peakedness = value;
      } else if (key == "mu") {
        phase.mu = value;
      } else if (key.size() > 5 && key.compare(0, 5, "class") == 0) {
        std::size_t index = 0;
        const auto [ptr, ec] = std::from_chars(
            key.data() + 5, key.data() + key.size(), index);
        if (ec != std::errc{} || ptr != key.data() + key.size()) {
          raise(ErrorKind::kUsage, "--phases: bad class key '" + key + "'");
        }
        phase.class_scale.emplace_back(index, value);
      } else {
        raise(ErrorKind::kUsage,
              "--phases: unknown key '" + key +
                  "' (expected rps, scale, peakedness, mu, class<i>)");
      }
    }
    phases.push_back(std::move(phase));
  }
  if (phases.empty()) {
    raise(ErrorKind::kUsage, "--phases: no phases given");
  }
  return phases;
}

/// The workload as one phase sees it (scale + mix shifts applied).
Workload phase_workload(const Workload& base, const Phase& phase) {
  Workload w = base;
  for (core::TrafficClass& c : w.classes) {
    c.alpha_tilde *= phase.scale;
    c.beta_tilde *= phase.scale;
  }
  for (const auto& [index, factor] : phase.class_scale) {
    if (index < w.classes.size()) {
      w.classes[index].alpha_tilde *= factor;
      w.classes[index].beta_tilde *= factor;
    }
  }
  return w;
}

/// Per-phase outcome tally (request modes and observe mode share it).
struct PhaseTally {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> events{0};    ///< observe: events generated
  std::atomic<std::uint64_t> admitted{0};  ///< observe: server admitted
  std::atomic<std::uint64_t> denied{0};    ///< observe: enactment denied
  service::Histogram latency;
};

bool contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Pull the unsigned value of `"key":N` out of a response line (0 when
/// absent) — enough JSON for the loadgen's own accounting.
std::uint64_t scrape_unsigned(const std::string& response,
                              std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = response.find(needle);
  if (at == std::string::npos) {
    return 0;
  }
  std::uint64_t value = 0;
  const char* begin = response.data() + at + needle.size();
  const char* end = response.data() + response.size();
  (void)std::from_chars(begin, end, value);
  return value;
}

/// First-occurrence `"key":true` check.  The advise frame renders the
/// top-level confidence flag before the per-fit ones, so first wins.
bool scrape_bool(const std::string& response, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = response.find(needle);
  return at != std::string::npos &&
         response.compare(at + needle.size(), 4, "true") == 0;
}

/// --method=observe: simulate the workload's classes as BPP birth-death
/// connection processes over the scripted phases and stream the resulting
/// trace into the server's advisor (see the header comment).  Returns the
/// process exit code.
int run_observe_mode(const client::ClientConfig& client_config,
                     const Workload& base, const std::vector<Phase>& phases,
                     std::size_t batch, std::uint64_t seed,
                     unsigned assert_recommended,
                     std::uint64_t assert_min_refits, bool json_output) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  client::XbarClient cli(client_config);
  dist::Xoshiro256 rng(seed);
  const std::size_t num_classes = base.classes.size();

  // Per-class CTMC state: occupancy, pre-sampled departure clocks (exact
  // for exponential holds), and the next-arrival clock, resampled whenever
  // the occupancy or the phase (i.e. the birth rate) changes —
  // memorylessness makes that resampling exact too.
  std::vector<unsigned> occupancy(num_classes, 0);
  std::vector<double> next_arrival(num_classes, kInf);
  std::vector<
      std::priority_queue<double, std::vector<double>, std::greater<>>>
      departures(num_classes);

  std::deque<PhaseTally> tallies;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    tallies.emplace_back();
  }

  double t = 0.0;
  std::size_t id = 0;
  std::uint64_t frames_failed = 0;
  std::string frame;
  std::size_t frame_events = 0;
  std::size_t frame_phase = 0;

  auto flush = [&]() {
    if (frame_events == 0) {
      return;
    }
    const std::string line = "{\"method\":\"observe\",\"id\":" +
                             std::to_string(id++) + ",\"events\":[" + frame +
                             "]}";
    const Clock::time_point sent_at = Clock::now();
    const client::CallResult result = cli.call(line);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - sent_at).count();
    PhaseTally& tally = tallies[frame_phase];
    tally.sent.fetch_add(1, std::memory_order_relaxed);
    tally.latency.record(elapsed);
    if (result.outcome == client::Outcome::kOk &&
        contains(result.response, "\"status\":\"ok\"")) {
      tally.ok.fetch_add(1, std::memory_order_relaxed);
      tally.admitted.fetch_add(scrape_unsigned(result.response, "admitted"),
                               std::memory_order_relaxed);
      tally.denied.fetch_add(scrape_unsigned(result.response, "denied"),
                             std::memory_order_relaxed);
    } else {
      tally.failed.fetch_add(1, std::memory_order_relaxed);
      ++frames_failed;
    }
    frame.clear();
    frame_events = 0;
  };

  const Clock::time_point start = Clock::now();
  double phase_start = 0.0;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const Workload w = phase_workload(base, phases[p]);
    const double phase_end = phase_start + phases[p].duration;
    for (std::size_t r = 0; r < num_classes; ++r) {
      const core::TrafficClass& c = w.classes[r];
      const double rate = c.alpha_tilde + c.beta_tilde * occupancy[r];
      next_arrival[r] = rate > 0.0 ? t + rng.exponential(rate) : kInf;
    }
    while (true) {
      std::size_t best = num_classes;
      bool is_departure = false;
      double best_t = phase_end;
      for (std::size_t r = 0; r < num_classes; ++r) {
        if (!departures[r].empty() && departures[r].top() < best_t) {
          best_t = departures[r].top();
          best = r;
          is_departure = true;
        }
        if (next_arrival[r] < best_t) {
          best_t = next_arrival[r];
          best = r;
          is_departure = false;
        }
      }
      if (best == num_classes) {
        break;  // next event lands beyond this phase
      }
      t = best_t;
      const core::TrafficClass& c = w.classes[best];
      if (is_departure) {
        departures[best].pop();
        --occupancy[best];
      } else {
        const double hold = rng.exponential(c.mu);
        if (frame_events == 0) {
          frame_phase = p;
        } else {
          frame += ',';
        }
        frame += "{\"class\":\"" + report::JsonWriter::escape(c.name) +
                 "\",\"t\":";
        append_number(frame, t);
        frame += ",\"hold\":";
        append_number(frame, hold);
        frame += ",\"bandwidth\":" + std::to_string(c.bandwidth);
        frame += ",\"weight\":";
        append_number(frame, c.weight);
        frame += '}';
        ++frame_events;
        tallies[p].events.fetch_add(1, std::memory_order_relaxed);
        departures[best].push(t + hold);
        ++occupancy[best];
        if (frame_events >= batch) {
          flush();
        }
      }
      const double rate =
          c.alpha_tilde + c.beta_tilde * occupancy[best];
      next_arrival[best] = rate > 0.0 ? t + rng.exponential(rate) : kInf;
    }
    t = phase_end;
    phase_start = phase_end;
  }
  flush();

  const client::CallResult advise =
      cli.call("{\"method\":\"advise\",\"id\":" + std::to_string(id++) + "}");
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  const bool advise_ok = advise.outcome == client::Outcome::kOk &&
                         contains(advise.response, "\"status\":\"ok\"");
  const std::uint64_t recommended =
      advise_ok ? scrape_unsigned(advise.response, "n1") : 0;
  const std::uint64_t refits =
      advise_ok ? scrape_unsigned(advise.response, "refits") : 0;
  const bool confident = advise_ok && scrape_bool(advise.response,
                                                  "confident");

  std::uint64_t events = 0;
  std::uint64_t frames = 0;
  std::uint64_t admitted = 0;
  std::uint64_t denied = 0;
  for (const PhaseTally& tally : tallies) {
    events += tally.events.load();
    frames += tally.sent.load();
    admitted += tally.admitted.load();
    denied += tally.denied.load();
  }

  if (json_output) {
    report::JsonWriter json(std::cout);
    json.begin_object();
    json.key("events").value(events);
    json.key("frames").value(frames);
    json.key("frames_failed").value(frames_failed);
    json.key("admitted").value(admitted);
    json.key("denied").value(denied);
    json.key("wall_seconds").value(wall);
    json.key("phases").begin_array();
    for (std::size_t p = 0; p < phases.size(); ++p) {
      json.begin_object();
      json.key("duration_s").value(phases[p].duration);
      json.key("events").value(tallies[p].events.load());
      json.key("frames").value(tallies[p].sent.load());
      json.key("frames_failed").value(tallies[p].failed.load());
      json.key("admitted").value(tallies[p].admitted.load());
      json.key("denied").value(tallies[p].denied.load());
      json.end_object();
    }
    json.end_array();
    json.key("advise").begin_object();
    json.key("ok").value(advise_ok);
    json.key("confident").value(confident);
    json.key("recommended").value(recommended);
    json.key("refits").value(refits);
    json.end_object();
    json.end_object();
  } else {
    std::cout << "observe trace: " << events << " events in " << frames
              << " frames (" << frames_failed << " failed), admitted "
              << admitted << ", denied " << denied << ", wall " << wall
              << "s\n";
    for (std::size_t p = 0; p < phases.size(); ++p) {
      std::cout << "phase " << p << " (" << phases[p].duration
                << "s): events " << tallies[p].events.load() << "  frames "
                << tallies[p].sent.load() << "  admitted "
                << tallies[p].admitted.load() << "  denied "
                << tallies[p].denied.load() << "\n";
    }
    if (advise_ok) {
      std::cout << "advise: recommended " << recommended << "x"
                << recommended << "  confident "
                << (confident ? "true" : "false") << "  refits " << refits
                << "\n"
                << advise.response << "\n";
    } else {
      std::cout << "advise: no usable response ("
                << client::to_string(advise.outcome) << ")\n";
    }
  }

  bool assertions_hold = frames_failed == 0 && advise_ok;
  if (assert_recommended > 0) {
    assertions_hold = assertions_hold && confident &&
                      recommended == assert_recommended;
  }
  if (assert_min_refits > 0) {
    assertions_hold = assertions_hold && refits >= assert_min_refits;
  }
  return assertions_hold ? 0 : 2;
}

/// Outcome tallies shared across senders: final client outcomes with a
/// latency histogram per class, plus payload-level classes for requests
/// that did get a response.
struct Tally {
  std::array<std::atomic<std::uint64_t>, client::kOutcomeCount> by_outcome{};
  std::array<service::Histogram, client::kOutcomeCount> latency_by_outcome;
  std::array<std::atomic<std::uint64_t>, client::kResponseClassCount>
      by_response_class{};
  std::atomic<std::uint64_t> cached{0};
  std::atomic<std::uint64_t> deadline{0};
  std::atomic<std::uint64_t> shutdown{0};
  std::atomic<std::uint64_t> error_other{0};
  std::atomic<std::uint64_t> malformed_ok{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> attempt_timeouts{0};
  std::atomic<std::uint64_t> attempt_refused{0};
  std::atomic<std::uint64_t> attempt_resets{0};
  std::atomic<std::uint64_t> attempt_overloaded{0};
  std::atomic<std::uint64_t> breaker_rejections{0};
  std::atomic<std::uint64_t> breaker_opened{0};
  service::Histogram latency;          ///< CO-corrected (intended arrival)
  service::Histogram service_latency;  ///< send -> response (uncorrected)

  void absorb(const client::ClientCounters& c, std::uint64_t opened) {
    retries.fetch_add(c.retries, std::memory_order_relaxed);
    attempt_timeouts.fetch_add(c.attempt_timeouts,
                               std::memory_order_relaxed);
    attempt_refused.fetch_add(c.attempt_refused, std::memory_order_relaxed);
    attempt_resets.fetch_add(c.attempt_resets, std::memory_order_relaxed);
    attempt_overloaded.fetch_add(c.attempt_overloaded,
                                 std::memory_order_relaxed);
    breaker_rejections.fetch_add(c.breaker_rejections,
                                 std::memory_order_relaxed);
    breaker_opened.fetch_add(opened, std::memory_order_relaxed);
  }
};

std::size_t outcome_index(client::Outcome outcome) {
  return static_cast<std::size_t>(outcome);
}

/// Classify the payload of a kOk response (the transport worked; what did
/// the server say?).
void classify_response(const std::string& response, Tally& tally) {
  if (contains(response, "\"status\":\"ok\"")) {
    if (contains(response, "\"cached\":true")) {
      tally.cached.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (contains(response, "\"kind\":\"deadline\"")) {
    tally.deadline.fetch_add(1, std::memory_order_relaxed);
  } else if (contains(response, "\"kind\":\"shutdown\"")) {
    tally.shutdown.fetch_add(1, std::memory_order_relaxed);
  } else {
    tally.error_other.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<unsigned> parse_sizes_flag(const std::string& arg) {
  std::vector<unsigned> sizes;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string token =
        arg.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    start = comma == std::string::npos ? arg.size() + 1 : comma + 1;
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        value == 0) {
      raise(ErrorKind::kUsage,
            "--sizes: invalid size '" + token +
                "' (expected comma-separated positive integers)");
    }
    sizes.push_back(value);
  }
  return sizes;
}

void write_quantiles_json(report::JsonWriter& json,
                          const service::Histogram::Snapshot& lat) {
  json.begin_object();
  json.key("count").value(lat.count);
  json.key("p50").value(lat.p50 * 1e3);
  json.key("p90").value(lat.p90 * 1e3);
  json.key("p99").value(lat.p99 * 1e3);
  json.key("max").value(lat.max * 1e3);
  json.key("mean").value(lat.mean * 1e3);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const report::Args args(argc, argv);
  if (args.has("help") || (!args.get("port") && !args.get("proxy"))) {
    return usage();
  }
  try {
    std::string host = args.get("host").value_or("127.0.0.1");
    auto port = static_cast<std::uint16_t>(args.get_unsigned("port", 0));
    if (const auto proxy = args.get("proxy")) {
      // Passthrough mode: aim every sender at the chaos proxy instead.
      const std::size_t colon = proxy->rfind(':');
      if (colon == std::string::npos) {
        port = static_cast<std::uint16_t>(
            std::stoul(*proxy));  // bare port, host unchanged
      } else {
        host = proxy->substr(0, colon);
        port = static_cast<std::uint16_t>(
            std::stoul(proxy->substr(colon + 1)));
      }
    }
    const std::size_t requests = args.get_unsigned("requests", 1000);
    const double rps = args.get_double("rps", 0.0);
    const std::string process = args.get("process").value_or("poisson");
    if (process != "poisson" && process != "bpp") {
      raise(ErrorKind::kUsage,
            "--process must be poisson or bpp, got '" + process + "'");
    }
    const double peakedness =
        process == "poisson" ? 1.0 : args.get_double("peakedness", 4.0);
    if (!(peakedness >= 1.0)) {
      raise(ErrorKind::kUsage, "--peakedness must be >= 1");
    }
    const double mu = args.get_double("mu", 1.0);
    const unsigned senders = std::max(1u, args.get_unsigned("senders", 4));
    const std::string method = args.get("method").value_or("solve");
    if (method != "ping" && method != "solve" && method != "revenue" &&
        method != "sweep" && method != "observe") {
      raise(ErrorKind::kUsage,
            "--method must be ping|solve|revenue|sweep|observe");
    }
    const bool observe_mode = method == "observe";
    const std::string solver = args.get("solver").value_or("");
    if (!solver.empty()) {
      (void)core::SolverSpec::parse(solver);  // fail fast on typos
    }
    const std::vector<unsigned> sizes =
        parse_sizes_flag(args.get("sizes").value_or("4,8"));
    const bool unique = args.has("unique");
    const bool no_cache = args.has("no-cache");
    const double deadline_ms = args.get_double("deadline-ms", 0.0);
    const std::uint64_t seed = args.get_unsigned("seed", 1);
    const std::size_t malformed = args.get_unsigned("malformed", 0);
    const std::uint64_t min_cached = args.get_unsigned("min-cached", 0);
    const double min_success_rate =
        args.get_double("min-success-rate", -1.0);
    const std::uint64_t min_breaker_opens =
        args.get_unsigned("min-breaker-opens", 0);
    const int priority =
        args.has("priority")
            ? static_cast<int>(args.get_unsigned("priority", 0))
            : -1;
    const bool overload_report = args.has("overload");
    const double min_typed_rate = args.get_double("min-typed-rate", -1.0);
    const std::uint64_t min_stale = args.get_unsigned("min-stale", 0);
    const std::uint64_t min_bound = args.get_unsigned("min-bound", 0);
    const double max_ok_p99_ms = args.get_double("max-ok-p99-ms", 0.0);

    client::ClientConfig client_config;
    client_config.host = host;
    client_config.port = port;
    client_config.connect_timeout_seconds =
        args.get_double("connect-timeout-ms", 1000.0) * 1e-3;
    client_config.request_timeout_seconds =
        args.get_double("timeout-ms", 10000.0) * 1e-3;
    client_config.backoff.max_attempts = args.get_unsigned("retries", 5);
    client_config.backoff.base_seconds =
        args.get_double("backoff-base-ms", 5.0) * 1e-3;
    client_config.backoff.cap_seconds =
        args.get_double("backoff-cap-ms", 500.0) * 1e-3;

    const Workload workload = args.get("scenario")
                                  ? load_workload(*args.get("scenario"))
                                  : default_workload();

    std::vector<Phase> phases;
    if (const auto spec = args.get("phases")) {
      phases = parse_phases(*spec, rps, peakedness, mu);
    } else if (observe_mode) {
      // Observe without a script: one steady phase (default 60 virtual
      // seconds of trace).
      Phase steady;
      steady.duration = args.get_double("duration", 60.0);
      steady.rps = rps;
      steady.peakedness = peakedness;
      steady.mu = mu;
      phases.push_back(steady);
    }

    if (observe_mode) {
      // Single sender: the advisor reconstructs occupancy from event
      // order, so the trace must arrive in simulation order.
      const std::size_t batch = std::max<std::size_t>(
          1, args.get_unsigned("observe-batch", 64));
      return run_observe_mode(
          client_config, workload, phases, batch, seed,
          args.get_unsigned("assert-recommended", 0),
          args.get_unsigned("assert-min-refits", 0), args.has("json"));
    }

    // Request modes.  With --phases, requests are allocated per phase in
    // proportion to rps*duration, each phase paced with its own process
    // parameters against the phase-scaled workload.
    std::vector<double> schedule;
    std::vector<std::size_t> phase_of;
    std::vector<Workload> phase_workloads;
    std::deque<PhaseTally> phase_tallies;
    std::size_t total_requests = requests;
    if (!phases.empty()) {
      double offset = 0.0;
      for (std::size_t p = 0; p < phases.size(); ++p) {
        if (!(phases[p].rps > 0.0)) {
          raise(ErrorKind::kUsage,
                "--phases: request modes need rps > 0 in every phase");
        }
        const auto n = static_cast<std::size_t>(std::max(
            1.0, std::floor(phases[p].rps * phases[p].duration + 0.5)));
        const std::vector<double> local = arrival_schedule(
            n, phases[p].rps, phases[p].peakedness, phases[p].mu,
            seed + 1000 * p + 1);
        for (const double at : local) {
          schedule.push_back(offset + at);
          phase_of.push_back(p);
        }
        offset += phases[p].duration;
        phase_workloads.push_back(phase_workload(workload, phases[p]));
        phase_tallies.emplace_back();
      }
      total_requests = schedule.size();
    } else {
      schedule = arrival_schedule(requests, rps, peakedness, mu, seed);
    }
    const std::size_t requests_planned = total_requests;

    Tally tally;
    const Clock::time_point start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(senders);
    for (unsigned s = 0; s < senders; ++s) {
      threads.emplace_back([&, s] {
        client::ClientConfig config = client_config;
        config.seed = seed + s;  // decorrelate jitter across senders
        client::XbarClient cli(config);
        // Sender 0 leads with the malformed frames: each must come back
        // as a typed parse error, not a hang or a dropped connection.
        if (s == 0) {
          for (std::size_t m = 0; m < malformed; ++m) {
            const client::CallResult result = cli.call("this is not json");
            if (result.outcome == client::Outcome::kOk &&
                contains(result.response, "\"kind\":\"parse\"")) {
              tally.malformed_ok.fetch_add(1, std::memory_order_relaxed);
            } else if (result.outcome == client::Outcome::kOk) {
              tally.error_other.fetch_add(1, std::memory_order_relaxed);
            } else {
              tally.by_outcome[outcome_index(result.outcome)].fetch_add(
                  1, std::memory_order_relaxed);
            }
          }
        }
        const bool paced = !phase_of.empty() || rps > 0.0;
        for (std::size_t i = s; i < requests_planned; i += senders) {
          const double scale =
              unique ? 1.0 + 1e-4 * static_cast<double>(i + 1) : 1.0;
          const Workload& w =
              phase_of.empty() ? workload : phase_workloads[phase_of[i]];
          const std::string line =
              render_request(w, method, i, scale, solver, sizes,
                             deadline_ms, no_cache, priority);
          std::this_thread::sleep_until(
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(schedule[i])));
          const Clock::time_point sent = Clock::now();
          const client::CallResult result = cli.call(line);
          const Clock::time_point done = Clock::now();
          // Coordinated-omission correction: under pacing the headline
          // latency runs from the *intended* arrival, so the queueing a
          // stalled server forced onto this sender is charged to it.
          const double sent_s =
              std::chrono::duration<double>(sent - start).count();
          const double done_s =
              std::chrono::duration<double>(done - start).count();
          const client::OpenLoopSample sample = client::open_loop_latency(
              paced ? schedule[i] : sent_s, sent_s, done_s);
          tally.latency.record(sample.corrected);
          tally.service_latency.record(sample.service);
          const std::size_t index = outcome_index(result.outcome);
          tally.by_outcome[index].fetch_add(1, std::memory_order_relaxed);
          tally.latency_by_outcome[index].record(sample.service);
          if (result.response_class != client::ResponseClass::kNone) {
            tally
                .by_response_class[static_cast<std::size_t>(
                    result.response_class)]
                .fetch_add(1, std::memory_order_relaxed);
          }
          const bool request_ok =
              result.outcome == client::Outcome::kOk &&
              contains(result.response, "\"status\":\"ok\"");
          if (!phase_of.empty()) {
            PhaseTally& pt = phase_tallies[phase_of[i]];
            pt.sent.fetch_add(1, std::memory_order_relaxed);
            pt.latency.record(sample.corrected);
            (request_ok ? pt.ok : pt.failed)
                .fetch_add(1, std::memory_order_relaxed);
          }
          if (result.outcome == client::Outcome::kOk) {
            classify_response(result.response, tally);
          }
        }
        tally.absorb(cli.counters(), cli.breaker().times_opened());
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    const service::Histogram::Snapshot lat = tally.latency.snapshot();
    const service::Histogram::Snapshot service_lat =
        tally.service_latency.snapshot();
    const service::Histogram::Snapshot ok_service =
        tally.latency_by_outcome[outcome_index(client::Outcome::kOk)]
            .snapshot();
    const std::uint64_t ok =
        tally.by_outcome[outcome_index(client::Outcome::kOk)].load();
    const std::uint64_t overloaded_typed =
        tally.by_outcome[outcome_index(client::Outcome::kOverloaded)]
            .load();
    const std::uint64_t stale_served =
        tally
            .by_response_class[static_cast<std::size_t>(
                client::ResponseClass::kStale)]
            .load();
    const std::uint64_t bound_served =
        tally
            .by_response_class[static_cast<std::size_t>(
                client::ResponseClass::kBoundOnly)]
            .load();
    const std::uint64_t cached = tally.cached.load();
    const std::uint64_t error_other = tally.error_other.load();
    const std::uint64_t malformed_ok = tally.malformed_ok.load();
    const std::uint64_t breaker_opened = tally.breaker_opened.load();
    std::uint64_t failed_transport = 0;
    for (std::size_t c = 0; c < client::kOutcomeCount; ++c) {
      if (c != outcome_index(client::Outcome::kOk)) {
        failed_transport += tally.by_outcome[c].load();
      }
    }
    const double achieved =
        wall > 0.0 ? static_cast<double>(ok) / wall : 0.0;
    const double success_rate =
        requests_planned > 0
            ? static_cast<double>(ok) / static_cast<double>(requests_planned)
            : 1.0;
    // Typed = the server made a decision and said so in a frame: an ok
    // answer (exact/stale/bound) or a typed overloaded/shed response.
    const double typed_rate =
        requests_planned > 0
            ? static_cast<double>(ok + overloaded_typed) /
                  static_cast<double>(requests_planned)
            : 1.0;

    if (args.has("json")) {
      report::JsonWriter json(std::cout);
      json.begin_object();
      json.key("requests").value(
          static_cast<std::uint64_t>(requests_planned));
      if (!phases.empty()) {
        json.key("phases").begin_array();
        for (std::size_t p = 0; p < phases.size(); ++p) {
          const service::Histogram::Snapshot snap =
              phase_tallies[p].latency.snapshot();
          json.begin_object();
          json.key("duration_s").value(phases[p].duration);
          json.key("rps").value(phases[p].rps);
          json.key("sent").value(phase_tallies[p].sent.load());
          json.key("ok").value(phase_tallies[p].ok.load());
          json.key("failed").value(phase_tallies[p].failed.load());
          json.key("latency_ms");
          write_quantiles_json(json, snap);
          json.end_object();
        }
        json.end_array();
      }
      json.key("wall_seconds").value(wall);
      json.key("achieved_rps").value(achieved);
      json.key("success_rate").value(success_rate);
      json.key("by_outcome").begin_object();
      for (std::size_t c = 0; c < client::kOutcomeCount; ++c) {
        json.key(client::to_string(static_cast<client::Outcome>(c)))
            .value(tally.by_outcome[c].load());
      }
      json.end_object();
      json.key("cached").value(cached);
      json.key("deadline").value(tally.deadline.load());
      json.key("shutdown").value(tally.shutdown.load());
      json.key("error_other").value(error_other);
      json.key("malformed_ok").value(malformed_ok);
      json.key("retries").value(tally.retries.load());
      json.key("attempt_errors").begin_object();
      json.key("timeout").value(tally.attempt_timeouts.load());
      json.key("refused").value(tally.attempt_refused.load());
      json.key("reset").value(tally.attempt_resets.load());
      json.key("overloaded").value(tally.attempt_overloaded.load());
      json.end_object();
      json.key("breaker_opened").value(breaker_opened);
      json.key("breaker_rejections").value(tally.breaker_rejections.load());
      json.key("typed_rate").value(typed_rate);
      json.key("by_response_class").begin_object();
      for (std::size_t c = 0; c < client::kResponseClassCount; ++c) {
        json.key(client::to_string(static_cast<client::ResponseClass>(c)))
            .value(tally.by_response_class[c].load());
      }
      json.end_object();
      json.key("latency_ms");
      write_quantiles_json(json, lat);
      json.key("service_latency_ms");
      write_quantiles_json(json, service_lat);
      json.key("latency_ms_by_class").begin_object();
      for (std::size_t c = 0; c < client::kOutcomeCount; ++c) {
        const service::Histogram::Snapshot snap =
            tally.latency_by_outcome[c].snapshot();
        if (snap.count == 0) {
          continue;
        }
        json.key(client::to_string(static_cast<client::Outcome>(c)));
        write_quantiles_json(json, snap);
      }
      json.end_object();
      json.end_object();
    } else {
      std::cout << "requests " << requests_planned << "  wall " << wall
                << "s  achieved " << achieved << " rps  success rate "
                << success_rate << "\n"
                << "ok " << ok << " (cached " << cached << ", deadline "
                << tally.deadline.load() << ", shutdown "
                << tally.shutdown.load() << ", other-errors " << error_other
                << ")\n"
                << "transport failures " << failed_transport
                << "  retries " << tally.retries.load()
                << "  breaker opened " << breaker_opened << "\n"
                << "latency (CO-corrected) p50 " << lat.p50 * 1e3
                << "ms  p99 " << lat.p99 * 1e3 << "ms  |  service p50 "
                << service_lat.p50 * 1e3 << "ms  p99 "
                << service_lat.p99 * 1e3 << "ms\n";
      if (overload_report) {
        std::cout << "typed rate " << typed_rate << "  response classes:";
        for (std::size_t c = 0; c < client::kResponseClassCount; ++c) {
          std::cout << "  "
                    << client::to_string(
                           static_cast<client::ResponseClass>(c))
                    << " " << tally.by_response_class[c].load();
        }
        std::cout << "\nadmitted (ok) service p99 " << ok_service.p99 * 1e3
                  << "ms over " << ok_service.count << " requests\n";
      }
      for (std::size_t p = 0; p < phases.size(); ++p) {
        const service::Histogram::Snapshot snap =
            phase_tallies[p].latency.snapshot();
        std::cout << "phase " << p << " (" << phases[p].duration << "s @ "
                  << phases[p].rps << " rps): sent "
                  << phase_tallies[p].sent.load() << "  ok "
                  << phase_tallies[p].ok.load() << "  failed "
                  << phase_tallies[p].failed.load() << "  p50 "
                  << snap.p50 * 1e3 << "ms  p99 " << snap.p99 * 1e3
                  << "ms\n";
      }
      for (std::size_t c = 0; c < client::kOutcomeCount; ++c) {
        const service::Histogram::Snapshot snap =
            tally.latency_by_outcome[c].snapshot();
        if (snap.count == 0) {
          continue;
        }
        std::cout << "latency ms ["
                  << client::to_string(static_cast<client::Outcome>(c))
                  << "] count " << snap.count << ": p50 " << snap.p50 * 1e3
                  << "  p90 " << snap.p90 * 1e3 << "  p99 "
                  << snap.p99 * 1e3 << "  max " << snap.max * 1e3 << "\n";
      }
      if (malformed > 0) {
        std::cout << "malformed frames answered with parse errors: "
                  << malformed_ok << "/" << malformed << "\n";
      }
    }

    const bool transport_ok = min_success_rate >= 0.0
                                  ? success_rate >= min_success_rate
                                  : failed_transport == 0;
    // Overload runs shed by design: the ladder's typed refusals land in
    // error_other / deadline accounting paths only when *untyped*, so the
    // min-typed-rate gate replaces the zero-error discipline there.
    const bool overload_ok =
        (min_typed_rate < 0.0 || typed_rate >= min_typed_rate) &&
        stale_served >= min_stale && bound_served >= min_bound &&
        (max_ok_p99_ms <= 0.0 || ok_service.p99 * 1e3 <= max_ok_p99_ms);
    const bool assertions_hold = transport_ok && error_other == 0 &&
                                 malformed_ok == malformed &&
                                 cached >= min_cached &&
                                 breaker_opened >= min_breaker_opens &&
                                 overload_ok;
    return assertions_hold ? 0 : 2;
  } catch (const xbar::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
