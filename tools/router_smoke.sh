#!/bin/sh
# Fleet smoke for xbar_router: three xbar_serve backends (one of them
# behind a faultless xbar_chaosproxy, so it can be "killed" by killing the
# proxy and later resurrected on the same port), chaos applied mid-run.
#
#   xbar_loadgen -> xbar_router -> { serve1, serve2, proxy3 -> serve3 }
#
# Phases:
#   A  affinity     — two identical --unique runs (same seed): the second
#                     must mostly hit the backends' result caches, which
#                     only happens if consistent hashing kept each key on
#                     the same backend across runs.
#   B  killed       — kill -9 the proxy in front of backend 3 mid-fleet;
#                     a >=99%-success run must ride through on failover,
#                     the router must *eject* the dead backend, and after
#                     the proxy is resurrected the router must *readmit*
#                     it (both observed via the router's stats method).
#   C  stalled      — SIGSTOP backend 1 (connections stay open, nothing
#                     answers: the failure mode ejection exists for); a
#                     >=99%-success run must ride through on hedges +
#                     failover; SIGCONT must lead to readmission.
#
# Cross-cutting assertions: hedge accounting is exact (won + lost ==
# launched — every hedged request elected exactly one winner, so no
# request id was ever answered twice; a duplicate line would also
# desynchronize the pipelined loadgen clients and fail their assertions),
# and every process drains cleanly on SIGTERM.
#
# usage: router_smoke.sh <xbar_serve> <xbar_router> <xbar_chaosproxy> \
#                        <xbar_loadgen> <xbar_client> <workdir>
set -e

SERVE="$1"
ROUTER="$2"
PROXY="$3"
LOADGEN="$4"
CLIENT="$5"
DIR="$6"

SMOKE_NAME=router_smoke
. "$(dirname "$0")/smoke_lib.sh"

mkdir -p "$DIR"
B1_PORT_FILE="$DIR/router_b1_port.$$"
B2_PORT_FILE="$DIR/router_b2_port.$$"
B3_PORT_FILE="$DIR/router_b3_port.$$"
P3_PORT_FILE="$DIR/router_p3_port.$$"
ROUTER_PORT_FILE="$DIR/router_port.$$"
rm -f "$B1_PORT_FILE" "$B2_PORT_FILE" "$B3_PORT_FILE" "$P3_PORT_FILE" \
  "$ROUTER_PORT_FILE"

# --- the fleet -------------------------------------------------------------
# Backends are thread-per-connection, so their --threads must cover the
# router's warm pool (--pool-idle) plus transient hedge/failover
# connections; 4 threads against --pool-idle=2 leaves that slack.
"$SERVE" --port=0 --threads=4 --queue=64 --port-file="$B1_PORT_FILE" &
B1_PID=$!
smoke_track "$B1_PID"
"$SERVE" --port=0 --threads=4 --queue=64 --port-file="$B2_PORT_FILE" &
B2_PID=$!
smoke_track "$B2_PID"
"$SERVE" --port=0 --threads=4 --queue=64 --port-file="$B3_PORT_FILE" &
B3_PID=$!
smoke_track "$B3_PID"
wait_for_file "$B1_PORT_FILE" || fail "backend 1 never wrote its port file"
wait_for_file "$B2_PORT_FILE" || fail "backend 2 never wrote its port file"
wait_for_file "$B3_PORT_FILE" || fail "backend 3 never wrote its port file"
B1_PORT=$(cat "$B1_PORT_FILE")
B2_PORT=$(cat "$B2_PORT_FILE")
B3_PORT=$(cat "$B3_PORT_FILE")

# Backend 3 sits behind a faultless proxy: killing the proxy severs it
# (connection refused), restarting the proxy on the same port revives it.
"$PROXY" --upstream-port="$B3_PORT" --port=0 --port-file="$P3_PORT_FILE" &
P3_PID=$!
smoke_track "$P3_PID"
wait_for_file "$P3_PORT_FILE" || fail "proxy never wrote its port file"
P3_PORT=$(cat "$P3_PORT_FILE")

"$ROUTER" --port=0 --threads=4 --queue=64 \
  --backend=127.0.0.1:"$B1_PORT" --backend=127.0.0.1:"$B2_PORT" \
  --backend=127.0.0.1:"$P3_PORT" \
  --probe-interval-ms=100 --probe-timeout-ms=250 \
  --eject-after=3 --readmit-after=2 \
  --connect-timeout-ms=500 --request-timeout-ms=1000 \
  --hedge-cold-ms=50 --pool-idle=2 \
  --port-file="$ROUTER_PORT_FILE" 2> "$DIR/router_stderr.$$" &
ROUTER_PID=$!
smoke_track "$ROUTER_PID"
wait_for_file "$ROUTER_PORT_FILE" || fail "router never wrote its port file"
ROUTER_PORT=$(cat "$ROUTER_PORT_FILE")

router_stats() {
  "$CLIENT" --port="$ROUTER_PORT" --method=stats 2>/dev/null || true
}

# "ejections readmissions" from the router's membership counters (the
# per-backend copies appear later in the document, so anchor on the
# membership object itself).
membership_counts() {
  router_stats |
    sed -n 's/.*"membership":{"ejections":\([0-9]*\),"readmissions":\([0-9]*\)}.*/\1 \2/p'
}

wait_for_counter() {
  # wait_for_counter <field-index: 1|2> <floor> <label>
  _j=0
  while [ "$_j" -lt 80 ]; do
    _counts=$(membership_counts)
    _value=$(printf '%s' "$_counts" | cut -d' ' -f"$1")
    [ -n "$_value" ] && [ "$_value" -ge "$2" ] && return 0
    _j=$((_j + 1))
    sleep 0.1
  done
  fail "router stats never reported $3 >= $2 (last: '${_counts:-none}')"
}

# --- phase A: placement affinity ------------------------------------------
# Same seed twice: identical key sequence.  Run 1 warms the fleet's result
# caches; run 2 must mostly hit them — which requires that the ring sent
# each key to the same backend both times.
"$LOADGEN" --port="$ROUTER_PORT" --requests=150 --senders=4 \
  --unique --seed=7 || fail "warmup run failed"
"$LOADGEN" --port="$ROUTER_PORT" --requests=150 --senders=4 \
  --unique --seed=7 --min-cached=100 ||
  fail "affinity run failed (cache-hit floor of 100/150 not met)"

# --- phase B: a backend dies mid-fleet ------------------------------------
kill -9 "$P3_PID" 2>/dev/null || true
smoke_untrack "$P3_PID"

"$LOADGEN" --port="$ROUTER_PORT" --requests=200 --senders=4 \
  --unique --seed=8 --min-success-rate=0.99 ||
  fail "kill phase: success rate fell below 99% with one dead backend"
wait_for_counter 1 1 "ejections"

# Resurrect backend 3 by restarting its proxy on the same (now free) port;
# the prober must readmit it.
rm -f "$P3_PORT_FILE"
"$PROXY" --upstream-port="$B3_PORT" --port="$P3_PORT" \
  --port-file="$P3_PORT_FILE" &
P3_PID=$!
smoke_track "$P3_PID"
wait_for_file "$P3_PORT_FILE" || fail "restarted proxy never wrote its port file"
wait_for_counter 2 1 "readmissions"

# --- phase C: a backend stalls mid-fleet ----------------------------------
# SIGSTOP freezes backend 1 with its sockets open: connects succeed,
# nothing answers.  Hedges + request timeouts must carry the run, probes
# must time out and eject it.
kill -STOP "$B1_PID"
"$LOADGEN" --port="$ROUTER_PORT" --requests=200 --senders=4 \
  --unique --seed=9 --min-success-rate=0.99 ||
  fail "stall phase: success rate fell below 99% with one stalled backend"
wait_for_counter 1 2 "ejections (stall)"

kill -CONT "$B1_PID"
wait_for_counter 2 2 "readmissions (after SIGCONT)"

# --- hedge accounting ------------------------------------------------------
HEDGES=$(router_stats |
  sed -n 's/.*"hedging":{"delay_ms":[^,]*,"launched":\([0-9]*\),"won":\([0-9]*\),"lost":\([0-9]*\),"suppressed":[0-9]*}.*/\1 \2 \3/p')
[ -n "$HEDGES" ] || fail "router stats carried no hedging object"
LAUNCHED=$(printf '%s' "$HEDGES" | cut -d' ' -f1)
WON=$(printf '%s' "$HEDGES" | cut -d' ' -f2)
LOST=$(printf '%s' "$HEDGES" | cut -d' ' -f3)
[ $((WON + LOST)) -eq "$LAUNCHED" ] ||
  fail "hedge accounting broken: launched=$LAUNCHED won=$WON lost=$LOST"

# --- clean drain -----------------------------------------------------------
kill -TERM "$ROUTER_PID"
ROUTER_STATUS=0
wait "$ROUTER_PID" || ROUTER_STATUS=$?
smoke_untrack "$ROUTER_PID"
[ "$ROUTER_STATUS" -eq 0 ] ||
  fail "router exited $ROUTER_STATUS after SIGTERM"

kill -TERM "$P3_PID"
wait "$P3_PID" || fail "proxy exited nonzero after SIGTERM"
smoke_untrack "$P3_PID"
for PID in "$B1_PID" "$B2_PID" "$B3_PID"; do
  kill -TERM "$PID"
  wait "$PID" || fail "a backend exited nonzero after SIGTERM"
  smoke_untrack "$PID"
done
rm -f "$B1_PORT_FILE" "$B2_PORT_FILE" "$B3_PORT_FILE" "$P3_PORT_FILE" \
  "$ROUTER_PORT_FILE" "$DIR/router_stderr.$$"

echo "router_smoke: ok (affinity held, kill+stall survived at >=99%, ejections+readmissions observed, hedges $LAUNCHED=${WON}w+${LOST}l)"
