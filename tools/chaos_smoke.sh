#!/bin/sh
# Chaos smoke for the resilient client stack:
#   xbar_loadgen / xbar_client  ->  xbar_chaosproxy  ->  xbar_serve
#
# Phase 1 — fault schedule on the request path.  A single-sender loadgen
# run walks into four consecutive connection faults (drop, reset,
# truncate, garbage), which is exactly the breaker's min_samples budget:
# the circuit breaker must open at least once, and the retry budget must
# still deliver >= 99% of requests.
#
# Phase 2 — slow-reader protection.  A `stall` fault makes the proxy stop
# draining responses while holding the upstream connection open; a large
# sweep response then jams the server's (deliberately tiny) send buffer,
# and the per-connection send timeout must disconnect the dead reader and
# count it in stats instead of blocking a worker forever.
#
# Exit 0 only when: loadgen's assertions hold, the client/proxy/server all
# exit cleanly, and the server's stats counted at least one slow-reader
# disconnect.  usage:
#   chaos_smoke.sh <xbar_serve> <xbar_chaosproxy> <xbar_loadgen> \
#                  <xbar_client> <workdir>
set -e

SERVE="$1"
PROXY="$2"
LOADGEN="$3"
CLIENT="$4"
DIR="$5"

SMOKE_NAME=chaos_smoke
. "$(dirname "$0")/smoke_lib.sh"

mkdir -p "$DIR"
SERVE_PORT_FILE="$DIR/chaos_serve_port.$$"
PROXY_PORT_FILE="$DIR/chaos_proxy_port.$$"
rm -f "$SERVE_PORT_FILE" "$PROXY_PORT_FILE"

# --- server: small send buffer + short send timeout so phase 2's stalled
# reader trips deterministically; generous idle timeout so phase 1's
# retry pauses never reap a live connection.
"$SERVE" --port=0 --threads=2 --queue=64 \
  --send-timeout-ms=300 --send-buffer=2048 --idle-timeout-ms=30000 \
  --port-file="$SERVE_PORT_FILE" &
SERVE_PID=$!
smoke_track "$SERVE_PID"
wait_for_file "$SERVE_PORT_FILE" || fail "server never wrote its port file"
SERVE_PORT=$(cat "$SERVE_PORT_FILE")

# --- phase 1: fault schedule vs the retrying loadgen -----------------------
"$PROXY" --upstream-port="$SERVE_PORT" --port=0 \
  --faults=0:drop,1:reset,2:truncate:5,3:garbage \
  --port-file="$PROXY_PORT_FILE" &
PROXY_PID=$!
smoke_track "$PROXY_PID"
wait_for_file "$PROXY_PORT_FILE" || fail "proxy never wrote its port file"
PROXY_PORT=$(cat "$PROXY_PORT_FILE")

LG_STATUS=0
"$LOADGEN" --proxy="$PROXY_PORT" --requests=300 --senders=1 \
  --retries=6 --backoff-base-ms=20 --backoff-cap-ms=500 \
  --min-success-rate=0.99 --min-breaker-opens=1 \
  --json > "$DIR/chaos_loadgen.json" || LG_STATUS=$?
[ "$LG_STATUS" -eq 0 ] || fail "loadgen exited $LG_STATUS (assertions: >=99% success, breaker opened)"

kill -TERM "$PROXY_PID"
wait "$PROXY_PID" || fail "chaos proxy exited nonzero after SIGTERM"
smoke_untrack "$PROXY_PID"
rm -f "$PROXY_PORT_FILE"

# --- phase 2: stalled reader must be disconnected, not block a worker ------
"$PROXY" --upstream-port="$SERVE_PORT" --port=0 \
  --faults=0:stall --stall-max-s=5 \
  --port-file="$PROXY_PORT_FILE" &
PROXY_PID=$!
smoke_track "$PROXY_PID"
wait_for_file "$PROXY_PORT_FILE" || fail "stall proxy never wrote its port file"
PROXY_PORT=$(cat "$PROXY_PORT_FILE")

# A sweep over many sizes renders a response far larger than the server's
# clamped send buffer; the stalling proxy never drains it.  The client
# call is *expected* to fail (timeout) — that exit code is part of the
# scenario, not an error.
SIZES="2"
n=3
while [ "$n" -le 64 ]; do SIZES="$SIZES,$n"; n=$((n + 1)); done
"$CLIENT" --port="$PROXY_PORT" --timeout-ms=1500 --retries=1 \
  --request="{\"method\":\"sweep\",\"scenario\":{\"switch\":{\"inputs\":4},\"classes\":[{\"shape\":\"poisson\",\"rho\":0.4}]},\"sizes\":[$SIZES]}" \
  > /dev/null 2>&1 || true

# The server's send timeout is 300 ms; give it a few seconds to fire and
# be counted.
i=0
SLOW=0
while [ "$i" -lt 40 ]; do
  STATS=$("$CLIENT" --port="$SERVE_PORT" --method=stats 2>/dev/null || true)
  SLOW=$(printf '%s' "$STATS" | sed -n 's/.*"slow_reader_disconnects":\([0-9][0-9]*\).*/\1/p')
  [ -n "$SLOW" ] && [ "$SLOW" -ge 1 ] && break
  i=$((i + 1))
  sleep 0.25
done
[ -n "$SLOW" ] && [ "$SLOW" -ge 1 ] || fail "stats never counted a slow-reader disconnect (got '${SLOW:-none}')"

kill -TERM "$PROXY_PID"
wait "$PROXY_PID" || fail "stall proxy exited nonzero after SIGTERM"
smoke_untrack "$PROXY_PID"

# --- clean drain -----------------------------------------------------------
kill -TERM "$SERVE_PID"
SERVE_STATUS=0
wait "$SERVE_PID" || SERVE_STATUS=$?
smoke_untrack "$SERVE_PID"
[ "$SERVE_STATUS" -eq 0 ] || fail "server exited $SERVE_STATUS after SIGTERM"
rm -f "$SERVE_PORT_FILE" "$PROXY_PORT_FILE"

echo "chaos_smoke: ok (>=99% success through faults, breaker opened, slow_reader_disconnects=$SLOW)"
