# Shared plumbing for the tools/*_smoke.sh scripts.  Source it (after
# setting SMOKE_NAME) — do not execute it.
#
#   SMOKE_NAME=my_smoke
#   . "$(dirname "$0")/smoke_lib.sh"
#
# What it provides:
#   smoke_track PID     register a background process for cleanup
#   smoke_untrack PID   deregister after a successful `wait`
#   wait_for_file PATH  poll (10s cap) until PATH is non-empty — the
#                       port-file handshake every daemon here uses with
#                       --port=0, so nothing ever binds a fixed port and
#                       parallel ctest runs cannot collide
#   fail MESSAGE        diagnostic to stderr, exit 1
#
# Cleanup is a single EXIT trap that kills every still-tracked pid, so a
# `set -e` failure (or a fail()) anywhere in a script can no longer leak
# orphaned servers/proxies that outlive the test and pin ports.

SMOKE_PIDS=""

smoke_track() {
  SMOKE_PIDS="$SMOKE_PIDS $1"
}

smoke_untrack() {
  _rest=""
  for _pid in $SMOKE_PIDS; do
    [ "$_pid" = "$1" ] || _rest="$_rest $_pid"
  done
  SMOKE_PIDS="$_rest"
}

smoke_cleanup() {
  for _pid in $SMOKE_PIDS; do
    kill -9 "$_pid" 2>/dev/null || true
  done
}
trap smoke_cleanup EXIT

fail() {
  echo "${SMOKE_NAME:-smoke}: $1" >&2
  exit 1
}

wait_for_file() {
  _i=0
  while [ ! -s "$1" ]; do
    _i=$((_i + 1))
    [ "$_i" -gt 100 ] && return 1
    sleep 0.1
  done
  return 0
}
