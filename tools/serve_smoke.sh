#!/bin/sh
# Loopback smoke for xbar_serve + xbar_loadgen:
#   * start the server on an ephemeral port (discovered via --port-file),
#   * drive REQUESTS requests through the load generator, including one
#     malformed frame (must come back as a typed parse error) and a
#     cache-hit floor (the repeated scenario must mostly hit the result
#     cache),
#   * SIGTERM the server and require a clean drain with exit 0.
#
# usage: serve_smoke.sh <xbar_serve> <xbar_loadgen> <workdir> [requests]
# Any failure exits nonzero; the caller (ctest / CI) owns the timeout.
set -e

SERVE="$1"
LOADGEN="$2"
DIR="$3"
REQUESTS="${4:-200}"

SMOKE_NAME=serve_smoke
. "$(dirname "$0")/smoke_lib.sh"

mkdir -p "$DIR"
PORT_FILE="$DIR/serve_port.$$"
rm -f "$PORT_FILE"

"$SERVE" --port=0 --threads=2 --queue=64 --port-file="$PORT_FILE" &
PID=$!
smoke_track "$PID"

wait_for_file "$PORT_FILE" || fail "server never wrote $PORT_FILE"
PORT=$(cat "$PORT_FILE")

LG_STATUS=0
"$LOADGEN" --port="$PORT" --requests="$REQUESTS" --senders=4 \
  --malformed=1 --min-cached=$((REQUESTS / 2)) || LG_STATUS=$?

kill -TERM "$PID"
SERVE_STATUS=0
wait "$PID" || SERVE_STATUS=$?
smoke_untrack "$PID"
rm -f "$PORT_FILE"

[ "$LG_STATUS" -eq 0 ] || fail "loadgen exited $LG_STATUS"
[ "$SERVE_STATUS" -eq 0 ] || fail "server exited $SERVE_STATUS after SIGTERM"
echo "serve_smoke: ok ($REQUESTS requests, clean drain)"
