#!/bin/sh
# Loopback smoke for xbar_serve + xbar_loadgen:
#   * start the server on an ephemeral port (discovered via --port-file),
#   * drive REQUESTS requests through the load generator, including one
#     malformed frame (must come back as a typed parse error) and a
#     cache-hit floor (the repeated scenario must mostly hit the result
#     cache),
#   * SIGTERM the server and require a clean drain with exit 0.
#
# usage: serve_smoke.sh <xbar_serve> <xbar_loadgen> <workdir> [requests]
# Any failure exits nonzero; the caller (ctest / CI) owns the timeout.
set -e

SERVE="$1"
LOADGEN="$2"
DIR="$3"
REQUESTS="${4:-200}"

mkdir -p "$DIR"
PORT_FILE="$DIR/serve_port.$$"
rm -f "$PORT_FILE"

"$SERVE" --port=0 --threads=2 --queue=64 --port-file="$PORT_FILE" &
PID=$!

i=0
while [ ! -s "$PORT_FILE" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve_smoke: server never wrote $PORT_FILE" >&2
    kill -9 "$PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
PORT=$(cat "$PORT_FILE")

LG_STATUS=0
"$LOADGEN" --port="$PORT" --requests="$REQUESTS" --senders=4 \
  --malformed=1 --min-cached=$((REQUESTS / 2)) || LG_STATUS=$?

kill -TERM "$PID"
SERVE_STATUS=0
wait "$PID" || SERVE_STATUS=$?
rm -f "$PORT_FILE"

if [ "$LG_STATUS" -ne 0 ]; then
  echo "serve_smoke: loadgen exited $LG_STATUS" >&2
  exit 1
fi
if [ "$SERVE_STATUS" -ne 0 ]; then
  echo "serve_smoke: server exited $SERVE_STATUS after SIGTERM" >&2
  exit 1
fi
echo "serve_smoke: ok ($REQUESTS requests, clean drain)"
