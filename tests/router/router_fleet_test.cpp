// In-process integration tests for the Router: real service::Servers as
// backends (plus hand-rolled fake backends for corruption and stalls),
// raw NDJSON connections as the client.  Placement is computed with the
// same HashRing the router uses, so every test deterministically finds a
// request owned by the backend it wants to exercise.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "router/hash_ring.hpp"
#include "router/router.hpp"
#include "service/connection.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace xbar::router {
namespace {

/// One raw NDJSON connection (the router speaks the server's protocol,
/// so this mirrors the server loopback tests' client).
class Conn {
 public:
  explicit Conn(std::uint16_t port)
      : socket_(service::dial("127.0.0.1", port)),
        reader_(socket_.fd(), 1 << 20) {}

  [[nodiscard]] bool connected() const { return socket_.valid(); }

  std::string rpc(const std::string& line) {
    if (!socket_.valid() || !service::write_line(socket_.fd(), line)) {
      return std::string();
    }
    std::string out;
    return reader_.read_line(out) == service::LineReader::Status::kLine
               ? out
               : std::string();
  }

 private:
  service::Socket socket_;
  service::LineReader reader_;
};

/// A backend that is not xbar_serve: answers every request line with a
/// fixed frame (kGarbage) or accepts and never answers at all (kStall).
class FakeBackend {
 public:
  enum class Mode { kGarbage, kStall };

  explicit FakeBackend(Mode mode) : mode_(mode) {
    listener_ = service::listen_on("127.0.0.1", 0, port_);
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~FakeBackend() { stop(); }

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stop accepting, sever every open connection, join all threads.
  /// Call only after the router holding pooled connections is stopped
  /// (or rely on the severing to unblock its readers).
  void stop() {
    if (stopped_.exchange(true)) {
      return;
    }
    ::shutdown(listener_.fd(), SHUT_RDWR);  // unblock the accept()
    if (acceptor_.joinable()) {
      acceptor_.join();
    }
    for (const int fd : fds_) {
      ::shutdown(fd, SHUT_RDWR);  // unblock blocked readers
    }
    for (std::thread& conn : conns_) {
      if (conn.joinable()) {
        conn.join();
      }
    }
    for (const int fd : fds_) {
      ::close(fd);
    }
    listener_.reset();
  }

 private:
  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd < 0) {
        return;  // listener shut down
      }
      fds_.push_back(fd);
      conns_.emplace_back([this, fd] { serve(fd); });
    }
  }

  void serve(int fd) {
    service::LineReader reader(fd, 1 << 16);
    std::string line;
    while (reader.read_line(line) == service::LineReader::Status::kLine) {
      if (mode_ == Mode::kGarbage) {
        if (!service::write_line(fd, R"({"bogus":1})")) {
          return;
        }
      }
      // kStall: swallow the request and say nothing — the failure mode
      // that looks exactly like a frozen process behind a live socket.
    }
  }

  Mode mode_;
  service::Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};
  std::thread acceptor_;
  std::vector<int> fds_;  // touched only by acceptor_, read after join
  std::vector<std::thread> conns_;
};

service::ServerConfig backend_config() {
  service::ServerConfig config;
  // Thread-per-connection: cover the router's warm pool plus probe and
  // hedge transients.
  config.workers = 6;
  config.idle_poll_seconds = 0.05;
  return config;
}

/// Router over `ports`, tuned for test speed; the prober runs its
/// immediate first round and then stays out of the way for 60s.
RouterConfig router_config(const std::vector<std::uint16_t>& ports) {
  RouterConfig config;
  for (const std::uint16_t port : ports) {
    config.backends.push_back({"127.0.0.1", port});
  }
  config.workers = 2;
  config.idle_poll_seconds = 0.05;
  config.membership.probe_interval_seconds = 60.0;
  config.probe_timeout_seconds = 0.25;
  config.backend_client.connect_timeout_seconds = 0.5;
  config.backend_client.request_timeout_seconds = 1.0;
  config.pool_max_idle = 2;
  config.hedge.enabled = false;  // hedge tests switch it on explicitly
  return config;
}

std::string solve_line(int id, double rho) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                R"({"method":"solve","id":%d,"scenario":{"switch":)"
                R"({"inputs":8},"classes":[{"name":"voice","shape":)"
                R"("poisson","rho":%.4f}]}})",
                id, rho);
  return std::string(buffer);
}

/// A solve line whose cache key the ring places on backend `owner` first
/// (under zero load, all alive) — computed with the router's own ring,
/// so the test drives the exact backend it means to.
std::string line_owned_by(std::size_t owner, std::size_t backends,
                          int id) {
  const HashRing ring(backends);
  const std::vector<char> alive(backends, 1);
  const std::vector<std::size_t> idle(backends, 0);
  for (int k = 0; k < 1000; ++k) {
    const std::string line = solve_line(id, 0.10 + 0.0007 * k);
    const service::Request request = service::parse_request(line);
    if (ring.plan(HashRing::hash_key(request.cache_key), alive, idle)
            .front() == owner) {
      return line;
    }
  }
  ADD_FAILURE() << "no key found owned by backend " << owner;
  return solve_line(id, 0.5);
}

std::uint16_t dead_port() {
  std::uint16_t port = 0;
  {
    service::Socket listener = service::listen_on("127.0.0.1", 0, port);
  }
  return port;
}

TEST(RouterFleet, LocalMethodsAreAnsweredByTheRouterItself) {
  service::Server backend(backend_config());
  backend.start();
  Router router(router_config({backend.port()}));
  router.start();

  Conn conn(router.port());
  ASSERT_TRUE(conn.connected());
  EXPECT_NE(conn.rpc(R"({"method":"ping","id":1})").find("pong"),
            std::string::npos);
  const std::string stats = conn.rpc(R"({"method":"stats"})");
  EXPECT_NE(stats.find("\"hedging\""), std::string::npos);
  EXPECT_NE(stats.find("\"membership\""), std::string::npos);
  EXPECT_NE(stats.find("\"backends\""), std::string::npos);
  const std::string health = conn.rpc(R"({"method":"health"})");
  EXPECT_NE(health.find("\"live\":true"), std::string::npos);
  EXPECT_NE(health.find("\"alive_backends\":1"), std::string::npos);

  EXPECT_EQ(router.stats().local_ok, 3u);
  EXPECT_EQ(router.stats().routed_ok, 0u);

  // Parse errors are also local: a typed frame, not a dropped line.
  EXPECT_NE(conn.rpc("{ nope").find("\"kind\":\"parse\""),
            std::string::npos);
  EXPECT_EQ(router.stats().local_errors, 1u);

  router.stop();
  backend.stop();
}

TEST(RouterFleet, PlacementAffinityKeepsBackendCachesHot) {
  service::Server b0(backend_config());
  service::Server b1(backend_config());
  b0.start();
  b1.start();
  Router router(router_config({b0.port(), b1.port()}));
  router.start();

  const std::string line = solve_line(1, 0.37);
  Conn first(router.port());
  EXPECT_NE(first.rpc(line).find("\"status\":\"ok\""), std::string::npos);
  // Same fingerprint, different connection: the ring must choose the
  // same backend, whose result cache now answers.
  Conn second(router.port());
  const std::string repeat = second.rpc(line);
  EXPECT_NE(repeat.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(repeat.find("\"cached\":true"), std::string::npos);

  EXPECT_EQ(router.stats().routed_ok, 2u);
  router.stop();
  b0.stop();
  b1.stop();
}

TEST(RouterFleet, FailoverRidesThroughADeadBackend) {
  service::Server live(backend_config());
  live.start();
  // Backend 0 is a dead port: the first data-path attempt is refused and
  // the request must fail over to backend 1 within the same call.
  Router router(router_config({dead_port(), live.port()}));
  router.start();

  Conn conn(router.port());
  const std::string line = line_owned_by(0, 2, 1);
  const std::string response = conn.rpc(line);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);

  const RouterStatsSnapshot stats = router.stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.shed, 0u);

  router.stop();
  live.stop();
}

TEST(RouterFleet, ExhaustionShedsTypedOverloadedFrames) {
  Router router(router_config({dead_port()}));
  router.start();

  Conn conn(router.port());
  // Every attempt is refused; the plan has no one else, so the router
  // sheds a typed "overloaded" frame the client treats as retryable.
  for (int i = 0; i < 3; ++i) {
    const std::string response = conn.rpc(solve_line(i, 0.2 + 0.1 * i));
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(response.find("\"kind\":\"overloaded\""), std::string::npos);
  }
  // Three data-path failures ejected the backend: the plan is now empty
  // and the shed names the reason.
  const std::string response = conn.rpc(solve_line(9, 0.9));
  EXPECT_NE(response.find("\"kind\":\"overloaded\""), std::string::npos);
  EXPECT_NE(response.find("ejected"), std::string::npos);

  const RouterStatsSnapshot stats = router.stats();
  EXPECT_EQ(stats.shed, 4u);
  EXPECT_GE(stats.ejections, 1u);

  router.stop();
}

TEST(RouterFleet, CorruptBackendFramesBecomeTypedIoErrors) {
  FakeBackend fake(FakeBackend::Mode::kGarbage);
  Router router(router_config({fake.port()}));
  router.start();

  Conn conn(router.port());
  // The backend answers `{"bogus":1}` to everything: not a response
  // envelope, so the router must synthesize a typed "io" error under the
  // client's id — never relay the corruption, never crash.
  const std::string response = conn.rpc(solve_line(5, 0.41));
  EXPECT_NE(response.find("\"id\":5"), std::string::npos);
  EXPECT_NE(response.find("\"kind\":\"io\""), std::string::npos);
  EXPECT_NE(response.find("backend sent"), std::string::npos);

  // The stream stays framed: the next request round-trips normally.
  EXPECT_NE(conn.rpc(R"({"method":"ping","id":6})").find("pong"),
            std::string::npos);

  EXPECT_GE(router.stats().relay_rejections, 1u);

  router.stop();
  fake.stop();
}

TEST(RouterFleet, HedgeRescuesAStalledPrimaryWithoutDuplicates) {
  FakeBackend stalled(FakeBackend::Mode::kStall);
  service::Server live(backend_config());
  live.start();

  RouterConfig config = router_config({stalled.port(), live.port()});
  config.hedge.enabled = true;
  config.hedge.cold_delay_seconds = 0.01;
  Router router(std::move(config));
  router.start();

  Conn conn(router.port());
  // Owned by the stalled backend: the primary goes silent, the hedge
  // fires after ~10ms against the live backend, and its frame wins.
  const std::string line = line_owned_by(0, 2, 1);
  const std::string response = conn.rpc(line);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);

  // Structural dedup: exactly one frame per request.  If the loser's
  // frame were ever written too, this ping would read the stale solve
  // frame and desynchronize.
  const std::string ping = conn.rpc(R"({"method":"ping","id":77})");
  EXPECT_NE(ping.find("\"id\":77"), std::string::npos);
  EXPECT_NE(ping.find("pong"), std::string::npos);

  // Drain first: every in-flight attempt (the stalled primary included)
  // lands, so the hedge ledger is final — and must balance exactly.
  router.stop();
  const RouterStatsSnapshot stats = router.stats();
  EXPECT_GE(stats.hedges_launched, 1u);
  EXPECT_GE(stats.hedges_won, 1u);
  EXPECT_EQ(stats.hedges_won + stats.hedges_lost, stats.hedges_launched);
  EXPECT_EQ(stats.requests_total, 2u);

  stalled.stop();
  live.stop();
}

}  // namespace
}  // namespace xbar::router
